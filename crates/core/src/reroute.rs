//! Unicasting under *dynamic* faults — the §2.2 demand-driven remark
//! made executable:
//!
//! > "in case of occurrence of a new faulty node that affects a
//! > unicast, this unicast might either be aborted or be re-routed
//! > from the current node after all the safety levels are stabilized."
//!
//! A message is in flight while new nodes fail. Each hop, the holder
//! checks its chosen next hop against its *locally detectable* truth
//! (a node always knows its own neighbors' fault status — the paper's
//! assumption 2). On a mismatch it triggers a GS re-stabilization and
//! re-runs the full source decision from its own position, exactly as
//! the paper prescribes.

use crate::gs::run_gs;
use crate::safety::SafetyMap;
use crate::unicast::{source_decision, Decision};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId, Path};

/// A scheduled mid-flight fault: after the message has completed
/// `after_hop` hops, `node` fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Hop count after which the fault materializes.
    pub after_hop: u32,
    /// The node that fails.
    pub node: NodeId,
}

/// Why a dynamic unicast ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynamicOutcome {
    /// Delivered to the destination.
    Delivered,
    /// A re-decision at an intermediate holder found no feasible
    /// continuation (C1–C3 all failed there).
    AbortedAt(NodeId),
    /// The node holding the message failed — fault-stop drops the
    /// message with it.
    HolderFailed(NodeId),
    /// The destination itself failed mid-flight.
    DestinationFailed,
    /// The initial source decision already failed.
    InfeasibleAtSource,
}

/// Result of a dynamic-fault unicast.
#[derive(Clone, Debug)]
pub struct DynamicRun {
    /// How it ended.
    pub outcome: DynamicOutcome,
    /// The realized walk.
    pub path: Path,
    /// Number of GS re-stabilizations triggered.
    pub restabilizations: u32,
    /// Safety-exchange messages spent on re-stabilizations.
    pub gs_messages: u64,
}

/// Routes `s → d` on `cube` starting from `initial_faults`, while the
/// `events` (sorted by `after_hop`) inject new faults mid-flight. A
/// fault striking the current message holder loses the message
/// (fault-stop), reported as [`DynamicOutcome::HolderFailed`].
///
/// # Panics
/// Panics if `events` are not sorted by `after_hop`.
pub fn route_dynamic(
    cube: Hypercube,
    initial_faults: &hypersafe_topology::FaultSet,
    events: &[FaultEvent],
    s: NodeId,
    d: NodeId,
) -> DynamicRun {
    assert!(
        events.windows(2).all(|w| w[0].after_hop <= w[1].after_hop),
        "events must be sorted by after_hop"
    );
    let mut cfg = FaultConfig::with_node_faults(cube, initial_faults.clone());
    let mut map = SafetyMap::compute(&cfg);
    let mut run = DynamicRun {
        outcome: DynamicOutcome::Delivered,
        path: Path::starting_at(s),
        restabilizations: 0,
        gs_messages: 0,
    };
    let mut next_event = 0usize;
    let mut hops = 0u32;
    let mut at = s;

    // The initial source decision fixes the first-hop dimension (a
    // suboptimal decision starts with a *spare* hop, which plain
    // intermediate forwarding would never take).
    let mut pending_dim = match source_decision(&map, s, d) {
        Decision::Failure => {
            run.outcome = DynamicOutcome::InfeasibleAtSource;
            return run;
        }
        Decision::AlreadyThere => {
            run.outcome = DynamicOutcome::Delivered;
            return run;
        }
        Decision::Optimal { first_dim, .. } | Decision::Suboptimal { first_dim } => Some(first_dim),
    };

    loop {
        // Apply all faults scheduled at this hop count.
        while next_event < events.len() && events[next_event].after_hop <= hops {
            let ev = events[next_event];
            next_event += 1;
            cfg.node_faults_mut().insert(ev.node);
            if ev.node == at {
                run.outcome = DynamicOutcome::HolderFailed(at);
                return run;
            }
        }
        if at == d {
            run.outcome = DynamicOutcome::Delivered;
            return run;
        }
        if cfg.node_faulty(d) {
            run.outcome = DynamicOutcome::DestinationFailed;
            return run;
        }
        // Next hop: the pending (re)decision dimension, or ordinary
        // intermediate forwarding on the current map.
        let nv = crate::navigation::NavVector::new(at, d);
        let dim = pending_dim.take().unwrap_or_else(|| {
            crate::unicast::intermediate_dim(&map, at, nv).expect("nv non-zero")
        });
        let next = at.neighbor(dim);
        if cfg.node_faulty(next) {
            // Local detection: the holder knows its neighbors' true
            // status. If the map believed this neighbor healthy, the
            // levels are stale → demand-driven GS re-stabilization.
            if map.level(next) != 0 {
                let gs = run_gs(&cfg);
                run.restabilizations += 1;
                run.gs_messages += gs.stats.messages;
                map = gs.map;
            }
            // Re-decide from this node as the new source. On fresh
            // levels a non-failure decision never picks a faulty next
            // hop for H ≥ 2 (Theorem 2), and the H = 1 faulty-
            // destination case was handled above.
            match source_decision(&map, at, d) {
                Decision::Failure => {
                    run.outcome = DynamicOutcome::AbortedAt(at);
                    return run;
                }
                Decision::AlreadyThere => unreachable!("at ≠ d here"),
                Decision::Optimal { first_dim, .. } | Decision::Suboptimal { first_dim } => {
                    pending_dim = Some(first_dim);
                    continue;
                }
            }
        }
        run.path.push(next);
        at = next;
        hops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::FaultSet;

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    fn q4() -> Hypercube {
        Hypercube::new(4)
    }

    #[test]
    fn no_events_behaves_like_static_route() {
        let cube = q4();
        let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
        let run = route_dynamic(cube, &faults, &[], n("1110"), n("0001"));
        assert_eq!(run.outcome, DynamicOutcome::Delivered);
        assert_eq!(run.restabilizations, 0);
        assert_eq!(run.path.render(4), "1110 → 1111 → 1101 → 0101 → 0001");
    }

    #[test]
    fn mid_flight_fault_triggers_restabilize_and_reroute() {
        let cube = q4();
        let faults = FaultSet::new(cube);
        // Static route 0000 → 1111 under lowest-dim tiebreak goes via
        // 0001; kill 0011 (two hops ahead) after the first hop.
        let events = [FaultEvent {
            after_hop: 1,
            node: n("0011"),
        }];
        let run = route_dynamic(cube, &faults, &events, n("0000"), n("1111"));
        assert_eq!(run.outcome, DynamicOutcome::Delivered);
        assert_eq!(run.restabilizations, 1);
        assert!(run.gs_messages > 0);
        // Still optimal: enough alternatives exist.
        assert_eq!(run.path.len(), 4);
        assert!(!run.path.nodes().contains(&n("0011")));
    }

    #[test]
    fn destination_failure_is_reported() {
        let cube = q4();
        let faults = FaultSet::new(cube);
        let events = [FaultEvent {
            after_hop: 1,
            node: n("1111"),
        }];
        let run = route_dynamic(cube, &faults, &events, n("0000"), n("1111"));
        assert_eq!(run.outcome, DynamicOutcome::DestinationFailed);
    }

    #[test]
    fn surrounded_holder_aborts() {
        let cube = q4();
        // Start fault-free; after hop 1 the message is at 0001 heading
        // for 0111. Fault all of 0001's useful continuations so the
        // re-decision fails there.
        let faults = FaultSet::new(cube);
        let events = [
            FaultEvent {
                after_hop: 1,
                node: n("0011"),
            },
            FaultEvent {
                after_hop: 1,
                node: n("0101"),
            },
            FaultEvent {
                after_hop: 1,
                node: n("0000"),
            },
            FaultEvent {
                after_hop: 1,
                node: n("1001"),
            },
        ];
        let run = route_dynamic(cube, &faults, &events, n("0000"), n("0111"));
        // 0001 is walled in: every neighbor is faulty → abort there.
        assert_eq!(run.outcome, DynamicOutcome::AbortedAt(n("0001")));
        assert!(run.restabilizations >= 1);
    }

    #[test]
    fn infeasible_at_source_short_circuits() {
        let cube = q4();
        let faults = FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]);
        let run = route_dynamic(cube, &faults, &[], n("1110"), n("0000"));
        assert_eq!(run.outcome, DynamicOutcome::InfeasibleAtSource);
        assert!(run.path.is_empty());
    }

    #[test]
    fn holder_failure_loses_the_message() {
        let cube = q4();
        let faults = FaultSet::new(cube);
        // Route 0000 → 1111 passes through 0001 after hop 1; kill it.
        let events = [FaultEvent {
            after_hop: 1,
            node: n("0001"),
        }];
        let run = route_dynamic(cube, &faults, &events, n("0000"), n("1111"));
        assert_eq!(run.outcome, DynamicOutcome::HolderFailed(n("0001")));
    }

    #[test]
    fn destination_fails_one_hop_before_arrival() {
        let cube = q4();
        let faults = FaultSet::new(cube);
        // Lowest-dim tiebreak walks 0000 → 0001 → 0011 → 0111 → 1111;
        // the destination dies while the message sits at 0111.
        let events = [FaultEvent {
            after_hop: 3,
            node: n("1111"),
        }];
        let run = route_dynamic(cube, &faults, &events, n("0000"), n("1111"));
        assert_eq!(run.outcome, DynamicOutcome::DestinationFailed);
        assert_eq!(
            run.path.end(),
            n("0111"),
            "message stops where the bad news arrived"
        );
        assert_eq!(
            run.restabilizations, 0,
            "no reroute can save a dead destination"
        );
    }

    #[test]
    fn holder_fails_on_final_hop() {
        let cube = q4();
        let faults = FaultSet::new(cube);
        // Kill the penultimate node exactly when it holds the message,
        // one hop short of the destination.
        let events = [FaultEvent {
            after_hop: 3,
            node: n("0111"),
        }];
        let run = route_dynamic(cube, &faults, &events, n("0000"), n("1111"));
        assert_eq!(run.outcome, DynamicOutcome::HolderFailed(n("0111")));
        assert_eq!(run.path.end(), n("0111"));
    }

    #[test]
    fn fault_at_arrival_tick_takes_the_holder() {
        let cube = q4();
        let faults = FaultSet::new(cube);
        // The destination fails at the same tick the message completes
        // its final hop. Fault-stop wins the race: the node (now the
        // holder) dies with the message, it is not "delivered first".
        let events = [FaultEvent {
            after_hop: 4,
            node: n("1111"),
        }];
        let run = route_dynamic(cube, &faults, &events, n("0000"), n("1111"));
        assert_eq!(run.outcome, DynamicOutcome::HolderFailed(n("1111")));
    }

    #[test]
    #[should_panic]
    fn unsorted_events_rejected() {
        let cube = q4();
        let faults = FaultSet::new(cube);
        let events = [
            FaultEvent {
                after_hop: 2,
                node: n("0011"),
            },
            FaultEvent {
                after_hop: 1,
                node: n("0101"),
            },
        ];
        route_dynamic(cube, &faults, &events, n("0000"), n("1111"));
    }
}
