//! Local fault detection — the substrate behind the paper's
//! assumption 2.
//!
//! > "Fault detection and diagnosis algorithms exist, but we do not
//! > require such algorithms to be perfect. We do assume that each
//! > node knows exactly the safety status of all its neighbors."
//!
//! This module builds that assumption instead of hand-waving it: a
//! heartbeat protocol on the discrete-event engine. Every node pings
//! its neighbors each period; under fault-stop semantics a dead
//! neighbor simply never answers, so `k` consecutive missed replies
//! mark it faulty locally. Detection latency and accuracy follow from
//! the protocol parameters (period, timeout multiplier), giving the
//! maintenance-strategy experiments a physically grounded detection
//! delay instead of an oracle.

use hypersafe_simkit::{Actor, Ctx, EventEngine, HypercubeNet, Time};
use hypersafe_topology::{FaultConfig, NodeId};

/// Heartbeat message: a ping or its echo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Heartbeat {
    /// "Are you alive?"
    Ping,
    /// "I am."
    Pong,
}

/// Detector parameters.
#[derive(Clone, Copy, Debug)]
pub struct DetectorParams {
    /// Interval between ping rounds, in ticks.
    pub period: Time,
    /// Message latency per hop.
    pub latency: Time,
    /// Missed replies before a neighbor is declared faulty.
    pub misses_allowed: u32,
    /// Number of ping rounds to run.
    pub rounds: u32,
}

impl Default for DetectorParams {
    fn default() -> Self {
        DetectorParams {
            period: 10,
            latency: 1,
            misses_allowed: 2,
            rounds: 8,
        }
    }
}

/// Per-node heartbeat detector state.
pub struct DetectorNode {
    n: u8,
    params: DetectorParams,
    /// Replies received since the last ping round, by dimension.
    answered: Vec<bool>,
    /// Consecutive missed replies, by dimension.
    misses: Vec<u32>,
    /// Local verdict: neighbor along dimension `i` is faulty.
    pub suspected: Vec<bool>,
    rounds_done: u32,
}

const TICK: u64 = 1;

impl DetectorNode {
    fn new(n: u8, params: DetectorParams) -> Self {
        DetectorNode {
            n,
            params,
            answered: vec![false; n as usize],
            misses: vec![0; n as usize],
            suspected: vec![false; n as usize],
            rounds_done: 0,
        }
    }

    fn ping_all(&mut self, ctx: &mut Ctx<Heartbeat>) {
        for i in 0..self.n {
            ctx.send(
                ctx.self_id().neighbor(i),
                Heartbeat::Ping,
                self.params.latency,
            );
        }
        self.answered.iter_mut().for_each(|a| *a = false);
        // Collect verdicts after replies had time to arrive.
        ctx.set_timer(self.params.period, TICK);
    }
}

impl Actor for DetectorNode {
    type Msg = Heartbeat;

    fn on_start(&mut self, ctx: &mut Ctx<Heartbeat>) {
        self.ping_all(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Heartbeat>, from: NodeId, msg: Heartbeat) {
        let dim = ctx.self_id().xor(from).set_dims().next().expect("neighbor");
        match msg {
            Heartbeat::Ping => {
                ctx.send(from, Heartbeat::Pong, self.params.latency);
            }
            Heartbeat::Pong => {
                self.answered[dim as usize] = true;
                self.misses[dim as usize] = 0;
                // A previously suspected neighbor that answers again has
                // recovered (the paper's recovery case, §2.2).
                self.suspected[dim as usize] = false;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Heartbeat>, _tag: u64) {
        for i in 0..self.n as usize {
            if !self.answered[i] {
                self.misses[i] += 1;
                if self.misses[i] >= self.params.misses_allowed {
                    self.suspected[i] = true;
                }
            }
        }
        self.rounds_done += 1;
        if self.rounds_done < self.params.rounds {
            self.ping_all(ctx);
        }
    }
}

/// Result of a detection run: each healthy node's local view of its
/// neighborhood.
pub struct DetectionResult {
    /// `views[a][i]` — node `a` suspects its dimension-`i` neighbor.
    views: Vec<Option<Vec<bool>>>,
    /// Heartbeat messages exchanged.
    pub messages: u64,
    /// Virtual time at completion.
    pub duration: Time,
}

impl DetectionResult {
    /// Whether healthy node `a` suspects its neighbor along `dim`.
    pub fn suspects(&self, a: NodeId, dim: u8) -> Option<bool> {
        self.views[a.raw() as usize]
            .as_ref()
            .map(|v| v[dim as usize])
    }

    /// Checks the run against ground truth: returns
    /// `(false_negatives, false_positives)` summed over all healthy
    /// nodes' views.
    pub fn accuracy(&self, cfg: &FaultConfig) -> (u64, u64) {
        let cube = cfg.cube();
        let mut fneg = 0;
        let mut fpos = 0;
        for a in cfg.healthy_nodes() {
            let Some(view) = &self.views[a.raw() as usize] else {
                continue;
            };
            for (i, b) in cube.neighbors(a).enumerate() {
                let truly_bad = cfg.node_faulty(b) || cfg.link_faults().contains(a, b);
                match (truly_bad, view[i]) {
                    (true, false) => fneg += 1,
                    (false, true) => fpos += 1,
                    _ => {}
                }
            }
        }
        (fneg, fpos)
    }
}

/// Runs the heartbeat detector over `cfg` and returns every healthy
/// node's local fault view.
///
/// Under fault-stop semantics with reliable links the detector is
/// *exact* once `misses_allowed` rounds have elapsed: no false
/// positives (healthy neighbors always answer) and no false negatives
/// (dead ones never do) — which is precisely the paper's assumption,
/// now derived rather than assumed. Faulty links likewise surface,
/// since pings across them are lost.
pub fn detect(cfg: &FaultConfig, params: DetectorParams) -> DetectionResult {
    let n = cfg.cube().dim();
    assert!(
        params.rounds > params.misses_allowed,
        "not enough rounds to convict"
    );
    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::new(&net, |_| DetectorNode::new(n, params));
    eng.run(u64::MAX);
    let views = cfg
        .cube()
        .nodes()
        .map(|a| eng.actor(a).map(|d| d.suspected.clone()))
        .collect();
    DetectionResult {
        views,
        messages: eng.stats().delivered,
        duration: eng.stats().end_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube, LinkFaultSet};

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn detection_is_exact_on_fig1() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let r = detect(&cfg, DetectorParams::default());
        assert_eq!(r.accuracy(&cfg), (0, 0), "no false verdicts");
        // Spot-check: 0001 suspects exactly 0011 (dim 1) and 1001 (dim 3).
        assert_eq!(r.suspects(n("0001"), 1), Some(true));
        assert_eq!(r.suspects(n("0001"), 3), Some(true));
        assert_eq!(r.suspects(n("0001"), 0), Some(false));
        assert_eq!(r.suspects(n("0001"), 2), Some(false));
    }

    #[test]
    fn faulty_links_detected_too() {
        let cube = Hypercube::new(4);
        let mut cfg = FaultConfig::fault_free(cube);
        cfg.link_faults_mut().insert(n("1000"), n("1001"));
        let r = detect(&cfg, DetectorParams::default());
        assert_eq!(r.accuracy(&cfg), (0, 0));
        assert_eq!(
            r.suspects(n("1000"), 0),
            Some(true),
            "link loss looks like death"
        );
        assert_eq!(r.suspects(n("1001"), 0), Some(true));
    }

    #[test]
    fn fault_free_cube_all_clear() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::fault_free(cube);
        let r = detect(&cfg, DetectorParams::default());
        assert_eq!(r.accuracy(&cfg), (0, 0));
        for a in cube.nodes() {
            for i in 0..5 {
                assert_eq!(r.suspects(a, i), Some(false));
            }
        }
    }

    #[test]
    fn message_cost_scales_with_rounds() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::fault_free(cube);
        let short = detect(
            &cfg,
            DetectorParams {
                rounds: 3,
                ..DetectorParams::default()
            },
        );
        let long = detect(
            &cfg,
            DetectorParams {
                rounds: 8,
                ..DetectorParams::default()
            },
        );
        assert!(long.messages > short.messages);
        // Fault-free: per round each undirected link carries two pings
        // (one per direction) and two pongs.
        assert_eq!(short.messages, 3 * 4 * cube.num_links());
    }

    #[test]
    fn detector_views_feed_gs_initialization() {
        // End-to-end: detect → derive each node's faulty-neighbor view
        // → confirm it matches what GS initialization assumes.
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0101", "1010"]),
        );
        let r = detect(&cfg, DetectorParams::default());
        for a in cfg.healthy_nodes() {
            for (i, b) in cube.neighbors(a).enumerate() {
                assert_eq!(
                    r.suspects(a, i as u8),
                    Some(cfg.node_faulty(b)),
                    "{a} dim {i}"
                );
            }
        }
        let _ = LinkFaultSet::new();
    }

    #[test]
    #[should_panic]
    fn too_few_rounds_rejected() {
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::fault_free(cube);
        detect(
            &cfg,
            DetectorParams {
                rounds: 2,
                misses_allowed: 2,
                ..Default::default()
            },
        );
    }
}
