//! `EXTENDED_GLOBAL_STATUS` (EGS) — safety levels in hypercubes with
//! both faulty nodes and faulty links (paper, §4.1).
//!
//! Nonfaulty nodes are split into
//!
//! * `N1` — nonfaulty nodes with no adjacent faulty link, and
//! * `N2` — nonfaulty nodes with at least one adjacent faulty link.
//!
//! Two views coexist. From the view of `N1` (and of the routing
//! algorithm at every other node), each `N2` node *is* faulty: it
//! declares itself 0-safe and the regular GS runs over `N1` with
//! `F ∪ N2` as the faulty set. An `N2` node, however, "considers
//! itself a regular healthy node but treats the other end node(s) of
//! its adjacent faulty link(s) as faulty": in the last round it runs
//! `NODE_STATUS` once over its neighbors' advertised levels (the far
//! ends of faulty links are themselves in `N2`, hence advertised 0).
//!
//! Footnote 3's special-fault semantics: an `N2` node is never used as
//! an intermediate, but a message destined *to* it is still delivered.

use crate::level_store::LevelStore;
use crate::safety::{level_from_neighbors, Level, SafetyMap};
use crate::unicast::{route_traced, RouteResult};
use hypersafe_simkit::{SyncEngine, SyncNode, SyncStats, Trace};
use hypersafe_topology::{FaultConfig, FaultSet, NodeId, MAX_DIM};

/// Safety state of a hypercube with node and link faults: the
/// advertised (global) view plus each `N2` node's self view. Both
/// views share the packed [`LevelStore`] representation — the self
/// view starts as a clone of the advertised store and diverges only
/// on `N2` nodes, so the extension costs the same ~0.5 bytes/node as
/// the node-fault-only map.
#[derive(Clone, Debug)]
pub struct ExtendedSafetyMap {
    /// Advertised levels: the fixed point over `N1` with `F ∪ N2`
    /// treated as faulty. This is what every *other* node sees.
    advertised: SafetyMap,
    /// Self-view levels: differs from `advertised` only on `N2` nodes.
    own: LevelStore,
    /// Membership of `N2`, by raw address.
    in_n2: Vec<bool>,
}

impl ExtendedSafetyMap {
    /// Runs EGS for `cfg`.
    pub fn compute(cfg: &FaultConfig) -> Self {
        let cube = cfg.cube();
        let n = cube.dim();

        // Classify N2 and build the effective fault set F ∪ N2.
        let mut in_n2 = vec![false; cube.num_nodes() as usize];
        let mut effective = FaultSet::new(cube);
        for a in cube.nodes() {
            if cfg.node_faulty(a) {
                effective.insert(a);
            } else if cfg.link_faults().touches(cube, a) {
                in_n2[a.raw() as usize] = true;
                effective.insert(a);
            }
        }
        let n1_cfg = FaultConfig::with_node_faults(cube, effective);
        let advertised = SafetyMap::compute(&n1_cfg);

        // Last round: each N2 node evaluates NODE_STATUS once over the
        // advertised levels (its faulty-link far ends are in N2 or F,
        // so they already advertise 0).
        let mut own = advertised.store().clone();
        let mut scratch = [0 as Level; MAX_DIM as usize];
        for a in cube.nodes() {
            if !in_n2[a.raw() as usize] {
                continue;
            }
            for (i, b) in cube.neighbors(a).enumerate() {
                scratch[i] = advertised.level(b);
            }
            own.set(a.raw(), level_from_neighbors(n, &mut scratch[..n as usize]));
        }
        ExtendedSafetyMap {
            advertised,
            own,
            in_n2,
        }
    }

    /// The advertised (everyone-else's) view.
    pub fn advertised(&self) -> &SafetyMap {
        &self.advertised
    }

    /// Level of `a` as the rest of the network sees it.
    pub fn advertised_level(&self, a: NodeId) -> Level {
        self.advertised.level(a)
    }

    /// Level of `a` in its own view (differs from advertised only for
    /// `N2` nodes).
    pub fn own_level(&self, a: NodeId) -> Level {
        self.own.get(a.raw())
    }

    /// Whether `a` is a nonfaulty node with an adjacent faulty link.
    pub fn is_n2(&self, a: NodeId) -> bool {
        self.in_n2[a.raw() as usize]
    }
}

/// Per-node state of the *distributed* EGS protocol (the paper's
/// `EXTENDED_GLOBAL_STATUS`): `N1` nodes run ordinary `NODE_STATUS`
/// every round and broadcast their level; `N2` nodes broadcast 0
/// throughout (they declare themselves faulty to the network) while
/// privately running `NODE_STATUS` over what they hear. Faulty links
/// never deliver, so their far ends read as level 0 without any
/// special-casing.
///
/// The paper has `N2` evaluate once, in round `n − 1`; here `N2`
/// re-evaluates every round (its broadcast is 0 either way, so the
/// network is unaffected), which reaches the identical fixed point
/// without depending on synchronized round counters — the natural
/// translation to an engine with quiescence detection.
#[derive(Clone, Debug)]
pub struct EgsNode {
    n: u8,
    is_n2: bool,
    level: Level,
}

impl EgsNode {
    fn new(cfg: &FaultConfig, me: NodeId) -> Self {
        let n = cfg.cube().dim();
        let is_n2 = cfg.link_faults().touches(cfg.cube(), me);
        EgsNode { n, is_n2, level: n }
    }

    /// The node's level: advertised for `N1`, private view for `N2`.
    pub fn level(&self) -> Level {
        self.level
    }
}

impl SyncNode for EgsNode {
    type Msg = Level;

    fn broadcast(&self) -> Level {
        if self.is_n2 {
            0
        } else {
            self.level
        }
    }

    fn receive(&mut self, inbox: &[(u8, Level)]) -> bool {
        // Faulty links never deliver, so absent dimensions read as 0 —
        // a stack array keeps the per-round evaluation allocation-free
        // even with a million simulated actors.
        let mut levels = [0 as Level; MAX_DIM as usize];
        for &(dim, lv) in inbox {
            levels[dim as usize] = lv;
        }
        let new = level_from_neighbors(self.n, &mut levels[..self.n as usize]);
        let changed = new != self.level;
        self.level = new;
        changed
    }
}

/// Runs the distributed EGS protocol to quiescence and returns the
/// resulting map plus engine statistics.
pub fn run_egs(cfg: &FaultConfig) -> (ExtendedSafetyMap, SyncStats) {
    let cube = cfg.cube();
    let n = cube.dim();
    let mut eng = SyncEngine::new(cfg, |a| EgsNode::new(cfg, a));
    eng.run_until_stable(n as u32 + 1);
    let mut advertised = Vec::with_capacity(cube.num_nodes() as usize);
    let mut own = Vec::with_capacity(cube.num_nodes() as usize);
    let mut in_n2 = Vec::with_capacity(cube.num_nodes() as usize);
    for a in cube.nodes() {
        match eng.node(a) {
            Some(node) => {
                advertised.push(if node.is_n2 { 0 } else { node.level });
                own.push(node.level);
                in_n2.push(node.is_n2);
            }
            None => {
                advertised.push(0);
                own.push(0);
                in_n2.push(false);
            }
        }
    }
    let stats = eng.stats().clone();
    (
        ExtendedSafetyMap {
            advertised: SafetyMap::from_levels(cube, advertised),
            own: LevelStore::from_levels(n, &own),
            in_n2,
        },
        stats,
    )
}

/// Routes a unicast in a cube with node and link faults, using the EGS
/// views: the source applies `C1` with its *own* level, every neighbor
/// comparison uses *advertised* levels, and the physical simulation
/// accounts for message loss on faulty links (paper, §4.1).
pub fn route_egs(cfg: &FaultConfig, emap: &ExtendedSafetyMap, s: NodeId, d: NodeId) -> RouteResult {
    route_egs_traced(cfg, emap, s, d, &mut Trace::disabled())
}

/// [`route_egs`] with hop tracing.
pub fn route_egs_traced(
    cfg: &FaultConfig,
    emap: &ExtendedSafetyMap,
    s: NodeId,
    d: NodeId,
    trace: &mut Trace,
) -> RouteResult {
    // The routing algorithm is byte-for-byte the node-fault one; the
    // only difference is the level view: the source's C1 test uses its
    // own level. Clone the packed store and substitute that one level
    // — no byte-per-node materialization.
    let mut view = emap.advertised.store().clone();
    view.set(s.raw(), emap.own_level(s));
    let view = SafetyMap::from_store(cfg.cube(), view);
    // An N2 destination advertises 0 and so, like a faulty one, is only
    // reachable as the final hop; `route_traced` treats message entry
    // into it as ordinary arrival because it is not in the node fault
    // set, and a final hop across a faulty link is already marked
    // undelivered there.
    route_traced(cfg, &view, s, d, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{Hypercube, LinkFaultSet};

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    /// A Fig.-4-shaped instance: four faulty nodes and the faulty link
    /// (1000, 1001). The paper's figure is not machine-readable; the
    /// experiment harness (`repro fig4`) searches for fault sets
    /// consistent with every stated fact and this is one of them —
    /// see `hypersafe-experiments::fig4`.
    fn fig4_like() -> FaultConfig {
        let cube = Hypercube::new(4);
        let nodes = FaultSet::from_binary_strs(cube, &["1100", "0000", "0010", "0101"]);
        let mut links = LinkFaultSet::new();
        links.insert(n("1000"), n("1001"));
        FaultConfig::with_faults(cube, nodes, links)
    }

    #[test]
    fn n2_classification() {
        let cfg = fig4_like();
        let emap = ExtendedSafetyMap::compute(&cfg);
        assert!(emap.is_n2(n("1000")));
        assert!(emap.is_n2(n("1001")));
        assert!(!emap.is_n2(n("1111")));
        // N2 nodes advertise 0 but hold their own nonzero view.
        assert_eq!(emap.advertised_level(n("1000")), 0);
        assert_eq!(emap.advertised_level(n("1001")), 0);
        assert!(emap.own_level(n("1000")) > 0);
    }

    #[test]
    fn own_view_equals_advertised_for_n1() {
        let cfg = fig4_like();
        let emap = ExtendedSafetyMap::compute(&cfg);
        for a in cfg.cube().nodes() {
            if !emap.is_n2(a) {
                assert_eq!(emap.own_level(a), emap.advertised_level(a), "{a}");
            }
        }
    }

    #[test]
    fn no_link_faults_degenerates_to_gs() {
        let cube = Hypercube::new(4);
        let nodes = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
        let cfg = FaultConfig::with_node_faults(cube, nodes);
        let emap = ExtendedSafetyMap::compute(&cfg);
        let plain = SafetyMap::compute(&cfg);
        assert_eq!(emap.advertised.store(), plain.store());
        assert!(cfg.cube().nodes().all(|a| !emap.is_n2(a)));
    }

    #[test]
    fn message_to_n2_destination_is_delivered() {
        // Deliver to 1001 (an N2 node) from a node whose route's final
        // hop does not cross the faulty link.
        let cfg = fig4_like();
        let emap = ExtendedSafetyMap::compute(&cfg);
        let res = route_egs(&cfg, &emap, n("1011"), n("1001"));
        assert!(res.delivered, "{:?}", res);
        assert!(res.path.unwrap().is_optimal());
    }

    #[test]
    fn distributed_egs_matches_centralized() {
        // The message-passing protocol and the centralized evaluation
        // agree on the fig4-like instance and on random node+link fault
        // mixes over Q_4.
        let cfg = fig4_like();
        let central = ExtendedSafetyMap::compute(&cfg);
        let (dist, stats) = run_egs(&cfg);
        assert_eq!(central.advertised.store(), dist.advertised.store());
        assert_eq!(central.own, dist.own);
        assert_eq!(central.in_n2, dist.in_n2);
        assert!(stats.messages > 0);

        // Randomized mixes: every pair of (node-mask, one faulty link).
        let cube = Hypercube::new(4);
        for seed in 0u64..200 {
            // Cheap LCG over masks and link choices, deterministic.
            let mask = (seed.wrapping_mul(0x9E3779B97F4A7C15) >> 40) & 0xFFFF;
            let a = NodeId::new(seed % 16);
            let dim = (seed / 16 % 4) as u8;
            let b = a.neighbor(dim);
            let mut nodes = FaultSet::new(cube);
            for i in 0..16u64 {
                if (mask >> i) & 1 == 1 && NodeId::new(i) != a && NodeId::new(i) != b {
                    nodes.insert(NodeId::new(i));
                }
            }
            let mut links = LinkFaultSet::new();
            links.insert(a, b);
            let cfg = FaultConfig::with_faults(cube, nodes, links);
            let central = ExtendedSafetyMap::compute(&cfg);
            let (dist, _) = run_egs(&cfg);
            assert_eq!(
                central.advertised.store(),
                dist.advertised.store(),
                "seed {seed}"
            );
            assert_eq!(central.own, dist.own, "seed {seed}");
        }
    }

    #[test]
    fn n2_source_routes_with_own_level() {
        let cfg = fig4_like();
        let emap = ExtendedSafetyMap::compute(&cfg);
        let s = n("1001");
        let own = emap.own_level(s);
        assert!(own >= 1);
        // Any destination within own-level distance routes optimally.
        for d in cfg.cube().nodes() {
            let h = s.distance(d);
            if h == 0 || h > own as u32 {
                continue;
            }
            if cfg.node_faulty(d) || emap.is_n2(d) && d != s {
                continue; // own-view guarantee excludes special faults
            }
            let res = route_egs(&cfg, &emap, s, d);
            assert!(res.delivered, "{s} → {d}: {res:?}");
        }
    }
}
