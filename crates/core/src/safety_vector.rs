//! Safety **vectors** — the follow-on refinement of safety levels
//! (Wu's later TPDS line of work), implemented here as an extension
//! (DESIGN.md E20).
//!
//! The scalar safety level compresses a node's optimal-reachability
//! profile into its longest guaranteed prefix; a safety vector keeps
//! one bit per distance:
//!
//! * a faulty node's vector is all-zero;
//! * `u_1(a) = 1` for every nonfaulty `a` (a neighbor is always
//!   directly reachable);
//! * for `k ≥ 2`: `u_k(a) = 1` iff at least `n − k + 1` of `a`'s
//!   neighbors have `u_{k−1} = 1`.
//!
//! **Soundness** (tested against the exact oracle): `u_k(a) = 1`
//! implies every node at Hamming distance exactly `k` is reachable by
//! an optimal path — among the `k` preferred neighbors of any such
//! destination, at most `k − 1` can miss from a set of `n − k + 1`
//! good neighbors, so one preferred neighbor carries `u_{k−1} = 1`
//! and induction closes the hop. Unlike the scalar level, the vector
//! can have *holes* (`u_k = 0` but `u_{k+1} = 1`), so it admits
//! strictly more optimal unicasts.
//!
//! Bit `k` depends only on bit `k − 1`, so the whole vector is
//! computed in `n − 1` rounds of neighbor exchange — the same cost as
//! the scalar GS.

use crate::safety::SafetyMap;
use hypersafe_topology::{FaultConfig, NodeId};

/// Safety vectors of every node: bit `k − 1` of `vectors[a]` is
/// `u_k(a)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyVectorMap {
    n: u8,
    vectors: Vec<u32>,
}

impl SafetyVectorMap {
    /// Computes all vectors, distance level by distance level
    /// (`n − 1` exchange rounds in the distributed reading).
    pub fn compute(cfg: &FaultConfig) -> Self {
        assert!(cfg.link_faults().is_empty(), "node faults only");
        let cube = cfg.cube();
        let n = cube.dim();
        let mut vectors = vec![0u32; cube.num_nodes() as usize];
        // u_1: every nonfaulty node.
        for a in cfg.healthy_nodes() {
            vectors[a.raw() as usize] = 1;
        }
        for k in 2..=n {
            let bit_prev = 1u32 << (k - 2);
            let need = (n - k + 1) as usize;
            let updates: Vec<(usize, bool)> = cfg
                .healthy_nodes()
                .map(|a| {
                    let good = cube
                        .neighbors(a)
                        .filter(|&b| vectors[b.raw() as usize] & bit_prev != 0)
                        .count();
                    (a.raw() as usize, good >= need)
                })
                .collect();
            let bit_k = 1u32 << (k - 1);
            for (idx, set) in updates {
                if set {
                    vectors[idx] |= bit_k;
                }
            }
        }
        SafetyVectorMap { n, vectors }
    }

    /// Dimension of the underlying cube.
    pub fn dim(&self) -> u8 {
        self.n
    }

    /// Whether `u_k(a) = 1` (distance-`k` coverage guaranteed).
    #[inline]
    pub fn covers(&self, a: NodeId, k: u8) -> bool {
        debug_assert!(k >= 1 && k <= self.n);
        self.vectors[a.raw() as usize] & (1 << (k - 1)) != 0
    }

    /// The raw bit vector of `a`.
    pub fn vector(&self, a: NodeId) -> u32 {
        self.vectors[a.raw() as usize]
    }

    /// The scalar level implied by the vector: its all-ones prefix
    /// length. Always comparable against [`SafetyMap::level`].
    pub fn prefix_level(&self, a: NodeId) -> u8 {
        (!self.vectors[a.raw() as usize])
            .trailing_zeros()
            .min(self.n as u32) as u8
    }

    /// Whether the vector-based source test admits an *optimal*
    /// unicast `s → d`: `u_H(s) = 1`, or some preferred neighbor `b`
    /// has `u_{H−1}(b) = 1` (with `H = 1` always feasible).
    pub fn admits_optimal(&self, cfg: &FaultConfig, s: NodeId, d: NodeId) -> bool {
        let h = s.distance(d) as u8;
        if h == 0 || h == 1 {
            return true;
        }
        if self.covers(s, h) {
            return true;
        }
        cfg.cube()
            .preferred_neighbors(s, d)
            .any(|b| !cfg.node_faulty(b) && self.covers(b, h - 1))
    }

    /// Routes `s → d` optimally under the vector guarantee: at each
    /// hop with `j` preferred dimensions left, forward to a nonfaulty
    /// preferred neighbor with `u_{j−1} = 1` (any neighbor for
    /// `j = 1`). Returns the path if the guarantee chain holds.
    pub fn route_optimal(
        &self,
        cfg: &FaultConfig,
        s: NodeId,
        d: NodeId,
    ) -> Option<hypersafe_topology::Path> {
        if !self.admits_optimal(cfg, s, d) {
            return None;
        }
        let cube = cfg.cube();
        let mut at = s;
        let mut path = hypersafe_topology::Path::starting_at(s);
        while at != d {
            let j = at.distance(d) as u8;
            let next = if j == 1 {
                Some(d)
            } else {
                cube.preferred_neighbors(at, d)
                    .find(|&b| !cfg.node_faulty(b) && self.covers(b, j - 1))
            };
            let next = next?;
            path.push(next);
            at = next;
        }
        Some(path)
    }
}

/// Relationship check used by tests and E20: the vector's all-ones
/// prefix dominates the scalar level on every node (the vector is at
/// least as informative).
pub fn vector_dominates_level(cfg: &FaultConfig, map: &SafetyMap, vmap: &SafetyVectorMap) -> bool {
    cfg.healthy_nodes()
        .all(|a| vmap.prefix_level(a) >= map.level(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactReach;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn fault_free_vectors_all_ones() {
        let cfg = cfg4(&[]);
        let v = SafetyVectorMap::compute(&cfg);
        for a in cfg.cube().nodes() {
            assert_eq!(v.vector(a), 0b1111);
            assert_eq!(v.prefix_level(a), 4);
        }
    }

    #[test]
    fn soundness_against_oracle_exhaustive_q4() {
        // u_k(a) = 1 ⇒ every distance-k destination optimally
        // reachable — for every ≤ 5-fault pattern of Q_4.
        let cube = Hypercube::new(4);
        for mask in 0u64..(1 << 16) {
            if mask.count_ones() > 5 {
                continue;
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let v = SafetyVectorMap::compute(&cfg);
            let ex = ExactReach::compute(&cfg);
            for a in cfg.healthy_nodes() {
                let exact = ex.reach_vector(a);
                for k in 1..=4u8 {
                    if v.covers(a, k) {
                        assert!(
                            exact[k as usize - 1],
                            "mask {mask:#x}: u_{k}({a}) set but oracle disagrees"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vector_dominates_scalar_exhaustive_q4() {
        let cube = Hypercube::new(4);
        for mask in 0u64..(1 << 16) {
            if mask.count_ones() > 5 {
                continue;
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let map = SafetyMap::compute(&cfg);
            let v = SafetyVectorMap::compute(&cfg);
            assert!(vector_dominates_level(&cfg, &map, &v), "mask {mask:#x}");
        }
    }

    #[test]
    fn vector_routing_realizes_optimal_paths() {
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let v = SafetyVectorMap::compute(&cfg);
        for s in cfg.healthy_nodes() {
            for d in cfg.healthy_nodes() {
                if let Some(p) = v.route_optimal(&cfg, s, d) {
                    assert!(p.is_optimal(), "{s} → {d}");
                    assert!(p.traversable(&cfg, false), "{s} → {d}");
                }
            }
        }
    }

    #[test]
    fn vectors_admit_more_than_scalar_levels() {
        // Find an instance + pair where the vector test admits an
        // optimal unicast the scalar C1/C2 test refuses.
        use crate::unicast::{source_decision, Decision};
        let cube = Hypercube::new(4);
        let mut found = false;
        'outer: for mask in 0u64..(1 << 16) {
            if !(4..=6).contains(&mask.count_ones()) {
                continue;
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let map = SafetyMap::compute(&cfg);
            let v = SafetyVectorMap::compute(&cfg);
            for s in cfg.healthy_nodes() {
                for d in cfg.healthy_nodes() {
                    if s == d {
                        continue;
                    }
                    let scalar_optimal =
                        matches!(source_decision(&map, s, d), Decision::Optimal { .. });
                    if !scalar_optimal && v.admits_optimal(&cfg, s, d) {
                        // The vector promise must be real.
                        let p = v.route_optimal(&cfg, s, d).expect("admitted");
                        assert!(p.is_optimal());
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            found,
            "vectors should strictly extend scalar optimal coverage"
        );
    }

    #[test]
    fn faulty_nodes_have_zero_vectors() {
        let cfg = cfg4(&["1010"]);
        let v = SafetyVectorMap::compute(&cfg);
        assert_eq!(v.vector(NodeId::new(0b1010)), 0);
        assert_eq!(v.prefix_level(NodeId::new(0b1010)), 0);
    }
}
