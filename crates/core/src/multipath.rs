//! k-disjoint multi-path unicast (ROADMAP open item 1).
//!
//! The paper routes each unicast on a single safety-level-guided path;
//! its Theorem 2 machinery already leans on the classic fan of `n`
//! node-disjoint Hamming paths ([`hypersafe_topology::disjoint`]).
//! This module turns that fan into a *routing* primitive: a message is
//! replicated across up to `k ≤ n` pairwise node-disjoint, fault-free
//! paths, so a single further fault (or a congested link) can kill at
//! most one copy.
//!
//! ## Path selection
//!
//! 1. **Fan phase** — the `h = H(s, d)` optimal rotations and the
//!    `n − h` spare-dimension detours of the classic fan are tried in
//!    a safety-guided order: optimal rotations sorted by the safety
//!    level of their first-hop neighbor (descending), then detours by
//!    a caller-supplied spare cost (ascending — the congestion
//!    workloads pass per-link queue depths here, so the least-loaded
//!    healthy spare wins) with safety level as the tie-break. Each
//!    candidate is accepted iff every interior node is nonfaulty and
//!    every link usable; fan members are pairwise internally disjoint
//!    by construction, so acceptance never needs a cross-check.
//! 2. **Reroute phase** — when faults cut fan candidates and fewer
//!    than `k` survive, the survivors are converted into a unit flow
//!    on the node-split residual graph of the live faulty cube and
//!    augmented (BFS, deterministic dimension order) until either `k`
//!    paths exist or no augmenting path remains. Unit vertex
//!    capacities make the result *maximum*: the delivered count equals
//!    `min(k, F(s, d))` where `F` is the max number of pairwise
//!    internally-disjoint fault-free `s → d` paths (the max-flow /
//!    Menger bound) — property-tested against an independent oracle in
//!    `tests/multipath_props.rs`.
//!
//! On the fault-free cube the fan phase alone returns exactly `n`
//! disjoint delivered paths for distinct endpoints (`h` optimal +
//! `n − h` detours of length `h + 2`); whenever the single-path router
//! ([`crate::route`]) delivers, a fault-free walk exists, so the flow
//! bound is ≥ 1 and multi-path delivers on at least one path.
//!
//! Endpoint semantics match [`crate::route`]: interior nodes must be
//! healthy and links usable; the destination may be faulty (footnote
//! 3 — delivery to a dead node's doorstep still counts). A faulty
//! *source* cannot transmit and yields an empty result.

use crate::safety::SafetyMap;
use hypersafe_topology::{e, FaultConfig, NodeId, Path, MAX_DIM};

/// Length class of one delivered path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathKind {
    /// Hamming length `H` (an optimal fan rotation, or a reroute that
    /// happened to land on one).
    Optimal,
    /// Length `H + 2` (a spare-dimension detour).
    Detour,
    /// Longer than `H + 2`: only the reroute phase produces these,
    /// snaking around dense fault regions.
    Reroute,
}

/// One delivered path of a multi-path unicast.
#[derive(Clone, Debug)]
pub struct DisjointPath {
    /// The fault-free realized path.
    pub path: Path,
    /// Its length class.
    pub kind: PathKind,
}

/// Outcome of [`route_disjoint`]: the delivered paths are pairwise
/// internally disjoint and individually fault-free.
#[derive(Clone, Debug)]
pub struct MultipathResult {
    /// Delivered paths, shortest first (ties: fan acceptance order).
    pub paths: Vec<DisjointPath>,
    /// Paths requested (`k`, clamped to `n`).
    pub requested: u8,
    /// Paths accepted straight from the fan before any reroute.
    pub fan_accepted: u8,
    /// Whether the reroute (augmentation) phase ran.
    pub rerouted: bool,
}

impl MultipathResult {
    /// Number of delivered paths.
    pub fn delivered(&self) -> usize {
        self.paths.len()
    }

    /// Total hops across all delivered copies (message overhead).
    pub fn total_hops(&self) -> u32 {
        self.paths.iter().map(|p| p.path.len()).sum()
    }

    /// Hops of the shortest delivered copy (first-copy latency), or
    /// `None` when nothing was delivered.
    pub fn best_hops(&self) -> Option<u32> {
        self.paths.iter().map(|p| p.path.len()).min()
    }

    fn empty(requested: u8) -> Self {
        MultipathResult {
            paths: Vec::new(),
            requested,
            fan_accepted: 0,
            rerouted: false,
        }
    }
}

/// Compact per-pair outcome of [`route_disjoint_many`] — everything
/// the E29 experiment aggregates, with no path allocation retained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiOutcome {
    /// Delivered path count.
    pub delivered: u8,
    /// Delivered paths of Hamming length.
    pub optimal: u8,
    /// Delivered paths of length `H + 2`.
    pub detour: u8,
    /// Delivered paths longer than `H + 2`.
    pub reroute: u8,
    /// Total hops across all delivered copies.
    pub total_hops: u32,
    /// Hops of the shortest delivered copy (0 when none delivered).
    pub best_hops: u32,
}

/// `H` interior nodes + endpoints is the longest fan candidate; the
/// reroute phase can exceed it, so paths are built from raw node vecs.
fn fan_path_ok(cfg: &FaultConfig, nodes: &[NodeId]) -> bool {
    let last = nodes.len() - 1;
    for &v in &nodes[1..last] {
        if cfg.node_faulty(v) {
            return false;
        }
    }
    for w in nodes.windows(2) {
        if !cfg.link_usable(w[0], w[1]) {
            return false;
        }
    }
    true
}

/// The fan candidate that crosses the preferred dimensions in cyclic
/// order starting at `dims[start]`.
fn optimal_candidate(s: NodeId, dims: &[u8], start: usize) -> Vec<NodeId> {
    let h = dims.len();
    let mut nodes = Vec::with_capacity(h + 1);
    let mut cur = s;
    nodes.push(cur);
    for k in 0..h {
        cur = cur.neighbor(dims[(start + k) % h]);
        nodes.push(cur);
    }
    nodes
}

/// The fan candidate that detours through spare dimension `j`.
fn detour_candidate(s: NodeId, d: NodeId, dims: &[u8], j: u8) -> Vec<NodeId> {
    let mut nodes = Vec::with_capacity(dims.len() + 3);
    let mut cur = s.neighbor(j);
    nodes.push(s);
    nodes.push(cur);
    for &p in dims {
        cur = cur.neighbor(p);
        nodes.push(cur);
    }
    debug_assert_eq!(cur, d.xor(e(j)));
    nodes.push(d);
    nodes
}

fn kind_of(len: u32, h: u32) -> PathKind {
    if len == h {
        PathKind::Optimal
    } else if len == h + 2 {
        PathKind::Detour
    } else {
        PathKind::Reroute
    }
}

/// Routes `s → d` across up to `k` pairwise node-disjoint fault-free
/// paths, safety-guided, with spare-dimension detours ordered by
/// safety level alone. See the module docs for the selection rule and
/// the `min(k, F(s, d))` delivery guarantee.
///
/// # Examples
///
/// ```
/// use hypersafe_topology::{Hypercube, FaultConfig, NodeId, disjoint};
/// use hypersafe_core::{route_disjoint, SafetyMap};
///
/// let cube = Hypercube::new(4);
/// let cfg = FaultConfig::fault_free(cube);
/// let map = SafetyMap::compute(&cfg);
/// let res = route_disjoint(&cfg, &map,
///     NodeId::from_binary("0000").unwrap(),
///     NodeId::from_binary("0011").unwrap(), 4);
/// // Fault-free: the full fan — H optimal paths + (n − H) detours.
/// assert_eq!(res.delivered(), 4);
/// let paths: Vec<_> = res.paths.iter().map(|p| p.path.clone()).collect();
/// assert!(disjoint::pairwise_internally_disjoint(&paths));
/// ```
pub fn route_disjoint(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    k: u8,
) -> MultipathResult {
    route_disjoint_ranked(cfg, map, s, d, k, &|_, _| 0)
}

/// [`route_disjoint`] with a caller-supplied cost on spare first-hop
/// links: `spare_cost(s, j)` ranks the detour through spare dimension
/// `j` (lower is better; safety level breaks ties). The hotspot
/// workload passes live per-link queue depths here so the least-loaded
/// healthy spare is preferred.
pub fn route_disjoint_ranked(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    k: u8,
    spare_cost: &dyn Fn(NodeId, u8) -> u64,
) -> MultipathResult {
    let n = cfg.cube().dim();
    let k = k.min(n);
    if s == d || k == 0 || cfg.node_faulty(s) {
        return MultipathResult::empty(k);
    }

    let dims: Vec<u8> = cfg.cube().preferred_dims(s, d).collect();
    let h = dims.len();

    // Safety-guided candidate order: optimal rotations first (by
    // first-hop level, descending), then spare detours (by cost, then
    // level). All keys are deterministic, so so is the whole route.
    let mut rot_order: Vec<usize> = (0..h).collect();
    rot_order.sort_by_key(|&i| (std::cmp::Reverse(map.level(s.neighbor(dims[i]))), dims[i]));
    let mut spare_order: Vec<u8> = cfg.cube().spare_dims(s, d).collect();
    spare_order.sort_by_key(|&j| {
        (
            spare_cost(s, j),
            std::cmp::Reverse(map.level(s.neighbor(j))),
            j,
        )
    });

    let mut accepted: Vec<Vec<NodeId>> = Vec::with_capacity(k as usize);
    let mut candidates_cut = false;
    for &i in &rot_order {
        if accepted.len() == k as usize {
            break;
        }
        let cand = optimal_candidate(s, &dims, i);
        if fan_path_ok(cfg, &cand) {
            accepted.push(cand);
        } else {
            candidates_cut = true;
        }
    }
    for &j in &spare_order {
        if accepted.len() == k as usize {
            break;
        }
        let cand = detour_candidate(s, d, &dims, j);
        if fan_path_ok(cfg, &cand) {
            accepted.push(cand);
        } else {
            candidates_cut = true;
        }
    }

    let fan_accepted = accepted.len() as u8;
    let mut rerouted = false;
    if (accepted.len() as u8) < k && candidates_cut {
        // Live reroute: grow the surviving fan flow to the maximum
        // set of disjoint fault-free paths through the faulty cube.
        accepted = augment_to_max(cfg, s, d, accepted, k);
        rerouted = true;
    }

    let mut paths: Vec<DisjointPath> = accepted
        .into_iter()
        .map(|nodes| {
            let path = Path::from_nodes(nodes);
            let kind = kind_of(path.len(), h as u32);
            DisjointPath { path, kind }
        })
        .collect();
    paths.sort_by_key(|p| p.path.len());
    MultipathResult {
        paths,
        requested: k,
        fan_accepted,
        rerouted,
    }
}

/// Node-split BFS augmentation from an initial set of disjoint
/// fault-free paths to a maximum one (capped at `k`).
///
/// States are `2v` (the *in* copy of node `v`) and `2v + 1` (*out*);
/// interior vertex capacity is 1, links are unit in each direction,
/// and `s`/`d` are uncapacitated. The flow is kept in two flat maps:
/// `out_flow[v]` has bit `i` set when the edge `v → v ⊕ eᵢ` carries
/// flow, and `node_used[v]` marks interior vertices on a path.
fn augment_to_max(
    cfg: &FaultConfig,
    s: NodeId,
    d: NodeId,
    initial: Vec<Vec<NodeId>>,
    k: u8,
) -> Vec<Vec<NodeId>> {
    let cube = cfg.cube();
    let n = cube.dim();
    let total = cube.num_nodes() as usize;
    let mut out_flow = vec![0u32; total];
    let mut node_used = vec![false; total];
    let mut flows = initial.len();
    for path in &initial {
        for w in path.windows(2) {
            let dim = w[0].differing_dims(w[1]).next().expect("adjacent");
            out_flow[w[0].raw() as usize] |= 1 << dim;
        }
        for &v in &path[1..path.len() - 1] {
            node_used[v.raw() as usize] = true;
        }
    }

    let sr = s.raw() as usize;
    let dr = d.raw() as usize;
    let mut parent = vec![u32::MAX; 2 * total];
    let mut queue: Vec<u32> = Vec::with_capacity(total);
    while flows < k as usize {
        parent.iter_mut().for_each(|p| *p = u32::MAX);
        queue.clear();
        let start = (2 * sr + 1) as u32; // s_out
        parent[start as usize] = start;
        queue.push(start);
        let mut head = 0;
        let mut found = false;
        while head < queue.len() && !found {
            let st = queue[head];
            head += 1;
            let v = (st as usize) >> 1;
            let is_out = st & 1 == 1;
            let node = NodeId::new(v as u64);
            if is_out {
                // Forward link edges v_out → w_in (no flow yet), and
                // the residual internal edge v_out → v_in when v
                // carries flow.
                for i in 0..n {
                    if out_flow[v] & (1 << i) != 0 {
                        continue;
                    }
                    let w = node.neighbor(i);
                    let wr = w.raw() as usize;
                    // A link with opposing flow is cancelled via the
                    // w_in residual rule, not traversed forward.
                    if out_flow[wr] & (1 << i) != 0 {
                        continue;
                    }
                    if !cfg.link_usable(node, w) {
                        continue;
                    }
                    if wr != dr && (cfg.node_faulty(w) || wr == sr) {
                        continue;
                    }
                    let wst = (2 * wr) as u32;
                    if parent[wst as usize] == u32::MAX {
                        parent[wst as usize] = st;
                        if wr == dr {
                            found = true;
                            break;
                        }
                        queue.push(wst);
                    }
                }
                if !found && node_used[v] {
                    let ist = (st - 1) as usize;
                    if parent[ist] == u32::MAX {
                        parent[ist] = st;
                        queue.push(ist as u32);
                    }
                }
            } else {
                // v_in: pass through an unused interior vertex, or
                // cancel an incoming flow edge w → v.
                if !node_used[v] {
                    let ost = st + 1;
                    if parent[ost as usize] == u32::MAX {
                        parent[ost as usize] = st;
                        queue.push(ost);
                    }
                }
                for i in 0..n {
                    let w = node.neighbor(i);
                    let wr = w.raw() as usize;
                    if out_flow[wr] & (1 << i) == 0 {
                        continue; // no flow w → v to cancel
                    }
                    let wst = (2 * wr + 1) as u32;
                    if parent[wst as usize] == u32::MAX {
                        parent[wst as usize] = st;
                        queue.push(wst);
                    }
                }
            }
        }
        if !found {
            break;
        }
        // Apply the augmenting path by walking parents from d_in.
        let mut st = (2 * dr) as u32;
        while st != start {
            let pr = parent[st as usize];
            let (pv, p_out) = ((pr as usize) >> 1, pr & 1 == 1);
            let (cv, c_out) = ((st as usize) >> 1, st & 1 == 1);
            if pv == cv {
                // Internal edge: forward in→out claims the vertex,
                // residual out→in releases it.
                node_used[cv] = c_out;
            } else if p_out && !c_out {
                // Forward link edge pv → cv.
                let dim = NodeId::new(pv as u64)
                    .differing_dims(NodeId::new(cv as u64))
                    .next()
                    .expect("adjacent");
                out_flow[pv] |= 1 << dim;
            } else {
                // Residual link edge: cancel flow cv → pv.
                debug_assert!(!p_out && c_out);
                let dim = NodeId::new(cv as u64)
                    .differing_dims(NodeId::new(pv as u64))
                    .next()
                    .expect("adjacent");
                out_flow[cv] &= !(1 << dim);
            }
            st = pr;
        }
        flows += 1;
    }

    // Decompose the flow into paths: from s, follow each outgoing
    // flow bit (ascending dimension for determinism); every interior
    // vertex carries exactly one outgoing unit.
    let mut paths = Vec::with_capacity(flows);
    for i in 0..n {
        if out_flow[sr] & (1 << i) == 0 {
            continue;
        }
        let mut nodes = vec![s];
        let mut cur = s.neighbor(i);
        nodes.push(cur);
        while cur != d {
            let bits = out_flow[cur.raw() as usize];
            debug_assert_eq!(bits.count_ones(), 1, "interior vertex capacity violated");
            let dim = bits.trailing_zeros() as u8;
            cur = cur.neighbor(dim);
            nodes.push(cur);
        }
        paths.push(nodes);
    }
    debug_assert_eq!(paths.len(), flows);
    paths
}

/// Routes every pair across up to `k` disjoint paths, in parallel,
/// preserving input order — the many-to-many batch variant on the
/// vendored-rayon chunked executor. Each outcome is a pure function of
/// `(cfg, map, pair, k)`, and chunks commit in order, so the result is
/// bitwise identical at any `RAYON_NUM_THREADS` (CI diffs 1 vs 4).
///
/// Degenerate `s == d` pairs yield an all-zero outcome — the
/// `disjoint_paths` contract fix this PR exists so such pairs cannot
/// kill a batch.
pub fn route_disjoint_many(
    cfg: &FaultConfig,
    map: &SafetyMap,
    pairs: &[(NodeId, NodeId)],
    k: u8,
) -> Vec<MultiOutcome> {
    if pairs.is_empty() {
        return Vec::new();
    }
    if rayon::num_threads() <= 1 {
        return pairs
            .iter()
            .map(|&(s, d)| outcome_of(&route_disjoint(cfg, map, s, d, k)))
            .collect();
    }
    const FILLER: MultiOutcome = MultiOutcome {
        delivered: 0,
        optimal: 0,
        detour: 0,
        reroute: 0,
        total_hops: 0,
        best_hops: 0,
    };
    let mut out = vec![FILLER; pairs.len()];
    let chunk = pairs.len().div_ceil(rayon::num_threads()).max(1);
    rayon::for_each_chunk_pair(pairs, &mut out, chunk, |ins, outs| {
        map.store().warm();
        for (o, &(s, d)) in outs.iter_mut().zip(ins) {
            *o = outcome_of(&route_disjoint(cfg, map, s, d, k));
        }
    });
    out
}

/// Folds a full result into the compact batch outcome.
pub fn outcome_of(res: &MultipathResult) -> MultiOutcome {
    let mut o = MultiOutcome {
        delivered: res.delivered() as u8,
        optimal: 0,
        detour: 0,
        reroute: 0,
        total_hops: res.total_hops(),
        best_hops: res.best_hops().unwrap_or(0),
    };
    for p in &res.paths {
        match p.kind {
            PathKind::Optimal => o.optimal += 1,
            PathKind::Detour => o.detour += 1,
            PathKind::Reroute => o.reroute += 1,
        }
    }
    o
}

/// Debug-check used by tests and the E29 gate: all paths share no
/// interior node, each is fault-free end to end, and each runs
/// `s → d`.
pub fn check_disjoint_delivery(
    cfg: &FaultConfig,
    s: NodeId,
    d: NodeId,
    res: &MultipathResult,
) -> Result<(), String> {
    let mut interior: Vec<NodeId> = Vec::new();
    for p in &res.paths {
        if p.path.start() != s || p.path.end() != d {
            return Err(format!("path endpoints are not {s} → {d}: {}", p.path));
        }
        let nodes = p.path.nodes();
        if !fan_path_ok(cfg, nodes) {
            return Err(format!("path not fault-free: {}", p.path));
        }
        if p.path.has_repeats() {
            return Err(format!("path revisits a node: {}", p.path));
        }
        interior.extend_from_slice(&nodes[1..nodes.len() - 1]);
    }
    let before = interior.len();
    interior.sort();
    interior.dedup();
    if interior.len() != before {
        return Err("paths share an interior node".to_string());
    }
    if res.delivered() > res.requested as usize {
        return Err(format!(
            "delivered {} > requested {}",
            res.delivered(),
            res.requested
        ));
    }
    if usize::from(MAX_DIM) < res.delivered() {
        return Err("more paths than dimensions".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unicast::route;
    use hypersafe_topology::{disjoint, FaultSet, Hypercube};

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    fn fig1() -> (FaultConfig, SafetyMap) {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        (cfg, map)
    }

    #[test]
    fn fault_free_full_fan_every_pair() {
        for nn in 2u8..=5 {
            let cube = Hypercube::new(nn);
            let cfg = FaultConfig::fault_free(cube);
            let map = SafetyMap::compute(&cfg);
            for s in cube.nodes() {
                for d in cube.nodes() {
                    if s == d {
                        continue;
                    }
                    let res = route_disjoint(&cfg, &map, s, d, nn);
                    assert_eq!(res.delivered(), nn as usize, "{s} → {d}");
                    assert_eq!(res.fan_accepted, nn, "{s} → {d}");
                    assert!(!res.rerouted);
                    let h = s.distance(d);
                    let o = outcome_of(&res);
                    assert_eq!(o.optimal as u32, h, "{s} → {d}");
                    assert_eq!(o.detour as u32, nn as u32 - h, "{s} → {d}");
                    assert_eq!(o.reroute, 0);
                    assert_eq!(o.best_hops, h);
                    check_disjoint_delivery(&cfg, s, d, &res).unwrap();
                    let paths: Vec<Path> = res.paths.iter().map(|p| p.path.clone()).collect();
                    assert!(disjoint::pairwise_internally_disjoint(&paths));
                }
            }
        }
    }

    #[test]
    fn degenerate_and_clamped_requests() {
        let (cfg, map) = fig1();
        let a = n("0000");
        assert_eq!(route_disjoint(&cfg, &map, a, a, 4).delivered(), 0);
        assert_eq!(route_disjoint(&cfg, &map, a, n("0001"), 0).delivered(), 0);
        // k > n clamps to n.
        let res = route_disjoint(&cfg, &map, a, n("0001"), 200);
        assert_eq!(res.requested, 4);
        // A faulty source cannot transmit.
        assert_eq!(route_disjoint(&cfg, &map, n("0011"), a, 4).delivered(), 0);
    }

    #[test]
    fn k_limits_the_fan_and_prefers_optimal() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::fault_free(cube);
        let map = SafetyMap::compute(&cfg);
        let (s, d) = (n("00000"), n("00111"));
        let res = route_disjoint(&cfg, &map, s, d, 2);
        assert_eq!(res.delivered(), 2);
        assert!(res.paths.iter().all(|p| p.kind == PathKind::Optimal));
    }

    #[test]
    fn fig1_multipath_delivers_when_single_path_does() {
        let (cfg, map) = fig1();
        for s in cfg.healthy_nodes() {
            for d in cfg.healthy_nodes() {
                if s == d {
                    continue;
                }
                let single = route(&cfg, &map, s, d);
                let multi = route_disjoint(&cfg, &map, s, d, 4);
                check_disjoint_delivery(&cfg, s, d, &multi).unwrap();
                if single.delivered {
                    assert!(
                        multi.delivered() >= 1,
                        "{s} → {d}: single-path delivered but multipath got 0"
                    );
                }
            }
        }
    }

    #[test]
    fn cut_fan_reroutes_around_the_fault() {
        // 0000 → 0011 in Q_4 with both optimal intermediates dead:
        // the fan's optimal rotations are cut, detours survive, and
        // the flow still reaches the max disjoint count.
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0001", "0010"]),
        );
        let map = SafetyMap::compute(&cfg);
        let res = route_disjoint(&cfg, &map, n("0000"), n("0011"), 4);
        check_disjoint_delivery(&cfg, n("0000"), n("0011"), &res).unwrap();
        assert_eq!(res.delivered(), 2, "two spare-dimension detours survive");
        assert!(res.paths.iter().all(|p| p.kind == PathKind::Detour));
    }

    #[test]
    fn congestion_rank_steers_the_spare_choice() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::fault_free(cube);
        let map = SafetyMap::compute(&cfg);
        let (s, d) = (n("0000"), n("0001"));
        // One detour requested; make spare dimension 3 free and the
        // rest expensive — the chosen detour must leave through dim 3.
        let res = route_disjoint_ranked(&cfg, &map, s, d, 2, &|_, j| u64::from(j != 3));
        assert_eq!(res.delivered(), 2);
        let detour = res
            .paths
            .iter()
            .find(|p| p.kind == PathKind::Detour)
            .expect("one optimal + one detour");
        assert_eq!(detour.path.nodes()[1], s.neighbor(3));
    }

    #[test]
    fn batch_matches_scalar_and_handles_degenerates() {
        let (cfg, map) = fig1();
        let mut pairs: Vec<(NodeId, NodeId)> = cfg
            .healthy_nodes()
            .flat_map(|s| cfg.healthy_nodes().map(move |d| (s, d)))
            .collect();
        pairs.push((n("0000"), n("0000"))); // degenerate pair must not kill the batch
        let batch = route_disjoint_many(&cfg, &map, &pairs, 4);
        assert_eq!(batch.len(), pairs.len());
        for (o, &(s, d)) in batch.iter().zip(&pairs) {
            assert_eq!(*o, outcome_of(&route_disjoint(&cfg, &map, s, d, 4)));
        }
        assert_eq!(batch.last().unwrap().delivered, 0);
        assert!(route_disjoint_many(&cfg, &map, &[], 4).is_empty());
    }
}
