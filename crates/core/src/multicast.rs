//! Multicasting over safety levels — the one-to-many middle ground
//! between the paper's unicast and reference [9]'s broadcast,
//! documented as an extension (DESIGN.md E18).
//!
//! A multicast to destination set `D` could be served by `|D|`
//! independent unicasts, but their paths overlap heavily near the
//! source. This implementation greedily *shares* prefixes: it routes
//! each destination with the paper's unicast algorithm, then merges
//! the hop lists into a tree, counting each shared link once. The
//! guarantees are inherited per destination (each one is reached
//! optimally/suboptimally exactly when its individual feasibility
//! condition holds); the sharing only reduces traffic, never changes
//! paths.

use crate::safety::SafetyMap;
use crate::unicast::{route, Decision};
use hypersafe_topology::{FaultConfig, NodeId};
use std::collections::HashSet;

/// Result of a multicast.
#[derive(Clone, Debug)]
pub struct MulticastResult {
    /// Per-destination outcome `(destination, decision, delivered)`.
    pub outcomes: Vec<(NodeId, Decision, bool)>,
    /// Distinct directed tree edges used (shared prefixes counted
    /// once) — the multicast's traffic.
    pub tree_edges: u64,
    /// Total hops if each destination had been served by an
    /// independent unicast — the savings baseline.
    pub unicast_hops: u64,
}

impl MulticastResult {
    /// Destinations reached.
    pub fn delivered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.2).count()
    }

    /// Fraction of unicast traffic saved by prefix sharing (0 when
    /// nothing was delivered).
    pub fn savings(&self) -> f64 {
        if self.unicast_hops == 0 {
            0.0
        } else {
            1.0 - self.tree_edges as f64 / self.unicast_hops as f64
        }
    }
}

/// Multicasts from `s` to every node in `dests`, sharing common path
/// prefixes.
pub fn multicast(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    dests: &[NodeId],
) -> MulticastResult {
    let mut edges: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut outcomes = Vec::with_capacity(dests.len());
    let mut unicast_hops = 0u64;
    for &d in dests {
        let res = route(cfg, map, s, d);
        if let Some(p) = &res.path {
            if res.delivered {
                unicast_hops += p.len() as u64;
                for w in p.nodes().windows(2) {
                    edges.insert((w[0], w[1]));
                }
            }
        }
        outcomes.push((d, res.decision, res.delivered));
    }
    MulticastResult {
        outcomes,
        tree_edges: edges.len() as u64,
        unicast_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn fig1() -> (FaultConfig, SafetyMap) {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        (cfg, map)
    }

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn multicast_shares_prefixes() {
        let (cfg, map) = fig1();
        // Destinations on the far side share the first hops from 1110.
        let dests = [n("0001"), n("0101"), n("1101")];
        let r = multicast(&cfg, &map, n("1110"), &dests);
        assert_eq!(r.delivered(), 3);
        assert!(r.tree_edges < r.unicast_hops, "sharing must save traffic");
        assert!(r.savings() > 0.0);
    }

    #[test]
    fn disjoint_destinations_share_nothing() {
        let (cfg, map) = fig1();
        // Immediate neighbors in different dimensions: no shared edges.
        let dests = [n("1111"), n("1100"), n("1010")];
        let r = multicast(&cfg, &map, n("1110"), &dests);
        assert_eq!(r.delivered(), 3);
        assert_eq!(r.tree_edges, 3);
        assert_eq!(r.unicast_hops, 3);
        assert_eq!(r.savings(), 0.0);
    }

    #[test]
    fn per_destination_guarantees_inherited() {
        let (cfg, map) = fig1();
        let dests: Vec<NodeId> = cfg.healthy_nodes().filter(|&d| d != n("1110")).collect();
        let r = multicast(&cfg, &map, n("1110"), &dests);
        // 1110 is safe → every destination optimal and delivered.
        assert_eq!(r.delivered(), dests.len());
        for (_, dec, ok) in &r.outcomes {
            assert!(matches!(dec, Decision::Optimal { .. }), "{dec:?}");
            assert!(ok);
        }
        // Tree must be a tree-ish subgraph: at most one inbound edge
        // per non-source node.
        assert!(r.tree_edges <= cfg.cube().num_nodes());
    }

    #[test]
    fn infeasible_destinations_reported_individually() {
        // Fig. 3's disconnected cube: multicast from 0111 to a mixed
        // set reports per-destination outcomes.
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
        );
        let map = SafetyMap::compute(&cfg);
        let r = multicast(&cfg, &map, n("0111"), &[n("1011"), n("1110")]);
        assert_eq!(r.delivered(), 1);
        let m: Vec<bool> = r.outcomes.iter().map(|o| o.2).collect();
        assert_eq!(m, vec![true, false]);
        assert!(matches!(r.outcomes[1].1, Decision::Failure));
    }

    #[test]
    fn empty_destination_set() {
        let (cfg, map) = fig1();
        let r = multicast(&cfg, &map, n("0000"), &[]);
        assert_eq!(r.delivered(), 0);
        assert_eq!(r.tree_edges, 0);
        assert_eq!(r.savings(), 0.0);
    }
}
