//! GH unicasting as a distributed protocol on the unified event
//! engine (over [`GhNet`]) — the §4.2 routing run message-by-message,
//! completing the
//! "every algorithm has a centralized evaluation *and* a real
//! protocol execution" invariant of this workspace.
//!
//! Each node holds only local knowledge: the topology handle, its own
//! level, and its neighbors' levels. The message carries the
//! destination (GH has no compact navigation vector; the digit
//! difference *is* the remaining work) plus a hop trail for
//! measurement.

use crate::gh_safety::GhSafetyMap;
use crate::gh_unicast::{gh_source_decision, GhDecision};
use crate::safety::Level;
use hypersafe_simkit::{Actor, Ctx, EventEngine, GhNet, Time};
use hypersafe_topology::{GeneralizedHypercube, GhNode, NodeId};
use std::collections::HashMap;
use std::sync::Arc;

/// A GH unicast in flight.
#[derive(Clone, Debug)]
pub struct GhMsg {
    /// Final destination.
    pub dest: GhNode,
    /// Nodes visited so far, including the source.
    pub trail: Vec<GhNode>,
}

/// Per-node actor.
pub struct GhUnicastNode {
    gh: Arc<GeneralizedHypercube>,
    /// Level of every clique peer, keyed by node id — the node's local
    /// table after GH-GS.
    peer_levels: HashMap<u64, Level>,
    own_level: Level,
    /// Set when a message for this node arrives.
    pub received: Option<GhMsg>,
    start: Option<GhNode>,
    latency: Time,
}

const START_TAG: u64 = 0x64;

impl GhUnicastNode {
    fn new(gh: Arc<GeneralizedHypercube>, map: &GhSafetyMap, me: GhNode, latency: Time) -> Self {
        let peer_levels = gh.neighbors(me).map(|b| (b.raw(), map.level(b))).collect();
        GhUnicastNode {
            own_level: map.level(me),
            gh,
            peer_levels,
            received: None,
            start: None,
            latency,
        }
    }

    /// The destination-digit neighbor with the highest known level
    /// among unresolved dimensions (ties: lowest dimension) — the
    /// intermediate rule of `gh_route`, from local state only.
    fn forwarding_peer(&self, at: GhNode, d: GhNode) -> Option<(GhNode, Level)> {
        let mut best: Option<(GhNode, Level)> = None;
        for i in self.gh.differing_dims(at, d) {
            let nb = self.gh.with_digit(at, i, self.gh.digit(d, i));
            let lv = *self.peer_levels.get(&nb.raw()).expect("clique peer");
            match best {
                Some((_, b)) if b >= lv => {}
                _ => best = Some((nb, lv)),
            }
        }
        best
    }

    fn forward(&self, ctx: &mut Ctx<GhMsg>, mut msg: GhMsg, next: GhNode) {
        msg.trail.push(next);
        ctx.send(NodeId::new(next.raw()), msg, self.latency);
    }
}

impl Actor for GhUnicastNode {
    type Msg = GhMsg;

    fn on_timer(&mut self, ctx: &mut Ctx<GhMsg>, tag: u64) {
        if tag != START_TAG {
            return;
        }
        let Some(d) = self.start.take() else { return };
        let s = GhNode(ctx.self_id().raw());
        let h = self.gh.distance(s, d) as u16;
        if h == 0 {
            self.received = Some(GhMsg {
                dest: d,
                trail: vec![s],
            });
            return;
        }
        let msg = GhMsg {
            dest: d,
            trail: vec![s],
        };
        // C1 / C2: optimal start via the best preferred peer.
        let pref = self.forwarding_peer(s, d);
        let c1 = (self.own_level as u16) >= h;
        let c2 = pref.is_some_and(|(_, lv)| (lv as u16) + 1 >= h);
        if c1 || c2 {
            let (next, _) = pref.expect("h ≥ 1");
            self.forward(ctx, msg, next);
            return;
        }
        // C3: best spare-clique peer with level ≥ H + 1.
        let mut best: Option<(GhNode, Level)> = None;
        for i in 0..self.gh.dim() {
            if self.gh.digit(s, i) == self.gh.digit(d, i) {
                for nb in self.gh.neighbors_along(s, i) {
                    let lv = *self.peer_levels.get(&nb.raw()).expect("peer");
                    if (lv as u16) > h {
                        match best {
                            Some((_, b)) if b >= lv => {}
                            _ => best = Some((nb, lv)),
                        }
                    }
                }
            }
        }
        if let Some((next, _)) = best {
            self.forward(ctx, msg, next);
        }
        // else: local failure, nothing sent.
    }

    fn on_message(&mut self, ctx: &mut Ctx<GhMsg>, _from: NodeId, msg: GhMsg) {
        let me = GhNode(ctx.self_id().raw());
        if msg.dest == me {
            self.received = Some(msg);
            return;
        }
        if let Some((next, _)) = self.forwarding_peer(me, msg.dest) {
            self.forward(ctx, msg, next);
        }
    }
}

/// Outcome of a distributed GH unicast.
#[derive(Clone, Debug)]
pub struct GhDistributedRun {
    /// The source's local decision (recomputed for reporting).
    pub decision: GhDecision,
    /// Trail recorded at the destination, if delivered.
    pub trail: Option<Vec<GhNode>>,
    /// Messages delivered.
    pub messages: u64,
}

/// Runs one GH unicast `s → d` as a distributed protocol.
pub fn run_gh_unicast(
    gh: &GeneralizedHypercube,
    map: &GhSafetyMap,
    faults: &hypersafe_topology::FaultSet,
    s: GhNode,
    d: GhNode,
    latency: Time,
) -> GhDistributedRun {
    let gh_arc = Arc::new(gh.clone());
    let net = GhNet::new(gh, faults);
    let mut eng = EventEngine::new(&net, |a| {
        let mut node = GhUnicastNode::new(gh_arc.clone(), map, GhNode(a.raw()), latency.max(1));
        if a.raw() == s.raw() {
            node.start = Some(d);
        }
        node
    });
    eng.inject(NodeId::new(s.raw()), START_TAG, 0);
    eng.run(u64::MAX);
    GhDistributedRun {
        decision: gh_source_decision(gh, map, s, d),
        trail: eng
            .actor(NodeId::new(d.raw()))
            .and_then(|n| n.received.as_ref())
            .map(|m| m.trail.clone()),
        messages: eng.stats().delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gh_unicast::gh_route;

    fn fig5_like() -> (
        GeneralizedHypercube,
        hypersafe_topology::FaultSet,
        GhSafetyMap,
    ) {
        let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
        let f = gh.fault_set_from_strs(&["011", "100", "111", "121"]);
        let map = GhSafetyMap::compute(&gh, &f);
        (gh, f, map)
    }

    #[test]
    fn distributed_matches_centralized_on_fig5_instance() {
        let (gh, f, map) = fig5_like();
        let healthy: Vec<GhNode> = gh
            .nodes()
            .filter(|a| !f.contains(NodeId::new(a.raw())))
            .collect();
        for &s in &healthy {
            for &d in &healthy {
                let central = gh_route(&gh, &map, &f, s, d);
                let dist = run_gh_unicast(&gh, &map, &f, s, d, 1);
                assert_eq!(
                    central.decision,
                    dist.decision,
                    "{} → {}",
                    gh.format(s),
                    gh.format(d)
                );
                match (central.delivered, &dist.trail) {
                    (true, Some(trail)) => {
                        assert_eq!(
                            central.nodes.as_deref().unwrap(),
                            trail.as_slice(),
                            "{} → {}: hop-for-hop agreement",
                            gh.format(s),
                            gh.format(d)
                        );
                    }
                    (false, None) => {}
                    (c, t) => panic!(
                        "{} → {}: centralized={c} distributed={t:?}",
                        gh.format(s),
                        gh.format(d)
                    ),
                }
            }
        }
    }

    #[test]
    fn mixed_radix_fault_free_optimal() {
        let gh = GeneralizedHypercube::new(&[3, 4, 2]);
        let f = gh.fault_set();
        let map = GhSafetyMap::compute(&gh, &f);
        let s = GhNode(0);
        let d = GhNode(gh.num_nodes() - 1);
        let run = run_gh_unicast(&gh, &map, &f, s, d, 1);
        let trail = run.trail.expect("delivered");
        assert_eq!(trail.len() as u32 - 1, gh.distance(s, d));
        assert_eq!(run.messages as u32, gh.distance(s, d));
    }

    #[test]
    fn failure_sends_nothing() {
        // GH(2,2): fault both neighbors of node 0 → every unicast from
        // it fails locally with zero traffic.
        let gh = GeneralizedHypercube::new(&[2, 2]);
        let mut f = gh.fault_set();
        f.insert(NodeId::new(1));
        f.insert(NodeId::new(2));
        let map = GhSafetyMap::compute(&gh, &f);
        let run = run_gh_unicast(&gh, &map, &f, GhNode(0), GhNode(3), 1);
        assert_eq!(run.decision, GhDecision::Failure);
        assert_eq!(run.trail, None);
        assert_eq!(run.messages, 0);
    }
}
