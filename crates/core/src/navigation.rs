//! Navigation vectors (paper, §3.1).
//!
//! A unicast message carries a *navigation vector* `N = s ⊕ d`,
//! computed at the source. Forwarding to the neighbor along dimension
//! `i` replaces `N` by `N ⊕ eⁱ`: a preferred hop *resets* bit `i`, a
//! spare hop *sets* it. The unicast completes exactly when `N = 0`, so
//! intermediate nodes need neither the source nor the destination
//! address — the vector alone identifies the remaining work.

use hypersafe_topology::{e, BitDims, NodeId};

/// The navigation vector of an in-flight unicast.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NavVector(pub u64);

impl NavVector {
    /// Computes `N = s ⊕ d` at the source.
    #[inline]
    pub fn new(s: NodeId, d: NodeId) -> Self {
        NavVector(s.xor(d).raw())
    }

    /// The remaining distance `|N|` — at the source this is `H(s, d)`.
    #[inline]
    pub fn remaining(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the message has arrived (`N = 0`).
    #[inline]
    pub fn is_done(self) -> bool {
        self.0 == 0
    }

    /// Whether dimension `i` is preferred (`N(i) = 1`).
    #[inline]
    pub fn is_preferred(self, i: u8) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// The vector after crossing dimension `i` (`N ⊕ eⁱ`).
    #[inline]
    pub fn after_hop(self, i: u8) -> NavVector {
        NavVector(self.0 ^ e(i).raw())
    }

    /// Iterator over the preferred dimensions.
    #[inline]
    pub fn preferred_dims(self) -> BitDims {
        BitDims(self.0)
    }

    /// Iterator over the spare dimensions of an `n`-cube message.
    #[inline]
    pub fn spare_dims(self, n: u8) -> BitDims {
        BitDims(!self.0 & ((1u64 << n) - 1))
    }

    /// The destination implied by the current holder `at` and this
    /// vector: `at ⊕ N`.
    #[inline]
    pub fn destination(self, at: NodeId) -> NodeId {
        at.xor(NodeId::new(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_first_unicast_vector() {
        // §3.2: s₁ = 1110, d₁ = 0001 → N₁ = 1111, H = 4.
        let s = NodeId::from_binary("1110").unwrap();
        let d = NodeId::from_binary("0001").unwrap();
        let nv = NavVector::new(s, d);
        assert_eq!(nv.0, 0b1111);
        assert_eq!(nv.remaining(), 4);
        // Forwarding along dimension 0 resets bit 0 → 1110.
        assert_eq!(nv.after_hop(0).0, 0b1110);
    }

    #[test]
    fn spare_hop_sets_bit() {
        let nv = NavVector(0b0101);
        assert!(!nv.is_preferred(1));
        assert_eq!(nv.after_hop(1).0, 0b0111, "spare hop grows the vector");
        assert_eq!(nv.after_hop(1).remaining(), 3);
    }

    #[test]
    fn preferred_and_spare_dims_partition() {
        let nv = NavVector(0b0110);
        assert_eq!(nv.preferred_dims().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(nv.spare_dims(4).collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn done_exactly_at_destination() {
        let s = NodeId::new(0b101);
        let d = NodeId::new(0b011);
        let mut nv = NavVector::new(s, d);
        let mut at = s;
        while !nv.is_done() {
            let dim = nv.preferred_dims().next().unwrap();
            at = at.neighbor(dim);
            nv = nv.after_hop(dim);
        }
        assert_eq!(at, d);
    }

    #[test]
    fn destination_recoverable_from_vector() {
        let s = NodeId::new(0b1100);
        let d = NodeId::new(0b0011);
        let nv = NavVector::new(s, d);
        assert_eq!(nv.destination(s), d);
        // After one preferred hop the implied destination is unchanged.
        let dim = nv.preferred_dims().next().unwrap();
        assert_eq!(nv.after_hop(dim).destination(s.neighbor(dim)), d);
    }
}
