//! `GLOBAL_STATUS` (GS) — the paper's distributed safety-level
//! computation, executed as an actual message-passing protocol.
//!
//! Every nonfaulty node starts at level `n` (so a fault-free cube costs
//! nothing, §2.2), faulty nodes are 0-safe and silent; each round every
//! node sends its level to all neighbors and re-evaluates Definition 1
//! over the received values (`NODE_STATUS`). A faulty neighbor never
//! speaks, so its dimension reads as level 0 — exactly the paper's
//! convention.
//!
//! [`run_gs`] executes the synchronous version on the lock-step engine
//! and returns the resulting [`SafetyMap`] plus round/message
//! statistics. [`run_gs_async`] executes the asynchronous variant on
//! the discrete-event engine with arbitrary per-link latencies; by
//! Theorem 1 both converge to the same unique fixed point, which the
//! test suite cross-checks against the centralized computation.

use crate::level_store::NeighborLevels;
use crate::safety::{level_from_neighbors, level_from_unsorted, Level, SafetyMap};
use hypersafe_simkit::{
    Actor, ChannelModel, Ctx, EventEngine, EventStats, FifoScheduler, HypercubeNet, Metrics,
    RelCtx, Reliable, ReliableActor, ReliableConfig, Scheduler, SyncEngine, SyncNode, SyncStats,
};
use hypersafe_topology::{FaultConfig, NodeId, MAX_DIM};

/// Per-node state of the synchronous GS protocol.
#[derive(Clone, Debug)]
pub struct GsNode {
    n: u8,
    level: Level,
}

impl GsNode {
    /// Fresh state for a node of an `n`-cube: initially `n`-safe.
    pub fn new(n: u8) -> Self {
        GsNode { n, level: n }
    }

    /// Current safety level.
    pub fn level(&self) -> Level {
        self.level
    }
}

impl SyncNode for GsNode {
    type Msg = Level;

    fn broadcast(&self) -> Level {
        self.level
    }

    fn receive(&mut self, inbox: &[(u8, Level)]) -> bool {
        // Dimensions that delivered nothing (faulty neighbor or faulty
        // link) read as level 0. Stack scratch: this runs once per node
        // per round, so a heap allocation here dominates at n = 20.
        let mut levels = [0 as Level; MAX_DIM as usize];
        for &(dim, lv) in inbox {
            levels[dim as usize] = lv;
        }
        let new = level_from_neighbors(self.n, &mut levels[..self.n as usize]);
        let changed = new != self.level;
        self.level = new;
        changed
    }
}

/// Outcome of a distributed GS run.
#[derive(Clone, Debug)]
pub struct GsRun {
    /// The converged safety levels.
    pub map: SafetyMap,
    /// Engine statistics (rounds, messages).
    pub stats: SyncStats,
}

/// Runs synchronous GS to quiescence (at most `max_rounds` rounds; the
/// Corollary to Property 1 guarantees `n − 1` suffices, and the default
/// entry point [`run_gs`] uses exactly that bound plus the quiescence
/// probe).
pub fn run_gs_bounded(cfg: &FaultConfig, max_rounds: u32) -> GsRun {
    let n = cfg.cube().dim();
    let mut eng = SyncEngine::new(cfg, |_| GsNode::new(n));
    eng.run_until_stable(max_rounds);
    let stats = eng.stats().clone();
    let levels = cfg
        .cube()
        .nodes()
        .map(|a| eng.node(a).map_or(0, GsNode::level))
        .collect();
    let rounds = stats.active_rounds;
    GsRun {
        map: SafetyMap::from_levels(cfg.cube(), levels).with_rounds(rounds),
        stats,
    }
}

/// Runs synchronous GS with the paper's bound `D = n − 1` (plus one
/// quiescence-detection round so the active-round count is exact).
///
/// # Examples
///
/// ```
/// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig};
/// use hypersafe_core::{run_gs, SafetyMap};
///
/// let cube = Hypercube::new(4);
/// let faults = FaultSet::from_binary_strs(cube, &["0011", "0100"]);
/// let cfg = FaultConfig::with_node_faults(cube, faults);
/// let run = run_gs(&cfg);
/// // The distributed protocol converges to the centralized fixed point.
/// assert_eq!(run.map.store(), SafetyMap::compute(&cfg).store());
/// assert!(run.stats.messages > 0);
/// ```
pub fn run_gs(cfg: &FaultConfig) -> GsRun {
    run_gs_bounded(cfg, cfg.cube().dim() as u32)
}

/// Asynchronous GS actor: re-evaluates on every received level and
/// gossips its own level whenever it changes (state-change-driven,
/// §2.2 item 3).
///
/// Initial knowledge follows the paper's assumption 2 ("each node knows
/// exactly the safety status of all its neighbors" via local fault
/// detection): a healthy neighbor is presumed `n`-safe until it says
/// otherwise, a faulty neighbor (or one behind a faulty link) reads 0
/// permanently. Starting from this top element, Definition 1's operator
/// is monotone, so every update strictly *decreases* some level —
/// termination is guaranteed after at most `n · 2ⁿ` announcements and
/// the quiescent state is Theorem 1's unique fixed point.
#[derive(Clone, Debug)]
pub struct AsyncGsNode {
    n: u8,
    level: Level,
    /// Best current knowledge of each neighbor's level, by dimension —
    /// packed 5-bit fields, three words total regardless of `n`.
    heard: NeighborLevels,
    /// Which neighbors are locally known reachable (healthy node behind
    /// a healthy link) — assumption 2's local fault detection. Bit `d`
    /// set means the dimension-`d` neighbor is usable.
    usable: u32,
    latency: u64,
    /// Whether every level change so far was a decrease. Starting from
    /// the top element this must stay `true` (the Definition 1 operator
    /// is monotone); the DST invariant suite
    /// ([`crate::invariants::GsLevelsConverge`]) checks it at every
    /// quiescent point instead of a `debug_assert` so adversarial runs
    /// report a violation rather than abort.
    monotone: bool,
}

impl AsyncGsNode {
    pub(crate) fn new(cfg: &FaultConfig, me: NodeId, latency: u64) -> Self {
        let n = cfg.cube().dim();
        let mut usable = 0u32;
        let mut heard = NeighborLevels::filled(n, 0);
        for (d, b) in cfg.cube().neighbors_with_dims(me) {
            if !cfg.node_faulty(b) && !cfg.link_faults().contains(me, b) {
                usable |= 1 << d;
                heard.set(d, n);
            }
        }
        AsyncGsNode {
            n,
            level: n,
            heard,
            usable,
            latency,
            monotone: true,
        }
    }

    /// Current safety level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// `true` while every level change has been a strict decrease (the
    /// lattice-descent property termination rests on).
    pub fn monotone(&self) -> bool {
        self.monotone
    }

    fn reevaluate(&mut self) -> bool {
        // Histogram evaluation: no clone, no sort (hot path — runs on
        // every received announcement).
        let new = level_from_unsorted(self.n, self.heard.iter(self.n));
        if new != self.level {
            self.monotone &= new < self.level;
            self.level = new;
            true
        } else {
            false
        }
    }

    fn announce(&self, ctx: &mut Ctx<Level>) {
        for i in 0..self.n {
            ctx.send(ctx.self_id().neighbor(i), self.level, self.latency);
        }
    }
}

/// Canonical protocol state for the model checker: own level, per-dim
/// neighbor knowledge, and the descent flag. `n`/`usable` are static
/// per fault configuration and `latency` is timing, so all three are
/// excluded — which is exactly what lets the untimed checker merge
/// engine states that differ only in clock detail.
impl hypersafe_simkit::StateHash for AsyncGsNode {
    fn state_hash(&self, h: &mut hypersafe_simkit::McHasher) {
        h.write_u64(self.level as u64);
        for d in 0..self.n {
            h.write_u64(self.heard.get(d) as u64);
        }
        h.write_bytes(&[self.monotone as u8]);
    }
}

impl Actor for AsyncGsNode {
    type Msg = Level;

    fn on_start(&mut self, ctx: &mut Ctx<Level>) {
        // Nodes whose adjacent faults alone lower their level kick off
        // the wave; everyone else stays silent (zero cost when
        // fault-free, §2.2).
        if self.reevaluate() {
            self.announce(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Level>, from: NodeId, msg: Level) {
        let dim = ctx.self_id().xor(from).set_dims().next().expect("neighbor");
        // Monotone merge: a neighbor's true level only ever decreases,
        // so a value above current knowledge is a stale reordered
        // announcement — ignore it. With plain overwrite a late-arriving
        // high level could resurrect knowledge under an adversarial
        // schedule; the min() makes descent unconditional, which is what
        // the `GsLevelsDescend` DST invariant checks.
        self.heard.set(dim, self.heard.get(dim).min(msg));
        if self.reevaluate() {
            self.announce(ctx);
        }
    }
}

/// Runs the asynchronous GS protocol with the given per-hop message
/// latency and returns the converged map plus engine statistics.
pub fn run_gs_async(cfg: &FaultConfig, latency: u64) -> (SafetyMap, hypersafe_simkit::EventStats) {
    let run = run_gs_async_sched(cfg, latency, Box::new(hypersafe_simkit::FifoScheduler));
    (run.map, run.stats)
}

/// Outcome of an asynchronous GS run under an explicit scheduler.
#[derive(Clone, Debug)]
pub struct GsAsyncRun {
    /// The levels when the run went quiescent.
    pub map: SafetyMap,
    /// Engine statistics.
    pub stats: EventStats,
    /// Whether every node's level descended monotonically
    /// (see [`AsyncGsNode::monotone`]).
    pub monotone: bool,
}

/// [`run_gs_async`] under an arbitrary [`Scheduler`] — the DST entry
/// point. Theorem 1's fixed point is schedule-free, so the returned map
/// must equal the centralized computation under *any* scheduler that
/// only reorders and delays (e.g.
/// [`hypersafe_simkit::AdversarialScheduler::permute`]; the protocol
/// assumes reliable links, so loss-bursting adversaries belong with
/// [`run_gs_reliable`]).
pub fn run_gs_async_sched(
    cfg: &FaultConfig,
    latency: u64,
    sched: Box<dyn Scheduler>,
) -> GsAsyncRun {
    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::with_parts(&net, None, sched, |a| {
        AsyncGsNode::new(cfg, a, latency.max(1))
    });
    eng.run(u64::MAX);
    collect_gs_async(cfg, &eng)
}

pub(crate) fn collect_gs_async(
    cfg: &FaultConfig,
    eng: &EventEngine<'_, HypercubeNet<'_>, AsyncGsNode>,
) -> GsAsyncRun {
    let levels = cfg
        .cube()
        .nodes()
        .map(|a| eng.actor(a).map_or(0, AsyncGsNode::level))
        .collect();
    let monotone = cfg
        .cube()
        .nodes()
        .filter_map(|a| eng.actor(a))
        .all(AsyncGsNode::monotone);
    GsAsyncRun {
        map: SafetyMap::from_levels(cfg.cube(), levels),
        stats: eng.stats().clone(),
        monotone,
    }
}

/// The same state-change-driven protocol, but every announcement goes
/// through the reliable layer — the shape GS must take when links lose
/// messages. Announcements are only sent to locally-usable neighbors
/// (assumption 2), so no retransmission budget is wasted on peers that
/// are known dead.
impl ReliableActor for AsyncGsNode {
    type Msg = Level;

    fn on_start(&mut self, ctx: &mut RelCtx<Level>) {
        if self.reevaluate() {
            for i in 0..self.n {
                if self.usable >> i & 1 == 1 {
                    ctx.send_reliable(ctx.self_id().neighbor(i), self.level);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut RelCtx<Level>, from: NodeId, msg: Level) {
        let dim = ctx.self_id().xor(from).set_dims().next().expect("neighbor");
        // Same monotone merge as the unreliable actor; the ARQ layer
        // delivers in order per link, so this is belt-and-suspenders
        // there, but it keeps the two actors' semantics identical.
        self.heard.set(dim, self.heard.get(dim).min(msg));
        if self.reevaluate() {
            for i in 0..self.n {
                if self.usable >> i & 1 == 1 {
                    ctx.send_reliable(ctx.self_id().neighbor(i), self.level);
                }
            }
        }
    }
}

/// Outcome of a GS run over a lossy channel.
#[derive(Clone, Debug)]
pub struct GsLossyRun {
    /// The safety levels when the run went quiescent.
    pub map: SafetyMap,
    /// Engine statistics, including loss / retransmission / ACK
    /// counters.
    pub stats: EventStats,
    /// Quiescence detector verdict: `true` when the event queue drained
    /// (every announcement delivered and acknowledged, every
    /// retransmission timer resolved — the distributed computation has
    /// provably stopped), `false` when the event budget ran out first.
    pub quiescent: bool,
    /// Healthy-to-healthy links the reliable layer abandoned after
    /// `max_retries` (0 unless the loss rate is extreme relative to the
    /// retry budget).
    pub links_abandoned: u64,
}

/// Runs GS over `channel` with per-hop `latency`, reliable delivery per
/// `rcfg`, and an event budget of `max_events`.
///
/// Convergence: each reliable link delivers every announcement with
/// probability `1 − p^(max_retries+1)` (loss rate `p < 1`), and the
/// level lattice is finite and monotone, so the run goes quiescent in
/// finite virtual time and — whenever no link was abandoned —
/// stabilizes to exactly the centralized fixed point of Theorem 1. The
/// quiescence detector is the drained event queue: with ACKs and
/// bounded retries every message chain terminates, so an empty queue
/// *is* global termination (no spurious timers keep the run alive).
pub fn run_gs_reliable(
    cfg: &FaultConfig,
    channel: ChannelModel,
    rcfg: ReliableConfig,
    latency: u64,
    max_events: u64,
) -> GsLossyRun {
    gs_reliable_impl(cfg, channel, rcfg, latency, max_events, false).0
}

/// [`run_gs_reliable`] with a [`Metrics`] registry installed from
/// construction (so the initial announcements are attributed too):
/// returns per-node / per-dimension counters and the transit-latency
/// histogram alongside the run. The registry's `rounds` histogram gets
/// one observation — the quiescence tick (`stats.end_time`).
pub fn run_gs_reliable_observed(
    cfg: &FaultConfig,
    channel: ChannelModel,
    rcfg: ReliableConfig,
    latency: u64,
    max_events: u64,
) -> (GsLossyRun, Metrics) {
    let (run, m) = gs_reliable_impl(cfg, channel, rcfg, latency, max_events, true);
    (run, m.expect("metrics requested"))
}

fn gs_reliable_impl(
    cfg: &FaultConfig,
    channel: ChannelModel,
    rcfg: ReliableConfig,
    latency: u64,
    max_events: u64,
    observe: bool,
) -> (GsLossyRun, Option<Metrics>) {
    let n = cfg.cube().dim();
    let latency = latency.max(1);
    let net = HypercubeNet::new(cfg);
    let build = if observe {
        EventEngine::with_parts_observed
    } else {
        EventEngine::with_parts
    };
    let mut eng = build(&net, Some(channel), Box::new(FifoScheduler), |a| {
        Reliable::new(AsyncGsNode::new(cfg, a, latency), a, n, latency, rcfg)
    });
    let processed = eng.run(max_events);
    let quiescent = processed < max_events;
    let levels = cfg
        .cube()
        .nodes()
        .map(|a| eng.actor(a).map_or(0, |r| r.inner.level()))
        .collect();
    let links_abandoned = cfg
        .cube()
        .nodes()
        .filter_map(|a| eng.actor(a))
        .map(|r| r.endpoint.gave_up_dims().len() as u64)
        .sum();
    let stats = eng.stats().clone();
    let metrics = eng.take_metrics().map(|mut m| {
        m.record_rounds(stats.end_time);
        m
    });
    let run = GsLossyRun {
        map: SafetyMap::from_levels(cfg.cube(), levels),
        stats,
        quiescent,
        links_abandoned,
    };
    (run, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn sync_gs_matches_centralized_fig1() {
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let run = run_gs(&cfg);
        let central = SafetyMap::compute(&cfg);
        assert_eq!(run.map.store(), central.store());
        assert_eq!(run.map.rounds(), 2, "Fig. 1 stabilizes after two rounds");
    }

    #[test]
    fn async_gs_matches_centralized_fig1() {
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let (map, stats) = run_gs_async(&cfg, 3);
        let central = SafetyMap::compute(&cfg);
        assert_eq!(map.store(), central.store());
        assert!(stats.delivered > 0);
    }

    #[test]
    fn theorem1_uniqueness_exhaustive_q3() {
        // Sync, async, centralized, and constructive all agree on every
        // fault pattern of Q_3 — Theorem 1 in executable form.
        let cube = Hypercube::new(3);
        for mask in 0u64..256 {
            let mut f = FaultSet::new(cube);
            for i in 0..8 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let central = SafetyMap::compute(&cfg);
            let sync = run_gs(&cfg);
            assert_eq!(sync.map.store(), central.store(), "sync mask {mask:#b}");
            let (async_map, _) = run_gs_async(&cfg, 1);
            assert_eq!(async_map.store(), central.store(), "async mask {mask:#b}");
        }
    }

    #[test]
    fn async_with_heterogeneous_latencies_still_converges() {
        // Latency 7 ≫ 1 stresses reordering across rounds.
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let (map, _) = run_gs_async(&cfg, 7);
        assert_eq!(map.store(), SafetyMap::compute(&cfg).store());
    }

    #[test]
    fn reliable_gs_converges_under_loss_to_centralized_fixed_point() {
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let central = SafetyMap::compute(&cfg);
        for (i, loss) in [0.01, 0.05, 0.2].into_iter().enumerate() {
            let ch = ChannelModel::new(0x6007 + i as u64)
                .with_loss(loss)
                .with_jitter(2);
            let run = run_gs_reliable(&cfg, ch, ReliableConfig::default(), 1, 5_000_000);
            assert!(run.quiescent, "loss {loss}: run must go quiescent");
            assert_eq!(
                run.links_abandoned, 0,
                "loss {loss}: no healthy link abandoned"
            );
            assert_eq!(run.map.store(), central.store(), "loss {loss}");
            if loss >= 0.2 {
                assert!(
                    run.stats.retransmitted > 0,
                    "heavy loss forces retransmissions"
                );
            }
        }
    }

    #[test]
    fn reliable_gs_on_clean_channel_has_zero_retransmissions() {
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let run = run_gs_reliable(
            &cfg,
            ChannelModel::new(1),
            ReliableConfig::default(),
            1,
            5_000_000,
        );
        assert!(run.quiescent);
        assert_eq!(run.stats.retransmitted, 0);
        assert_eq!(run.stats.lost, 0);
        assert_eq!(run.map.store(), SafetyMap::compute(&cfg).store());
        assert!(run.stats.acked > 0, "every announcement is acknowledged");
    }

    #[test]
    fn fault_free_costs_zero_active_rounds() {
        let cfg = cfg4(&[]);
        let run = run_gs(&cfg);
        assert_eq!(run.stats.active_rounds, 0);
        assert_eq!(run.stats.rounds_run, 1, "single quiescence probe");
    }

    #[test]
    fn message_count_per_round_is_two_per_usable_link() {
        let cfg = cfg4(&["0011"]);
        let run = run_gs(&cfg);
        // 15 healthy nodes; usable links = 32 − 4 (links of 0011).
        let usable = 28u64;
        assert_eq!(run.stats.messages % (2 * usable), 0);
    }
}
