//! Executable statements of the paper's theorems and properties.
//!
//! Each checker returns `Ok(())` or a descriptive counterexample; the
//! test suite and the experiment harness run them over exhaustive small
//! instances and randomized large ones. A reproduction that merely
//! *implements* the algorithms could silently drift from the paper —
//! these checkers pin the semantics.

use crate::navigation::NavVector;
use crate::safety::{Level, SafetyMap};
use crate::unicast::{intermediate_dim, route, Decision};
use hypersafe_topology::{FaultConfig, NodeId, Path};

/// A counterexample to one of the paper's claims.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which claim failed.
    pub claim: &'static str,
    /// Offending node(s).
    pub witness: Vec<NodeId>,
    /// Human-readable detail.
    pub detail: String,
}

impl Violation {
    fn new(claim: &'static str, witness: Vec<NodeId>, detail: String) -> Self {
        Violation {
            claim,
            witness,
            detail,
        }
    }
}

/// **Theorem 2.** If `S(a) = k > 0`, greedy max-safety preferred-
/// neighbor forwarding reaches every node within Hamming distance `k`
/// of `a` along an optimal path whose intermediate nodes are nonfaulty.
///
/// Checks all destinations within distance `k` of `a`.
pub fn check_theorem2_at(cfg: &FaultConfig, map: &SafetyMap, a: NodeId) -> Result<(), Violation> {
    let cube = cfg.cube();
    let k = map.level(a);
    if k == 0 {
        return Ok(());
    }
    for d in cube.nodes() {
        let h = a.distance(d);
        if h == 0 || h > k as u32 {
            continue;
        }
        // Greedy walk driven purely by safety levels.
        let mut nv = NavVector::new(a, d);
        let mut at = a;
        let mut path = Path::starting_at(a);
        while !nv.is_done() {
            let dim = intermediate_dim(map, at, nv).expect("nv non-zero has preferred dims");
            nv = nv.after_hop(dim);
            at = at.neighbor(dim);
            path.push(at);
            if cfg.node_faulty(at) && !nv.is_done() {
                return Err(Violation::new(
                    "Theorem 2",
                    vec![a, d, at],
                    format!(
                        "greedy walk from {a} (level {k}) to {d} (H = {h}) entered faulty {at}"
                    ),
                ));
            }
        }
        debug_assert_eq!(at, d);
        if !path.is_optimal() {
            return Err(Violation::new(
                "Theorem 2",
                vec![a, d],
                format!("walk length {} ≠ H = {h}", path.len()),
            ));
        }
    }
    Ok(())
}

/// **Theorem 2** over every nonfaulty node of the instance.
pub fn check_theorem2(cfg: &FaultConfig, map: &SafetyMap) -> Result<(), Violation> {
    for a in cfg.healthy_nodes() {
        check_theorem2_at(cfg, map, a)?;
    }
    Ok(())
}

/// **Property 1.** The GS algorithm identifies a `k`-safe (`k ≠ n`)
/// node in `k` rounds: replaying the synchronous iteration, every node
/// with final level `k < n` holds that level from round `k` onward,
/// and the whole map is stable after `n − 1` rounds (the Corollary).
pub fn check_property1(cfg: &FaultConfig) -> Result<(), Violation> {
    let cube = cfg.cube();
    let n = cube.dim();
    // Replay Jacobi iteration, recording each round's snapshot.
    let mut snapshots: Vec<Vec<Level>> = Vec::new();
    let mut levels: Vec<Level> = cube
        .nodes()
        .map(|a| if cfg.node_faulty(a) { 0 } else { n })
        .collect();
    snapshots.push(levels.clone());
    let mut scratch = vec![0 as Level; n as usize];
    loop {
        let mut next = levels.clone();
        let mut changed = false;
        for a in cube.nodes() {
            if cfg.node_faulty(a) {
                continue;
            }
            for (i, b) in cube.neighbors(a).enumerate() {
                scratch[i] = levels[b.raw() as usize];
            }
            let lv = crate::safety::level_from_neighbors(n, &mut scratch);
            changed |= lv != levels[a.raw() as usize];
            next[a.raw() as usize] = lv;
        }
        if !changed {
            break;
        }
        levels = next;
        snapshots.push(levels.clone());
    }
    let active_rounds = snapshots.len() as u32 - 1;
    if active_rounds > (n - 1) as u32 {
        return Err(Violation::new(
            "Property 1 Corollary",
            vec![],
            format!("GS needed {active_rounds} rounds > n − 1 = {}", n - 1),
        ));
    }
    let final_levels = snapshots.last().expect("≥ 1 snapshot");
    for a in cube.nodes() {
        let idx = a.raw() as usize;
        let k = final_levels[idx];
        if k == n || cfg.node_faulty(a) {
            continue;
        }
        // From round k (snapshot index min(k, last)) onward the value
        // must equal the final one.
        for (r, snap) in snapshots.iter().enumerate().skip(k as usize) {
            if snap[idx] != k {
                return Err(Violation::new(
                    "Property 1",
                    vec![a],
                    format!(
                        "node {a} final level {k} but level {} at round {r}",
                        snap[idx]
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// **Property 2.** In a faulty `n`-cube with fewer than `n` faulty
/// nodes, every nonfaulty but unsafe node has a safe neighbor.
///
/// Returns `Ok` vacuously when the instance has `≥ n` faults.
pub fn check_property2(cfg: &FaultConfig, map: &SafetyMap) -> Result<(), Violation> {
    let cube = cfg.cube();
    let n = cube.dim();
    if cfg.node_faults().len() >= n as usize {
        return Ok(());
    }
    for a in cfg.healthy_nodes() {
        if map.is_safe(a) {
            continue;
        }
        if !cube.neighbors(a).any(|b| map.is_safe(b)) {
            return Err(Violation::new(
                "Property 2",
                vec![a],
                format!(
                    "unsafe node {a} (level {}) has no safe neighbor with {} < n faults",
                    map.level(a),
                    cfg.node_faults().len()
                ),
            ));
        }
    }
    Ok(())
}

/// **Theorem 3.** For every source/destination pair: under `C1`/`C2`
/// the algorithm delivers along a path of length exactly `H`; under
/// `C3` of length exactly `H + 2`; both avoiding faulty intermediate
/// nodes.
pub fn check_theorem3(cfg: &FaultConfig, map: &SafetyMap) -> Result<(), Violation> {
    for s in cfg.healthy_nodes() {
        for d in cfg.healthy_nodes() {
            if s == d {
                continue;
            }
            let res = route(cfg, map, s, d);
            match res.decision {
                Decision::Optimal { .. } => {
                    let p = res.path.as_ref().expect("path on optimal");
                    if !res.delivered || !p.is_optimal() || !p.traversable(cfg, false) {
                        return Err(Violation::new(
                            "Theorem 3 (optimal)",
                            vec![s, d],
                            format!("delivered={} path={p}", res.delivered),
                        ));
                    }
                }
                Decision::Suboptimal { .. } => {
                    let p = res.path.as_ref().expect("path on suboptimal");
                    if !res.delivered || !p.is_suboptimal() || !p.traversable(cfg, false) {
                        return Err(Violation::new(
                            "Theorem 3 (suboptimal)",
                            vec![s, d],
                            format!("delivered={} path={p}", res.delivered),
                        ));
                    }
                }
                Decision::Failure | Decision::AlreadyThere => {}
            }
        }
    }
    Ok(())
}

/// Combination of **Property 2** and **Theorem 3**: with fewer than `n`
/// faults the unicast algorithm *never fails* — every healthy
/// source/destination pair gets at least a suboptimal route (§3.1).
pub fn check_never_fails_under_n_faults(
    cfg: &FaultConfig,
    map: &SafetyMap,
) -> Result<(), Violation> {
    let n = cfg.cube().dim();
    if cfg.node_faults().len() >= n as usize {
        return Ok(());
    }
    for s in cfg.healthy_nodes() {
        for d in cfg.healthy_nodes() {
            if s == d {
                continue;
            }
            let res = route(cfg, map, s, d);
            if matches!(res.decision, Decision::Failure) || !res.delivered {
                return Err(Violation::new(
                    "no-failure under n−1 faults",
                    vec![s, d],
                    format!("decision {:?}, delivered {}", res.decision, res.delivered),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg_n(n: u8, faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(n);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn all_claims_hold_on_fig1() {
        let cfg = cfg_n(4, &["0011", "0100", "0110", "1001"]);
        let map = SafetyMap::compute(&cfg);
        assert_eq!(check_theorem2(&cfg, &map), Ok(()));
        assert_eq!(check_property1(&cfg), Ok(()));
        assert_eq!(check_property2(&cfg, &map), Ok(()));
        assert_eq!(check_theorem3(&cfg, &map), Ok(()));
    }

    #[test]
    fn all_claims_hold_on_fig3_disconnected() {
        let cfg = cfg_n(4, &["0110", "1010", "1100", "1111"]);
        let map = SafetyMap::compute(&cfg);
        assert_eq!(check_theorem2(&cfg, &map), Ok(()));
        assert_eq!(check_property1(&cfg), Ok(()));
        assert_eq!(check_theorem3(&cfg, &map), Ok(()));
    }

    #[test]
    fn exhaustive_q3_all_fault_patterns() {
        let cube = Hypercube::new(3);
        for mask in 0u64..256 {
            let mut f = FaultSet::new(cube);
            for i in 0..8 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let map = SafetyMap::compute(&cfg);
            assert_eq!(check_theorem2(&cfg, &map), Ok(()), "mask {mask:#b}");
            assert_eq!(check_property1(&cfg), Ok(()), "mask {mask:#b}");
            assert_eq!(check_property2(&cfg, &map), Ok(()), "mask {mask:#b}");
            assert_eq!(check_theorem3(&cfg, &map), Ok(()), "mask {mask:#b}");
            assert_eq!(
                check_never_fails_under_n_faults(&cfg, &map),
                Ok(()),
                "mask {mask:#b}"
            );
        }
    }

    #[test]
    fn property2_example_from_section23() {
        // §2.3: faults {0000, 0110, 1101} — "all nonfaulty but unsafe
        // nodes have at least one safe neighbor".
        let cfg = cfg_n(4, &["0000", "0110", "1101"]);
        let map = SafetyMap::compute(&cfg);
        assert_eq!(check_property2(&cfg, &map), Ok(()));
    }

    #[test]
    fn violation_renders_detail() {
        let v = Violation::new("X", vec![NodeId::new(3)], "boom".into());
        assert_eq!(v.claim, "X");
        assert_eq!(v.witness, vec![NodeId::new(3)]);
        assert!(v.detail.contains("boom"));
    }
}
