//! Safety levels in generalized hypercubes — Definition 4 (paper §4.2).
//!
//! In `GH(m_{n-1}, …, m_0)` every node still carries an `n`-vector of
//! per-dimension safety values, but the value for dimension `i` is the
//! **minimum** safety level over the `m_i − 1` other nodes of the
//! node's dimension-`i` clique. Definition 1's rule is then applied to
//! the sorted `n`-vector unchanged. With all radices 2 this reduces
//! exactly to the binary Definition 1 (property-tested).
//!
//! Because the clique nodes are directly connected, one exchange step
//! suffices to learn the dimension minimum, so the fixed point is still
//! reached in `n − 1` rounds.

use crate::safety::{level_from_neighbors, Level};
use hypersafe_simkit::{gh_port_dim, GenericSyncEngine, PortNode, SyncStats};
use hypersafe_topology::{FaultSet, GeneralizedHypercube, GhNode, NodeId};

/// Safety levels of every node of a faulty generalized hypercube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GhSafetyMap {
    levels: Vec<Level>,
    n: u8,
    rounds: u32,
}

impl GhSafetyMap {
    /// Computes the fixed point of Definition 4 for `gh` with the given
    /// faulty nodes, by synchronous Jacobi iteration from the all-`n`
    /// start (faulty nodes 0).
    ///
    /// Each Jacobi round is data-parallel (every node reads only the
    /// previous round's levels), so the per-round sweep fans out over
    /// rayon workers; the result is bitwise-identical to sequential
    /// execution regardless of thread count.
    pub fn compute(gh: &GeneralizedHypercube, faults: &FaultSet) -> Self {
        use rayon::prelude::*;
        let n = gh.dim();
        let mut levels: Vec<Level> = gh
            .nodes()
            .map(|a| {
                if faults.contains(NodeId::new(a.raw())) {
                    0
                } else {
                    n
                }
            })
            .collect();
        let mut rounds = 0u32;
        loop {
            let prev = &levels;
            let next: Vec<Level> = (0..gh.num_nodes())
                .into_par_iter()
                .map(|raw| {
                    let a = GhNode(raw);
                    if faults.contains(NodeId::new(raw)) {
                        return 0;
                    }
                    let mut scratch: Vec<Level> = (0..n)
                        .map(|i| {
                            // S_i = min level among the rest of the
                            // dimension-i clique (m_i − 1 nodes, all
                            // directly connected).
                            gh.neighbors_along(a, i)
                                .map(|b| prev[b.raw() as usize])
                                .min()
                                .expect("radix ≥ 2 gives ≥ 1 clique peer")
                        })
                        .collect();
                    level_from_neighbors(n, &mut scratch)
                })
                .collect();
            if next == levels {
                break;
            }
            levels = next;
            rounds += 1;
        }
        GhSafetyMap { levels, n, rounds }
    }

    /// Number of dimensions `n`.
    pub fn dim(&self) -> u8 {
        self.n
    }

    /// Safety level of node `a`.
    #[inline]
    pub fn level(&self, a: GhNode) -> Level {
        self.levels[a.raw() as usize]
    }

    /// Whether `a` is safe (level `n`).
    pub fn is_safe(&self, a: GhNode) -> bool {
        self.level(a) == self.n
    }

    /// Active rounds used by the computation.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// All safe nodes, ascending by index.
    pub fn safe_nodes(&self) -> Vec<GhNode> {
        self.levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == self.n)
            .map(|(i, _)| GhNode(i as u64))
            .collect()
    }

    /// Raw level array indexed by node index.
    pub fn as_slice(&self) -> &[Level] {
        &self.levels
    }
}

/// Per-node state of the distributed GH `GLOBAL_STATUS`
/// (`EXTENDED_NODE_STATUS` of §4.2 run on the generic port engine):
/// each round the node hears every clique peer's level, takes the
/// per-dimension minimum (`S_i = min{S(aⁱ)}`), and applies
/// Definition 1's rule. Silent ports (faulty peers) read as level 0.
#[derive(Clone, Debug)]
pub struct GhGsNode {
    /// Dimension of each port, precomputed from the radices.
    port_dims: std::sync::Arc<[u8]>,
    n: u8,
    level: Level,
}

impl GhGsNode {
    pub(crate) fn new(port_dims: std::sync::Arc<[u8]>, n: u8) -> Self {
        GhGsNode {
            port_dims,
            n,
            level: n,
        }
    }

    /// Current safety level.
    pub fn level(&self) -> Level {
        self.level
    }
}

impl PortNode for GhGsNode {
    type Msg = Level;

    fn broadcast(&self) -> Level {
        self.level
    }

    fn receive(&mut self, inbox: &[(usize, Level)]) -> bool {
        // Per-dimension minimum over the clique; a dimension with any
        // silent (faulty) peer reads 0, so start from "0 unless every
        // peer of the dimension spoke".
        let mut mins = vec![self.n as u16; self.n as usize];
        let mut heard = vec![0u16; self.n as usize];
        for &(port, lv) in inbox {
            let d = self.port_dims[port] as usize;
            heard[d] += 1;
            mins[d] = mins[d].min(lv as u16);
        }
        let mut levels: Vec<Level> = Vec::with_capacity(self.n as usize);
        let mut expected = vec![0u16; self.n as usize];
        for (port, &d) in self.port_dims.iter().enumerate() {
            let _ = port;
            expected[d as usize] += 1;
        }
        for i in 0..self.n as usize {
            levels.push(if heard[i] < expected[i] {
                0
            } else {
                mins[i] as Level
            });
        }
        let new = level_from_neighbors(self.n, &mut levels);
        let changed = new != self.level;
        self.level = new;
        changed
    }
}

/// Runs the distributed GH `GLOBAL_STATUS` to quiescence on the
/// generic port engine and returns the converged map plus engine
/// statistics. Agrees with [`GhSafetyMap::compute`] (tested).
pub fn run_gh_gs(gh: &GeneralizedHypercube, faults: &FaultSet) -> (GhSafetyMap, SyncStats) {
    let n = gh.dim();
    let port_dims: std::sync::Arc<[u8]> = (0..gh.degree() as usize)
        .map(|p| gh_port_dim(gh, p))
        .collect();
    let faulty: Vec<bool> = (0..gh.num_nodes())
        .map(|a| faults.contains(NodeId::new(a)))
        .collect();
    let mut eng = GenericSyncEngine::new(gh, faulty, |_| GhGsNode::new(port_dims.clone(), n));
    let rounds = eng.run_until_stable(n as u32 + 1);
    let levels = (0..gh.num_nodes())
        .map(|a| eng.node(a).map_or(0, GhGsNode::level))
        .collect();
    let stats = eng.stats().clone();
    (GhSafetyMap { levels, n, rounds }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::SafetyMap;
    use hypersafe_topology::{FaultConfig, Hypercube};

    #[test]
    fn binary_radices_reduce_to_definition1() {
        // GH(2,2,2,2) with the Fig. 1 fault set must equal the binary map.
        let gh = GeneralizedHypercube::new(&[2, 2, 2, 2]);
        let cube = Hypercube::new(4);
        let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
        let ghmap = GhSafetyMap::compute(&gh, &faults);
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let qmap = SafetyMap::compute(&cfg);
        assert_eq!(ghmap.as_slice(), qmap.to_vec());
        assert_eq!(ghmap.rounds(), qmap.rounds());
    }

    #[test]
    fn fault_free_gh_is_all_safe() {
        let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
        let map = GhSafetyMap::compute(&gh, &gh.fault_set());
        assert_eq!(map.rounds(), 0);
        assert!(gh.nodes().all(|a| map.is_safe(a)));
    }

    #[test]
    fn rounds_bounded_by_n_minus_1() {
        // Exhaustive over all fault subsets of GH(2,3,2) of size ≤ 4.
        let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
        let total = gh.num_nodes();
        for mask in 0u64..(1 << total) {
            if mask.count_ones() > 4 {
                continue;
            }
            let mut f = gh.fault_set();
            for i in 0..total {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let map = GhSafetyMap::compute(&gh, &f);
            assert!(map.rounds() <= 2, "mask {mask:#b}: rounds {}", map.rounds());
        }
    }

    #[test]
    fn distributed_gh_gs_matches_centralized() {
        // Exhaustive over all ≤ 4-fault subsets of GH(2,3,2), plus the
        // Fig. 5 instance: the message-passing protocol and the Jacobi
        // evaluation agree.
        let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
        let total = gh.num_nodes();
        for mask in 0u64..(1 << total) {
            if mask.count_ones() > 4 {
                continue;
            }
            let mut f = gh.fault_set();
            for i in 0..total {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let central = GhSafetyMap::compute(&gh, &f);
            let (dist, stats) = run_gh_gs(&gh, &f);
            assert_eq!(central.as_slice(), dist.as_slice(), "mask {mask:#b}");
            assert_eq!(central.rounds(), dist.rounds(), "mask {mask:#b}");
            if mask == 0 {
                assert_eq!(stats.active_rounds, 0, "fault-free costs nothing");
            }
        }
    }

    #[test]
    fn distributed_gh_gs_on_mixed_radices() {
        let gh = GeneralizedHypercube::new(&[3, 2, 4]);
        let mut f = gh.fault_set();
        f.insert(NodeId::new(0));
        f.insert(NodeId::new(7));
        f.insert(NodeId::new(13));
        let central = GhSafetyMap::compute(&gh, &f);
        let (dist, _) = run_gh_gs(&gh, &f);
        assert_eq!(central.as_slice(), dist.as_slice());
    }

    #[test]
    fn single_fault_keeps_everyone_safe_when_radix_large() {
        // In GH(4,4): one faulty node leaves each survivor with at most
        // one 0 in its dimension-min vector → everyone stays safe.
        let gh = GeneralizedHypercube::new(&[4, 4]);
        let mut f = gh.fault_set();
        f.insert(NodeId::new(0));
        let map = GhSafetyMap::compute(&gh, &f);
        for a in gh.nodes() {
            if a.raw() == 0 {
                assert_eq!(map.level(a), 0);
            } else {
                assert!(map.is_safe(a), "{}", gh.format(a));
            }
        }
    }

    #[test]
    fn dimension_reads_zero_if_any_clique_member_faulty() {
        // GH with radices lsb-first [2, 3]. A *single* faulty node in
        // node (0,0)'s dimension-1 clique already zeroes that
        // dimension's reading (min semantics); combined with a faulty
        // dim-0 peer the node drops to level 1.
        let gh = GeneralizedHypercube::new(&[2, 3]);
        let a00 = gh.node_from_digits(&[0, 0]);

        // One faulty clique peer alone: the sorted vector is (0, x)
        // with x ≥ 1, which Definition 1 tolerates → still safe.
        let mut f1 = gh.fault_set();
        f1.insert(NodeId::new(gh.node_from_digits(&[0, 1]).raw()));
        let m1 = GhSafetyMap::compute(&gh, &f1);
        assert_eq!(m1.level(a00), 2);

        // Faulty clique peer in dim 1 *and* faulty dim-0 peer: both
        // dimensions read 0 → level 1.
        let mut f2 = gh.fault_set();
        f2.insert(NodeId::new(gh.node_from_digits(&[0, 1]).raw()));
        f2.insert(NodeId::new(gh.node_from_digits(&[1, 0]).raw()));
        let m2 = GhSafetyMap::compute(&gh, &f2);
        assert_eq!(m2.level(a00), 1);

        // The min is over the whole clique: faulting the *other* dim-1
        // peer instead changes nothing about (0,0)'s reading.
        let mut f3 = gh.fault_set();
        f3.insert(NodeId::new(gh.node_from_digits(&[0, 2]).raw()));
        f3.insert(NodeId::new(gh.node_from_digits(&[1, 0]).raw()));
        let m3 = GhSafetyMap::compute(&gh, &f3);
        assert_eq!(m3.level(a00), 1);
    }
}
