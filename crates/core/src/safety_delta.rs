//! Incremental safety-level maintenance — the delta engine.
//!
//! The paper recomputes all `2ⁿ` levels with up to `n − 1` global
//! rounds after every fault event. But a single fault or recovery has
//! *local, monotone* influence on the Theorem 1 fixed point:
//!
//! * **Fault at `a`** — clamp `a` to 0. The old map with `a` clamped is
//!   a pre-fixed point of the new Definition 1 operator (`F(x) ≤ x`),
//!   and the new fixed point lies (pointwise) below the old one, so
//!   chaotic Gauss–Seidel relaxation *descends* monotonically onto it.
//! * **Recovery at `a`** — the old map (with `a` still 0) is a
//!   post-fixed point (`x ≤ F(x)`) of the new operator, so relaxation
//!   *ascends* monotonically onto the new fixed point.
//!
//! Either way, only nodes whose inputs changed can be inconsistent, so
//! a dirty worklist seeded with the event node's neighborhood and
//! extended by the neighbors of every node whose level actually moved
//! reaches quiescence after touching just the affected region —
//! typically a vanishing fraction of the cube (see `results/churn.csv`
//! and DESIGN.md §10 for the cost model).
//!
//! [`SafetyMap::apply_fault`] / [`SafetyMap::apply_recover`] are the
//! centralized form; [`run_delta_gs`] is the distributed form (a
//! delta-GS actor on the unified event engine, where only nodes whose
//! level changed re-broadcast). Both are *exact*: the test suite and
//! the DST invariant [`crate::invariants`] enforce byte-identity
//! against [`SafetyMap::compute`] after every event.

use std::collections::{HashSet, VecDeque};

use crate::level_store::NeighborLevels;
use crate::safety::{level_from_unsorted, Level, SafetyMap};
use hypersafe_simkit::{
    Actor, Ctx, EventEngine, EventStats, FifoScheduler, HypercubeNet, Scheduler,
};
use hypersafe_topology::{FaultConfig, NodeId};

/// One topology churn event: a node dies or comes back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Node became faulty.
    Fault(NodeId),
    /// Node recovered.
    Recover(NodeId),
}

impl ChurnEvent {
    /// The node the event is about.
    #[inline]
    pub fn node(self) -> NodeId {
        match self {
            ChurnEvent::Fault(a) | ChurnEvent::Recover(a) => a,
        }
    }
}

/// Work accounting for one incremental update, reported next to the
/// full-recompute cost it replaced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Local level re-evaluations performed (worklist pops). A full
    /// recompute touches `2ⁿ` cells per round.
    pub cells_touched: u64,
    /// Nodes whose level actually changed (including the event node).
    pub cells_changed: u64,
    /// Propagation depth: the largest BFS distance from the event node
    /// at which a level changed (0 when the event affected no one).
    pub waves: u32,
    /// Global rounds avoided versus the paper's `D = n − 1` recompute
    /// bound: `(n − 1) − waves`, saturating at 0.
    pub rounds_saved: u32,
}

impl SafetyMap {
    /// Incrementally folds the fault of node `a` into this map.
    ///
    /// Preconditions: `self` is the Theorem 1 fixed point of the
    /// *pre-event* configuration, and `cfg` is the *post-event*
    /// configuration (with `a` already marked faulty, node faults
    /// only). On return, `self` equals `SafetyMap::compute(cfg)` —
    /// exactly, by the monotone-descent argument in the module docs.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
    /// use hypersafe_core::SafetyMap;
    ///
    /// let cube = Hypercube::new(6);
    /// let mut cfg = FaultConfig::fault_free(cube);
    /// let mut map = SafetyMap::compute(&cfg);
    /// let a = NodeId::new(9);
    /// cfg.node_faults_mut().insert(a);
    /// let stats = map.apply_fault(&cfg, a);
    /// assert_eq!(map.store(), SafetyMap::compute(&cfg).store());
    /// // One fault in a healthy cube lowers no neighbor below n: the
    /// // wave dies in the first shell.
    /// assert_eq!(stats.cells_changed, 1);
    /// assert!(stats.cells_touched <= 6);
    /// ```
    pub fn apply_fault(&mut self, cfg: &FaultConfig, a: NodeId) -> DeltaStats {
        self.delta_preconditions(cfg, a);
        assert!(cfg.node_faulty(a), "apply_fault: cfg must mark {a} faulty");
        assert_ne!(self.level(a), 0, "apply_fault: {a} was already faulty");
        let n = self.dim();
        let mut stats = DeltaStats {
            cells_changed: 1, // the event node itself: level → 0
            ..DeltaStats::default()
        };
        self.set_level(a, 0);
        let mut work = Worklist::new();
        for b in cfg.cube().neighbors(a) {
            work.push(b, 1);
        }
        self.propagate(cfg, work, &mut stats);
        self.set_rounds(stats.waves);
        stats.rounds_saved = u32::from(n.saturating_sub(1)).saturating_sub(stats.waves);
        stats
    }

    /// Incrementally folds the recovery of node `a` into this map —
    /// the ascending twin of [`SafetyMap::apply_fault`]. `cfg` is the
    /// post-event configuration (with `a` already healthy again).
    pub fn apply_recover(&mut self, cfg: &FaultConfig, a: NodeId) -> DeltaStats {
        self.delta_preconditions(cfg, a);
        assert!(
            !cfg.node_faulty(a),
            "apply_recover: cfg must mark {a} healthy"
        );
        assert_eq!(self.level(a), 0, "apply_recover: {a} was not faulty");
        let n = self.dim();
        let mut stats = DeltaStats::default();
        // Seed with the event node itself (depth 0): re-evaluating it
        // lifts it off 0, which is counted by `propagate` like any
        // other change, and its neighbors join the frontier from there.
        let mut work = Worklist::new();
        work.push(a, 0);
        self.propagate(cfg, work, &mut stats);
        self.set_rounds(stats.waves);
        stats.rounds_saved = u32::from(n.saturating_sub(1)).saturating_sub(stats.waves);
        stats
    }

    fn delta_preconditions(&self, cfg: &FaultConfig, a: NodeId) {
        assert!(
            cfg.link_faults().is_empty(),
            "delta updates handle node faults only; use egs for link faults"
        );
        assert_eq!(self.dim(), cfg.cube().dim(), "cube dimension mismatch");
        assert!(cfg.cube().contains(a), "{a} outside the cube");
    }

    /// Drains the worklist: pop a node, re-evaluate Definition 1 over
    /// *current* levels (Gauss–Seidel — fresh values are used as soon
    /// as they exist), and on change push its neighbors one wave
    /// deeper. Terminates because every accepted change moves strictly
    /// in one direction (down after a fault, up after a recovery)
    /// through a finite lattice; quiescence means no node's inputs
    /// changed since it was last evaluated, i.e. the map is a fixed
    /// point — *the* fixed point, by Theorem 1's uniqueness.
    fn propagate(&mut self, cfg: &FaultConfig, mut work: Worklist, stats: &mut DeltaStats) {
        let n = self.dim();
        let cube = cfg.cube();
        while let Some((b, depth)) = work.pop() {
            if cfg.node_faulty(b) {
                continue;
            }
            stats.cells_touched += 1;
            let new = level_from_unsorted(n, cube.neighbors(b).map(|c| self.level(c)));
            if new != self.level(b) {
                self.set_level(b, new);
                stats.cells_changed += 1;
                stats.waves = stats.waves.max(depth);
                for c in cube.neighbors(b) {
                    work.push(c, depth + 1);
                }
            }
        }
    }
}

/// FIFO worklist with an in-queue set so each node appears at most
/// once at a time; entries carry their BFS depth from the event node.
///
/// The set is a `HashSet` over the (typically tiny) affected region,
/// *not* a `2ⁿ`-bit array: a dense bitset would cost an O(2ⁿ) zeroing
/// per event — a 1 MiB memset at n=20, dwarfing the actual worklist
/// drain and wrecking the "incremental beats scratch by orders of
/// magnitude" contract the scale experiment measures. FIFO order is
/// carried entirely by the queue, so dedup-set iteration order never
/// influences results (determinism gate: churn.csv across thread
/// counts).
struct Worklist {
    queue: VecDeque<(NodeId, u32)>,
    queued: HashSet<u64>,
}

impl Worklist {
    fn new() -> Self {
        Worklist {
            queue: VecDeque::new(),
            queued: HashSet::new(),
        }
    }

    fn push(&mut self, a: NodeId, depth: u32) {
        if self.queued.insert(a.raw()) {
            self.queue.push_back((a, depth));
        }
    }

    fn pop(&mut self) -> Option<(NodeId, u32)> {
        let (a, d) = self.queue.pop_front()?;
        self.queued.remove(&a.raw());
        Some((a, d))
    }
}

/// Delta-GS actor: the distributed form of the incremental update.
///
/// Nodes keep the levels they learned before the event (the previous
/// fixed point); after the event only the affected region speaks:
///
/// * **Fault** — the dead node's neighbors detect the fault locally
///   (assumption 2), drop that dimension's knowledge to 0, re-evaluate
///   and announce *only if their own level changed*. Unaffected nodes
///   never send. Knowledge merges by `min` (levels only descend after
///   a fault), which makes the descent immune to adversarial
///   reordering.
/// * **Recovery** — the revived node knows which neighbors are healthy
///   but not their levels; it starts from all-zero knowledge and
///   announces its (conservatively low) level unconditionally, while
///   its neighbors courtesy-announce their current levels to it.
///   Knowledge merges by `max` (levels only ascend after a recovery).
///
/// Message count is therefore O(affected region) instead of the full
/// protocol's O(n·2ⁿ); in particular a fault that demotes nobody costs
/// **zero** messages.
#[derive(Clone, Debug)]
pub struct DeltaGsNode {
    n: u8,
    level: Level,
    /// Best current knowledge of each neighbor's level, by dimension —
    /// packed 5 bits per dimension, so actor state stays heap-free
    /// even with a million simulated nodes.
    heard: NeighborLevels,
    latency: u64,
    /// `true` after a fault event (descend / min-merge), `false` after
    /// a recovery (ascend / max-merge).
    descending: bool,
    /// Role flags: the recovered node itself, or a neighbor of the
    /// event node.
    is_event_node: bool,
    event_dim: Option<u8>,
    /// Whether every level change so far moved in the event's
    /// direction; checked by the DST invariant suite rather than
    /// asserted, so adversarial runs report instead of abort.
    monotone: bool,
}

impl DeltaGsNode {
    /// Builds the post-event state of node `me`. `cfg` is the
    /// post-event configuration, `prev` the pre-event fixed point.
    pub fn new(
        cfg: &FaultConfig,
        prev: &SafetyMap,
        event: ChurnEvent,
        me: NodeId,
        latency: u64,
    ) -> Self {
        let n = cfg.cube().dim();
        let is_event_node = me == event.node();
        let event_dim = cfg
            .cube()
            .neighbors_with_dims(me)
            .find(|&(_, b)| b == event.node())
            .map(|(d, _)| d);
        // Retained knowledge: the previous fixed point, overridden by
        // local fault detection (a currently-faulty neighbor reads 0).
        // The revived node has no memory: healthy neighbors read 0 too
        // until they courtesy-announce.
        let mut heard = NeighborLevels::filled(n, 0);
        for (d, b) in cfg.cube().neighbors_with_dims(me) {
            if !cfg.node_faulty(b) && !is_event_node {
                heard.set(d, prev.level(b));
            }
        }
        let level = if is_event_node {
            level_from_unsorted(n, heard.iter(n))
        } else {
            prev.level(me)
        };
        DeltaGsNode {
            n,
            level,
            heard,
            latency,
            descending: matches!(event, ChurnEvent::Fault(_)),
            is_event_node,
            event_dim,
            monotone: true,
        }
    }

    /// Current safety level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// `true` while every level change has moved in the event's
    /// direction (down for fault, up for recovery).
    pub fn monotone(&self) -> bool {
        self.monotone
    }

    fn reevaluate(&mut self) -> bool {
        let new = level_from_unsorted(self.n, self.heard.iter(self.n));
        if new != self.level {
            self.monotone &= if self.descending {
                new < self.level
            } else {
                new > self.level
            };
            self.level = new;
            true
        } else {
            false
        }
    }

    fn announce(&self, ctx: &mut Ctx<Level>) {
        for i in 0..self.n {
            ctx.send(ctx.self_id().neighbor(i), self.level, self.latency);
        }
    }
}

/// Canonical protocol state for the model checker: level, neighbor
/// knowledge, and the direction-monotonicity flag. The event role
/// flags (`descending`, `is_event_node`, `event_dim`) are static per
/// run and `latency` is timing — all excluded.
impl hypersafe_simkit::StateHash for DeltaGsNode {
    fn state_hash(&self, h: &mut hypersafe_simkit::McHasher) {
        h.write_u64(self.level as u64);
        for d in 0..self.n {
            h.write_u64(self.heard.get(d) as u64);
        }
        h.write_bytes(&[self.monotone as u8]);
    }
}

impl Actor for DeltaGsNode {
    type Msg = Level;

    fn on_start(&mut self, ctx: &mut Ctx<Level>) {
        if self.is_event_node {
            // Revived node: its level is conservative (built from zero
            // knowledge), so it must speak even if nothing "changed" —
            // neighbors still hold 0 for its dimension.
            self.announce(ctx);
        } else if let Some(dim) = self.event_dim {
            if self.descending {
                // Local fault detection: that dimension now reads 0.
                self.heard.set(dim, 0);
                if self.reevaluate() {
                    self.announce(ctx);
                }
            } else {
                // Courtesy announcement to the revived neighbor only.
                ctx.send(ctx.self_id().neighbor(dim), self.level, self.latency);
            }
        }
        // Every other node: silent. This is the whole point.
    }

    fn on_message(&mut self, ctx: &mut Ctx<Level>, from: NodeId, msg: Level) {
        let dim = ctx.self_id().xor(from).set_dims().next().expect("neighbor");
        let h = self.heard.get(dim);
        // Direction-aware monotone merge: after a fault true levels
        // only descend, so min(); after a recovery only ascend, so
        // max(). Either way stale reordered announcements are ignored.
        self.heard.set(
            dim,
            if self.descending {
                h.min(msg)
            } else {
                h.max(msg)
            },
        );
        if self.reevaluate() {
            self.announce(ctx);
        }
    }
}

/// Outcome of a distributed delta-GS run.
#[derive(Clone, Debug)]
pub struct DeltaGsRun {
    /// The post-event safety levels.
    pub map: SafetyMap,
    /// Engine statistics — `messages` here is the O(affected region)
    /// cost to compare against a full GS run's O(n·2ⁿ).
    pub stats: EventStats,
    /// Whether every node's level moved monotonically in the event's
    /// direction (see [`DeltaGsNode::monotone`]).
    pub monotone: bool,
}

/// Runs the delta-GS protocol for one churn event under FIFO
/// scheduling. `cfg` is the post-event configuration, `prev` the
/// pre-event fixed point. The returned map equals
/// [`SafetyMap::compute`] on `cfg` — enforced by tests, goldens and
/// the DST suite.
///
/// # Examples
///
/// ```
/// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
/// use hypersafe_core::{run_delta_gs, run_gs, ChurnEvent, SafetyMap};
///
/// let cube = Hypercube::new(5);
/// let mut cfg = FaultConfig::fault_free(cube);
/// let prev = SafetyMap::compute(&cfg);
/// let a = NodeId::new(7);
/// cfg.node_faults_mut().insert(a);
/// let run = run_delta_gs(&cfg, &prev, ChurnEvent::Fault(a), 1);
/// assert_eq!(run.map.store(), SafetyMap::compute(&cfg).store());
/// // A lone fault demotes nobody in a healthy 5-cube: zero messages,
/// // versus a full re-broadcast for the from-scratch protocol.
/// assert_eq!(run.stats.delivered, 0);
/// assert!(run.stats.delivered < run_gs(&cfg).stats.messages);
/// ```
pub fn run_delta_gs(
    cfg: &FaultConfig,
    prev: &SafetyMap,
    event: ChurnEvent,
    latency: u64,
) -> DeltaGsRun {
    run_delta_gs_sched(cfg, prev, event, latency, Box::new(FifoScheduler))
}

/// [`run_delta_gs`] under an arbitrary [`Scheduler`] — the DST entry
/// point. The fixed point is schedule-free, so the result must be
/// identical under any reordering adversary.
pub fn run_delta_gs_sched(
    cfg: &FaultConfig,
    prev: &SafetyMap,
    event: ChurnEvent,
    latency: u64,
    sched: Box<dyn Scheduler>,
) -> DeltaGsRun {
    assert!(
        cfg.link_faults().is_empty(),
        "delta-GS handles node faults only"
    );
    assert_eq!(prev.dim(), cfg.cube().dim(), "cube dimension mismatch");
    match event {
        ChurnEvent::Fault(a) => {
            assert!(cfg.node_faulty(a), "Fault event: cfg must mark {a} faulty");
            assert_ne!(prev.level(a), 0, "Fault event: {a} was already faulty");
        }
        ChurnEvent::Recover(a) => {
            assert!(
                !cfg.node_faulty(a),
                "Recover event: cfg must mark {a} healthy"
            );
            assert_eq!(prev.level(a), 0, "Recover event: {a} was not faulty");
        }
    }
    let latency = latency.max(1);
    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::with_parts(&net, None, sched, |a| {
        DeltaGsNode::new(cfg, prev, event, a, latency)
    });
    eng.run(u64::MAX);
    let levels = cfg
        .cube()
        .nodes()
        .map(|a| eng.actor(a).map_or(0, DeltaGsNode::level))
        .collect();
    let monotone = cfg
        .cube()
        .nodes()
        .filter_map(|a| eng.actor(a))
        .all(DeltaGsNode::monotone);
    DeltaGsRun {
        map: SafetyMap::from_levels(cfg.cube(), levels),
        stats: eng.stats().clone(),
        monotone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_simkit::AdversarialScheduler;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn fault_then_recover_roundtrip_fig1() {
        // Start from Fig. 1, fault 0101 (a 2-safe node), recover it.
        let mut cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let mut map = SafetyMap::compute(&cfg);
        let a = n("0101");

        cfg.node_faults_mut().insert(a);
        let fs = map.apply_fault(&cfg, a);
        assert_eq!(map.store(), SafetyMap::compute(&cfg).store());
        assert!(map.check_fixed_point(&cfg).is_none());
        assert!(fs.cells_changed >= 1);

        cfg.node_faults_mut().remove(a);
        let rs = map.apply_recover(&cfg, a);
        assert_eq!(map.store(), SafetyMap::compute(&cfg).store());
        assert!(rs.cells_changed >= 1, "the node itself came back");
    }

    #[test]
    fn exhaustive_single_events_q4() {
        // From every 3-fault configuration of Q_4 (seeded sample of
        // them) apply each possible single fault and single recovery;
        // the incremental map must equal the scratch recompute exactly.
        let cube = Hypercube::new(4);
        for seed in 0u64..40 {
            let mut f = FaultSet::new(cube);
            for i in 0..3u64 {
                f.insert(NodeId::new((seed * 7 + i * 5) % 16));
            }
            let base = FaultConfig::with_node_faults(cube, f.clone());
            let map0 = SafetyMap::compute(&base);
            for x in cube.nodes() {
                let mut cfg = base.clone();
                let mut map = map0.clone();
                if cfg.node_faulty(x) {
                    cfg.node_faults_mut().remove(x);
                    map.apply_recover(&cfg, x);
                } else {
                    cfg.node_faults_mut().insert(x);
                    map.apply_fault(&cfg, x);
                }
                assert_eq!(
                    map.store(),
                    SafetyMap::compute(&cfg).store(),
                    "seed {seed} event at {x}"
                );
            }
        }
    }

    #[test]
    fn lone_fault_in_healthy_cube_touches_only_one_shell() {
        let cube = Hypercube::new(10);
        let mut cfg = FaultConfig::fault_free(cube);
        let mut map = SafetyMap::compute(&cfg);
        let a = NodeId::new(517);
        cfg.node_faults_mut().insert(a);
        let st = map.apply_fault(&cfg, a);
        assert_eq!(st.cells_changed, 1, "only the dead node changes");
        assert_eq!(st.cells_touched, 10, "its n neighbors are probed");
        assert_eq!(st.waves, 0, "no neighbor level moved");
        assert_eq!(st.rounds_saved, 9, "a full recompute budget is n−1");
        assert_eq!(map.store(), SafetyMap::compute(&cfg).store());
    }

    #[test]
    fn delta_gs_matches_centralized_fig1_events() {
        let mut cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let prev = SafetyMap::compute(&cfg);
        let a = n("0101");
        cfg.node_faults_mut().insert(a);
        let run = run_delta_gs(&cfg, &prev, ChurnEvent::Fault(a), 1);
        assert_eq!(run.map.store(), SafetyMap::compute(&cfg).store());
        assert!(run.monotone);

        let prev2 = run.map.clone();
        cfg.node_faults_mut().remove(a);
        let run2 = run_delta_gs(&cfg, &prev2, ChurnEvent::Recover(a), 1);
        assert_eq!(run2.map.store(), SafetyMap::compute(&cfg).store());
        assert!(run2.monotone);
    }

    #[test]
    fn delta_gs_exhaustive_events_q3_under_adversary() {
        // Every single fault / recovery from every 2-fault base of Q_3,
        // under both FIFO and permuting adversarial schedules.
        let cube = Hypercube::new(3);
        for mask in 0u64..64 {
            let mut f = FaultSet::new(cube);
            f.insert(NodeId::new(mask % 8));
            f.insert(NodeId::new((mask / 8) % 8));
            let base = FaultConfig::with_node_faults(cube, f);
            let prev = SafetyMap::compute(&base);
            for x in cube.nodes() {
                let mut cfg = base.clone();
                let ev = if cfg.node_faulty(x) {
                    cfg.node_faults_mut().remove(x);
                    ChurnEvent::Recover(x)
                } else {
                    cfg.node_faults_mut().insert(x);
                    ChurnEvent::Fault(x)
                };
                let want = SafetyMap::compute(&cfg);
                for seed in [1u64, 0xBEEF] {
                    let run = run_delta_gs_sched(
                        &cfg,
                        &prev,
                        ev,
                        1,
                        Box::new(AdversarialScheduler::permute(seed)),
                    );
                    assert_eq!(
                        run.map.store(),
                        want.store(),
                        "mask {mask:#b} event {ev:?} seed {seed}"
                    );
                    assert!(run.monotone, "mask {mask:#b} event {ev:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn delta_gs_message_count_is_local() {
        // n = 8, one far-away fault: the delta protocol is silent while
        // full GS floods every link.
        let cube = Hypercube::new(8);
        let mut cfg = FaultConfig::fault_free(cube);
        let prev = SafetyMap::compute(&cfg);
        let a = NodeId::new(200);
        cfg.node_faults_mut().insert(a);
        let delta = run_delta_gs(&cfg, &prev, ChurnEvent::Fault(a), 1);
        let full = crate::gs::run_gs(&cfg);
        assert_eq!(delta.map.store(), full.map.store());
        assert_eq!(delta.stats.delivered, 0, "nobody demoted → nobody speaks");
        assert!(full.stats.messages > 1000, "full GS floods the cube");
    }

    #[test]
    #[should_panic]
    fn apply_fault_rejects_unmarked_cfg() {
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::fault_free(cube);
        let mut map = SafetyMap::compute(&cfg);
        map.apply_fault(&cfg, NodeId::ZERO); // cfg does not mark it faulty
    }
}
