//! # hypersafe-core
//!
//! The paper's primary contribution: **safety levels** and **reliable
//! unicasting** in faulty hypercubes (Wu, ICPP'95 / IEEE TC Feb'97).
//!
//! * [`safety`] — Definition 1 and the unique fixed point (Theorem 1).
//! * [`gs`] — the distributed `GLOBAL_STATUS` protocol, synchronous and
//!   asynchronous, executed message-by-message on `hypersafe-simkit`.
//! * [`navigation`] + [`unicast`] — the optimal/suboptimal unicasting
//!   algorithm with the `C1`/`C2`/`C3` source feasibility check.
//! * [`unicast_distributed`] — the same algorithm as per-node actors
//!   exchanging real messages; `run_unicast_lossy` and
//!   [`gs::run_gs_reliable`] run the protocols over lossy channels via
//!   `hypersafe-simkit`'s reliable delivery layer.
//! * [`egs`] — the §4.1 extension to faulty links (`N1`/`N2` views).
//! * [`gh_safety`] + [`gh_unicast`] — the §4.2 extension to
//!   generalized hypercubes.
//! * [`properties`] — executable checkers for Theorems 1–3 and
//!   Properties 1–2.
//! * [`maintenance`] — the §2.2 demand-driven / periodic /
//!   state-change-driven update strategies.
//!
//! ## Quickstart
//!
//! ```
//! use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
//! use hypersafe_core::{SafetyMap, route, Decision};
//!
//! // The paper's Fig. 1: a 4-cube with four faulty nodes.
//! let cube = Hypercube::new(4);
//! let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
//! let cfg = FaultConfig::with_node_faults(cube, faults);
//!
//! // Safety levels (Definition 1 / Theorem 1 fixed point).
//! let map = SafetyMap::compute(&cfg);
//! assert_eq!(map.level(NodeId::from_binary("1110").unwrap()), 4);
//!
//! // Route the paper's first worked unicast: 1110 → 0001, H = 4.
//! let res = route(&cfg, &map,
//!     NodeId::from_binary("1110").unwrap(),
//!     NodeId::from_binary("0001").unwrap());
//! assert!(matches!(res.decision, Decision::Optimal { .. }));
//! assert!(res.delivered);
//! assert!(res.path.unwrap().is_optimal());
//! ```
#![warn(missing_docs)]

pub mod broadcast;
pub mod broadcast_distributed;
pub mod diagnosis;
pub mod egs;
pub mod exact;
pub mod gh_broadcast;
pub mod gh_safety;
pub mod gh_unicast;
pub mod gh_unicast_distributed;
pub mod gs;
pub mod invariants;
pub mod level_store;
pub mod maintenance;
pub mod mc;
pub mod multicast;
pub mod multipath;
pub mod navigation;
pub mod properties;
pub mod reroute;
pub mod route_batch;
pub mod safety;
pub mod safety_delta;
pub mod safety_vector;
pub mod service;
pub mod unicast;
pub mod unicast_distributed;

pub use broadcast::{broadcast, BroadcastResult};
pub use broadcast_distributed::{run_broadcast, BcastMsg, BcastNode};
pub use diagnosis::{detect, DetectionResult, DetectorParams, Heartbeat};
pub use egs::{route_egs, route_egs_traced, run_egs, EgsNode, ExtendedSafetyMap};
pub use exact::{tightness, ExactReach, TightnessSummary};
pub use gh_broadcast::{gh_broadcast, GhBroadcastResult};
pub use gh_safety::{run_gh_gs, GhGsNode, GhSafetyMap};
pub use gh_unicast::{gh_route, gh_source_decision, GhDecision, GhRouteResult};
pub use gh_unicast_distributed::{run_gh_unicast, GhDistributedRun, GhMsg, GhUnicastNode};
pub use gs::{
    run_gs, run_gs_async, run_gs_async_sched, run_gs_bounded, run_gs_reliable,
    run_gs_reliable_observed, GsAsyncRun, GsLossyRun, GsRun,
};
pub use invariants::{
    check_gh_theorem4_soundness, check_gs_convergence, check_lossy_outcome,
    check_theorem4_soundness, check_unicast_optimality, run_delta_gs_checked, run_gh_gs_checked,
    run_gs_async_checked, run_gs_async_checked_traced, run_unicast_lossy_checked,
    run_unicast_lossy_checked_traced, ArqSingleDelivery, DeltaGsDirected, GsLevelsDescend,
};
pub use level_store::{LevelStore, NeighborLevels, PlaneView};
pub use maintenance::{replay, MaintenanceReport, Strategy, Timeline, TimelineEvent};
pub use mc::{gs_engine_projections, mc_delta_gs, mc_gs, mc_unicast_arq};
pub use multicast::{multicast, MulticastResult};
pub use multipath::{
    check_disjoint_delivery, outcome_of, route_disjoint, route_disjoint_many,
    route_disjoint_ranked, DisjointPath, MultiOutcome, MultipathResult, PathKind,
};
pub use navigation::NavVector;
pub use properties::{
    check_never_fails_under_n_faults, check_property1, check_property2, check_theorem2,
    check_theorem2_at, check_theorem3, Violation,
};
pub use reroute::{route_dynamic, DynamicOutcome, DynamicRun, FaultEvent};
pub use route_batch::{route_light, route_many, route_many_seq, route_many_tb, BatchOutcome};
pub use safety::{level_from_neighbors, level_from_sorted, level_from_unsorted, Level, SafetyMap};
pub use safety_delta::{
    run_delta_gs, run_delta_gs_sched, ChurnEvent, DeltaGsNode, DeltaGsRun, DeltaStats,
};
pub use safety_vector::{vector_dominates_level, SafetyVectorMap};
pub use service::{SafetyService, SafetyState};
pub use unicast::{
    intermediate_dim, intermediate_dim_tb, route, route_tb, route_traced, route_traced_tb,
    source_decision, source_decision_tb, Condition, Decision, RouteResult, TieBreak,
};
pub use unicast_distributed::{
    run_unicast, run_unicast_lossy, run_unicast_lossy_observed, run_unicast_lossy_sched,
    run_unicast_sched, DistributedRun, LossyOutcome, LossyRun, UnicastMsg, UnicastNode,
};
