//! Reliable broadcasting with safety levels — the concept's original
//! application (the paper's reference [9], Wu, IEEE TC May 1995), and
//! the foundation §2 builds on.
//!
//! A fault-free hypercube broadcast is a binomial tree: the source
//! sends along every dimension, and the node reached along dimension
//! `d_i` takes responsibility for the subcube spanned by the remaining
//! dimensions. The safety-level version orders each node's outstanding
//! dimensions by the *receiving neighbor's safety level, descending*,
//! so the largest subtrees go to the safest children.
//!
//! **Guarantee** (the broadcast analogue of Theorem 2, proved by the
//! same subset-of-sorted-sequence argument): if a node's safety level
//! is at least the number of dimensions it is responsible for, every
//! nonfaulty node in its subcube receives the message. In particular a
//! *safe* (level-`n`) source reaches every nonfaulty node of the cube
//! in `n` time steps with one message per receiving node; and by
//! Property 2, with fewer than `n` faults an unsafe source can always
//! relay through a safe neighbor at the cost of one extra step.

use crate::safety::SafetyMap;
use hypersafe_topology::{FaultConfig, NodeId};

/// Outcome of one broadcast.
#[derive(Clone, Debug)]
pub struct BroadcastResult {
    /// Whether each node (by raw address) received the message.
    received: Vec<bool>,
    /// Messages sent (every tree edge, including ones lost into faulty
    /// children).
    pub messages: u64,
    /// Depth of the broadcast tree in time steps.
    pub steps: u32,
    /// The safe neighbor used as relay when the source itself was not
    /// safe enough (`None` when the source broadcast directly).
    pub relayed_via: Option<NodeId>,
}

impl BroadcastResult {
    /// Assembles a result from raw parts (used by the distributed
    /// implementation in [`crate::broadcast_distributed`]).
    pub fn from_parts(
        received: Vec<bool>,
        messages: u64,
        steps: u32,
        relayed_via: Option<NodeId>,
    ) -> Self {
        BroadcastResult {
            received,
            messages,
            steps,
            relayed_via,
        }
    }

    /// Whether node `a` received the message.
    pub fn received(&self, a: NodeId) -> bool {
        self.received[a.raw() as usize]
    }

    /// Number of nodes that received the message.
    pub fn coverage(&self) -> u64 {
        self.received.iter().filter(|&&r| r).count() as u64
    }

    /// Whether every nonfaulty node received the message.
    pub fn complete(&self, cfg: &FaultConfig) -> bool {
        cfg.healthy_nodes().all(|a| self.received(a))
    }
}

/// Broadcasts from `source` over all `n` dimensions.
///
/// If the source is safe it broadcasts directly; otherwise, if it has
/// a safe neighbor, it relays through the one with the lowest
/// dimension (Property 2 guarantees such a neighbor when faults `< n`);
/// otherwise it broadcasts best-effort from itself (coverage may be
/// partial — the result reports it honestly).
///
/// # Examples
///
/// ```
/// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
/// use hypersafe_core::{broadcast, SafetyMap};
///
/// let cube = Hypercube::new(4);
/// let faults = FaultSet::from_binary_strs(cube, &["0011"]);
/// let cfg = FaultConfig::with_node_faults(cube, faults);
/// let map = SafetyMap::compute(&cfg);
/// let r = broadcast(&cfg, &map, NodeId::ZERO);
/// assert!(r.complete(&cfg));
/// assert_eq!(r.messages, 15); // one per non-source node
/// ```
pub fn broadcast(cfg: &FaultConfig, map: &SafetyMap, source: NodeId) -> BroadcastResult {
    let cube = cfg.cube();
    let n = cube.dim();
    let mut result = BroadcastResult {
        received: vec![false; cube.num_nodes() as usize],
        messages: 0,
        steps: 0,
        relayed_via: None,
    };
    if cfg.node_faulty(source) {
        return result;
    }
    result.received[source.raw() as usize] = true;

    let all_dims: Vec<u8> = (0..n).collect();
    if map.is_safe(source) {
        descend(cfg, map, source, &all_dims, 0, &mut result);
        return result;
    }
    // Relay through a safe neighbor: it covers the entire cube
    // (including this source, which already has the message).
    if let Some(relay) = cube.neighbors(source).find(|&b| map.is_safe(b)) {
        result.messages += 1;
        result.relayed_via = Some(relay);
        result.received[relay.raw() as usize] = true;
        descend(cfg, map, relay, &all_dims, 1, &mut result);
        return result;
    }
    // Best effort from an under-safe source.
    descend(cfg, map, source, &all_dims, 0, &mut result);
    result
}

/// Recursive subtree delivery: `at` owns the subcube spanned by `dims`.
fn descend(
    cfg: &FaultConfig,
    map: &SafetyMap,
    at: NodeId,
    dims: &[u8],
    depth: u32,
    result: &mut BroadcastResult,
) {
    result.steps = result.steps.max(depth);
    if dims.is_empty() {
        return;
    }
    // Order children by safety level descending (ties: lower dimension
    // first), so the safest child gets the largest remaining subtree.
    let mut ordered: Vec<u8> = dims.to_vec();
    ordered.sort_by_key(|&i| (std::cmp::Reverse(map.level(at.neighbor(i))), i));
    for (rank, &dim) in ordered.iter().enumerate() {
        let child = at.neighbor(dim);
        let rest = &ordered[rank + 1..];
        result.messages += 1;
        if cfg.node_faulty(child) || cfg.link_faults().contains(at, child) {
            // Fault-stop: the message (and, if `rest` is nonempty, its
            // subtree) is lost here. Under the safety guarantee a
            // faulty child is always assigned an empty subtree.
            continue;
        }
        result.received[child.raw() as usize] = true;
        descend(cfg, map, child, rest, depth + 1, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn fault_free_broadcast_is_binomial() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::fault_free(cube);
        let map = SafetyMap::compute(&cfg);
        let r = broadcast(&cfg, &map, NodeId::ZERO);
        assert!(r.complete(&cfg));
        assert_eq!(r.messages, 31, "one message per non-source node");
        assert_eq!(r.steps, 5);
        assert_eq!(r.relayed_via, None);
    }

    #[test]
    fn safe_source_covers_everything_fig1() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        for s in cfg.healthy_nodes().filter(|&a| map.is_safe(a)) {
            let r = broadcast(&cfg, &map, s);
            assert!(r.complete(&cfg), "safe source {s}");
        }
    }

    #[test]
    fn unsafe_source_relays_through_safe_neighbor() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110"]),
        );
        let map = SafetyMap::compute(&cfg);
        // 0010 has two faulty neighbors (0011, 0110) → unsafe, but
        // < n faults guarantees a safe neighbor (Property 2).
        let s = n("0010");
        assert!(!map.is_safe(s));
        let r = broadcast(&cfg, &map, s);
        assert!(r.relayed_via.is_some());
        assert!(r.complete(&cfg));
        assert!(r.steps <= 5, "n + 1 with relay");
    }

    #[test]
    fn safe_source_complete_exhaustive_q4() {
        // Every fault pattern of Q_4 with ≤ 4 faults: broadcasting from
        // any *safe* source reaches every nonfaulty node.
        let cube = Hypercube::new(4);
        for mask in 0u64..(1 << 16) {
            if mask.count_ones() > 4 {
                continue;
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let map = SafetyMap::compute(&cfg);
            for s in cfg.healthy_nodes().filter(|&a| map.is_safe(a)) {
                let r = broadcast(&cfg, &map, s);
                assert!(r.complete(&cfg), "mask {mask:#x} source {s}");
                assert_eq!(r.messages, 15, "binomial edge count");
            }
        }
    }

    #[test]
    fn faulty_source_sends_nothing() {
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["000"]));
        let map = SafetyMap::compute(&cfg);
        let r = broadcast(&cfg, &map, NodeId::ZERO);
        assert_eq!(r.coverage(), 0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn best_effort_reports_partial_coverage() {
        // Isolate the source: no safe neighbor exists, coverage is 1.
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["001", "010", "100"]),
        );
        let map = SafetyMap::compute(&cfg);
        let r = broadcast(&cfg, &map, NodeId::ZERO);
        assert!(!r.complete(&cfg));
        assert_eq!(r.coverage(), 1, "only the source itself");
    }
}
