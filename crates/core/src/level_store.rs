//! Packed safety-level storage: the `LevelStore` seam.
//!
//! The paper's safety levels live in `0..=n` with `n ≤ 30`
//! ([`MAX_DIM`]), so a level fits in ⌈log₂(n+1)⌉ ≤ 5 bits — yet the
//! original `SafetyMap` spent a whole byte per node, which caps
//! experiments near n=14 (16K nodes) long before the arithmetic does.
//! This module packs levels into:
//!
//! - a **nibble array** (`Vec<u64>`, 16 four-bit fields per word)
//!   holding level bits 0–3, plus
//! - a **fifth-bit plane** (`Vec<u64>`, 64 one-bit fields per word)
//!   holding level bit 4, allocated only when `n > 15`.
//!
//! That is 4 bits/node for n ≤ 15 and 4.5625 bits/node above — at
//! most **0.5703 bytes/node**, comfortably under the 1 byte/node
//! ceiling the scale experiment (E27) gates on, and small enough that
//! an n=20 cube's entire map (1M nodes) is ~585 KiB: resident in L2
//! on most parts.
//!
//! The split layout is deliberate: 4-bit fields tile a 64-bit word
//! evenly (16 per word) and one fifth-bit word covers exactly four
//! nibble words (64 nodes), so every conversion below works on
//! aligned whole words with shift/mask networks — no 5-bit fields
//! straddling word boundaries.
//!
//! [`PlaneView`] is the compute-side companion: a full bit-plane
//! transposition (one `u64` bitmask per level *bit*, 64 nodes per
//! word) used by the plane kernels in [`crate::safety`]. In plane
//! form, "the level of node `a ^ 2^d`" is a word shuffle — an
//! in-word delta swap for `d < 6`, an XOR-indexed word load for
//! `d ≥ 6` — and the paper's "more than k neighbors below k" rule
//! becomes branchless bit-sliced counting (see DESIGN.md §13 for the
//! derivation).
//!
//! [`NeighborLevels`] is the third piece: a fixed-size packed record
//! of one level per dimension (5 bits each), replacing the per-actor
//! `Vec<Level>` "heard" tables in the distributed GS/delta-GS actors
//! so a million simulated actors don't pay a heap allocation plus 30
//! bytes each.

use crate::safety::Level;
use hypersafe_topology::MAX_DIM;

/// Nodes per nibble word (4-bit fields in a `u64`).
const NIB_PER_WORD: u64 = 16;
/// Nodes per plane word (1-bit fields in a `u64`).
const BITS_PER_WORD: u64 = 64;

/// Packed array of safety levels, ~0.57 bytes/node. See the module
/// docs for the layout. Equality is structural: two stores compare
/// equal iff they have the same length, the same level ceiling, and
/// byte-identical packed words — which (because trailing bits are
/// kept zero) is exactly "same levels at every index".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelStore {
    /// Level ceiling: stored values are `0..=max_level`.
    max_level: u8,
    /// Number of levels stored.
    len: u64,
    /// Level bits 0–3, sixteen 4-bit fields per word. Fields past
    /// `len` are zero (enforced by every constructor and mutator).
    nibbles: Vec<u64>,
    /// Level bit 4, one bit per node; empty when `max_level ≤ 15`.
    high: Vec<u64>,
}

impl LevelStore {
    /// An all-zero store for `len` levels in `0..=max_level`.
    ///
    /// # Panics
    ///
    /// If `max_level > MAX_DIM` (levels no longer fit in 5 bits).
    pub fn zeroed(max_level: u8, len: u64) -> Self {
        assert!(
            max_level <= MAX_DIM,
            "levels above {MAX_DIM} don't fit the packed layout"
        );
        let nib_words = len.div_ceil(NIB_PER_WORD) as usize;
        let high = if max_level > 15 {
            vec![0u64; len.div_ceil(BITS_PER_WORD) as usize]
        } else {
            Vec::new()
        };
        LevelStore {
            max_level,
            len,
            nibbles: vec![0u64; nib_words],
            high,
        }
    }

    /// Packs a plain byte-per-level slice.
    ///
    /// # Panics
    ///
    /// If any level exceeds `max_level`.
    pub fn from_levels(max_level: u8, levels: &[Level]) -> Self {
        let mut s = Self::zeroed(max_level, levels.len() as u64);
        for (i, &l) in levels.iter().enumerate() {
            s.set(i as u64, l);
        }
        s
    }

    /// Number of levels stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The level ceiling this store was sized for.
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// Heap bytes held by the packed words — the store's marginal
    /// memory cost (the fixed header is two machine words).
    pub fn memory_bytes(&self) -> u64 {
        8 * (self.nibbles.len() as u64 + self.high.len() as u64)
    }

    /// The level at index `i`: one nibble load, plus one bit load
    /// when the ceiling needs a fifth bit.
    #[inline]
    pub fn get(&self, i: u64) -> Level {
        debug_assert!(i < self.len);
        let nib = (self.nibbles[(i / NIB_PER_WORD) as usize] >> ((i % NIB_PER_WORD) * 4)) & 0xF;
        if self.max_level > 15 {
            let hi = (self.high[(i / BITS_PER_WORD) as usize] >> (i % BITS_PER_WORD)) & 1;
            (nib | (hi << 4)) as Level
        } else {
            nib as Level
        }
    }

    /// Stores level `l` at index `i`.
    ///
    /// # Panics
    ///
    /// If `i` is out of bounds or `l` exceeds the ceiling.
    #[inline]
    pub fn set(&mut self, i: u64, l: Level) {
        assert!(i < self.len, "index {i} out of bounds for len {}", self.len);
        assert!(
            l <= self.max_level,
            "level {l} exceeds ceiling {}",
            self.max_level
        );
        let shift = (i % NIB_PER_WORD) * 4;
        let w = &mut self.nibbles[(i / NIB_PER_WORD) as usize];
        *w = (*w & !(0xFu64 << shift)) | ((l as u64 & 0xF) << shift);
        if self.max_level > 15 {
            let b = &mut self.high[(i / BITS_PER_WORD) as usize];
            *b = (*b & !(1u64 << (i % BITS_PER_WORD))) | (((l as u64) >> 4) << (i % BITS_PER_WORD));
        }
    }

    /// Unpacks into a byte-per-level vector (test/bridge convenience;
    /// the hot paths stay packed).
    pub fn to_vec(&self) -> Vec<Level> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// How many stored levels equal `l` — popcount over the packed
    /// words, no per-node branching.
    pub fn count_eq(&self, l: Level) -> u64 {
        (0..self.len.div_ceil(BITS_PER_WORD) as usize)
            .map(|pw| self.eq_word(pw, l).count_ones() as u64)
            .sum()
    }

    /// Indices whose level equals `l`, ascending. Allocation-free:
    /// one SWAR equality mask per 64-node word, then set-bit walks.
    pub fn iter_eq(&self, l: Level) -> impl Iterator<Item = u64> + '_ {
        (0..self.len.div_ceil(BITS_PER_WORD) as usize).flat_map(move |pw| {
            let base = pw as u64 * BITS_PER_WORD;
            SetBits(self.eq_word(pw, l)).map(move |b| base + b as u64)
        })
    }

    /// Touches every packed word, pulling the store into cache ahead
    /// of a read-heavy pass (the per-chunk warm-up `route_many` does
    /// before draining a batch). Returns a fold of the words so the
    /// traversal can't be optimized away.
    #[inline(never)]
    pub fn warm(&self) -> u64 {
        let mut acc = 0u64;
        for &w in &self.nibbles {
            acc ^= w;
        }
        for &w in &self.high {
            acc ^= w;
        }
        acc
    }

    /// The equality bitmask for 64-node word `pw`: bit `j` is set iff
    /// level `64·pw + j` equals `l`. The workhorse behind
    /// [`count_eq`](Self::count_eq) and [`iter_eq`](Self::iter_eq) —
    /// one SWAR compare per four nibble words.
    fn eq_word(&self, pw: usize, l: Level) -> u64 {
        let mut eq = 0u64;
        for q in 0..4 {
            let ni = pw * 4 + q;
            if ni >= self.nibbles.len() {
                break;
            }
            eq |= nibble_eq_mask(self.nibbles[ni], l & 0xF) << (16 * q);
        }
        if self.max_level > 15 {
            eq &= if l & 0x10 != 0 {
                self.high[pw]
            } else {
                !self.high[pw]
            };
        }
        // Trailing (past-len) fields are zero, so they'd spuriously
        // match l == 0 — mask them off.
        let base = pw as u64 * BITS_PER_WORD;
        if base + BITS_PER_WORD > self.len {
            eq &= tail_mask(self.len - base);
        }
        eq
    }
}

/// Iterator over the set-bit positions of one word, ascending.
struct SetBits(u64);

impl Iterator for SetBits {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(b)
    }
}

/// Bitmask (16 result bits) of which 4-bit fields of `w` equal `nib`:
/// XOR against a broadcast of `nib`, then collapse each zero field to
/// a single set bit via the standard SWAR zero-field test.
#[inline]
fn nibble_eq_mask(w: u64, nib: u8) -> u64 {
    let x = w ^ (0x1111_1111_1111_1111u64 * nib as u64);
    // Exact per-field zero test (no cross-field borrows, unlike the
    // classic `(x - 1…1) & !x & 8…8` which false-positives on a 1
    // field after a 0 field): bit 3 of `(x&m)+m` is set iff the low
    // three bits are nonzero, so the complement AND `!x` isolates
    // all-zero fields.
    const M: u64 = 0x7777_7777_7777_7777;
    let z = !(((x & M) + M) | x | M);
    compact16(z, 3)
}

/// Mask of the low `k` bits (`k ≤ 64`), shift-overflow safe.
#[inline]
pub(crate) fn tail_mask(k: u64) -> u64 {
    if k >= 64 {
        !0
    } else {
        (1u64 << k) - 1
    }
}

/// Compacts bit `b` of each 4-bit field of `x` into the low 16 bits
/// of the result: result bit `j` = bit `4j + b` of `x`. This is the
/// stride-4 → contiguous SWAR gather used by the nibble↔plane
/// transpose; `expand16` is its exact inverse.
#[inline]
pub(crate) fn compact16(x: u64, b: u32) -> u64 {
    let mut x = (x >> b) & 0x1111_1111_1111_1111;
    x = (x | (x >> 3)) & 0x0303_0303_0303_0303;
    x = (x | (x >> 6)) & 0x000F_000F_000F_000F;
    x = (x | (x >> 12)) & 0x0000_00FF_0000_00FF;
    x = (x | (x >> 24)) & 0xFFFF;
    x
}

/// Inverse of [`compact16`]: spreads the low 16 bits of `x` to the
/// LSBs of sixteen 4-bit fields (caller shifts by `b` to place them).
#[inline]
pub(crate) fn expand16(x: u64) -> u64 {
    let mut x = x & 0xFFFF;
    x = (x | (x << 24)) & 0x0000_00FF_0000_00FF;
    x = (x | (x << 12)) & 0x000F_000F_000F_000F;
    x = (x | (x << 6)) & 0x0303_0303_0303_0303;
    x = (x | (x << 3)) & 0x1111_1111_1111_1111;
    x
}

/// Delta-swap masks for in-word neighbor gathers: `DSWAP_MASK[d]`
/// selects the lane whose bit `d` of the node index is 0, so
/// swapping it with its `1 << d`-shifted twin maps every node's bit
/// to its dimension-`d` neighbor's bit in one shift/mask network.
const DSWAP_MASK: [u64; 6] = [
    0x5555_5555_5555_5555,
    0x3333_3333_3333_3333,
    0x0F0F_0F0F_0F0F_0F0F,
    0x00FF_00FF_00FF_00FF,
    0x0000_FFFF_0000_FFFF,
    0x0000_0000_FFFF_FFFF,
];

/// For one plane word `x`, the word whose bit `j` is the plane bit of
/// node `j ^ 2^d` — valid for the in-word dimensions `d < 6`.
#[inline]
pub fn delta_swap(x: u64, d: u8) -> u64 {
    let sh = 1u32 << d;
    let m = DSWAP_MASK[d as usize];
    ((x >> sh) & m) | ((x & m) << sh)
}

/// Neighbor gather along dimension `d` for plane word `w`: dimensions
/// below 6 permute within the word, higher dimensions XOR-index the
/// word array — both branch-free per the ROADMAP's "neighbor levels
/// are a single XOR-indexed shuffle" scheme.
#[inline]
pub fn gather_neighbor_word(plane: &[u64], w: usize, d: u8) -> u64 {
    if d < 6 {
        delta_swap(plane[w], d)
    } else {
        plane[w ^ (1usize << (d - 6))]
    }
}

/// Adds the indicator word `x` into a 5-lane bit-sliced counter (64
/// independent 5-bit counters, one per node lane): a ripple-carry
/// half-adder chain, 3 ops per lane. Counts up to 31 — enough for
/// `n ≤ MAX_DIM` neighbors.
#[inline]
pub fn sliced_add(cnt: &mut [u64; 5], x: u64) {
    let mut carry = x;
    for lane in cnt.iter_mut() {
        let t = *lane & carry;
        *lane ^= carry;
        carry = t;
    }
    debug_assert_eq!(carry, 0, "bit-sliced counter overflowed 5 lanes");
}

/// Lanes where the bit-sliced counter exceeds the constant `k`
/// (`k < 32`): a bitwise magnitude compare unrolled over the 5 lanes,
/// MSB first.
#[inline]
pub fn sliced_gt_const(cnt: &[u64; 5], k: u32) -> u64 {
    let mut gt = 0u64;
    let mut eq = !0u64;
    for b in (0..5).rev() {
        if (k >> b) & 1 == 1 {
            eq &= cnt[b];
        } else {
            gt |= eq & cnt[b];
            eq &= !cnt[b];
        }
    }
    gt
}

/// Full bit-plane transposition of a [`LevelStore`]: `planes[b]` is a
/// bitmask over nodes of level bit `b`, 64 nodes per word. This is
/// the compute-side layout — the safety kernels in [`crate::safety`]
/// run entirely on `PlaneView`s and convert back once at the end.
///
/// Width is fixed at 4 planes for `max_level ≤ 15` and 5 above, so
/// kernel loops are uniform per cube size. Bits past `len` are zero
/// in every plane (same invariant as the store).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlaneView {
    max_level: u8,
    len: u64,
    /// Plane-major: `planes[b * words + w]`.
    planes: Vec<u64>,
    words: usize,
}

impl PlaneView {
    /// Number of planes (4 or 5).
    #[inline]
    pub fn bits(&self) -> u32 {
        if self.max_level > 15 {
            5
        } else {
            4
        }
    }

    /// Words per plane.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// An all-zero view shaped for `len` levels in `0..=max_level`.
    pub fn zeroed(max_level: u8, len: u64) -> Self {
        assert!(
            max_level <= MAX_DIM,
            "levels above {MAX_DIM} don't fit 5 planes"
        );
        let words = len.div_ceil(BITS_PER_WORD) as usize;
        let bits = if max_level > 15 { 5 } else { 4 };
        PlaneView {
            max_level,
            len,
            planes: vec![0u64; bits * words],
            words,
        }
    }

    /// Transposes a packed store into planes: each plane word gathers
    /// one nibble bit from four nibble words via [`compact16`]; the
    /// fifth plane, when present, is the store's high plane verbatim
    /// (that's the payoff of the nibble+high split).
    pub fn from_store(store: &LevelStore) -> Self {
        let mut v = Self::zeroed(store.max_level, store.len);
        for b in 0..4 {
            for pw in 0..v.words {
                let mut acc = 0u64;
                for q in 0..4 {
                    let ni = pw * 4 + q;
                    if ni >= store.nibbles.len() {
                        break;
                    }
                    acc |= compact16(store.nibbles[ni], b) << (16 * q);
                }
                v.plane_mut(b as usize)[pw] = acc;
            }
        }
        if v.bits() == 5 {
            v.plane_mut(4).copy_from_slice(&store.high);
        }
        v
    }

    /// Transposes back into the packed nibble+high layout (inverse of
    /// [`from_store`](Self::from_store)).
    pub fn to_store(&self) -> LevelStore {
        let mut s = LevelStore::zeroed(self.max_level, self.len);
        let nib_words = s.nibbles.len();
        for pw in 0..self.words {
            for q in 0..4 {
                let ni = pw * 4 + q;
                if ni >= nib_words {
                    break;
                }
                let mut w = 0u64;
                for b in 0..4 {
                    w |= expand16(self.plane(b)[pw] >> (16 * q)) << b;
                }
                s.nibbles[ni] = w;
            }
        }
        if self.bits() == 5 {
            s.high.copy_from_slice(self.plane(4));
        }
        s
    }

    /// Plane `b` as a word slice.
    #[inline]
    pub fn plane(&self, b: usize) -> &[u64] {
        &self.planes[b * self.words..(b + 1) * self.words]
    }

    /// Plane `b`, mutable.
    #[inline]
    pub fn plane_mut(&mut self, b: usize) -> &mut [u64] {
        &mut self.planes[b * self.words..(b + 1) * self.words]
    }

    /// The level encoded across planes at node index `i` (slow path,
    /// for tests and spot checks).
    pub fn get(&self, i: u64) -> Level {
        debug_assert!(i < self.len);
        let (w, j) = ((i / BITS_PER_WORD) as usize, i % BITS_PER_WORD);
        let mut l = 0u8;
        for b in 0..self.bits() as usize {
            l |= (((self.plane(b)[w] >> j) & 1) as u8) << b;
        }
        l
    }

    /// Bitmask of "what's valid in word `w`" — all-ones except for a
    /// trailing partial word (cubes with `n < 6`).
    #[inline]
    pub fn valid_mask(&self, w: usize) -> u64 {
        let base = w as u64 * BITS_PER_WORD;
        if base + BITS_PER_WORD > self.len {
            tail_mask(self.len - base)
        } else {
            !0
        }
    }
}

/// One packed 5-bit level per dimension — the per-actor "last level
/// heard from each neighbor" table for the distributed GS family.
/// Three words cover [`MAX_DIM`] + 1 dimensions with room to spare
/// (twelve 5-bit fields per word); `Copy`, no heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborLevels {
    words: [u64; 3],
}

impl NeighborLevels {
    /// All dimensions initialized to `fill`.
    #[inline]
    pub fn filled(n: u8, fill: Level) -> Self {
        let mut s = NeighborLevels { words: [0; 3] };
        for d in 0..n {
            s.set(d, fill);
        }
        s
    }

    /// The level last heard along dimension `d`.
    #[inline]
    pub fn get(&self, d: u8) -> Level {
        ((self.words[(d / 12) as usize] >> ((d % 12) * 5)) & 0x1F) as Level
    }

    /// Records `l` as the level heard along dimension `d`.
    #[inline]
    pub fn set(&mut self, d: u8, l: Level) {
        debug_assert!(l < 32, "level {l} doesn't fit 5 bits");
        let shift = (d % 12) * 5;
        let w = &mut self.words[(d / 12) as usize];
        *w = (*w & !(0x1Fu64 << shift)) | ((l as u64) << shift);
    }

    /// The stored levels for dimensions `0..n`, in dimension order.
    #[inline]
    pub fn iter(&self, n: u8) -> impl Iterator<Item = Level> + '_ {
        (0..n).map(move |d| self.get(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_expand_roundtrip_every_bit() {
        for b in 0..4 {
            // A recognizable stride-4 pattern plus noise in other bits.
            let x = 0x9137_ACE0_55F0_1234u64;
            let c = compact16(x, b);
            assert_eq!(c & !0xFFFF, 0, "compact16 output exceeds 16 bits");
            for j in 0..16 {
                assert_eq!((c >> j) & 1, (x >> (4 * j + b as usize)) & 1);
            }
            assert_eq!(compact16(expand16(c) << b, b), c);
        }
    }

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        for max in [4u8, 15, 16, 20, 30] {
            let len = 200u64;
            let mut s = LevelStore::zeroed(max, len);
            for i in 0..len {
                s.set(i, ((i * 7 + 3) % (max as u64 + 1)) as Level);
            }
            for i in 0..len {
                assert_eq!(
                    s.get(i),
                    ((i * 7 + 3) % (max as u64 + 1)) as Level,
                    "i={i} max={max}"
                );
            }
            // Boundary levels at word-boundary indices.
            for i in [0, 15, 16, 63, 64, 127, 128, len - 1] {
                s.set(i, 0);
                assert_eq!(s.get(i), 0);
                s.set(i, max);
                assert_eq!(s.get(i), max);
            }
        }
    }

    #[test]
    fn memory_stays_under_a_byte_per_node() {
        for n in [4u8, 10, 15, 16, 20] {
            let len = 1u64 << n;
            let s = LevelStore::zeroed(n, len);
            let bytes_per_node = s.memory_bytes() as f64 / len as f64;
            assert!(
                bytes_per_node <= 1.0,
                "n={n}: {bytes_per_node} bytes/node exceeds the ceiling"
            );
        }
        // The headline numbers from DESIGN.md §13.
        assert_eq!(
            LevelStore::zeroed(14, 1 << 14).memory_bytes(),
            8 * (1 << 10)
        );
        assert_eq!(
            LevelStore::zeroed(20, 1 << 20).memory_bytes(),
            8 * ((1 << 16) + (1 << 14))
        );
    }

    #[test]
    fn count_and_iter_eq_match_scalar_scan() {
        for max in [7u8, 15, 20] {
            let len = 150u64;
            let levels: Vec<Level> = (0..len)
                .map(|i| ((i * 13 + 5) % (max as u64 + 1)) as Level)
                .collect();
            let s = LevelStore::from_levels(max, &levels);
            for l in 0..=max {
                let want: Vec<u64> = (0..len).filter(|&i| levels[i as usize] == l).collect();
                assert_eq!(s.count_eq(l), want.len() as u64, "l={l} max={max}");
                assert_eq!(s.iter_eq(l).collect::<Vec<_>>(), want, "l={l} max={max}");
            }
        }
    }

    #[test]
    fn count_eq_zero_excludes_trailing_padding() {
        // 5 real zero-level nodes; the other 59 fields of the word are
        // padding that must not count.
        let s = LevelStore::from_levels(10, &[0, 0, 0, 0, 0]);
        assert_eq!(s.count_eq(0), 5);
        assert_eq!(s.iter_eq(0).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn plane_view_roundtrips_and_exposes_bits() {
        for max in [6u8, 15, 16, 20] {
            let len = 130u64;
            let levels: Vec<Level> = (0..len)
                .map(|i| ((i * 11 + 2) % (max as u64 + 1)) as Level)
                .collect();
            let s = LevelStore::from_levels(max, &levels);
            let v = PlaneView::from_store(&s);
            for (i, &l) in levels.iter().enumerate() {
                assert_eq!(v.get(i as u64), l, "i={i} max={max}");
                for b in 0..v.bits() as usize {
                    assert_eq!(
                        (v.plane(b)[i / 64] >> (i % 64)) & 1,
                        ((l as u64) >> b) & 1,
                        "plane bit mismatch at i={i} b={b}"
                    );
                }
            }
            assert_eq!(v.to_store(), s, "plane roundtrip must be exact (max={max})");
        }
    }

    #[test]
    fn delta_swap_matches_index_xor() {
        let x = 0xDEAD_BEEF_0BAD_F00Du64;
        for d in 0..6u8 {
            let y = delta_swap(x, d);
            for j in 0..64u64 {
                assert_eq!((y >> j) & 1, (x >> (j ^ (1 << d))) & 1, "d={d} j={j}");
            }
        }
    }

    #[test]
    fn gather_neighbor_word_covers_high_dimensions() {
        // 4 words = 256 nodes = Q_8; dimension 7 flips word-index bit 1.
        let plane = [0x1u64, 0x2, 0x4, 0x8];
        assert_eq!(gather_neighbor_word(&plane, 0, 7), plane[2]);
        assert_eq!(gather_neighbor_word(&plane, 3, 6), plane[2]);
        assert_eq!(gather_neighbor_word(&plane, 1, 0), delta_swap(plane[1], 0));
    }

    #[test]
    fn sliced_counter_counts_and_compares() {
        let mut cnt = [0u64; 5];
        // Lane 0 sees 30 increments, lane 1 sees 3, lane 2 none.
        for i in 0..30 {
            let mut x = 0b001u64;
            if i < 3 {
                x |= 0b010;
            }
            sliced_add(&mut cnt, x);
        }
        for k in 0..31 {
            let gt = sliced_gt_const(&cnt, k);
            assert_eq!(gt & 1, u64::from(30 > k), "lane0 k={k}");
            assert_eq!((gt >> 1) & 1, u64::from(3 > k), "lane1 k={k}");
            assert_eq!((gt >> 2) & 1, 0, "lane2 k={k}");
        }
    }

    #[test]
    fn neighbor_levels_pack_all_dims() {
        let n = MAX_DIM;
        let mut h = NeighborLevels::filled(n, 30);
        assert!(h.iter(n).all(|l| l == 30));
        for d in 0..n {
            h.set(d, d % 31);
        }
        for d in 0..n {
            assert_eq!(h.get(d), d % 31, "d={d}");
        }
        assert_eq!(h.iter(n).count(), n as usize);
    }

    #[test]
    #[should_panic(expected = "exceeds ceiling")]
    fn set_rejects_levels_over_ceiling() {
        LevelStore::zeroed(10, 4).set(0, 11);
    }
}
