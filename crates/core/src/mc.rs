//! Model-checking entry points for the protocol kernel: exhaustive
//! verification of GS convergence, delta-GS exactness, and ARQ
//! exactly-once unicast on small cubes.
//!
//! Each function wires one protocol into the explicit-state checker
//! ([`hypersafe_simkit::mc`]) with the *path-free* reformulation of
//! the corresponding `core::invariants` property — a condition on a
//! single reached state, so it can be checked at every state of the
//! BFS rather than along one schedule:
//!
//! * **GS** ([`mc_gs`]): at every state every healthy node's level has
//!   only descended and sits at or above the centralized fixed point
//!   (the "corridor" the monotone Definition 1 operator guarantees);
//!   at every quiescent state it *equals* the fixed point (Theorem 1 /
//!   convergence, now proven over *all* delivery orders, not sampled
//!   ones).
//! * **Delta-GS** ([`mc_delta_gs`]): levels stay inside the directed
//!   corridor between the pre-event fixed point and the post-event
//!   one, and land exactly on the post-event map at quiescence —
//!   distributed incremental maintenance ≡ centralized recompute.
//! * **ARQ unicast** ([`mc_unicast_arq`]): no node's inner actor ever
//!   sees a payload twice (exactly-once through the reliable layer,
//!   under adversarial loss/duplication within the configured
//!   budgets), and quiescent outcomes obey Theorems 2–4: feasible
//!   decisions deliver on a path of the promised length, `Failure` is
//!   only ever declared soundly.
//!
//! The GS legs run with no-op closure enabled (their merges are
//! monotone, so a stale announcement stays a no-op forever — see
//! DESIGN.md §14); the ARQ leg runs with closure disabled (a buffered
//! out-of-order segment makes a later redelivery ack-effectful, which
//! breaks the stability requirement).

use crate::gs::AsyncGsNode;
use crate::invariants::check_theorem4_soundness;
use crate::navigation::NavVector;
use crate::safety::{Level, SafetyMap};
use crate::safety_delta::{ChurnEvent, DeltaGsNode};
use crate::unicast::{source_decision, Decision};
use crate::unicast_distributed::{LossyUnicastNode, START_TAG};
use hypersafe_simkit::{
    engine_projection, explore, EventEngine, HypercubeNet, McCheck, McConfig, McReport, McSnapshot,
    Reliable, ReliableConfig, Scheduler,
};
use hypersafe_topology::{FaultConfig, NodeId};

/// Runs asynchronous GS on a real [`EventEngine`] under `sched` and
/// records the actor-projection hash after the initial `on_start`
/// round and after every delivered event, through quiescence. The
/// cross-validation suite asserts every hash in this sequence is a
/// member of the checker's reachable projection set
/// ([`mc_gs`] with [`McConfig::collect_projections`]): any timed
/// engine schedule is one interleaving of the untimed model.
pub fn gs_engine_projections(cfg: &FaultConfig, sched: Box<dyn Scheduler>) -> Vec<u128> {
    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::with_parts(&net, None, sched, |a| AsyncGsNode::new(cfg, a, 1));
    let mut seen = vec![engine_projection(&eng)];
    while eng.step() {
        seen.push(engine_projection(&eng));
    }
    seen
}

/// Exhaustively checks asynchronous GS on `cfg`: monotone descent and
/// the fixed-point corridor at every reachable state, exact
/// convergence at every quiescent one. Forces no-op closure on (sound
/// for GS's min-merge; see module docs).
pub fn mc_gs(cfg: &FaultConfig, mcfg: &McConfig) -> McReport {
    let mut mcfg = mcfg.clone();
    mcfg.closure = true;
    let fixed = SafetyMap::compute(cfg);
    let net = HypercubeNet::new(cfg);
    let corridor = fixed.clone();
    let checks = [
        McCheck {
            name: "gs-monotone-descent",
            terminal_only: false,
            check: Box::new(move |s: &McSnapshot<'_, AsyncGsNode>| {
                for (v, a) in s.actors.iter().enumerate() {
                    let Some(a) = a else { continue };
                    if !a.monotone() {
                        return Err(format!("node {v}: level rose during descent"));
                    }
                    let floor = corridor.level(NodeId::new(v as u64));
                    if a.level() < floor {
                        return Err(format!(
                            "node {v}: level {} fell below the fixed point {floor}",
                            a.level()
                        ));
                    }
                }
                Ok(())
            }),
        },
        McCheck {
            name: "gs-convergence",
            terminal_only: true,
            check: Box::new(move |s: &McSnapshot<'_, AsyncGsNode>| {
                if !s.quiescent {
                    return Ok(());
                }
                for (v, a) in s.actors.iter().enumerate() {
                    let Some(a) = a else { continue };
                    let want = fixed.level(NodeId::new(v as u64));
                    if a.level() != want {
                        return Err(format!(
                            "node {v}: quiescent at level {}, centralized says {want}",
                            a.level()
                        ));
                    }
                }
                Ok(())
            }),
        },
    ];
    explore(&net, |a| AsyncGsNode::new(cfg, a, 1), &[], &mcfg, &checks)
}

/// Exhaustively checks distributed delta-GS for one churn `event`:
/// every reachable state keeps each node inside the directed corridor
/// between its pre-event start level and the post-event fixed point,
/// and every quiescent state equals the centralized recompute exactly.
/// `cfg` is the post-event configuration, `prev` the pre-event fixed
/// point. Forces no-op closure on (the direction-fixed merge is
/// monotone).
pub fn mc_delta_gs(
    cfg: &FaultConfig,
    prev: &SafetyMap,
    event: ChurnEvent,
    mcfg: &McConfig,
) -> McReport {
    let mut mcfg = mcfg.clone();
    mcfg.closure = true;
    let target = SafetyMap::compute(cfg);
    let net = HypercubeNet::new(cfg);
    let descending = matches!(event, ChurnEvent::Fault(_));
    // Each node's corridor entry point: the level its actor is built
    // with (prev fixed point, adjusted by local event detection).
    let start: Vec<Level> = (0..cfg.cube().num_nodes())
        .map(|v| DeltaGsNode::new(cfg, prev, event, NodeId::new(v), 1).level())
        .collect();
    let corridor_target = target.clone();
    let checks = [
        McCheck {
            name: "delta-gs-corridor",
            terminal_only: false,
            check: Box::new(move |s: &McSnapshot<'_, DeltaGsNode>| {
                for (v, a) in s.actors.iter().enumerate() {
                    let Some(a) = a else { continue };
                    if !a.monotone() {
                        return Err(format!("node {v}: level moved against the event direction"));
                    }
                    let goal = corridor_target.level(NodeId::new(v as u64));
                    let (lo, hi) = if descending {
                        (goal, start[v])
                    } else {
                        (start[v], goal)
                    };
                    if a.level() < lo || a.level() > hi {
                        return Err(format!(
                            "node {v}: level {} outside corridor [{lo}, {hi}]",
                            a.level()
                        ));
                    }
                }
                Ok(())
            }),
        },
        McCheck {
            name: "delta-gs-exact",
            terminal_only: true,
            check: Box::new(move |s: &McSnapshot<'_, DeltaGsNode>| {
                if !s.quiescent {
                    return Ok(());
                }
                for (v, a) in s.actors.iter().enumerate() {
                    let Some(a) = a else { continue };
                    let want = target.level(NodeId::new(v as u64));
                    if a.level() != want {
                        return Err(format!(
                            "node {v}: quiescent at level {}, recompute says {want}",
                            a.level()
                        ));
                    }
                }
                Ok(())
            }),
        },
    ];
    explore(
        &net,
        |a| DeltaGsNode::new(cfg, prev, event, a, 1),
        &[],
        &mcfg,
        &checks,
    )
}

/// Exhaustively checks one reliable unicast `s → d` over `map` (which
/// must be the converged map for `cfg`) under adversarial delivery
/// order plus the loss/duplication budgets in `mcfg`:
///
/// * **exactly-once** at every state: no inner actor's `receives`
///   exceeds 1 (the reliable layer never leaks a duplicate to the
///   protocol);
/// * at every quiescent state, the **outcome taxonomy** of Theorems
///   2–4: a feasible decision with no mid-run kills and no exhausted
///   link must have delivered, on a trail of the promised length
///   (Hamming for `Optimal`, ≤ H+2 for `Suboptimal`); a `Failure`
///   decision must be sound against the connectivity oracle and sends
///   nothing.
///
/// Forces no-op closure **off** — the ARQ layer's reorder buffer makes
/// no-op-ness unstable (see module docs). Keep `rcfg.max_retries`
/// small: it bounds the retransmission state space.
pub fn mc_unicast_arq(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    rcfg: ReliableConfig,
    mcfg: &McConfig,
) -> McReport {
    let mut mcfg = mcfg.clone();
    mcfg.closure = false;
    let net = HypercubeNet::new(cfg);
    let n = cfg.cube().dim();
    let decision = source_decision(map, s, d);
    let hamming = NavVector::new(s, d).remaining() as usize;
    let cfg_owned = cfg.clone();
    let checks = [
        McCheck {
            name: "arq-exactly-once",
            terminal_only: false,
            check: Box::new(move |st: &McSnapshot<'_, Reliable<LossyUnicastNode>>| {
                for (v, a) in st.actors.iter().enumerate() {
                    let Some(a) = a else { continue };
                    if a.inner.receives > 1 {
                        return Err(format!(
                            "node {v}: {} deliveries surfaced to the actor",
                            a.inner.receives
                        ));
                    }
                }
                Ok(())
            }),
        },
        McCheck {
            name: "unicast-outcome",
            terminal_only: true,
            check: Box::new(move |st: &McSnapshot<'_, Reliable<LossyUnicastNode>>| {
                if !st.quiescent {
                    return Ok(());
                }
                let delivered = st.actors[d.raw() as usize]
                    .as_ref()
                    .and_then(|a| a.inner.received.as_ref());
                let killed = st.dead.iter().any(|&k| k);
                // In the untimed model a retransmission timer may fire
                // any number of times while its own segment is still in
                // flight, so a link can exhaust its retries even with
                // zero losses — give-up is always a legal explanation
                // for non-delivery, never a violation by itself.
                let gave_up = st
                    .actors
                    .iter()
                    .flatten()
                    .any(|a| !a.endpoint.gave_up_dims().is_empty());
                if let Some(msg) = delivered {
                    let hops = msg.trail.len().saturating_sub(1);
                    match decision {
                        Decision::Optimal { .. } | Decision::AlreadyThere => {
                            if hops != hamming {
                                return Err(format!(
                                    "optimal decision but delivered in {hops} hops (H = {hamming})"
                                ));
                            }
                        }
                        Decision::Suboptimal { .. } => {
                            if hops > hamming + 2 {
                                return Err(format!(
                                    "suboptimal decision but {hops} hops > H+2 = {}",
                                    hamming + 2
                                ));
                            }
                        }
                        Decision::Failure => {
                            return Err("delivered although the source declared Failure".into())
                        }
                    }
                } else if !killed && !gave_up {
                    // Nothing was lost for good, yet the message never
                    // arrived: only a sound local Failure explains it.
                    if !matches!(decision, Decision::Failure) {
                        return Err(format!(
                            "feasible decision {decision:?} but the message never arrived"
                        ));
                    }
                    if let Err(v) = check_theorem4_soundness(&cfg_owned, s, d, decision) {
                        return Err(v.detail);
                    }
                }
                Ok(())
            }),
        },
    ];
    explore(
        &net,
        |a| {
            let mut inner = LossyUnicastNode::new(map, cfg, a);
            if a == s {
                inner.start = Some(d);
            }
            Reliable::new(inner, a, n, 1, rcfg)
        },
        &[(s, START_TAG)],
        &mcfg,
        &checks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn q3(faults: &[u64]) -> FaultConfig {
        let cube = Hypercube::new(3);
        let mut set = FaultSet::new(cube);
        for &f in faults {
            set.insert(NodeId::new(f));
        }
        FaultConfig::with_node_faults(cube, set)
    }

    #[test]
    fn gs_q3_two_faults_is_clean_and_exhaustive() {
        // One fault leaves every healthy Q_3 node 3-safe (neighbor
        // levels (0,3,3) dominate (0,1,2)), so nothing announces; two
        // faults actually lower levels and start a wave.
        let cfg = q3(&[0, 3]);
        let rep = mc_gs(&cfg, &McConfig::default());
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert!(!rep.truncated);
        assert!(rep.states > 1);
        assert!(rep.terminals >= 1);
    }

    #[test]
    fn gs_fault_free_q3_is_trivially_quiescent() {
        let cfg = q3(&[]);
        let rep = mc_gs(&cfg, &McConfig::default());
        assert!(rep.violation.is_none());
        // Nobody's level drops, nobody announces: one state, terminal.
        assert_eq!(rep.states, 1);
        assert_eq!(rep.terminals, 1);
    }

    #[test]
    fn delta_gs_q3_fault_event_is_exact() {
        let before = q3(&[]);
        let prev = SafetyMap::compute(&before);
        let after = q3(&[5]);
        let rep = mc_delta_gs(
            &after,
            &prev,
            ChurnEvent::Fault(NodeId::new(5)),
            &McConfig::default(),
        );
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert!(!rep.truncated);
    }

    #[test]
    fn arq_unicast_q3_with_loss_and_dup_is_exactly_once() {
        // Hamming-2 pair: full-distance pairs with both budgets take
        // minutes in debug mode and belong to `repro mc` (release).
        let cfg = q3(&[3]);
        let map = SafetyMap::compute(&cfg);
        let rcfg = ReliableConfig {
            max_retries: 2,
            ..ReliableConfig::default()
        };
        let mcfg = McConfig {
            loss_budget: 1,
            dup_budget: 1,
            ..McConfig::default()
        };
        let rep = mc_unicast_arq(&cfg, &map, NodeId::new(0), NodeId::new(6), rcfg, &mcfg);
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert!(!rep.truncated);
        assert!(rep.terminals >= 1);
    }

    #[test]
    fn arq_infeasible_pair_fails_soundly() {
        // Fault every neighbor of 0 on Q_3: the source must declare
        // Failure, and the checker must accept that as sound.
        let cfg = q3(&[1, 2, 4]);
        let map = SafetyMap::compute(&cfg);
        let rep = mc_unicast_arq(
            &cfg,
            &map,
            NodeId::new(0),
            NodeId::new(7),
            ReliableConfig::default(),
            &McConfig::default(),
        );
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
    }
}
