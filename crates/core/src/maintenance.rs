//! Safety-level maintenance strategies (paper §2.2).
//!
//! The paper lists three ways to keep safety information up to date as
//! faults occur and recover:
//!
//! 1. **Demand-driven** — GS runs only when a unicast discovers an
//!    inaccurate neighbor level.
//! 2. **Periodic** — nodes exchange safety information every `T` ticks
//!    regardless of activity ("does not adapt the activity to the
//!    failure rate": exchanges are wasted while the system is stable).
//! 3. **State-change-driven** — a node initiates GS whenever it detects
//!    a neighbor failing or recovering.
//!
//! This module replays a *fault timeline* (fault/recovery events plus
//! unicast requests at virtual times) under each strategy and accounts
//! for the messages spent and the unicasts that executed with stale
//! levels — the E10 ablation of DESIGN.md.

use crate::gs::run_gs;
use crate::safety::SafetyMap;
use crate::safety_delta::{run_delta_gs, ChurnEvent};
use crate::unicast::{route, Decision};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};

/// One entry of a maintenance scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimelineEvent {
    /// Node becomes faulty at this instant.
    Fault(NodeId),
    /// Node recovers at this instant.
    Recover(NodeId),
    /// A unicast request `s → d` is issued.
    Unicast(NodeId, NodeId),
}

/// A timed scenario: events must be given in nondecreasing time order.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<(u64, TimelineEvent)>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at time `t` (must be ≥ the last event's time).
    pub fn push(&mut self, t: u64, ev: TimelineEvent) -> &mut Self {
        if let Some(&(last, _)) = self.events.last() {
            assert!(t >= last, "events must be time-ordered");
        }
        self.events.push((t, ev));
        self
    }

    /// The events in order.
    pub fn events(&self) -> &[(u64, TimelineEvent)] {
        &self.events
    }

    /// Total duration (time of the last event).
    pub fn duration(&self) -> u64 {
        self.events.last().map_or(0, |&(t, _)| t)
    }
}

/// Which maintenance policy to replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Refresh only when a unicast is about to run on stale state.
    DemandDriven,
    /// Refresh every `period` ticks.
    Periodic {
        /// Refresh interval in virtual-time ticks.
        period: u64,
    },
    /// Refresh immediately on every fault/recovery event.
    StateChangeDriven,
    /// Like [`Strategy::StateChangeDriven`], but each event runs the
    /// *delta-GS* protocol ([`run_delta_gs`]) instead of a full GS
    /// flood: only nodes whose level changed re-broadcast, so the
    /// message bill is O(affected region) per event instead of
    /// O(n·2ⁿ). Always fresh, like state-change-driven.
    Incremental,
}

/// Cost/quality accounting of one replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Full GS executions performed.
    pub gs_runs: u64,
    /// Safety-exchange messages spent across all GS executions.
    pub gs_messages: u64,
    /// Unicasts issued.
    pub unicasts: u64,
    /// Unicasts that ran on levels matching the true current fault
    /// state.
    pub fresh_unicasts: u64,
    /// Unicasts that ran on stale levels (the map predates the latest
    /// fault/recovery event).
    pub stale_unicasts: u64,
    /// Unicasts that were delivered.
    pub delivered: u64,
    /// Unicasts that failed or were lost.
    pub failed: u64,
    /// Local level re-evaluations performed by the incremental engine
    /// (0 under the full-recompute strategies; compare against
    /// `gs_runs · 2ⁿ`-scale work).
    pub cells_touched: u64,
}

/// Replays `timeline` on an initially fault-free `cube` under
/// `strategy` and returns the accounting.
pub fn replay(cube: Hypercube, timeline: &Timeline, strategy: Strategy) -> MaintenanceReport {
    let mut cfg = FaultConfig::fault_free(cube);
    let mut report = MaintenanceReport::default();

    // Current believed safety map and whether it reflects cfg.
    let mut map = SafetyMap::compute(&cfg);
    let mut fresh = true;
    let mut next_periodic = match strategy {
        Strategy::Periodic { period } => {
            assert!(period > 0, "period must be positive");
            period
        }
        _ => u64::MAX,
    };

    let refresh = |cfg: &FaultConfig, map: &mut SafetyMap, report: &mut MaintenanceReport| {
        let run = run_gs(cfg);
        report.gs_runs += 1;
        report.gs_messages += run.stats.messages;
        *map = run.map;
    };

    // Incremental maintenance: run the delta-GS protocol for the
    // event (honest distributed message bill), fold the event into the
    // believed map with the centralized worklist engine, and
    // cross-check the two — exactness is part of the contract.
    let incremental =
        |cfg: &FaultConfig, map: &mut SafetyMap, report: &mut MaintenanceReport, ev: ChurnEvent| {
            let run = run_delta_gs(cfg, map, ev, 1);
            let stats = match ev {
                ChurnEvent::Fault(a) => map.apply_fault(cfg, a),
                ChurnEvent::Recover(a) => map.apply_recover(cfg, a),
            };
            debug_assert_eq!(
                map.store(),
                run.map.store(),
                "delta-GS diverged from the centralized incremental update"
            );
            report.gs_runs += 1;
            report.gs_messages += run.stats.delivered + run.stats.dropped;
            report.cells_touched += stats.cells_touched;
        };

    for &(t, ev) in timeline.events() {
        // Periodic refreshes that elapsed before this event.
        while t >= next_periodic {
            refresh(&cfg, &mut map, &mut report);
            fresh = true;
            next_periodic += match strategy {
                Strategy::Periodic { period } => period,
                _ => unreachable!(),
            };
        }
        match ev {
            TimelineEvent::Fault(a) => {
                let changed = cfg.node_faults_mut().insert(a);
                fresh = false;
                match strategy {
                    Strategy::StateChangeDriven => {
                        refresh(&cfg, &mut map, &mut report);
                        fresh = true;
                    }
                    Strategy::Incremental => {
                        if changed {
                            incremental(&cfg, &mut map, &mut report, ChurnEvent::Fault(a));
                        }
                        fresh = true;
                    }
                    _ => {}
                }
            }
            TimelineEvent::Recover(a) => {
                let changed = cfg.node_faults_mut().remove(a);
                fresh = false;
                match strategy {
                    Strategy::StateChangeDriven => {
                        refresh(&cfg, &mut map, &mut report);
                        fresh = true;
                    }
                    Strategy::Incremental => {
                        if changed {
                            incremental(&cfg, &mut map, &mut report, ChurnEvent::Recover(a));
                        }
                        fresh = true;
                    }
                    _ => {}
                }
            }
            TimelineEvent::Unicast(s, d) => {
                report.unicasts += 1;
                if strategy == Strategy::DemandDriven && !fresh {
                    // The source compares its neighbors' true status
                    // with its cached levels, detects the mismatch and
                    // triggers GS before routing (§2.2 item 1).
                    refresh(&cfg, &mut map, &mut report);
                    fresh = true;
                }
                if fresh {
                    report.fresh_unicasts += 1;
                } else {
                    report.stale_unicasts += 1;
                }
                if cfg.node_faulty(s) || cfg.node_faulty(d) {
                    report.failed += 1;
                    continue;
                }
                let res = route(&cfg, &map, s, d);
                if res.delivered && !matches!(res.decision, Decision::Failure) {
                    report.delivered += 1;
                } else {
                    report.failed += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    fn sample_timeline() -> Timeline {
        let mut t = Timeline::new();
        t.push(10, TimelineEvent::Fault(n("0011")))
            .push(20, TimelineEvent::Unicast(n("1110"), n("0001")))
            .push(30, TimelineEvent::Fault(n("0100")))
            .push(40, TimelineEvent::Unicast(n("0001"), n("1100")))
            .push(50, TimelineEvent::Recover(n("0011")))
            .push(60, TimelineEvent::Unicast(n("0000"), n("1111")));
        t
    }

    #[test]
    fn state_change_driven_is_always_fresh() {
        let r = replay(
            Hypercube::new(4),
            &sample_timeline(),
            Strategy::StateChangeDriven,
        );
        assert_eq!(r.gs_runs, 3, "one GS per fault/recovery");
        assert_eq!(r.stale_unicasts, 0);
        assert_eq!(r.unicasts, 3);
        assert_eq!(r.delivered, 3);
    }

    #[test]
    fn demand_driven_refreshes_lazily() {
        let r = replay(
            Hypercube::new(4),
            &sample_timeline(),
            Strategy::DemandDriven,
        );
        // Refresh happens at each unicast that follows a change: 3 of them.
        assert_eq!(r.gs_runs, 3);
        assert_eq!(r.stale_unicasts, 0);
        assert_eq!(r.delivered, 3);
    }

    #[test]
    fn periodic_wastes_or_staleness_depending_on_period() {
        // Tight period: many runs, everything fresh at unicast time only
        // if a tick landed between change and use.
        let tight = replay(
            Hypercube::new(4),
            &sample_timeline(),
            Strategy::Periodic { period: 5 },
        );
        assert!(
            tight.gs_runs >= 10,
            "60 ticks / 5 = 12-ish runs, got {}",
            tight.gs_runs
        );
        // Loose period: cheap but stale.
        let loose = replay(
            Hypercube::new(4),
            &sample_timeline(),
            Strategy::Periodic { period: 1000 },
        );
        assert_eq!(loose.gs_runs, 0);
        assert_eq!(loose.stale_unicasts, 3);
    }

    #[test]
    fn stale_routing_can_still_deliver_but_is_flagged() {
        // One fault, then a unicast whose stale map believes the cube is
        // fault-free: path may cross the new fault and be lost.
        let mut t = Timeline::new();
        t.push(1, TimelineEvent::Fault(n("0001")))
            .push(2, TimelineEvent::Unicast(n("0000"), n("0011")));
        let r = replay(Hypercube::new(4), &t, Strategy::Periodic { period: 1000 });
        assert_eq!(r.stale_unicasts, 1);
        // The stale map routes 0000 → 0001 → 0011 straight into the new
        // fault: the unicast is lost.
        assert_eq!(r.failed, 1);
    }

    #[test]
    fn simultaneous_fault_and_unicast_same_tick() {
        // A fault and a unicast land at the same instant. `push` order
        // breaks the tie: whichever entry comes first in the timeline
        // happens first at that tick.
        let mut fault_first = Timeline::new();
        fault_first
            .push(5, TimelineEvent::Fault(n("0001")))
            .push(5, TimelineEvent::Unicast(n("0000"), n("0011")));

        // Demand-driven: the source detects the mismatch at the same
        // tick and refreshes before routing — fresh and delivered.
        let r = replay(Hypercube::new(4), &fault_first, Strategy::DemandDriven);
        assert_eq!(r.gs_runs, 1);
        assert_eq!((r.fresh_unicasts, r.stale_unicasts), (1, 0));
        assert_eq!(r.delivered, 1, "fresh map routes around 0001");

        // A lazy policy has no chance to refresh between the two events
        // of the tick: the unicast runs stale, straight into the fault.
        let r = replay(
            Hypercube::new(4),
            &fault_first,
            Strategy::Periodic { period: 1000 },
        );
        assert_eq!((r.fresh_unicasts, r.stale_unicasts), (0, 1));
        assert_eq!(r.failed, 1);

        // Reversed push order at the same tick: the unicast precedes
        // the fault, so even the lazy policy delivers on a fresh map.
        let mut unicast_first = Timeline::new();
        unicast_first
            .push(5, TimelineEvent::Unicast(n("0000"), n("0011")))
            .push(5, TimelineEvent::Fault(n("0001")));
        let r = replay(
            Hypercube::new(4),
            &unicast_first,
            Strategy::Periodic { period: 1000 },
        );
        assert_eq!((r.fresh_unicasts, r.stale_unicasts), (1, 0));
        assert_eq!(r.delivered, 1);
    }

    #[test]
    fn incremental_is_fresh_and_cheaper_than_state_change_driven() {
        let t = sample_timeline();
        let full = replay(Hypercube::new(4), &t, Strategy::StateChangeDriven);
        let inc = replay(Hypercube::new(4), &t, Strategy::Incremental);
        // Same freshness and routing quality...
        assert_eq!(inc.stale_unicasts, 0);
        assert_eq!(inc.unicasts, full.unicasts);
        assert_eq!(inc.delivered, full.delivered);
        assert_eq!(inc.gs_runs, full.gs_runs, "one update per change event");
        // ...but each update only bills the affected region.
        assert!(
            inc.gs_messages < full.gs_messages,
            "incremental {} ≥ full {}",
            inc.gs_messages,
            full.gs_messages
        );
        assert!(inc.cells_touched > 0);
        assert_eq!(full.cells_touched, 0);
    }

    #[test]
    fn incremental_tolerates_noop_events() {
        // Faulting a node twice / recovering a healthy node are no-ops
        // and must not trip the exactness preconditions.
        let mut t = Timeline::new();
        t.push(1, TimelineEvent::Fault(n("0001")))
            .push(2, TimelineEvent::Fault(n("0001")))
            .push(3, TimelineEvent::Recover(n("0010")))
            .push(4, TimelineEvent::Unicast(n("0000"), n("1111")));
        let r = replay(Hypercube::new(4), &t, Strategy::Incremental);
        assert_eq!(r.gs_runs, 1, "only the genuine transition is billed");
        assert_eq!(r.stale_unicasts, 0);
        assert_eq!(r.delivered, 1);
    }

    #[test]
    #[should_panic]
    fn timeline_rejects_time_travel() {
        let mut t = Timeline::new();
        t.push(5, TimelineEvent::Fault(n("0001")));
        t.push(4, TimelineEvent::Fault(n("0010")));
    }
}
