//! The unicasting algorithm executed as an actual distributed protocol
//! on the discrete-event engine.
//!
//! [`crate::unicast::route`] simulates the algorithm centrally (fast,
//! used by the Monte-Carlo experiments); this module runs it for real:
//! each node is an actor holding only its own safety level and its
//! neighbors' levels (the paper's locality assumption), messages carry
//! `(payload, navigation vector)`, and the destination raises a flag on
//! arrival. The test suite checks the two implementations take the
//! same path hop for hop — evidence that the centralized shortcut is
//! faithful.

use crate::navigation::NavVector;
use crate::safety::{Level, SafetyMap};
use crate::unicast::{source_decision, Decision};
use hypersafe_simkit::{Actor, Ctx, EventEngine, Time};
use hypersafe_topology::{FaultConfig, NodeId};

/// A unicast message in flight: the navigation vector plus the hop
/// trail (the trail is measurement instrumentation, not protocol state
/// — the algorithm itself reads only the vector).
#[derive(Clone, Debug)]
pub struct UnicastMsg {
    /// Navigation vector after the hop that delivered this message.
    pub nav: NavVector,
    /// Nodes visited so far, including the source.
    pub trail: Vec<NodeId>,
}

/// Per-node actor: local safety knowledge plus delivery flag.
pub struct UnicastNode {
    n: u8,
    /// Own level and the levels of the `n` neighbors, by dimension —
    /// exactly the information the paper's algorithm requires a node
    /// to hold after GS.
    own_level: Level,
    neighbor_levels: Vec<Level>,
    /// Set when this node receives a message with a zero vector.
    pub received: Option<UnicastMsg>,
    /// Pending unicast to start from this node: `(destination)`.
    start: Option<NodeId>,
    latency: Time,
}

impl UnicastNode {
    fn new(map: &SafetyMap, cfg: &FaultConfig, me: NodeId, latency: Time) -> Self {
        let cube = cfg.cube();
        UnicastNode {
            n: cube.dim(),
            own_level: map.level(me),
            neighbor_levels: cube.neighbors(me).map(|b| map.level(b)).collect(),
            received: None,
            start: None,
            latency,
        }
    }

    fn best_preferred_dim(&self, nav: NavVector) -> Option<u8> {
        let mut best: Option<(u8, Level)> = None;
        for i in nav.preferred_dims() {
            let lv = self.neighbor_levels[i as usize];
            match best {
                Some((_, b)) if b >= lv => {}
                _ => best = Some((i, lv)),
            }
        }
        best.map(|(i, _)| i)
    }

    fn forward(&self, ctx: &mut Ctx<UnicastMsg>, mut msg: UnicastMsg, dim: u8) {
        let next = ctx.self_id().neighbor(dim);
        msg.nav = msg.nav.after_hop(dim);
        msg.trail.push(next);
        ctx.send(next, msg, self.latency);
    }
}

/// Timer tag used to kick off a unicast at the source.
const START_TAG: u64 = 0xCAFE;

impl Actor for UnicastNode {
    type Msg = UnicastMsg;

    fn on_timer(&mut self, ctx: &mut Ctx<UnicastMsg>, tag: u64) {
        if tag != START_TAG {
            return;
        }
        let Some(d) = self.start.take() else { return };
        let s = ctx.self_id();
        // UNICASTING_AT_SOURCE_NODE, evaluated from purely local state.
        let nav = NavVector::new(s, d);
        let h = nav.remaining() as u16;
        if h == 0 {
            self.received = Some(UnicastMsg { nav, trail: vec![s] });
            return;
        }
        let c1 = (self.own_level as u16) >= h;
        let best_pref = self.best_preferred_dim(nav);
        let c2 = best_pref
            .is_some_and(|i| (self.neighbor_levels[i as usize] as u16) + 1 >= h);
        if c1 || c2 {
            let dim = best_pref.expect("h ≥ 1");
            self.forward(ctx, UnicastMsg { nav, trail: vec![s] }, dim);
            return;
        }
        // C3: best spare neighbor with level ≥ H + 1.
        let mut best: Option<(u8, Level)> = None;
        for i in nav.spare_dims(self.n) {
            let lv = self.neighbor_levels[i as usize];
            if (lv as u16) > h {
                match best {
                    Some((_, b)) if b >= lv => {}
                    _ => best = Some((i, lv)),
                }
            }
        }
        if let Some((dim, _)) = best {
            self.forward(ctx, UnicastMsg { nav, trail: vec![s] }, dim);
        }
        // else: failure detected locally; nothing is sent.
    }

    fn on_message(&mut self, ctx: &mut Ctx<UnicastMsg>, _from: NodeId, msg: UnicastMsg) {
        if msg.nav.is_done() {
            // UNICASTING_AT_INTERMEDIATE_NODE: N = 0 → we are the
            // destination.
            self.received = Some(msg);
            return;
        }
        if let Some(dim) = self.best_preferred_dim(msg.nav) {
            self.forward(ctx, msg, dim);
        }
    }
}

/// Outcome of a distributed unicast run.
#[derive(Clone, Debug)]
pub struct DistributedRun {
    /// The source's (purely local) decision, recomputed for reporting.
    pub decision: Decision,
    /// Trail recorded at the destination, if the message arrived.
    pub trail: Option<Vec<NodeId>>,
    /// Virtual time of arrival (hops × latency).
    pub arrival_time: Option<Time>,
    /// Messages delivered in the run.
    pub messages: u64,
}

/// Runs one unicast `s → d` as a distributed protocol over `cfg`,
/// with per-hop `latency`. The safety map must already be converged
/// (run GS first).
pub fn run_unicast(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
) -> DistributedRun {
    let latency = latency.max(1);
    let mut eng = EventEngine::new(cfg, |a| {
        let mut node = UnicastNode::new(map, cfg, a, latency);
        if a == s {
            node.start = Some(d);
        }
        node
    });
    eng.inject(s, START_TAG, 0);
    eng.run(u64::MAX);
    let messages = eng.stats().delivered;
    let arrival = eng.stats().end_time;
    let received = eng
        .actor(d)
        .and_then(|n| n.received.as_ref())
        .map(|m| m.trail.clone());
    DistributedRun {
        decision: source_decision(map, s, d),
        arrival_time: received.as_ref().map(|_| arrival),
        trail: received,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unicast::route;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn fig1() -> (FaultConfig, SafetyMap) {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        (cfg, map)
    }

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn distributed_matches_centralized_on_fig1_pairs() {
        let (cfg, map) = fig1();
        for s in cfg.healthy_nodes() {
            for d in cfg.healthy_nodes() {
                let central = route(&cfg, &map, s, d);
                let dist = run_unicast(&cfg, &map, s, d, 1);
                assert_eq!(central.decision, dist.decision, "{s} → {d}");
                match (central.delivered, &dist.trail) {
                    (true, Some(trail)) => {
                        assert_eq!(
                            central.path.as_ref().unwrap().nodes(),
                            trail.as_slice(),
                            "{s} → {d}: same hop-for-hop path"
                        );
                    }
                    (false, None) => {}
                    (c, t) => panic!("{s} → {d}: centralized={c} distributed={t:?}"),
                }
            }
        }
    }

    #[test]
    fn arrival_time_is_hops_times_latency() {
        let (cfg, map) = fig1();
        let run = run_unicast(&cfg, &map, n("1110"), n("0001"), 5);
        assert_eq!(run.arrival_time, Some(20), "4 hops × latency 5");
        assert_eq!(run.messages, 4);
    }

    #[test]
    fn failure_sends_nothing() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
        );
        let map = SafetyMap::compute(&cfg);
        let run = run_unicast(&cfg, &map, n("1110"), n("0000"), 1);
        assert_eq!(run.decision, Decision::Failure);
        assert_eq!(run.trail, None);
        assert_eq!(run.messages, 0, "abort is local — zero network cost");
    }

    #[test]
    fn self_unicast_terminates_immediately() {
        let (cfg, map) = fig1();
        let run = run_unicast(&cfg, &map, n("0000"), n("0000"), 1);
        assert_eq!(run.trail, Some(vec![n("0000")]));
        assert_eq!(run.messages, 0);
    }
}
