//! The unicasting algorithm executed as an actual distributed protocol
//! on the discrete-event engine.
//!
//! [`crate::unicast::route`] simulates the algorithm centrally (fast,
//! used by the Monte-Carlo experiments); this module runs it for real:
//! each node is an actor holding only its own safety level and its
//! neighbors' levels (the paper's locality assumption), messages carry
//! `(payload, navigation vector)`, and the destination raises a flag on
//! arrival. The test suite checks the two implementations take the
//! same path hop for hop — evidence that the centralized shortcut is
//! faithful.

use crate::navigation::NavVector;
use crate::safety::{Level, SafetyMap};
use crate::unicast::{source_decision, Decision};
use hypersafe_simkit::{
    Actor, ChannelModel, Ctx, EventEngine, EventStats, FifoScheduler, HypercubeNet, Metrics,
    RelCtx, Reliable, ReliableActor, ReliableConfig, Scheduler, Time,
};
use hypersafe_topology::{FaultConfig, NodeId};

/// Preferred-dimension choice shared by the lossless and lossy actors:
/// the preferred neighbor with the highest safety level (first such
/// dimension on ties).
fn best_preferred(neighbor_levels: &[Level], nav: NavVector) -> Option<u8> {
    let mut best: Option<(u8, Level)> = None;
    for i in nav.preferred_dims() {
        let lv = neighbor_levels[i as usize];
        match best {
            Some((_, b)) if b >= lv => {}
            _ => best = Some((i, lv)),
        }
    }
    best.map(|(i, _)| i)
}

/// C3's spare choice: the spare neighbor with the highest level, kept
/// only if that level exceeds `h` (level ≥ H + 1).
fn best_spare(neighbor_levels: &[Level], n: u8, nav: NavVector, h: u16) -> Option<u8> {
    let mut best: Option<(u8, Level)> = None;
    for i in nav.spare_dims(n) {
        let lv = neighbor_levels[i as usize];
        if (lv as u16) > h {
            match best {
                Some((_, b)) if b >= lv => {}
                _ => best = Some((i, lv)),
            }
        }
    }
    best.map(|(i, _)| i)
}

/// `UNICASTING_AT_SOURCE_NODE`, evaluated from purely local state:
/// the dimension of the first hop, or `None` when C1–C3 all fail.
fn source_first_dim(
    own_level: Level,
    neighbor_levels: &[Level],
    n: u8,
    nav: NavVector,
) -> Option<u8> {
    let h = nav.remaining() as u16;
    debug_assert!(h > 0);
    let c1 = (own_level as u16) >= h;
    let best_pref = best_preferred(neighbor_levels, nav);
    let c2 = best_pref.is_some_and(|i| (neighbor_levels[i as usize] as u16) + 1 >= h);
    if c1 || c2 {
        return Some(best_pref.expect("h ≥ 1"));
    }
    best_spare(neighbor_levels, n, nav, h)
}

/// A unicast message in flight: the navigation vector plus the hop
/// trail (the trail is measurement instrumentation, not protocol state
/// — the algorithm itself reads only the vector).
#[derive(Clone, Debug)]
pub struct UnicastMsg {
    /// Navigation vector after the hop that delivered this message.
    pub nav: NavVector,
    /// Nodes visited so far, including the source.
    pub trail: Vec<NodeId>,
}

/// Per-node actor: local safety knowledge plus delivery flag.
pub struct UnicastNode {
    n: u8,
    /// Own level and the levels of the `n` neighbors, by dimension —
    /// exactly the information the paper's algorithm requires a node
    /// to hold after GS.
    own_level: Level,
    neighbor_levels: Vec<Level>,
    /// Set when this node receives a message with a zero vector.
    pub received: Option<UnicastMsg>,
    /// Pending unicast to start from this node: `(destination)`.
    start: Option<NodeId>,
    latency: Time,
}

impl UnicastNode {
    fn new(map: &SafetyMap, cfg: &FaultConfig, me: NodeId, latency: Time) -> Self {
        let cube = cfg.cube();
        UnicastNode {
            n: cube.dim(),
            own_level: map.level(me),
            neighbor_levels: cube.neighbors(me).map(|b| map.level(b)).collect(),
            received: None,
            start: None,
            latency,
        }
    }

    fn forward(&self, ctx: &mut Ctx<UnicastMsg>, mut msg: UnicastMsg, dim: u8) {
        let next = ctx.self_id().neighbor(dim);
        msg.nav = msg.nav.after_hop(dim);
        msg.trail.push(next);
        ctx.send(next, msg, self.latency);
    }
}

/// Timer tag used to kick off a unicast at the source.
pub(crate) const START_TAG: u64 = 0xCAFE;

impl Actor for UnicastNode {
    type Msg = UnicastMsg;

    fn on_timer(&mut self, ctx: &mut Ctx<UnicastMsg>, tag: u64) {
        if tag != START_TAG {
            return;
        }
        let Some(d) = self.start.take() else { return };
        let s = ctx.self_id();
        let nav = NavVector::new(s, d);
        if nav.is_done() {
            self.received = Some(UnicastMsg {
                nav,
                trail: vec![s],
            });
            return;
        }
        if let Some(dim) = source_first_dim(self.own_level, &self.neighbor_levels, self.n, nav) {
            self.forward(
                ctx,
                UnicastMsg {
                    nav,
                    trail: vec![s],
                },
                dim,
            );
        }
        // else: failure detected locally; nothing is sent.
    }

    fn on_message(&mut self, ctx: &mut Ctx<UnicastMsg>, _from: NodeId, msg: UnicastMsg) {
        if msg.nav.is_done() {
            // UNICASTING_AT_INTERMEDIATE_NODE: N = 0 → we are the
            // destination.
            self.received = Some(msg);
            return;
        }
        if let Some(dim) = best_preferred(&self.neighbor_levels, msg.nav) {
            self.forward(ctx, msg, dim);
        }
    }
}

/// Outcome of a distributed unicast run.
#[derive(Clone, Debug)]
pub struct DistributedRun {
    /// The source's (purely local) decision, recomputed for reporting.
    pub decision: Decision,
    /// Trail recorded at the destination, if the message arrived.
    pub trail: Option<Vec<NodeId>>,
    /// Virtual time of arrival (hops × latency).
    pub arrival_time: Option<Time>,
    /// Messages delivered in the run.
    pub messages: u64,
}

/// Runs one unicast `s → d` as a distributed protocol over `cfg`,
/// with per-hop `latency`. The safety map must already be converged
/// (run GS first).
pub fn run_unicast(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
) -> DistributedRun {
    run_unicast_sched(cfg, map, s, d, latency, Box::new(FifoScheduler))
}

/// [`run_unicast`] under an arbitrary [`Scheduler`] — the DST entry
/// point for the lossless protocol (reorder/stretch adversaries only;
/// the plain actor assumes reliable links, so loss bursts belong with
/// [`run_unicast_lossy_sched`]).
pub fn run_unicast_sched(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    sched: Box<dyn Scheduler>,
) -> DistributedRun {
    let latency = latency.max(1);
    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::with_parts(&net, None, sched, |a| {
        let mut node = UnicastNode::new(map, cfg, a, latency);
        if a == s {
            node.start = Some(d);
        }
        node
    });
    eng.inject(s, START_TAG, 0);
    eng.run(u64::MAX);
    let messages = eng.stats().delivered;
    let arrival = eng.stats().end_time;
    let received = eng
        .actor(d)
        .and_then(|n| n.received.as_ref())
        .map(|m| m.trail.clone());
    DistributedRun {
        decision: source_decision(map, s, d),
        arrival_time: received.as_ref().map(|_| arrival),
        trail: received,
        messages,
    }
}

/// How a unicast over a lossy channel ended — the widened taxonomy the
/// robustness experiments report on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LossyOutcome {
    /// The destination got exactly one copy.
    Delivered {
        /// Total retransmissions spent across the whole path (data and
        /// forwarded hops alike).
        retransmits: u64,
        /// Virtual time of first arrival at the destination.
        delay: Time,
    },
    /// The event budget ran out before the run resolved.
    TimedOut,
    /// A node found no feasible continuation (C1–C3 failed at the
    /// source, or no preferred neighbor remained at an intermediate).
    AbortedAt(NodeId),
    /// The reliable layer exhausted its retries handing the message to
    /// this next-hop node: the would-be holder is silent (dead or
    /// unreachable), so the message died with the handoff.
    HolderFailed(NodeId),
}

/// Result of a unicast run over a lossy channel.
#[derive(Clone, Debug)]
pub struct LossyRun {
    /// How the run ended.
    pub outcome: LossyOutcome,
    /// The source's local decision, recomputed for reporting.
    pub decision: Decision,
    /// Trail recorded at the destination, if the message arrived.
    pub trail: Option<Vec<NodeId>>,
    /// Engine statistics: lost / duplicated / retransmitted / acked.
    pub stats: EventStats,
    /// Copies surfaced to actors beyond the first, summed over all
    /// nodes. The reliable layer's duplicate suppression guarantees
    /// this is 0; it is reported so tests can assert it.
    pub duplicate_deliveries: u64,
}

/// [`UnicastNode`]'s logic behind the reliable layer, with the
/// bookkeeping the widened outcome taxonomy needs. Crate-visible so
/// [`crate::invariants`] can inspect it mid-run.
#[derive(Clone)]
pub(crate) struct LossyUnicastNode {
    n: u8,
    own_level: Level,
    neighbor_levels: Vec<Level>,
    pub(crate) received: Option<UnicastMsg>,
    pub(crate) received_at: Option<Time>,
    /// Unicast payloads surfaced to this node (≥ 2 would mean the
    /// reliable layer leaked a duplicate).
    pub(crate) receives: u64,
    /// Set when this node found no feasible next hop.
    pub(crate) aborted: bool,
    pub(crate) start: Option<NodeId>,
}

impl LossyUnicastNode {
    pub(crate) fn new(map: &SafetyMap, cfg: &FaultConfig, me: NodeId) -> Self {
        let cube = cfg.cube();
        LossyUnicastNode {
            n: cube.dim(),
            own_level: map.level(me),
            neighbor_levels: cube.neighbors(me).map(|b| map.level(b)).collect(),
            received: None,
            received_at: None,
            receives: 0,
            aborted: false,
            start: None,
        }
    }

    fn forward(&self, ctx: &mut RelCtx<UnicastMsg>, mut msg: UnicastMsg, dim: u8) {
        let next = ctx.self_id().neighbor(dim);
        msg.nav = msg.nav.after_hop(dim);
        msg.trail.push(next);
        ctx.send_reliable(next, msg);
    }
}

impl hypersafe_simkit::StateHash for UnicastMsg {
    fn state_hash(&self, h: &mut hypersafe_simkit::McHasher) {
        h.write_u64(self.nav.0);
        self.trail.state_hash(h);
    }
}

/// Canonical protocol state for the model checker: the delivery /
/// abort / pending-start flags and what was received. `received_at`
/// is a timestamp (timing detail the untimed checker abstracts away)
/// and the level tables are static per safety map — all excluded.
impl hypersafe_simkit::StateHash for LossyUnicastNode {
    fn state_hash(&self, h: &mut hypersafe_simkit::McHasher) {
        self.received.state_hash(h);
        h.write_u64(self.receives);
        h.write_bytes(&[self.aborted as u8]);
        self.start.state_hash(h);
    }
}

impl ReliableActor for LossyUnicastNode {
    type Msg = UnicastMsg;

    fn on_timer(&mut self, ctx: &mut RelCtx<UnicastMsg>, tag: u64) {
        if tag != START_TAG {
            return;
        }
        let Some(d) = self.start.take() else { return };
        let s = ctx.self_id();
        let nav = NavVector::new(s, d);
        if nav.is_done() {
            self.received = Some(UnicastMsg {
                nav,
                trail: vec![s],
            });
            self.received_at = Some(ctx.now());
            return;
        }
        match source_first_dim(self.own_level, &self.neighbor_levels, self.n, nav) {
            Some(dim) => self.forward(
                ctx,
                UnicastMsg {
                    nav,
                    trail: vec![s],
                },
                dim,
            ),
            None => self.aborted = true,
        }
    }

    fn on_message(&mut self, ctx: &mut RelCtx<UnicastMsg>, _from: NodeId, msg: UnicastMsg) {
        self.receives += 1;
        if msg.nav.is_done() {
            if self.received.is_none() {
                self.received_at = Some(ctx.now());
                self.received = Some(msg);
            }
            return;
        }
        if self.receives > 1 {
            // A duplicate surfaced (should never happen): forwarding it
            // again would fork the unicast, so refuse.
            return;
        }
        match best_preferred(&self.neighbor_levels, msg.nav) {
            Some(dim) => self.forward(ctx, msg, dim),
            None => self.aborted = true,
        }
    }
}

/// Runs one unicast `s → d` over the lossy `channel` with reliable
/// per-hop delivery (`rcfg`), spending at most `max_events` engine
/// events. The safety map must already be converged — pair with
/// [`crate::gs::run_gs_reliable`] for an end-to-end lossy stack.
///
/// Delivery guarantee: whenever the centralized [`crate::unicast::route`]
/// says the pair is feasible and no reliable link exhausts its retries,
/// the outcome is [`LossyOutcome::Delivered`] — each hop's handoff is
/// exactly-once, so the lossless hop-by-hop argument (Theorem 2)
/// carries over unchanged.
// The argument list mirrors run_unicast plus the channel knobs; a
// params struct would just rename the call sites' locals.
#[allow(clippy::too_many_arguments)]
pub fn run_unicast_lossy(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    channel: ChannelModel,
    rcfg: ReliableConfig,
    max_events: u64,
) -> LossyRun {
    run_unicast_lossy_sched(
        cfg,
        map,
        s,
        d,
        latency,
        Some(channel),
        Box::new(FifoScheduler),
        rcfg,
        max_events,
    )
}

/// [`run_unicast_lossy`] with a [`Metrics`] registry installed from
/// engine construction: per-node / per-dimension counters and the
/// transit-latency histogram come back alongside the run. On delivery
/// the registry's `hops` histogram records the trail length and its
/// `rounds` histogram the end-to-end delay in ticks.
#[allow(clippy::too_many_arguments)]
pub fn run_unicast_lossy_observed(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    channel: ChannelModel,
    rcfg: ReliableConfig,
    max_events: u64,
) -> (LossyRun, Metrics) {
    let net = HypercubeNet::new(cfg);
    let mut eng = lossy_engine_observed(
        &net,
        cfg,
        map,
        s,
        d,
        latency,
        Some(channel),
        Box::new(FifoScheduler),
        rcfg,
    );
    let processed = eng.run(max_events);
    let run = collect_lossy(cfg, map, s, d, &eng, processed, max_events);
    let mut m = eng.take_metrics().expect("metrics requested");
    if let Some(trail) = &run.trail {
        m.record_hops(trail.len().saturating_sub(1) as u64);
    }
    if let LossyOutcome::Delivered { delay, .. } = run.outcome {
        m.record_rounds(delay);
    }
    (run, m)
}

/// [`run_unicast_lossy`] under an arbitrary [`Scheduler`] and an
/// optional channel — the DST entry point for the ARQ-protected
/// protocol, which must survive even loss/duplication-bursting
/// adversaries ([`hypersafe_simkit::AdversarialScheduler::from_seed`]).
#[allow(clippy::too_many_arguments)]
pub fn run_unicast_lossy_sched(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    channel: Option<ChannelModel>,
    sched: Box<dyn Scheduler>,
    rcfg: ReliableConfig,
    max_events: u64,
) -> LossyRun {
    let net = HypercubeNet::new(cfg);
    let mut eng = lossy_engine(&net, cfg, map, s, d, latency, channel, sched, rcfg);
    let processed = eng.run(max_events);
    collect_lossy(cfg, map, s, d, &eng, processed, max_events)
}

/// Builds (but does not run) the reliable unicast engine: actors
/// installed, start event injected. Split out so [`crate::invariants`]
/// can interleave invariant checks and kill injections with the run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lossy_engine<'e>(
    net: &'e HypercubeNet<'e>,
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    channel: Option<ChannelModel>,
    sched: Box<dyn Scheduler>,
    rcfg: ReliableConfig,
) -> EventEngine<'e, HypercubeNet<'e>, Reliable<LossyUnicastNode>> {
    build_lossy_engine(net, cfg, map, s, d, latency, channel, sched, rcfg, false)
}

/// [`lossy_engine`] with a metrics registry installed before
/// `on_start`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lossy_engine_observed<'e>(
    net: &'e HypercubeNet<'e>,
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    channel: Option<ChannelModel>,
    sched: Box<dyn Scheduler>,
    rcfg: ReliableConfig,
) -> EventEngine<'e, HypercubeNet<'e>, Reliable<LossyUnicastNode>> {
    build_lossy_engine(net, cfg, map, s, d, latency, channel, sched, rcfg, true)
}

#[allow(clippy::too_many_arguments)]
fn build_lossy_engine<'e>(
    net: &'e HypercubeNet<'e>,
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    channel: Option<ChannelModel>,
    sched: Box<dyn Scheduler>,
    rcfg: ReliableConfig,
    observe: bool,
) -> EventEngine<'e, HypercubeNet<'e>, Reliable<LossyUnicastNode>> {
    let latency = latency.max(1);
    let n = cfg.cube().dim();
    let build = if observe {
        EventEngine::with_parts_observed
    } else {
        EventEngine::with_parts
    };
    let mut eng = build(net, channel, sched, |a| {
        let mut inner = LossyUnicastNode::new(map, cfg, a);
        if a == s {
            inner.start = Some(d);
        }
        Reliable::new(inner, a, n, latency, rcfg)
    });
    eng.inject(s, START_TAG, 0);
    eng
}

/// Resolves a finished (or budget-exhausted) reliable unicast engine
/// into the [`LossyRun`] taxonomy.
pub(crate) fn collect_lossy(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    eng: &EventEngine<'_, HypercubeNet<'_>, Reliable<LossyUnicastNode>>,
    processed: u64,
    max_events: u64,
) -> LossyRun {
    let stats = eng.stats().clone();
    let received = eng.actor(d).and_then(|r| r.inner.received.clone());
    let received_at = eng.actor(d).and_then(|r| r.inner.received_at);
    let mut aborted_at = None;
    let mut holder_failed = None;
    let mut duplicate_deliveries = 0;
    for a in cfg.healthy_nodes() {
        let Some(r) = eng.actor(a) else { continue };
        if r.inner.aborted && aborted_at.is_none() {
            aborted_at = Some(a);
        }
        if holder_failed.is_none() {
            if let Some(&dim) = r.endpoint.gave_up_dims().first() {
                holder_failed = Some(a.neighbor(dim));
            }
        }
        // A node killed mid-run *after* it accepted the message (its
        // handoff completed, so no sender ever gives up on it) took the
        // message to its grave — its frozen post-mortem state is the
        // only witness.
        if holder_failed.is_none() && eng.is_dead(a) && r.inner.receives > 0 {
            holder_failed = Some(a);
        }
        duplicate_deliveries += r.inner.receives.saturating_sub(1);
    }

    let outcome = if let Some(delay) = received_at {
        LossyOutcome::Delivered {
            retransmits: stats.retransmitted,
            delay,
        }
    } else if let Some(a) = aborted_at {
        LossyOutcome::AbortedAt(a)
    } else if let Some(h) = holder_failed {
        LossyOutcome::HolderFailed(h)
    } else if processed == max_events {
        LossyOutcome::TimedOut
    } else {
        // Queue drained with no arrival, no abort, no give-up: the
        // start event found nothing to do (s == d handled above).
        LossyOutcome::AbortedAt(s)
    };
    LossyRun {
        outcome,
        decision: source_decision(map, s, d),
        trail: received.map(|m| m.trail),
        stats,
        duplicate_deliveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unicast::route;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn fig1() -> (FaultConfig, SafetyMap) {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        (cfg, map)
    }

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn distributed_matches_centralized_on_fig1_pairs() {
        let (cfg, map) = fig1();
        for s in cfg.healthy_nodes() {
            for d in cfg.healthy_nodes() {
                let central = route(&cfg, &map, s, d);
                let dist = run_unicast(&cfg, &map, s, d, 1);
                assert_eq!(central.decision, dist.decision, "{s} → {d}");
                match (central.delivered, &dist.trail) {
                    (true, Some(trail)) => {
                        assert_eq!(
                            central.path.as_ref().unwrap().nodes(),
                            trail.as_slice(),
                            "{s} → {d}: same hop-for-hop path"
                        );
                    }
                    (false, None) => {}
                    (c, t) => panic!("{s} → {d}: centralized={c} distributed={t:?}"),
                }
            }
        }
    }

    #[test]
    fn arrival_time_is_hops_times_latency() {
        let (cfg, map) = fig1();
        let run = run_unicast(&cfg, &map, n("1110"), n("0001"), 5);
        assert_eq!(run.arrival_time, Some(20), "4 hops × latency 5");
        assert_eq!(run.messages, 4);
    }

    #[test]
    fn failure_sends_nothing() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
        );
        let map = SafetyMap::compute(&cfg);
        let run = run_unicast(&cfg, &map, n("1110"), n("0000"), 1);
        assert_eq!(run.decision, Decision::Failure);
        assert_eq!(run.trail, None);
        assert_eq!(run.messages, 0, "abort is local — zero network cost");
    }

    #[test]
    fn self_unicast_terminates_immediately() {
        let (cfg, map) = fig1();
        let run = run_unicast(&cfg, &map, n("0000"), n("0000"), 1);
        assert_eq!(run.trail, Some(vec![n("0000")]));
        assert_eq!(run.messages, 0);
    }

    fn default_lossy(
        cfg: &FaultConfig,
        map: &SafetyMap,
        s: NodeId,
        d: NodeId,
        channel: ChannelModel,
    ) -> LossyRun {
        run_unicast_lossy(
            cfg,
            map,
            s,
            d,
            1,
            channel,
            ReliableConfig::default(),
            5_000_000,
        )
    }

    #[test]
    fn lossy_delivery_takes_same_path_as_lossless() {
        let (cfg, map) = fig1();
        let run = default_lossy(
            &cfg,
            &map,
            n("1110"),
            n("0001"),
            ChannelModel::new(0xA11CE)
                .with_loss(0.2)
                .with_jitter(3)
                .with_duplication(0.1),
        );
        let LossyOutcome::Delivered { delay, .. } = run.outcome else {
            panic!("expected delivery, got {:?}", run.outcome);
        };
        assert!(delay >= 4, "at least one tick per hop");
        assert_eq!(
            run.trail.as_deref(),
            Some(&[n("1110"), n("1111"), n("1101"), n("0101"), n("0001")][..]),
            "reliable layer preserves the hop-for-hop path"
        );
        assert_eq!(run.duplicate_deliveries, 0, "no duplicate ever surfaces");
    }

    #[test]
    fn lossy_unicast_delivers_across_loss_rates_when_feasible() {
        let (cfg, map) = fig1();
        for (i, loss) in [0.01, 0.05, 0.2].into_iter().enumerate() {
            for (s, d) in [(n("1110"), n("0001")), (n("0001"), n("1100"))] {
                let ch = ChannelModel::new(0xD0 + i as u64).with_loss(loss);
                let run = default_lossy(&cfg, &map, s, d, ch);
                assert!(
                    matches!(run.outcome, LossyOutcome::Delivered { .. }),
                    "{s} → {d} at loss {loss}: {:?}",
                    run.outcome
                );
                assert_eq!(run.duplicate_deliveries, 0);
            }
        }
    }

    #[test]
    fn infeasible_source_aborts_locally_under_loss_too() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
        );
        let map = SafetyMap::compute(&cfg);
        let run = default_lossy(
            &cfg,
            &map,
            n("1110"),
            n("0000"),
            ChannelModel::lossy(9, 0.05),
        );
        assert_eq!(run.outcome, LossyOutcome::AbortedAt(n("1110")));
        assert_eq!(run.decision, Decision::Failure);
        assert_eq!(run.trail, None);
    }

    #[test]
    fn stale_map_hands_to_dead_node_reports_holder_failed() {
        // Route on a stale (fault-free) map while 0001 is actually
        // dead: the first handoff 0000 → 0001 exhausts its retries.
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["0001"]));
        let stale = SafetyMap::compute(&FaultConfig::fault_free(cube));
        let rcfg = ReliableConfig {
            rto: 4,
            rto_cap: 32,
            max_retries: 4,
            ..ReliableConfig::default()
        };
        let run = run_unicast_lossy(
            &cfg,
            &stale,
            n("0000"),
            n("0011"),
            1,
            ChannelModel::new(2),
            rcfg,
            5_000_000,
        );
        assert_eq!(run.outcome, LossyOutcome::HolderFailed(n("0001")));
        assert_eq!(run.stats.retransmitted, 4, "bounded by max_retries");
    }

    #[test]
    fn event_budget_exhaustion_reports_timeout() {
        let (cfg, map) = fig1();
        let run = run_unicast_lossy(
            &cfg,
            &map,
            n("1110"),
            n("0001"),
            1,
            ChannelModel::lossy(5, 0.3),
            ReliableConfig::default(),
            2, // absurdly small budget
        );
        assert_eq!(run.outcome, LossyOutcome::TimedOut);
    }

    #[test]
    fn lossy_self_unicast_is_immediate() {
        let (cfg, map) = fig1();
        let run = default_lossy(
            &cfg,
            &map,
            n("0000"),
            n("0000"),
            ChannelModel::lossy(1, 0.2),
        );
        assert!(matches!(
            run.outcome,
            LossyOutcome::Delivered {
                retransmits: 0,
                delay: 0
            }
        ));
        assert_eq!(run.trail, Some(vec![n("0000")]));
    }
}
