//! Broadcasting in generalized hypercubes — the §4.2 analog of the
//! safety-level broadcast (extension).
//!
//! The binary broadcast hands each child a suffix of the dimension
//! order; in `GH` a dimension is a *clique*, so covering dimension `i`
//! means sending to all `m_i − 1` peers at once, each inheriting the
//! remaining dimension suffix. Ordering dimensions by their
//! **dimension-level** (the clique minimum, Definition 4) descending
//! preserves the guarantee by the same sorted-subsequence argument:
//! a node whose safety level is at least the number of dimensions it
//! owns covers every nonfaulty node of its sub-GH.

use crate::gh_safety::GhSafetyMap;
use hypersafe_topology::{FaultSet, GeneralizedHypercube, GhNode, NodeId};

/// Outcome of one GH broadcast.
#[derive(Clone, Debug)]
pub struct GhBroadcastResult {
    received: Vec<bool>,
    /// Messages sent (tree edges, including ones into faulty peers).
    pub messages: u64,
    /// Tree depth in steps.
    pub steps: u32,
    /// Safe relay used by an unsafe source, if any.
    pub relayed_via: Option<GhNode>,
}

impl GhBroadcastResult {
    /// Whether node `a` received the message.
    pub fn received(&self, a: GhNode) -> bool {
        self.received[a.raw() as usize]
    }

    /// Number of covered nodes.
    pub fn coverage(&self) -> u64 {
        self.received.iter().filter(|&&r| r).count() as u64
    }

    /// Whether every nonfaulty node received the message.
    pub fn complete(&self, gh: &GeneralizedHypercube, faults: &FaultSet) -> bool {
        gh.nodes()
            .all(|a| faults.contains(NodeId::new(a.raw())) || self.received(a))
    }
}

/// Broadcasts from `source` over the whole `GH`; unsafe sources relay
/// through a safe neighbor when one exists (the Fig. 5 instance
/// guarantees one for every unsafe node).
pub fn gh_broadcast(
    gh: &GeneralizedHypercube,
    map: &GhSafetyMap,
    faults: &FaultSet,
    source: GhNode,
) -> GhBroadcastResult {
    let mut result = GhBroadcastResult {
        received: vec![false; gh.num_nodes() as usize],
        messages: 0,
        steps: 0,
        relayed_via: None,
    };
    if faults.contains(NodeId::new(source.raw())) {
        return result;
    }
    result.received[source.raw() as usize] = true;

    let all_dims: Vec<u8> = (0..gh.dim()).collect();
    if map.is_safe(source) {
        descend(gh, map, faults, source, &all_dims, 0, &mut result);
        return result;
    }
    if let Some(relay) = gh.neighbors(source).find(|&b| map.is_safe(b)) {
        result.messages += 1;
        result.relayed_via = Some(relay);
        result.received[relay.raw() as usize] = true;
        descend(gh, map, faults, relay, &all_dims, 1, &mut result);
        return result;
    }
    descend(gh, map, faults, source, &all_dims, 0, &mut result);
    result
}

fn descend(
    gh: &GeneralizedHypercube,
    map: &GhSafetyMap,
    faults: &FaultSet,
    at: GhNode,
    dims: &[u8],
    depth: u32,
    result: &mut GhBroadcastResult,
) {
    result.steps = result.steps.max(depth);
    if dims.is_empty() {
        return;
    }
    // Order dimensions by clique-minimum level descending (the
    // dimension-level of Definition 4), lowest dimension on ties.
    let mut ordered: Vec<u8> = dims.to_vec();
    let dim_level = |i: u8| {
        gh.neighbors_along(at, i)
            .map(|b| map.level(b))
            .min()
            .expect("radix ≥ 2")
    };
    ordered.sort_by_key(|&i| (std::cmp::Reverse(dim_level(i)), i));
    for (rank, &dim) in ordered.iter().enumerate() {
        let rest = &ordered[rank + 1..];
        for peer in gh.neighbors_along(at, dim) {
            result.messages += 1;
            if faults.contains(NodeId::new(peer.raw())) {
                continue;
            }
            if !result.received[peer.raw() as usize] {
                result.received[peer.raw() as usize] = true;
                descend(gh, map, faults, peer, rest, depth + 1, result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gh232() -> GeneralizedHypercube {
        GeneralizedHypercube::from_product(&[2, 3, 2])
    }

    #[test]
    fn fault_free_gh_broadcast_covers_all() {
        let gh = gh232();
        let f = gh.fault_set();
        let map = GhSafetyMap::compute(&gh, &f);
        let r = gh_broadcast(&gh, &map, &f, GhNode(0));
        assert!(r.complete(&gh, &f));
        assert_eq!(r.messages, gh.num_nodes() - 1, "spanning tree edge count");
        assert_eq!(r.steps, 3, "one step per dimension");
    }

    #[test]
    fn safe_source_complete_exhaustive_small_fault_sets() {
        let gh = gh232();
        let total = gh.num_nodes();
        for mask in 0u64..(1 << total) {
            if mask.count_ones() > 4 {
                continue;
            }
            let mut f = gh.fault_set();
            for i in 0..total {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let map = GhSafetyMap::compute(&gh, &f);
            for a in gh.nodes() {
                if f.contains(NodeId::new(a.raw())) || !map.is_safe(a) {
                    continue;
                }
                let r = gh_broadcast(&gh, &map, &f, a);
                assert!(
                    r.complete(&gh, &f),
                    "mask {mask:#b} source {}",
                    gh.format(a)
                );
            }
        }
    }

    #[test]
    fn fig5_instance_every_source_covers() {
        // Every unsafe nonfaulty node has a safe neighbor here, so all
        // healthy sources achieve full coverage (relayed or not).
        let gh = gh232();
        let f = gh.fault_set_from_strs(&["011", "100", "111", "121"]);
        let map = GhSafetyMap::compute(&gh, &f);
        for a in gh.nodes() {
            if f.contains(NodeId::new(a.raw())) {
                continue;
            }
            let r = gh_broadcast(&gh, &map, &f, a);
            assert!(r.complete(&gh, &f), "source {}", gh.format(a));
            if !map.is_safe(a) {
                assert!(
                    r.relayed_via.is_some(),
                    "unsafe {} must relay",
                    gh.format(a)
                );
            }
        }
    }

    #[test]
    fn faulty_source_sends_nothing() {
        let gh = gh232();
        let f = gh.fault_set_from_strs(&["011"]);
        let map = GhSafetyMap::compute(&gh, &f);
        let r = gh_broadcast(&gh, &map, &f, gh.parse("011").unwrap());
        assert_eq!(r.coverage(), 0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn binary_radices_match_q_broadcast_coverage() {
        use crate::broadcast::broadcast;
        use crate::safety::SafetyMap;
        use hypersafe_topology::{FaultConfig, Hypercube};
        // GH(2,2,2,2) with the Fig. 1 faults behaves like Q_4.
        let gh = GeneralizedHypercube::new(&[2, 2, 2, 2]);
        let cube = Hypercube::new(4);
        let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
        let ghmap = GhSafetyMap::compute(&gh, &faults);
        let cfg = FaultConfig::with_node_faults(cube, faults.clone());
        let qmap = SafetyMap::compute(&cfg);
        // Tree shaping differs (per-node levels vs dimension minima),
        // so compare where both carry a guarantee: safe sources must
        // both achieve complete coverage.
        for raw in 0..16u64 {
            if faults.contains(NodeId::new(raw)) || !qmap.is_safe(NodeId::new(raw)) {
                continue;
            }
            let gr = gh_broadcast(&gh, &ghmap, &faults, GhNode(raw));
            let qr = broadcast(&cfg, &qmap, NodeId::new(raw));
            assert!(gr.complete(&gh, &faults), "source {raw:04b}");
            assert!(qr.complete(&cfg), "source {raw:04b}");
            assert_eq!(gr.coverage(), qr.coverage(), "source {raw:04b}");
        }
    }
}
