//! The DST invariant suite: the paper's guarantees as machine-checked
//! properties of *running* simulations.
//!
//! [`crate::properties`] states the theorems over centralized
//! computations; this module restates them against distributed runs
//! under arbitrary schedulers, in two layers:
//!
//! * **Engine invariants** ([`hypersafe_simkit::Invariant`] impls)
//!   checked at every quiescent point of a run —
//!   [`GsLevelsDescend`] (safety levels only ever move down the
//!   lattice, and never below Theorem 1's fixed point) and
//!   [`ArqSingleDelivery`] (no unicast payload ever surfaces twice at
//!   a node).
//! * **Post-run checkers** returning [`Violation`]-style
//!   counterexamples — Theorem-2 path optimality, Theorem-4
//!   infeasibility soundness (against the
//!   [`hypersafe_topology::connectivity`] BFS oracle), GS convergence
//!   to the centralized fixed point, and ARQ exactly-once accounting.
//!
//! The checked runners ([`run_gs_async_checked`],
//! [`run_unicast_lossy_checked`]) wire both layers together and are
//! what `repro dst` sweeps over seeds.

use crate::gh_safety::{GhGsNode, GhSafetyMap};
use crate::gh_unicast::GhDecision;
use crate::gs::{collect_gs_async, AsyncGsNode, GsAsyncRun};
use crate::properties::Violation;
use crate::safety::{Level, SafetyMap};
use crate::safety_delta::{ChurnEvent, DeltaGsNode, DeltaGsRun};
use crate::unicast::Decision;
use crate::unicast_distributed::{collect_lossy, lossy_engine, LossyOutcome, LossyRun};
use hypersafe_simkit::{
    ChannelModel, EventEngine, HypercubeNet, Invariant, InvariantViolation, Reliable,
    ReliableConfig, Scheduler, Time, Trace,
};
use hypersafe_topology::{
    connectivity, FaultConfig, FaultSet, GeneralizedHypercube, GhNode, NodeId,
};

use crate::unicast_distributed::LossyUnicastNode;

/// Engine invariant: every node's safety level descends monotonically
/// from the top start and never undershoots the centralized fixed
/// point. Checked at every quiescent point of an asynchronous GS run —
/// this is the "safety-level monotonic convergence" leg of the DST
/// suite, and the property whose violation under message reordering
/// motivated the monotone merge in [`AsyncGsNode`].
pub struct GsLevelsDescend {
    fixed: SafetyMap,
    prev: Vec<Level>,
}

impl GsLevelsDescend {
    /// Invariant state for a run over `cfg` (computes the Theorem 1
    /// fixed point once as the lower bound).
    pub fn new(cfg: &FaultConfig) -> Self {
        let n = cfg.cube().dim();
        GsLevelsDescend {
            fixed: SafetyMap::compute(cfg),
            prev: vec![n; cfg.cube().num_nodes() as usize],
        }
    }
}

impl<'n> Invariant<HypercubeNet<'n>, AsyncGsNode> for GsLevelsDescend {
    fn name(&self) -> &'static str {
        "gs-levels-descend"
    }

    fn check(
        &mut self,
        eng: &EventEngine<'_, HypercubeNet<'n>, AsyncGsNode>,
    ) -> Result<(), String> {
        for (a, node) in eng.actors_iter() {
            let lv = node.level();
            let prev = self.prev[a.raw() as usize];
            if lv > prev {
                return Err(format!("{a} rose from level {prev} to {lv}"));
            }
            if lv < self.fixed.level(a) {
                return Err(format!(
                    "{a} undershot the fixed point: {lv} < {}",
                    self.fixed.level(a)
                ));
            }
            if !node.monotone() {
                return Err(format!("{a} recorded a non-monotone internal update"));
            }
            self.prev[a.raw() as usize] = lv;
        }
        Ok(())
    }
}

/// Engine invariant for delta-GS runs: every node's level moves
/// monotonically in the event's direction (down after a fault, up
/// after a recovery), pinned between its pre-event start and the
/// post-event Theorem 1 fixed point. Checked at every quiescent point
/// — the incremental-maintenance leg of the DST suite: if the delta
/// protocol ever leaves the corridor between the old and new fixed
/// points, incremental maintenance is not exact and the run fails.
pub struct DeltaGsDirected {
    target: SafetyMap,
    prev: Vec<Level>,
    descending: bool,
}

impl DeltaGsDirected {
    /// Invariant state for a delta-GS run: `cfg` is the post-event
    /// configuration, `prev_map` the pre-event fixed point. Computes
    /// the post-event fixed point once as the far bound.
    pub fn new(cfg: &FaultConfig, prev_map: &SafetyMap, event: ChurnEvent) -> Self {
        let mut prev = prev_map.to_vec();
        let descending = matches!(event, ChurnEvent::Fault(_));
        if let ChurnEvent::Recover(a) = event {
            // The revived node starts from zero knowledge, which
            // Definition 1 evaluates to level 1 (a healthy node's
            // minimum) — not its pre-event level 0.
            prev[a.raw() as usize] = 1;
        }
        DeltaGsDirected {
            target: SafetyMap::compute(cfg),
            prev,
            descending,
        }
    }
}

impl<'n> Invariant<HypercubeNet<'n>, DeltaGsNode> for DeltaGsDirected {
    fn name(&self) -> &'static str {
        "delta-gs-directed"
    }

    fn check(
        &mut self,
        eng: &EventEngine<'_, HypercubeNet<'n>, DeltaGsNode>,
    ) -> Result<(), String> {
        for (a, node) in eng.actors_iter() {
            let lv = node.level();
            let prev = self.prev[a.raw() as usize];
            let goal = self.target.level(a);
            if self.descending {
                if lv > prev {
                    return Err(format!("{a} rose from level {prev} to {lv} after a fault"));
                }
                if lv < goal {
                    return Err(format!("{a} undershot the new fixed point: {lv} < {goal}"));
                }
            } else {
                if lv < prev {
                    return Err(format!(
                        "{a} fell from level {prev} to {lv} after a recovery"
                    ));
                }
                if lv > goal {
                    return Err(format!("{a} overshot the new fixed point: {lv} > {goal}"));
                }
            }
            if !node.monotone() {
                return Err(format!(
                    "{a} recorded a direction-violating internal update"
                ));
            }
            self.prev[a.raw() as usize] = lv;
        }
        Ok(())
    }
}

/// Engine invariant: the reliable layer never surfaces a unicast
/// payload twice at any node — the "ARQ exactly-once" leg, checked at
/// every quiescent point (not just at the end, so a transient
/// duplicate that a later event would mask still fails the run).
pub struct ArqSingleDelivery;

impl<'n> Invariant<HypercubeNet<'n>, Reliable<LossyUnicastNode>> for ArqSingleDelivery {
    fn name(&self) -> &'static str {
        "arq-single-delivery"
    }

    fn check(
        &mut self,
        eng: &EventEngine<'_, HypercubeNet<'n>, Reliable<LossyUnicastNode>>,
    ) -> Result<(), String> {
        for (a, r) in eng.actors_iter() {
            if r.inner.receives > 1 {
                return Err(format!(
                    "{a} had {} payload deliveries surface",
                    r.inner.receives
                ));
            }
        }
        Ok(())
    }
}

/// Runs asynchronous GS under `sched` with [`GsLevelsDescend`] checked
/// at every quiescent point. Reorder/stretch adversaries only
/// ([`hypersafe_simkit::AdversarialScheduler::permute`]): the plain
/// protocol assumes reliable links.
pub fn run_gs_async_checked(
    cfg: &FaultConfig,
    latency: u64,
    sched: Box<dyn Scheduler>,
) -> Result<GsAsyncRun, InvariantViolation> {
    run_gs_async_checked_traced(cfg, latency, sched, false).0
}

/// [`run_gs_async_checked`] with an optional per-delivery [`Trace`]
/// (enabled when `traced`) — the replay artifact `repro dst` writes for
/// a violating seed. The trace is returned even when the run fails,
/// which is the whole point: it shows the schedule that broke things.
pub fn run_gs_async_checked_traced(
    cfg: &FaultConfig,
    latency: u64,
    sched: Box<dyn Scheduler>,
    traced: bool,
) -> (Result<GsAsyncRun, InvariantViolation>, Trace) {
    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::with_parts(&net, None, sched, |a| {
        AsyncGsNode::new(cfg, a, latency.max(1))
    });
    if traced {
        eng.set_trace(Box::new(Trace::enabled()));
    }
    let mut descend = GsLevelsDescend::new(cfg);
    let res = eng.run_checked(u64::MAX, &mut [&mut descend]);
    let run = collect_gs_async(cfg, &eng);
    let trace = eng
        .take_trace()
        .and_then(|t| t.into_trace())
        .unwrap_or_default();
    (res.map(|_| run), trace)
}

/// Runs one delta-GS update under `sched` with [`DeltaGsDirected`]
/// checked at every quiescent point, then verifies the quiescent map
/// equals `SafetyMap::compute` on the post-event configuration —
/// incremental exactness as a machine-checked property of a running
/// simulation. Reorder/stretch adversaries only (the protocol assumes
/// reliable links).
pub fn run_delta_gs_checked(
    cfg: &FaultConfig,
    prev_map: &SafetyMap,
    event: ChurnEvent,
    latency: u64,
    sched: Box<dyn Scheduler>,
) -> Result<DeltaGsRun, InvariantViolation> {
    let net = HypercubeNet::new(cfg);
    let latency = latency.max(1);
    let mut eng = EventEngine::with_parts(&net, None, sched, |a| {
        DeltaGsNode::new(cfg, prev_map, event, a, latency)
    });
    let mut directed = DeltaGsDirected::new(cfg, prev_map, event);
    eng.run_checked(u64::MAX, &mut [&mut directed])?;
    let levels: Vec<Level> = cfg
        .cube()
        .nodes()
        .map(|a| eng.actor(a).map_or(0, DeltaGsNode::level))
        .collect();
    let fixed = SafetyMap::compute(cfg);
    if levels != fixed.to_vec() {
        let bad = cfg
            .cube()
            .nodes()
            .find(|a| levels[a.raw() as usize] != fixed.level(*a))
            .expect("some node differs");
        return Err(InvariantViolation {
            invariant: "delta-gs-exact".into(),
            time: eng.stats().end_time,
            events_processed: eng.stats().delivered,
            detail: format!(
                "{bad} quiesced at level {} but the post-event fixed point is {}",
                levels[bad.raw() as usize],
                fixed.level(bad)
            ),
        });
    }
    let monotone = cfg
        .cube()
        .nodes()
        .filter_map(|a| eng.actor(a))
        .all(DeltaGsNode::monotone);
    Ok(DeltaGsRun {
        map: SafetyMap::from_levels(cfg.cube(), levels),
        stats: eng.stats().clone(),
        monotone,
    })
}

/// Runs one reliable unicast under `sched` with [`ArqSingleDelivery`]
/// checked at every quiescent point, after injecting each `(node,
/// delay)` kill from `kills` (the DST adversary's fault plan — the
/// list the shrinker minimizes on violation).
#[allow(clippy::too_many_arguments)]
pub fn run_unicast_lossy_checked(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    channel: Option<ChannelModel>,
    sched: Box<dyn Scheduler>,
    rcfg: ReliableConfig,
    max_events: u64,
    kills: &[(NodeId, Time)],
) -> Result<LossyRun, InvariantViolation> {
    run_unicast_lossy_checked_traced(
        cfg, map, s, d, latency, channel, sched, rcfg, max_events, kills, false,
    )
    .0
}

/// [`run_unicast_lossy_checked`] with an optional per-delivery
/// [`Trace`] (enabled when `traced`), returned alongside the result so
/// a violating run's exact schedule can be written as an artifact.
#[allow(clippy::too_many_arguments)]
pub fn run_unicast_lossy_checked_traced(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    latency: Time,
    channel: Option<ChannelModel>,
    sched: Box<dyn Scheduler>,
    rcfg: ReliableConfig,
    max_events: u64,
    kills: &[(NodeId, Time)],
    traced: bool,
) -> (Result<LossyRun, InvariantViolation>, Trace) {
    let net = HypercubeNet::new(cfg);
    let mut eng = lossy_engine(&net, cfg, map, s, d, latency, channel, sched, rcfg);
    if traced {
        eng.set_trace(Box::new(Trace::enabled()));
    }
    for &(node, delay) in kills {
        eng.inject_kill(node, delay);
    }
    let mut once = ArqSingleDelivery;
    let res = eng.run_checked(max_events, &mut [&mut once]);
    let trace = eng
        .take_trace()
        .and_then(|t| t.into_trace())
        .unwrap_or_default();
    match res {
        Ok(processed) => (
            Ok(collect_lossy(cfg, map, s, d, &eng, processed, max_events)),
            trace,
        ),
        Err(v) => (Err(v), trace),
    }
}

/// **GS convergence.** A quiescent asynchronous GS run must sit exactly
/// on Theorem 1's unique fixed point, having descended monotonically.
pub fn check_gs_convergence(cfg: &FaultConfig, run: &GsAsyncRun) -> Result<(), Violation> {
    if !run.monotone {
        return Err(Violation {
            claim: "gs-monotone-convergence",
            witness: vec![],
            detail: "some node's level increased during the run".into(),
        });
    }
    let fixed = SafetyMap::compute(cfg);
    for a in cfg.cube().nodes() {
        if run.map.level(a) != fixed.level(a) {
            return Err(Violation {
                claim: "gs-monotone-convergence",
                witness: vec![a],
                detail: format!(
                    "converged to level {} but the fixed point is {}",
                    run.map.level(a),
                    fixed.level(a)
                ),
            });
        }
    }
    Ok(())
}

/// Structural validity of a delivered trail: starts at `s`, ends at
/// `d`, hops are cube neighbors over usable links, and no intermediate
/// node is faulty (footnote 3: a faulty *destination* still counts as
/// delivered).
fn check_trail(cfg: &FaultConfig, s: NodeId, d: NodeId, trail: &[NodeId]) -> Result<(), Violation> {
    let bad = |detail: String| {
        Err(Violation {
            claim: "unicast-trail-valid",
            witness: trail.to_vec(),
            detail,
        })
    };
    if trail.first() != Some(&s) || trail.last() != Some(&d) {
        return bad(format!("trail does not run {s} → {d}"));
    }
    for w in trail.windows(2) {
        if w[0].distance(w[1]) != 1 {
            return bad(format!("{} → {} is not a cube edge", w[0], w[1]));
        }
        if !cfg.link_usable(w[0], w[1]) {
            return bad(format!("{} → {} crosses a faulty link", w[0], w[1]));
        }
    }
    for &v in &trail[1..trail.len().saturating_sub(1)] {
        if cfg.node_faulty(v) {
            return bad(format!("intermediate {v} is faulty"));
        }
    }
    Ok(())
}

/// **Theorem 2 / Theorem 3 optimality.** Given the source's decision
/// and the trail the destination recorded (if any): an `Optimal`
/// verdict must realize exactly `H` hops, `Suboptimal` exactly
/// `H + 2`, `Failure` must deliver nothing, and every delivered trail
/// must be structurally valid. `delivery_guaranteed` is false when the
/// run was perturbed outside the theorems' model (mid-run kills, an
/// exhausted event budget) — then a missing delivery is excused but a
/// *wrong* delivery still fails.
pub fn check_unicast_optimality(
    cfg: &FaultConfig,
    s: NodeId,
    d: NodeId,
    decision: Decision,
    trail: Option<&[NodeId]>,
    delivery_guaranteed: bool,
) -> Result<(), Violation> {
    let h = s.distance(d) as usize;
    let expect_hops = |trail: Option<&[NodeId]>, hops: usize| -> Result<(), Violation> {
        match trail {
            None if !delivery_guaranteed => Ok(()),
            None => Err(Violation {
                claim: "theorem2-optimal-delivery",
                witness: vec![s, d],
                detail: format!("{decision:?} accepted but nothing was delivered"),
            }),
            Some(t) => {
                check_trail(cfg, s, d, t)?;
                if t.len() != hops + 1 {
                    return Err(Violation {
                        claim: "theorem2-optimal-delivery",
                        witness: t.to_vec(),
                        detail: format!(
                            "{decision:?} promised {hops} hops, trail has {}",
                            t.len() - 1
                        ),
                    });
                }
                Ok(())
            }
        }
    };
    match decision {
        Decision::AlreadyThere => Ok(()),
        Decision::Optimal { .. } => expect_hops(trail, h),
        Decision::Suboptimal { .. } => expect_hops(trail, h + 2),
        Decision::Failure => match trail {
            None => Ok(()),
            Some(t) => Err(Violation {
                claim: "theorem4-failure-is-final",
                witness: t.to_vec(),
                detail: "source aborted yet something was delivered".into(),
            }),
        },
    }
}

/// **Theorem 4 soundness.** The infeasibility verdict, checked against
/// the BFS connectivity oracle:
///
/// * a disconnected healthy pair **must** be refused (an accept would
///   promise a delivery that cannot happen — Theorems 2/3 make accepts
///   unconditional guarantees);
/// * a `Failure` verdict is only legitimate when the pair is truly
///   disconnected **or** the fault count reaches `n` (below that,
///   Theorem 3 guarantees feasibility, so refusing a connected pair
///   would be a false negative).
pub fn check_theorem4_soundness(
    cfg: &FaultConfig,
    s: NodeId,
    d: NodeId,
    decision: Decision,
) -> Result<(), Violation> {
    let n = cfg.cube().dim() as usize;
    let reachable = connectivity::connected(cfg, s, d);
    let faults = cfg.node_faults().len() + cfg.link_faults().len();
    match decision {
        Decision::Failure => {
            if reachable && faults < n {
                return Err(Violation {
                    claim: "theorem4-soundness",
                    witness: vec![s, d],
                    detail: format!(
                        "refused a connected pair with only {faults} fault(s) < n = {n}"
                    ),
                });
            }
        }
        Decision::AlreadyThere => {}
        _ => {
            if !reachable {
                return Err(Violation {
                    claim: "theorem4-soundness",
                    witness: vec![s, d],
                    detail: "accepted a pair the BFS oracle says is disconnected".into(),
                });
            }
        }
    }
    Ok(())
}

/// **ARQ exactly-once, end of run.** No duplicate ever surfaced, and a
/// clean run (no kills, accept verdict, quiescent) must have delivered.
pub fn check_lossy_outcome(
    cfg: &FaultConfig,
    s: NodeId,
    d: NodeId,
    run: &LossyRun,
    kills: u64,
) -> Result<(), Violation> {
    if run.duplicate_deliveries > 0 {
        return Err(Violation {
            claim: "arq-exactly-once",
            witness: vec![d],
            detail: format!("{} duplicate deliveries surfaced", run.duplicate_deliveries),
        });
    }
    let delivery_guaranteed = kills == 0 && !matches!(run.outcome, LossyOutcome::TimedOut);
    check_unicast_optimality(
        cfg,
        s,
        d,
        run.decision,
        run.trail.as_deref(),
        delivery_guaranteed,
    )?;
    check_theorem4_soundness(cfg, s, d, run.decision)
}

// ---------------------------------------------------------------------
// Generalized-hypercube coverage (§4.2): the same two guarantee layers
// restated for GH topologies.
// ---------------------------------------------------------------------

/// BFS connectivity over the healthy part of a generalized hypercube —
/// the GH analogue of [`hypersafe_topology::connectivity::connected`].
fn gh_connected(gh: &GeneralizedHypercube, faults: &FaultSet, s: GhNode, d: GhNode) -> bool {
    if faults.contains(NodeId::new(s.raw())) || faults.contains(NodeId::new(d.raw())) {
        return false;
    }
    if s == d {
        return true;
    }
    let mut seen = vec![false; gh.num_nodes() as usize];
    seen[s.raw() as usize] = true;
    let mut stack = vec![s];
    while let Some(a) = stack.pop() {
        for b in gh.neighbors(a) {
            if seen[b.raw() as usize] || faults.contains(NodeId::new(b.raw())) {
                continue;
            }
            if b == d {
                return true;
            }
            seen[b.raw() as usize] = true;
            stack.push(b);
        }
    }
    false
}

/// Checked runner for the distributed GH `GLOBAL_STATUS`: steps the
/// lock-step engine round by round and verifies, after every round,
/// that no node's level ever rises (monotone descent from the all-`n`
/// start) or undershoots the centralized Definition 4 fixed point, that
/// the round count stays within the paper's `n − 1` bound (`+1` for
/// the final no-change confirmation round), and that the quiescent
/// levels equal [`GhSafetyMap::compute`] exactly.
pub fn run_gh_gs_checked(
    gh: &GeneralizedHypercube,
    faults: &FaultSet,
) -> Result<GhSafetyMap, Violation> {
    let n = gh.dim();
    let central = GhSafetyMap::compute(gh, faults);
    let port_dims: std::sync::Arc<[u8]> = (0..gh.degree() as usize)
        .map(|p| hypersafe_simkit::gh_port_dim(gh, p))
        .collect();
    let faulty: Vec<bool> = (0..gh.num_nodes())
        .map(|a| faults.contains(NodeId::new(a)))
        .collect();
    let mut eng = hypersafe_simkit::GenericSyncEngine::new(gh, faulty, |_| {
        GhGsNode::new(port_dims.clone(), n)
    });
    let level_at = |eng: &hypersafe_simkit::GenericSyncEngine<'_, _, GhGsNode>, a: u64| {
        eng.node(a).map_or(0, GhGsNode::level)
    };
    let mut prev: Vec<Level> = (0..gh.num_nodes()).map(|a| level_at(&eng, a)).collect();
    let mut rounds = 0u32;
    while eng.run_round() != 0 {
        rounds += 1;
        if rounds > n as u32 {
            return Err(Violation {
                claim: "gh-gs-round-bound",
                witness: Vec::new(),
                detail: format!("still active after {rounds} rounds on an n = {n} GH"),
            });
        }
        for a in 0..gh.num_nodes() {
            let lv = level_at(&eng, a);
            if lv > prev[a as usize] {
                return Err(Violation {
                    claim: "gh-gs-monotone-descent",
                    witness: vec![NodeId::new(a)],
                    detail: format!("rose from {} to {lv} in round {rounds}", prev[a as usize]),
                });
            }
            if lv < central.level(GhNode(a)) {
                return Err(Violation {
                    claim: "gh-gs-monotone-descent",
                    witness: vec![NodeId::new(a)],
                    detail: format!(
                        "undershot the fixed point: {lv} < {}",
                        central.level(GhNode(a))
                    ),
                });
            }
            prev[a as usize] = lv;
        }
    }
    for a in 0..gh.num_nodes() {
        let lv = level_at(&eng, a);
        if lv != central.level(GhNode(a)) {
            return Err(Violation {
                claim: "gh-gs-convergence",
                witness: vec![NodeId::new(a)],
                detail: format!(
                    "quiescent at {lv}, centralized says {}",
                    central.level(GhNode(a))
                ),
            });
        }
    }
    Ok(central)
}

/// **Theorem 4 soundness on GH topologies.** Same contract as
/// [`check_theorem4_soundness`], against the GH BFS oracle: `Failure`
/// is only legitimate for a disconnected pair or at `n`-or-more
/// faults; any accept of a disconnected pair is unsound.
pub fn check_gh_theorem4_soundness(
    gh: &GeneralizedHypercube,
    faults: &FaultSet,
    s: GhNode,
    d: GhNode,
    decision: GhDecision,
) -> Result<(), Violation> {
    let n = gh.dim() as usize;
    let reachable = gh_connected(gh, faults, s, d);
    let nf = faults.len();
    match decision {
        GhDecision::Failure => {
            if reachable && nf < n {
                return Err(Violation {
                    claim: "gh-theorem4-soundness",
                    witness: vec![NodeId::new(s.raw()), NodeId::new(d.raw())],
                    detail: format!("refused a connected pair with only {nf} fault(s) < n = {n}"),
                });
            }
        }
        GhDecision::AlreadyThere => {}
        GhDecision::Optimal | GhDecision::Suboptimal => {
            if !reachable {
                return Err(Violation {
                    claim: "gh-theorem4-soundness",
                    witness: vec![NodeId::new(s.raw()), NodeId::new(d.raw())],
                    detail: "accepted a pair the BFS oracle says is disconnected".into(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unicast::route;
    use hypersafe_simkit::{AdversarialScheduler, FifoScheduler};
    use hypersafe_topology::{FaultSet, Hypercube};

    fn fig1() -> (FaultConfig, SafetyMap) {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        (cfg, map)
    }

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn checked_gs_passes_under_fifo_and_adversary() {
        let (cfg, _) = fig1();
        for sched in [
            Box::new(FifoScheduler) as Box<dyn Scheduler>,
            Box::new(AdversarialScheduler::permute(3)),
            Box::new(AdversarialScheduler::permute(0xBEEF)),
        ] {
            let run = run_gs_async_checked(&cfg, 2, sched).expect("no violation");
            check_gs_convergence(&cfg, &run).expect("fixed point reached");
        }
    }

    #[test]
    fn reordering_adversary_preserves_descent_and_convergence() {
        // Exercises the monotone-merge guard: a latency-stretching
        // adversary reorders announcements on these seeds, and descent
        // plus fixed-point convergence must survive every schedule.
        let (cfg, _) = fig1();
        for seed in 0..32 {
            let run = run_gs_async_checked(
                &cfg,
                1,
                Box::new(AdversarialScheduler::permute(seed).with_stretch(5)),
            )
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            check_gs_convergence(&cfg, &run).unwrap();
        }
    }

    #[test]
    fn checked_delta_gs_passes_under_fifo_and_adversary() {
        let (cfg0, _) = fig1();
        let prev = SafetyMap::compute(&cfg0);
        let a = n("0101");
        let mut cfg = cfg0.clone();
        cfg.node_faults_mut().insert(a);
        for seed in 0..16 {
            let run = run_delta_gs_checked(
                &cfg,
                &prev,
                crate::safety_delta::ChurnEvent::Fault(a),
                1,
                Box::new(AdversarialScheduler::permute(seed).with_stretch(5)),
            )
            .unwrap_or_else(|v| panic!("fault seed {seed}: {v}"));
            assert_eq!(run.map.store(), SafetyMap::compute(&cfg).store());

            // And the reverse event, from the post-fault fixed point.
            let mut back = cfg.clone();
            back.node_faults_mut().remove(a);
            let run2 = run_delta_gs_checked(
                &back,
                &run.map,
                crate::safety_delta::ChurnEvent::Recover(a),
                1,
                Box::new(AdversarialScheduler::permute(seed ^ 0xA5).with_stretch(5)),
            )
            .unwrap_or_else(|v| panic!("recover seed {seed}: {v}"));
            assert_eq!(run2.map.store(), prev.store());
        }
    }

    #[test]
    fn delta_invariant_flags_a_corrupted_start() {
        // Feed the checker a *wrong* pre-event map: the run quiesces
        // off the fixed point and must be reported, not absorbed.
        let (cfg0, _) = fig1();
        let mut wrong = SafetyMap::compute(&cfg0).store().to_vec();
        let victim = n("1000");
        wrong[victim.raw() as usize] = 1; // truly 4-safe in fig. 1
        let wrong_map = SafetyMap::from_levels(cfg0.cube(), wrong);
        let a = n("0101");
        let mut cfg = cfg0.clone();
        cfg.node_faults_mut().insert(a);
        let res = run_delta_gs_checked(
            &cfg,
            &wrong_map,
            crate::safety_delta::ChurnEvent::Fault(a),
            1,
            Box::new(FifoScheduler),
        );
        assert!(res.is_err(), "corrupted prior must be detected");
    }

    #[test]
    fn checked_unicast_delivers_under_full_adversary() {
        let (cfg, map) = fig1();
        for seed in 0..16 {
            let run = run_unicast_lossy_checked(
                &cfg,
                &map,
                n("1110"),
                n("0001"),
                1,
                None,
                Box::new(AdversarialScheduler::from_seed(seed)),
                ReliableConfig::default(),
                5_000_000,
                &[],
            )
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            check_lossy_outcome(&cfg, n("1110"), n("0001"), &run, 0)
                .unwrap_or_else(|v| panic!("seed {seed}: {v:?}"));
            assert!(
                matches!(run.outcome, LossyOutcome::Delivered { .. }),
                "seed {seed}: {:?}",
                run.outcome
            );
        }
    }

    #[test]
    fn kill_on_path_is_excused_but_checked() {
        let (cfg, map) = fig1();
        // Kill the first-hop holder the moment the run starts.
        let victim = n("1111");
        let run = run_unicast_lossy_checked(
            &cfg,
            &map,
            n("1110"),
            n("0001"),
            1,
            None,
            Box::new(FifoScheduler),
            ReliableConfig::default(),
            5_000_000,
            &[(victim, 0)],
        )
        .expect("exactly-once still holds");
        check_lossy_outcome(&cfg, n("1110"), n("0001"), &run, 1).expect("kill excuses delivery");
    }

    #[test]
    fn theorem4_rejects_accepting_disconnected_pairs() {
        // Isolate 0001 in a 3-cube: its three neighbors are faulty.
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["000", "011", "101"]),
        );
        let map = SafetyMap::compute(&cfg);
        let s = n("111");
        let d = n("001");
        assert!(!connectivity::connected(&cfg, s, d));
        let res = route(&cfg, &map, s, d);
        // The real algorithm refuses; soundness accepts the refusal.
        check_theorem4_soundness(&cfg, s, d, res.decision).unwrap();
        // A hypothetical accept on the same pair must be flagged.
        let bogus = Decision::Optimal {
            condition: crate::unicast::Condition::C1,
            first_dim: 0,
        };
        assert!(check_theorem4_soundness(&cfg, s, d, bogus).is_err());
    }

    #[test]
    fn theorem4_rejects_refusing_easy_pairs() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["0011"]));
        let err = check_theorem4_soundness(&cfg, n("0000"), n("1111"), Decision::Failure)
            .expect_err("one fault cannot justify a refusal");
        assert_eq!(err.claim, "theorem4-soundness");
    }

    #[test]
    fn optimality_checker_flags_wrong_lengths() {
        let (cfg, map) = fig1();
        let s = n("1110");
        let d = n("0001");
        let res = route(&cfg, &map, s, d);
        let path: Vec<NodeId> = res.path.unwrap().nodes().to_vec();
        check_unicast_optimality(&cfg, s, d, res.decision, Some(&path), true).unwrap();
        // Truncating the trail must be caught.
        assert!(check_unicast_optimality(
            &cfg,
            s,
            d,
            res.decision,
            Some(&path[..path.len() - 1]),
            true
        )
        .is_err());
        // Dropping the delivery entirely must be caught when guaranteed.
        assert!(check_unicast_optimality(&cfg, s, d, res.decision, None, true).is_err());
        assert!(check_unicast_optimality(&cfg, s, d, res.decision, None, false).is_ok());
    }

    #[test]
    fn trail_through_faulty_node_is_invalid() {
        let (cfg, _) = fig1();
        // 1110 → 0110 → 0100: both intermediates faulty in fig. 1.
        let trail = [n("1110"), n("0110"), n("0100")];
        let err = check_trail(&cfg, n("1110"), n("0100"), &trail).unwrap_err();
        assert_eq!(err.claim, "unicast-trail-valid");
    }
}
