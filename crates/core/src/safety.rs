//! Safety levels — Definition 1 and Theorem 1 of the paper.
//!
//! Each node of a faulty `n`-cube carries a *safety level*
//! `0 ≤ k ≤ n`: faulty nodes are 0-safe; a nonfaulty node's level is
//! determined by the nondecreasing sequence `(S_0, …, S_{n-1})` of its
//! neighbors' levels:
//!
//! > if `(S_0, …, S_{n-1}) ≥ (0, 1, …, n−1)` then `S(a) = n`
//! > else if `(S_0, …, S_{k-1}) ≥ (0, …, k−1) ∧ S_k = k−1` then `S(a) = k`.
//!
//! Equivalently (and the form used by [`level_from_sorted`]):
//! `S(a)` is the least index `k` with `S_k < k`, or `n` when no such
//! index exists. The two forms agree on every reachable state because
//! the sequence is sorted: `S_{k-1} ≥ k−1` and `S_k < k` force
//! `S_k = k−1`.
//!
//! Theorem 1 states the fixed point exists and is unique; this module
//! computes it two independent ways (Jacobi iteration from the all-`n`
//! start, and the constructive round-by-round assignment from the
//! theorem's proof), which the test suite cross-checks.
//!
//! ## Bit-plane kernels
//!
//! Both computations run on the packed [`PlaneView`] representation
//! from [`crate::level_store`] (see DESIGN.md §13): levels live as
//! ⌈log₂(n+1)⌉ bit-planes, a neighbor's levels along dimension `d`
//! are one word shuffle per plane (an in-word delta swap for `d < 6`,
//! an XOR-indexed word load above), and Definition 1's "more than `k`
//! neighbors below `k`" test runs branchlessly for 64 nodes at a time
//! via bit-sliced counters. The historical byte-per-node scalar sweep
//! survives as [`SafetyMap::compute_reference`], the differential
//! oracle the plane kernels are checked against (exhaustively on
//! small cubes, on goldens and random instances above).

use crate::level_store::{
    gather_neighbor_word, sliced_add, sliced_gt_const, tail_mask, LevelStore, PlaneView,
};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId, MAX_DIM};

/// Safety level of one node: `0..=n`. `n` means *safe*; anything less
/// is *unsafe*; `0` is the level of a faulty node.
pub type Level = u8;

/// Applies Definition 1 to an already-sorted (nondecreasing) neighbor
/// level sequence of length `n`. Returns the node's safety level.
/// # Examples
///
/// ```
/// use hypersafe_core::level_from_sorted;
/// // Two faulty neighbors → 1-safe; the borderline (0,1,2,3) → safe.
/// assert_eq!(level_from_sorted(4, &[0, 0, 4, 4]), 1);
/// assert_eq!(level_from_sorted(4, &[0, 1, 2, 3]), 4);
/// ```
#[inline]
pub fn level_from_sorted(n: u8, sorted: &[Level]) -> Level {
    debug_assert_eq!(sorted.len(), n as usize);
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "sequence must be sorted"
    );
    for (i, &s) in sorted.iter().enumerate() {
        if (s as usize) < i {
            return i as Level;
        }
    }
    n
}

/// Applies Definition 1 to an unsorted neighbor level sequence
/// (sorts a scratch copy in place).
#[inline]
pub fn level_from_neighbors(n: u8, levels: &mut [Level]) -> Level {
    levels.sort_unstable();
    level_from_sorted(n, levels)
}

/// Applies Definition 1 to an unsorted neighbor level stream without
/// sorting or allocating: builds a level histogram on the stack and
/// returns the least `k` with more than `k` neighbors of level `< k`
/// (else `n`). Equivalent to [`level_from_neighbors`] because, with the
/// sequence sorted nondecreasingly, `S_k < k` holds iff at least
/// `k + 1` entries are below `k`.
///
/// # Examples
///
/// ```
/// use hypersafe_core::{level_from_sorted, level_from_unsorted};
/// assert_eq!(level_from_unsorted(4, [4, 0, 4, 0]), 1);
/// assert_eq!(level_from_unsorted(4, [3, 1, 0, 2]), 4);
/// assert_eq!(level_from_unsorted(4, [4, 4, 0, 4]), 4);
/// ```
#[inline]
pub fn level_from_unsorted<I: IntoIterator<Item = Level>>(n: u8, levels: I) -> Level {
    // Levels are 0..=n ≤ MAX_DIM, so a small fixed histogram suffices.
    let mut counts = [0u32; MAX_DIM as usize + 1];
    for l in levels {
        counts[l as usize] += 1;
    }
    let mut below = 0u32; // #neighbors with level < k
    for k in 0..n as u32 {
        if below > k {
            return k as Level;
        }
        below += counts[k as usize];
    }
    n
}

/// The safety level of every node of one faulty hypercube instance,
/// indexed by raw address. Levels are held packed (~0.5 bytes/node,
/// [`LevelStore`]) — an n=20 cube's map is ~585 KiB instead of 1 MiB,
/// and the compute kernels below never materialize a byte per node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyMap {
    n: u8,
    levels: LevelStore,
    /// Active rounds the computation needed (Fig. 2's metric); 0 for a
    /// map built directly from levels.
    rounds: u32,
}

/// One Jacobi round on planes: for every 64-node word, gather the
/// `n` neighbor words per plane, run Definition 1's histogram rule as
/// bit-sliced arithmetic, and write the next round's planes. Returns
/// whether any level changed (the scalar loop's `changed` flag,
/// word-XOR instead of per-node compare).
fn jacobi_round_planes(n: u8, cur: &PlaneView, faulty: &[u64], next: &mut PlaneView) -> bool {
    let bits = cur.bits() as usize;
    let mut changed = false;
    for (w, &faulty_w) in faulty.iter().enumerate().take(cur.words()) {
        let valid = cur.valid_mask(w);
        // Neighbor plane words, dimension-major: g[d][b] bit j is bit
        // b of the level of node (64w + j) ^ 2^d.
        let mut g = [[0u64; 5]; MAX_DIM as usize];
        for (d, gd) in g.iter_mut().enumerate().take(n as usize) {
            for (b, lane) in gd.iter_mut().enumerate().take(bits) {
                *lane = gather_neighbor_word(cur.plane(b), w, d as u8);
            }
        }
        // Walk k = 1..n accumulating "#neighbors with level < k" in a
        // bit-sliced counter; the first k that exceeds k wins (faulty
        // nodes are pre-assigned 0 and never re-enter).
        let mut cnt = [0u64; 5];
        let mut assigned = faulty_w;
        let mut res = [0u64; 5];
        for k in 1..n as u32 {
            let j = k - 1;
            for gd in g.iter().take(n as usize) {
                let mut eq = !0u64;
                for (b, lane) in gd.iter().enumerate().take(bits) {
                    eq &= if (j >> b) & 1 == 1 { *lane } else { !*lane };
                }
                sliced_add(&mut cnt, eq);
            }
            let new = sliced_gt_const(&cnt, k) & !assigned & valid;
            if new != 0 {
                assigned |= new;
                for (b, lane) in res.iter_mut().enumerate().take(bits) {
                    if (k >> b) & 1 == 1 {
                        *lane |= new;
                    }
                }
            }
        }
        // Survivors of every test are safe (level n).
        let rem = !assigned & valid;
        for (b, lane) in res.iter_mut().enumerate().take(bits) {
            if ((n as u32) >> b) & 1 == 1 {
                *lane |= rem;
            }
        }
        for (b, &lane) in res.iter().enumerate().take(bits) {
            changed |= lane != cur.plane(b)[w];
            next.plane_mut(b)[w] = lane;
        }
    }
    changed
}

/// The paper's Jacobi initial state as planes: faulty nodes 0,
/// healthy nodes `n`.
fn initial_planes(n: u8, len: u64, faulty: &[u64]) -> PlaneView {
    let mut v = PlaneView::zeroed(n, len);
    for b in 0..v.bits() as usize {
        if ((n as u32) >> b) & 1 == 1 {
            let words = v.words();
            let plane = v.plane_mut(b);
            for w in 0..words {
                let base = w as u64 * 64;
                let valid = if base + 64 > len {
                    tail_mask(len - base)
                } else {
                    !0
                };
                plane[w] = !faulty[w] & valid;
            }
        }
    }
    v
}

impl SafetyMap {
    /// Wraps precomputed levels (packs them into the [`LevelStore`]).
    pub fn from_levels(cube: Hypercube, levels: Vec<Level>) -> Self {
        assert_eq!(levels.len() as u64, cube.num_nodes());
        SafetyMap {
            n: cube.dim(),
            levels: LevelStore::from_levels(cube.dim(), &levels),
            rounds: 0,
        }
    }

    /// Wraps an already-packed store (the zero-copy counterpart of
    /// [`SafetyMap::from_levels`], used by consumers that edit a
    /// cloned store — e.g. the §4.1 router substituting one level).
    pub fn from_store(cube: Hypercube, store: LevelStore) -> Self {
        assert_eq!(store.len(), cube.num_nodes());
        assert_eq!(store.max_level(), cube.dim());
        SafetyMap {
            n: cube.dim(),
            levels: store,
            rounds: 0,
        }
    }

    /// # Examples
    ///
    /// ```
    /// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
    /// use hypersafe_core::SafetyMap;
    ///
    /// // Fig. 1: the faulty 4-cube of the paper.
    /// let cube = Hypercube::new(4);
    /// let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
    /// let cfg = FaultConfig::with_node_faults(cube, faults);
    /// let map = SafetyMap::compute(&cfg);
    /// assert_eq!(map.level(NodeId::from_binary("0101").unwrap()), 2);
    /// assert_eq!(map.rounds(), 2); // stable after two rounds
    /// ```
    /// Computes the unique fixed point for `cfg` by synchronous Jacobi
    /// iteration from the paper's initial state (faulty = 0, nonfaulty
    /// = `n`), exactly the centralized shadow of `GLOBAL_STATUS` — run
    /// on bit-planes, 64 nodes per word op. Byte-identical to
    /// [`SafetyMap::compute_reference`] (same rounds, same levels) by
    /// construction and by differential test.
    ///
    /// Node faults only; for node + link faults use
    /// [`crate::egs::ExtendedSafetyMap`].
    pub fn compute(cfg: &FaultConfig) -> Self {
        Self::compute_inner(cfg, None)
    }

    /// [`SafetyMap::compute`] that also snapshots the unpacked level
    /// vector after every active round (the differential-testing hook
    /// behind "round-by-round equality" in the proptests). The first
    /// entry is the initial state, the last the fixed point.
    pub fn compute_trace(cfg: &FaultConfig) -> (Self, Vec<Vec<Level>>) {
        let mut trace = Vec::new();
        let map = Self::compute_inner(cfg, Some(&mut trace));
        (map, trace)
    }

    fn compute_inner(cfg: &FaultConfig, mut trace: Option<&mut Vec<Vec<Level>>>) -> Self {
        assert!(
            cfg.link_faults().is_empty(),
            "SafetyMap::compute handles node faults only; use egs for link faults"
        );
        let cube = cfg.cube();
        let n = cube.dim();
        let len = cube.num_nodes();
        let faulty = cfg.node_faults().words();
        let mut cur = initial_planes(n, len, faulty);
        let mut next = PlaneView::zeroed(n, len);
        if let Some(t) = trace.as_deref_mut() {
            t.push(cur.to_store().to_vec());
        }
        let mut rounds = 0u32;
        loop {
            if !jacobi_round_planes(n, &cur, faulty, &mut next) {
                break;
            }
            std::mem::swap(&mut cur, &mut next);
            rounds += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.push(cur.to_store().to_vec());
            }
        }
        SafetyMap {
            n,
            levels: cur.to_store(),
            rounds,
        }
    }

    /// The historical byte-per-node Jacobi sweep, kept as the
    /// differential oracle for the plane kernels (and as the honest
    /// scalar baseline E27 times them against). Returns the raw level
    /// vector; [`SafetyMap::compute_reference`] wraps it.
    pub fn compute_reference_levels(cfg: &FaultConfig) -> Vec<Level> {
        Self::reference_inner(cfg, None).0
    }

    /// Scalar counterpart of [`SafetyMap::compute_trace`] — snapshots
    /// the level vector after every active round.
    pub fn compute_reference_trace(cfg: &FaultConfig) -> (Self, Vec<Vec<Level>>) {
        let mut trace = Vec::new();
        let (levels, rounds) = Self::reference_inner(cfg, Some(&mut trace));
        let n = cfg.cube().dim();
        (
            SafetyMap {
                n,
                levels: LevelStore::from_levels(n, &levels),
                rounds,
            },
            trace,
        )
    }

    /// [`SafetyMap::compute_reference_levels`] packaged as a map
    /// (packs the result; `rounds()` matches [`SafetyMap::compute`]).
    pub fn compute_reference(cfg: &FaultConfig) -> Self {
        let (levels, rounds) = Self::reference_inner(cfg, None);
        let n = cfg.cube().dim();
        SafetyMap {
            n,
            levels: LevelStore::from_levels(n, &levels),
            rounds,
        }
    }

    fn reference_inner(
        cfg: &FaultConfig,
        mut trace: Option<&mut Vec<Vec<Level>>>,
    ) -> (Vec<Level>, u32) {
        assert!(
            cfg.link_faults().is_empty(),
            "SafetyMap::compute handles node faults only; use egs for link faults"
        );
        let cube = cfg.cube();
        let n = cube.dim();
        let mut levels: Vec<Level> = cube
            .nodes()
            .map(|a| if cfg.node_faulty(a) { 0 } else { n })
            .collect();
        if let Some(t) = trace.as_deref_mut() {
            t.push(levels.clone());
        }
        let mut rounds = 0u32;
        let mut next = levels.clone();
        loop {
            let mut changed = false;
            for a in cube.nodes() {
                let idx = a.raw() as usize;
                if cfg.node_faulty(a) {
                    continue;
                }
                let lv =
                    level_from_unsorted(n, cube.neighbors(a).map(|b| levels[b.raw() as usize]));
                next[idx] = lv;
                changed |= lv != levels[idx];
            }
            if !changed {
                break;
            }
            std::mem::swap(&mut levels, &mut next);
            rounds += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.push(levels.clone());
            }
        }
        (levels, rounds)
    }

    /// Computes the same fixed point by the constructive assignment in
    /// the proof of Theorem 1: at round `k`, every still-unassigned
    /// nonfaulty node with `k + 1` or more neighbors of level `≤ k − 1`
    /// receives level `k`; after round `n − 1`, survivors receive `n`.
    ///
    /// On planes this is even simpler than the Jacobi round: "neighbor
    /// with level below `k`" is exactly "neighbor already assigned"
    /// (faulty or claimed by an earlier round), so round `k` is one
    /// gather-and-count over the single `assigned` plane — no per-level
    /// equality masks at all. Cost over all `n − 1` rounds is
    /// `O(n² / 64)` word ops per node.
    pub fn compute_constructive(cfg: &FaultConfig) -> Self {
        assert!(cfg.link_faults().is_empty(), "node faults only");
        let cube = cfg.cube();
        let n = cube.dim();
        let len = cube.num_nodes();
        let mut res = PlaneView::zeroed(n, len);
        let bits = res.bits() as usize;
        let words = res.words();
        // Round k reads only levels assigned in earlier rounds;
        // `snapshot` pins the pre-round state so in-round assignments
        // (which land in `assigned`) can't feed back into the count.
        let mut assigned: Vec<u64> = cfg.node_faults().words().to_vec();
        let mut snapshot = vec![0u64; words];
        for k in 1..n as u32 {
            snapshot.copy_from_slice(&assigned);
            for (w, assigned_w) in assigned.iter_mut().enumerate() {
                let mut cnt = [0u64; 5];
                for d in 0..n {
                    sliced_add(&mut cnt, gather_neighbor_word(&snapshot, w, d));
                }
                let new = sliced_gt_const(&cnt, k) & !*assigned_w & res.valid_mask(w);
                if new != 0 {
                    *assigned_w |= new;
                    for b in 0..bits {
                        if (k >> b) & 1 == 1 {
                            res.plane_mut(b)[w] |= new;
                        }
                    }
                }
            }
        }
        for (w, &assigned_w) in assigned.iter().enumerate().take(words) {
            let rem = !assigned_w & res.valid_mask(w);
            for b in 0..bits {
                if ((n as u32) >> b) & 1 == 1 {
                    res.plane_mut(b)[w] |= rem;
                }
            }
        }
        SafetyMap {
            n,
            levels: res.to_store(),
            rounds: (n - 1) as u32,
        }
    }

    /// Dimension of the underlying cube.
    #[inline]
    pub fn dim(&self) -> u8 {
        self.n
    }

    /// Safety level of node `a`.
    #[inline]
    pub fn level(&self, a: NodeId) -> Level {
        self.levels.get(a.raw())
    }

    /// Whether `a` is *safe* (level `n`).
    #[inline]
    pub fn is_safe(&self, a: NodeId) -> bool {
        self.level(a) == self.n
    }

    /// Active rounds the producing computation used.
    #[inline]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Overrides the recorded round count (used by the distributed
    /// engines that measure rounds themselves).
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// All safe nodes, ascending.
    pub fn safe_nodes(&self) -> Vec<NodeId> {
        self.safe_nodes_iter().collect()
    }

    /// Iterator over the safe nodes, ascending — the allocation-free
    /// form of [`SafetyMap::safe_nodes`] for hot paths that only scan
    /// or count (one packed equality mask per 64 nodes).
    pub fn safe_nodes_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.levels.iter_eq(self.n).map(NodeId::new)
    }

    /// Number of safe nodes (no allocation — popcount over the store).
    pub fn safe_count(&self) -> usize {
        self.levels.count_eq(self.n) as usize
    }

    /// The packed level store — the seam every consumer reads levels
    /// through. Clone it to edit a what-if copy (see
    /// [`crate::egs::route_egs`]) and rewrap with
    /// [`SafetyMap::from_store`].
    #[inline]
    pub fn store(&self) -> &LevelStore {
        &self.levels
    }

    /// Unpacks into a byte-per-level vector, indexed by address (the
    /// bridge for code that wants plain bytes; prefer
    /// [`SafetyMap::store`] or [`SafetyMap::level`] on hot paths).
    pub fn to_vec(&self) -> Vec<Level> {
        self.levels.to_vec()
    }

    /// Overwrites one level (incremental maintenance only — see
    /// `safety_delta`).
    #[inline]
    pub(crate) fn set_level(&mut self, a: NodeId, l: Level) {
        self.levels.set(a.raw(), l);
    }

    /// Overwrites the recorded round count in place.
    #[inline]
    pub(crate) fn set_rounds(&mut self, rounds: u32) {
        self.rounds = rounds;
    }

    /// Verifies that this map satisfies Definition 1 for `cfg` — i.e.
    /// that it is *the* fixed point promised by Theorem 1. Returns the
    /// first violating node, if any.
    pub fn check_fixed_point(&self, cfg: &FaultConfig) -> Option<NodeId> {
        let cube = cfg.cube();
        for a in cube.nodes() {
            let want = if cfg.node_faulty(a) {
                0
            } else {
                level_from_unsorted(self.n, cube.neighbors(a).map(|b| self.level(b)))
            };
            if self.level(a) != want {
                return Some(a);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::FaultSet;

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn definition_rule_examples() {
        // A node all of whose neighbors are safe is safe.
        assert_eq!(level_from_sorted(4, &[4, 4, 4, 4]), 4);
        // Two faulty neighbors → 1-safe (first round of Thm 1's proof).
        assert_eq!(level_from_sorted(4, &[0, 0, 4, 4]), 1);
        // Three neighbors of level ≤ 1 → 2-safe.
        assert_eq!(level_from_sorted(4, &[0, 1, 1, 4]), 2);
        // Exactly the borderline sequence (0,1,2,3) → safe.
        assert_eq!(level_from_sorted(4, &[0, 1, 2, 3]), 4);
        // One faulty neighbor alone does not lower the level.
        assert_eq!(level_from_sorted(4, &[0, 4, 4, 4]), 4);
    }

    #[test]
    fn fig1_levels_exact() {
        // Fig. 1: faults {0011, 0100, 0110, 1001}. The paper narrates:
        //   0001, 0010, 0111, 1011 become 1-safe after round one;
        //   0101 and 0000 become 2-safe after round two;
        //   1010, 1100, 1111, 1110 (and the rest) are 4-safe;
        //   stability after two rounds.
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let m = SafetyMap::compute(&cfg);
        // Faulty nodes.
        for f in ["0011", "0100", "0110", "1001"] {
            assert_eq!(m.level(n(f)), 0, "{f}");
        }
        // Narrated levels.
        for u in ["0001", "0010", "0111", "1011"] {
            assert_eq!(m.level(n(u)), 1, "{u}");
        }
        assert_eq!(m.level(n("0101")), 2);
        assert_eq!(m.level(n("0000")), 2);
        // §3.2 uses these levels for the worked unicasts.
        assert_eq!(m.level(n("1110")), 4);
        assert_eq!(m.level(n("1111")), 4);
        assert_eq!(m.level(n("1010")), 4);
        assert_eq!(m.level(n("1100")), 4);
        assert_eq!(m.level(n("1101")), 4);
        assert_eq!(m.level(n("1000")), 4);
        // "The safety level of each node remains stable after two rounds."
        assert_eq!(m.rounds(), 2);
        assert_eq!(m.check_fixed_point(&cfg), None);
    }

    #[test]
    fn histogram_rule_matches_sorted_rule_exhaustively() {
        // Every neighbor-level sequence of Q_4 (5^4 of them): the
        // sort-free histogram evaluation agrees with Definition 1's
        // sorted form.
        let n = 4u8;
        for code in 0u32..5u32.pow(4) {
            let mut seq = [0 as Level; 4];
            let mut c = code;
            for s in seq.iter_mut() {
                *s = (c % 5) as Level;
                c /= 5;
            }
            let mut sorted = seq;
            sorted.sort_unstable();
            assert_eq!(
                level_from_unsorted(n, seq.iter().copied()),
                level_from_sorted(n, &sorted),
                "seq {seq:?}"
            );
        }
    }

    #[test]
    fn safe_nodes_iter_matches_vec_form() {
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let m = SafetyMap::compute(&cfg);
        assert_eq!(m.safe_nodes_iter().collect::<Vec<_>>(), m.safe_nodes());
        assert_eq!(m.safe_count(), m.safe_nodes().len());
    }

    #[test]
    fn fault_free_cube_needs_no_rounds() {
        let cfg = cfg4(&[]);
        let m = SafetyMap::compute(&cfg);
        assert_eq!(m.rounds(), 0, "no extra overhead without faults (§2.2)");
        assert!(cfg.cube().nodes().all(|a| m.is_safe(a)));
    }

    #[test]
    fn constructive_matches_iterative_fig1() {
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let a = SafetyMap::compute(&cfg);
        let b = SafetyMap::compute_constructive(&cfg);
        assert_eq!(a.store(), b.store());
    }

    #[test]
    fn constructive_matches_iterative_exhaustive_q3() {
        // All 2^8 fault subsets of Q_3: Theorem 1's two constructions
        // agree everywhere — and both agree with the scalar oracle.
        let cube = Hypercube::new(3);
        for mask in 0u64..256 {
            let mut f = FaultSet::new(cube);
            for i in 0..8 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let a = SafetyMap::compute(&cfg);
            let b = SafetyMap::compute_constructive(&cfg);
            assert_eq!(a.store(), b.store(), "mask {mask:#b}");
            assert_eq!(
                a.to_vec(),
                SafetyMap::compute_reference_levels(&cfg),
                "mask {mask:#b}"
            );
            assert_eq!(a.check_fixed_point(&cfg), None, "mask {mask:#b}");
            assert!(a.rounds() <= 2, "Corollary: ≤ n−1 rounds, mask {mask:#b}");
        }
    }

    #[test]
    fn plane_kernel_matches_reference_round_by_round() {
        // Fig. 1 plus a denser 5-cube instance: the plane Jacobi's
        // per-round snapshots are byte-identical to the scalar sweep's
        // at every round, not just at the fixed point.
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let (pm, pt) = SafetyMap::compute_trace(&cfg);
        let (rm, rt) = SafetyMap::compute_reference_trace(&cfg);
        assert_eq!(pt, rt);
        assert_eq!(pm, rm);

        let cube = Hypercube::new(5);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(
                cube,
                &["00000", "00011", "00101", "01001", "10001", "11111"],
            ),
        );
        let (pm, pt) = SafetyMap::compute_trace(&cfg);
        let (rm, rt) = SafetyMap::compute_reference_trace(&cfg);
        assert_eq!(pt, rt);
        assert_eq!(pm.rounds(), rm.rounds());
    }

    #[test]
    fn plane_kernel_matches_reference_on_a_big_cube() {
        // n = 12: 4096 nodes, multi-word planes with every gather kind
        // (in-word d < 6 and XOR-indexed d ≥ 6).
        let cube = Hypercube::new(12);
        let mut f = FaultSet::new(cube);
        for i in 0..11u64 {
            f.insert(NodeId::new(i * 373 % 4096));
        }
        let cfg = FaultConfig::with_node_faults(cube, f);
        let plane = SafetyMap::compute(&cfg);
        let reference = SafetyMap::compute_reference(&cfg);
        assert_eq!(plane, reference);
        assert_eq!(plane.to_vec(), SafetyMap::compute_reference_levels(&cfg));
        assert!(plane.rounds() <= 11);
    }

    #[test]
    fn tiny_cubes_use_partial_words_correctly() {
        // n < 6 leaves a partial plane word; exhaust Q_1 and Q_2 fault
        // sets and sample Q_4/Q_5 to pin the tail-mask handling.
        for n in 1u8..=2 {
            let cube = Hypercube::new(n);
            for mask in 0u64..(1 << cube.num_nodes()) {
                let mut f = FaultSet::new(cube);
                for i in 0..cube.num_nodes() {
                    if (mask >> i) & 1 == 1 {
                        f.insert(NodeId::new(i));
                    }
                }
                let cfg = FaultConfig::with_node_faults(cube, f);
                let a = SafetyMap::compute(&cfg);
                assert_eq!(
                    a.to_vec(),
                    SafetyMap::compute_reference_levels(&cfg),
                    "n={n} mask={mask:#b}"
                );
                assert_eq!(
                    a.store(),
                    SafetyMap::compute_constructive(&cfg).store(),
                    "n={n} mask={mask:#b}"
                );
            }
        }
        for (n, faults) in [(4u8, vec![1u64, 6, 11]), (5, vec![0, 7, 19, 30])] {
            let cube = Hypercube::new(n);
            let cfg = FaultConfig::with_node_faults(
                cube,
                FaultSet::from_nodes(cube, faults.into_iter().map(NodeId::new)),
            );
            let a = SafetyMap::compute(&cfg);
            assert_eq!(
                a.to_vec(),
                SafetyMap::compute_reference_levels(&cfg),
                "n={n}"
            );
        }
    }

    #[test]
    fn safe_node_set_section23_example() {
        // §2.3: faults {0000, 0110, 1111} → SL-safe set is
        // {0001, 0011, 0101, 1000, 1001, 1010, 1011, 1100, 1101}.
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let m = SafetyMap::compute(&cfg);
        let safe: Vec<String> = m.safe_nodes().iter().map(|a| a.to_binary(4)).collect();
        assert_eq!(
            safe,
            vec!["0001", "0011", "0101", "1000", "1001", "1010", "1011", "1100", "1101"]
        );
    }

    #[test]
    fn all_faulty_map() {
        let cube = Hypercube::new(2);
        let mut f = FaultSet::new(cube);
        for a in cube.nodes() {
            f.insert(a);
        }
        let cfg = FaultConfig::with_node_faults(cube, f);
        let m = SafetyMap::compute(&cfg);
        assert!(m.to_vec().iter().all(|&l| l == 0));
    }

    #[test]
    fn check_fixed_point_catches_corruption() {
        let cfg = cfg4(&["0011"]);
        let m = SafetyMap::compute(&cfg);
        let mut levels = m.to_vec();
        levels[0] = 1; // corrupt node 0000
        let bad = SafetyMap::from_levels(cfg.cube(), levels);
        assert_eq!(bad.check_fixed_point(&cfg), Some(NodeId::ZERO));
    }

    #[test]
    #[should_panic]
    fn compute_rejects_link_faults() {
        let cube = Hypercube::new(3);
        let mut cfg = FaultConfig::fault_free(cube);
        cfg.link_faults_mut().insert(NodeId::new(0), NodeId::new(1));
        SafetyMap::compute(&cfg);
    }
}
