//! Safety levels — Definition 1 and Theorem 1 of the paper.
//!
//! Each node of a faulty `n`-cube carries a *safety level*
//! `0 ≤ k ≤ n`: faulty nodes are 0-safe; a nonfaulty node's level is
//! determined by the nondecreasing sequence `(S_0, …, S_{n-1})` of its
//! neighbors' levels:
//!
//! > if `(S_0, …, S_{n-1}) ≥ (0, 1, …, n−1)` then `S(a) = n`
//! > else if `(S_0, …, S_{k-1}) ≥ (0, …, k−1) ∧ S_k = k−1` then `S(a) = k`.
//!
//! Equivalently (and the form used by [`level_from_sorted`]):
//! `S(a)` is the least index `k` with `S_k < k`, or `n` when no such
//! index exists. The two forms agree on every reachable state because
//! the sequence is sorted: `S_{k-1} ≥ k−1` and `S_k < k` force
//! `S_k = k−1`.
//!
//! Theorem 1 states the fixed point exists and is unique; this module
//! computes it two independent ways (Jacobi iteration from the all-`n`
//! start, and the constructive round-by-round assignment from the
//! theorem's proof), which the test suite cross-checks.

use hypersafe_topology::{FaultConfig, Hypercube, NodeId};

/// Safety level of one node: `0..=n`. `n` means *safe*; anything less
/// is *unsafe*; `0` is the level of a faulty node.
pub type Level = u8;

/// Applies Definition 1 to an already-sorted (nondecreasing) neighbor
/// level sequence of length `n`. Returns the node's safety level.
/// # Examples
///
/// ```
/// use hypersafe_core::level_from_sorted;
/// // Two faulty neighbors → 1-safe; the borderline (0,1,2,3) → safe.
/// assert_eq!(level_from_sorted(4, &[0, 0, 4, 4]), 1);
/// assert_eq!(level_from_sorted(4, &[0, 1, 2, 3]), 4);
/// ```
#[inline]
pub fn level_from_sorted(n: u8, sorted: &[Level]) -> Level {
    debug_assert_eq!(sorted.len(), n as usize);
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "sequence must be sorted"
    );
    for (i, &s) in sorted.iter().enumerate() {
        if (s as usize) < i {
            return i as Level;
        }
    }
    n
}

/// Applies Definition 1 to an unsorted neighbor level sequence
/// (sorts a scratch copy in place).
#[inline]
pub fn level_from_neighbors(n: u8, levels: &mut [Level]) -> Level {
    levels.sort_unstable();
    level_from_sorted(n, levels)
}

/// Applies Definition 1 to an unsorted neighbor level stream without
/// sorting or allocating: builds a level histogram on the stack and
/// returns the least `k` with more than `k` neighbors of level `< k`
/// (else `n`). Equivalent to [`level_from_neighbors`] because, with the
/// sequence sorted nondecreasingly, `S_k < k` holds iff at least
/// `k + 1` entries are below `k`.
///
/// # Examples
///
/// ```
/// use hypersafe_core::{level_from_sorted, level_from_unsorted};
/// assert_eq!(level_from_unsorted(4, [4, 0, 4, 0]), 1);
/// assert_eq!(level_from_unsorted(4, [3, 1, 0, 2]), 4);
/// assert_eq!(level_from_unsorted(4, [4, 4, 0, 4]), 4);
/// ```
#[inline]
pub fn level_from_unsorted<I: IntoIterator<Item = Level>>(n: u8, levels: I) -> Level {
    // Levels are 0..=n ≤ MAX_DIM, so a small fixed histogram suffices.
    let mut counts = [0u32; hypersafe_topology::MAX_DIM as usize + 1];
    for l in levels {
        counts[l as usize] += 1;
    }
    let mut below = 0u32; // #neighbors with level < k
    for k in 0..n as u32 {
        if below > k {
            return k as Level;
        }
        below += counts[k as usize];
    }
    n
}

/// The safety level of every node of one faulty hypercube instance,
/// indexed by raw address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyMap {
    n: u8,
    levels: Vec<Level>,
    /// Active rounds the computation needed (Fig. 2's metric); 0 for a
    /// map built directly from levels.
    rounds: u32,
}

impl SafetyMap {
    /// Wraps precomputed levels.
    pub fn from_levels(cube: Hypercube, levels: Vec<Level>) -> Self {
        assert_eq!(levels.len() as u64, cube.num_nodes());
        SafetyMap {
            n: cube.dim(),
            levels,
            rounds: 0,
        }
    }

    /// # Examples
    ///
    /// ```
    /// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
    /// use hypersafe_core::SafetyMap;
    ///
    /// // Fig. 1: the faulty 4-cube of the paper.
    /// let cube = Hypercube::new(4);
    /// let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
    /// let cfg = FaultConfig::with_node_faults(cube, faults);
    /// let map = SafetyMap::compute(&cfg);
    /// assert_eq!(map.level(NodeId::from_binary("0101").unwrap()), 2);
    /// assert_eq!(map.rounds(), 2); // stable after two rounds
    /// ```
    /// Computes the unique fixed point for `cfg` by synchronous Jacobi
    /// iteration from the paper's initial state (faulty = 0, nonfaulty
    /// = `n`), exactly the centralized shadow of `GLOBAL_STATUS`.
    ///
    /// Node faults only; for node + link faults use
    /// [`crate::egs::ExtendedSafetyMap`].
    pub fn compute(cfg: &FaultConfig) -> Self {
        assert!(
            cfg.link_faults().is_empty(),
            "SafetyMap::compute handles node faults only; use egs for link faults"
        );
        let cube = cfg.cube();
        let n = cube.dim();
        let mut levels: Vec<Level> = cube
            .nodes()
            .map(|a| if cfg.node_faulty(a) { 0 } else { n })
            .collect();

        let mut rounds = 0u32;
        let mut next = levels.clone();
        loop {
            let mut changed = false;
            for a in cube.nodes() {
                let idx = a.raw() as usize;
                if cfg.node_faulty(a) {
                    continue;
                }
                let lv =
                    level_from_unsorted(n, cube.neighbors(a).map(|b| levels[b.raw() as usize]));
                next[idx] = lv;
                changed |= lv != levels[idx];
            }
            if !changed {
                break;
            }
            std::mem::swap(&mut levels, &mut next);
            rounds += 1;
        }
        SafetyMap { n, levels, rounds }
    }

    /// [`SafetyMap::compute`] with each Jacobi round parallelized over
    /// nodes via rayon — bitwise-identical results (the rounds are
    /// data-parallel by construction: every node reads only the
    /// previous round's levels).
    ///
    /// Measured caveat (see the `exact_vs_gs` bench): each round is a
    /// cheap memory-bound sweep, so up to at least `n = 14` the rayon
    /// fork/join overhead *loses* to the sequential version. Prefer
    /// [`SafetyMap::compute`] unless cubes are huge or the per-node
    /// work grows (e.g. an instrumented variant); the function mainly
    /// documents — and tests — that the rounds are data-parallel.
    pub fn compute_parallel(cfg: &FaultConfig) -> Self {
        use rayon::prelude::*;
        assert!(cfg.link_faults().is_empty(), "node faults only");
        let cube = cfg.cube();
        let n = cube.dim();
        let mut levels: Vec<Level> = cube
            .nodes()
            .map(|a| if cfg.node_faulty(a) { 0 } else { n })
            .collect();
        let mut rounds = 0u32;
        loop {
            let prev = &levels;
            let next: Vec<Level> = (0..cube.num_nodes())
                .into_par_iter()
                .map(|raw| {
                    let a = NodeId::new(raw);
                    if cfg.node_faulty(a) {
                        return 0;
                    }
                    level_from_unsorted(n, cube.neighbors(a).map(|b| prev[b.raw() as usize]))
                })
                .collect();
            if next == levels {
                break;
            }
            levels = next;
            rounds += 1;
        }
        SafetyMap { n, levels, rounds }
    }

    /// Computes the same fixed point by the constructive assignment in
    /// the proof of Theorem 1: at round `k`, every still-unassigned
    /// nonfaulty node with `k + 1` or more neighbors of level `≤ k − 1`
    /// receives level `k`; after round `n − 1`, survivors receive `n`.
    pub fn compute_constructive(cfg: &FaultConfig) -> Self {
        assert!(cfg.link_faults().is_empty(), "node faults only");
        let cube = cfg.cube();
        let n = cube.dim();
        const UNASSIGNED: Level = u8::MAX;
        let mut levels: Vec<Level> = cube
            .nodes()
            .map(|a| if cfg.node_faulty(a) { 0 } else { UNASSIGNED })
            .collect();
        for k in 1..n {
            // Round k reads only levels assigned in earlier rounds, so a
            // same-round snapshot is unnecessary: levels ≤ k−1 were all
            // assigned strictly before round k.
            let assignments: Vec<NodeId> = cube
                .nodes()
                .filter(|&a| {
                    levels[a.raw() as usize] == UNASSIGNED
                        && cube
                            .neighbors(a)
                            .filter(|&b| {
                                let l = levels[b.raw() as usize];
                                l != UNASSIGNED && l < k
                            })
                            .count()
                            > (k as usize)
                })
                .collect();
            for a in assignments {
                levels[a.raw() as usize] = k;
            }
        }
        for l in &mut levels {
            if *l == UNASSIGNED {
                *l = n;
            }
        }
        SafetyMap {
            n,
            levels,
            rounds: (n - 1) as u32,
        }
    }

    /// Dimension of the underlying cube.
    #[inline]
    pub fn dim(&self) -> u8 {
        self.n
    }

    /// Safety level of node `a`.
    #[inline]
    pub fn level(&self, a: NodeId) -> Level {
        self.levels[a.raw() as usize]
    }

    /// Whether `a` is *safe* (level `n`).
    #[inline]
    pub fn is_safe(&self, a: NodeId) -> bool {
        self.level(a) == self.n
    }

    /// Active rounds the producing computation used.
    #[inline]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Overrides the recorded round count (used by the distributed
    /// engines that measure rounds themselves).
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// All safe nodes, ascending.
    pub fn safe_nodes(&self) -> Vec<NodeId> {
        self.safe_nodes_iter().collect()
    }

    /// Iterator over the safe nodes, ascending — the allocation-free
    /// form of [`SafetyMap::safe_nodes`] for hot paths that only scan
    /// or count.
    pub fn safe_nodes_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == self.n)
            .map(|(i, _)| NodeId::new(i as u64))
    }

    /// Number of safe nodes (no allocation).
    pub fn safe_count(&self) -> usize {
        self.levels.iter().filter(|&&l| l == self.n).count()
    }

    /// The raw level array, indexed by address.
    pub fn as_slice(&self) -> &[Level] {
        &self.levels
    }

    /// Overwrites one level (incremental maintenance only — see
    /// `safety_delta`).
    #[inline]
    pub(crate) fn set_level(&mut self, a: NodeId, l: Level) {
        self.levels[a.raw() as usize] = l;
    }

    /// Overwrites the recorded round count in place.
    #[inline]
    pub(crate) fn set_rounds(&mut self, rounds: u32) {
        self.rounds = rounds;
    }

    /// Verifies that this map satisfies Definition 1 for `cfg` — i.e.
    /// that it is *the* fixed point promised by Theorem 1. Returns the
    /// first violating node, if any.
    pub fn check_fixed_point(&self, cfg: &FaultConfig) -> Option<NodeId> {
        let cube = cfg.cube();
        for a in cube.nodes() {
            let want = if cfg.node_faulty(a) {
                0
            } else {
                level_from_unsorted(self.n, cube.neighbors(a).map(|b| self.level(b)))
            };
            if self.level(a) != want {
                return Some(a);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::FaultSet;

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    #[test]
    fn definition_rule_examples() {
        // A node all of whose neighbors are safe is safe.
        assert_eq!(level_from_sorted(4, &[4, 4, 4, 4]), 4);
        // Two faulty neighbors → 1-safe (first round of Thm 1's proof).
        assert_eq!(level_from_sorted(4, &[0, 0, 4, 4]), 1);
        // Three neighbors of level ≤ 1 → 2-safe.
        assert_eq!(level_from_sorted(4, &[0, 1, 1, 4]), 2);
        // Exactly the borderline sequence (0,1,2,3) → safe.
        assert_eq!(level_from_sorted(4, &[0, 1, 2, 3]), 4);
        // One faulty neighbor alone does not lower the level.
        assert_eq!(level_from_sorted(4, &[0, 4, 4, 4]), 4);
    }

    #[test]
    fn fig1_levels_exact() {
        // Fig. 1: faults {0011, 0100, 0110, 1001}. The paper narrates:
        //   0001, 0010, 0111, 1011 become 1-safe after round one;
        //   0101 and 0000 become 2-safe after round two;
        //   1010, 1100, 1111, 1110 (and the rest) are 4-safe;
        //   stability after two rounds.
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let m = SafetyMap::compute(&cfg);
        // Faulty nodes.
        for f in ["0011", "0100", "0110", "1001"] {
            assert_eq!(m.level(n(f)), 0, "{f}");
        }
        // Narrated levels.
        for u in ["0001", "0010", "0111", "1011"] {
            assert_eq!(m.level(n(u)), 1, "{u}");
        }
        assert_eq!(m.level(n("0101")), 2);
        assert_eq!(m.level(n("0000")), 2);
        // §3.2 uses these levels for the worked unicasts.
        assert_eq!(m.level(n("1110")), 4);
        assert_eq!(m.level(n("1111")), 4);
        assert_eq!(m.level(n("1010")), 4);
        assert_eq!(m.level(n("1100")), 4);
        assert_eq!(m.level(n("1101")), 4);
        assert_eq!(m.level(n("1000")), 4);
        // "The safety level of each node remains stable after two rounds."
        assert_eq!(m.rounds(), 2);
        assert_eq!(m.check_fixed_point(&cfg), None);
    }

    #[test]
    fn histogram_rule_matches_sorted_rule_exhaustively() {
        // Every neighbor-level sequence of Q_4 (5^4 of them): the
        // sort-free histogram evaluation agrees with Definition 1's
        // sorted form.
        let n = 4u8;
        for code in 0u32..5u32.pow(4) {
            let mut seq = [0 as Level; 4];
            let mut c = code;
            for s in seq.iter_mut() {
                *s = (c % 5) as Level;
                c /= 5;
            }
            let mut sorted = seq;
            sorted.sort_unstable();
            assert_eq!(
                level_from_unsorted(n, seq.iter().copied()),
                level_from_sorted(n, &sorted),
                "seq {seq:?}"
            );
        }
    }

    #[test]
    fn safe_nodes_iter_matches_vec_form() {
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let m = SafetyMap::compute(&cfg);
        assert_eq!(m.safe_nodes_iter().collect::<Vec<_>>(), m.safe_nodes());
        assert_eq!(m.safe_count(), m.safe_nodes().len());
    }

    #[test]
    fn fault_free_cube_needs_no_rounds() {
        let cfg = cfg4(&[]);
        let m = SafetyMap::compute(&cfg);
        assert_eq!(m.rounds(), 0, "no extra overhead without faults (§2.2)");
        assert!(cfg.cube().nodes().all(|a| m.is_safe(a)));
    }

    #[test]
    fn constructive_matches_iterative_fig1() {
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let a = SafetyMap::compute(&cfg);
        let b = SafetyMap::compute_constructive(&cfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn constructive_matches_iterative_exhaustive_q3() {
        // All 2^8 fault subsets of Q_3: Theorem 1's two constructions
        // agree everywhere.
        let cube = Hypercube::new(3);
        for mask in 0u64..256 {
            let mut f = FaultSet::new(cube);
            for i in 0..8 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let a = SafetyMap::compute(&cfg);
            let b = SafetyMap::compute_constructive(&cfg);
            assert_eq!(a.as_slice(), b.as_slice(), "mask {mask:#b}");
            assert_eq!(a.check_fixed_point(&cfg), None, "mask {mask:#b}");
            assert!(a.rounds() <= 2, "Corollary: ≤ n−1 rounds, mask {mask:#b}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        // Fig. 1 instance plus exhaustive Q_3: bitwise-identical maps
        // and round counts.
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let seq = SafetyMap::compute(&cfg);
        let par = SafetyMap::compute_parallel(&cfg);
        assert_eq!(seq, par);

        let cube = Hypercube::new(3);
        for mask in 0u64..256 {
            let mut f = FaultSet::new(cube);
            for i in 0..8 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            assert_eq!(
                SafetyMap::compute(&cfg),
                SafetyMap::compute_parallel(&cfg),
                "mask {mask:#b}"
            );
        }
    }

    #[test]
    fn parallel_on_a_big_cube() {
        // n = 12: 4096 nodes, a realistically "large" instance.
        let cube = Hypercube::new(12);
        let mut f = FaultSet::new(cube);
        for i in 0..11u64 {
            f.insert(NodeId::new(i * 373 % 4096));
        }
        let cfg = FaultConfig::with_node_faults(cube, f);
        let seq = SafetyMap::compute(&cfg);
        let par = SafetyMap::compute_parallel(&cfg);
        assert_eq!(seq.as_slice(), par.as_slice());
        assert!(seq.rounds() <= 11);
    }

    #[test]
    fn safe_node_set_section23_example() {
        // §2.3: faults {0000, 0110, 1111} → SL-safe set is
        // {0001, 0011, 0101, 1000, 1001, 1010, 1011, 1100, 1101}.
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let m = SafetyMap::compute(&cfg);
        let safe: Vec<String> = m.safe_nodes().iter().map(|a| a.to_binary(4)).collect();
        assert_eq!(
            safe,
            vec!["0001", "0011", "0101", "1000", "1001", "1010", "1011", "1100", "1101"]
        );
    }

    #[test]
    fn all_faulty_map() {
        let cube = Hypercube::new(2);
        let mut f = FaultSet::new(cube);
        for a in cube.nodes() {
            f.insert(a);
        }
        let cfg = FaultConfig::with_node_faults(cube, f);
        let m = SafetyMap::compute(&cfg);
        assert!(m.as_slice().iter().all(|&l| l == 0));
    }

    #[test]
    fn check_fixed_point_catches_corruption() {
        let cfg = cfg4(&["0011"]);
        let m = SafetyMap::compute(&cfg);
        let mut levels = m.as_slice().to_vec();
        levels[0] = 1; // corrupt node 0000
        let bad = SafetyMap::from_levels(cfg.cube(), levels);
        assert_eq!(bad.check_fixed_point(&cfg), Some(NodeId::ZERO));
    }

    #[test]
    #[should_panic]
    fn compute_rejects_link_faults() {
        let cube = Hypercube::new(3);
        let mut cfg = FaultConfig::fault_free(cube);
        cfg.link_faults_mut().insert(NodeId::new(0), NodeId::new(1));
        SafetyMap::compute(&cfg);
    }
}
