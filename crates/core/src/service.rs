//! The safety-level [`RouteProvider`]: epoch-snapshot routing over a
//! churning fault set.
//!
//! [`SafetyService`] is the concrete seam between the paper's routing
//! stack and the generic lifecycle engine in
//! [`hypersafe_simkit::service`]:
//!
//! * Readers route against an immutable [`SafetyState`] snapshot (a
//!   `(FaultConfig, SafetyMap)` pair) obtained from an
//!   [`EpochHandle`] — they never block and never observe a torn map.
//! * The writer side queues each churn event and, after the service's
//!   publication lag (modelling the safety-level restabilization
//!   window), derives the next epoch by cloning the current snapshot
//!   and applying [`SafetyMap::apply_fault`] /
//!   [`SafetyMap::apply_recover`] — the incremental delta path, not a
//!   full recompute.
//! * Each attempt *plans* hop-by-hop on the snapshot map (the §3
//!   algorithm via [`crate::unicast`]) and *validates* each hop
//!   against the live fault set. A live-faulty node on the planned
//!   walk means the snapshot is stale → [`AttemptVerdict::Stale`], and
//!   the lifecycle engine retries against a fresher epoch. A snapshot
//!   `Failure` falls through to the detour rung:
//!   [`crate::reroute::route_dynamic`] against the live fault set.
//!
//! The epoch invariant checked at every quiescent point: the published
//! map is the exact Definition-1 fixed point of the published config
//! ([`SafetyMap::check_fixed_point`]), and the published fault set
//! converges to the live one once the pending queue drains.

use crate::multipath::route_disjoint;
use crate::navigation::NavVector;
use crate::reroute::{route_dynamic, DynamicOutcome};
use crate::safety::SafetyMap;
use crate::unicast::{intermediate_dim_tb, source_decision_tb, Decision, TieBreak};
use hypersafe_simkit::service::{
    AttemptOutcome, AttemptVerdict, DeliveryRung, Epoch, EpochHandle, RedundantOutcome,
    RouteProvider,
};
use hypersafe_topology::{FaultConfig, NodeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// One immutable snapshot generation: the fault configuration and the
/// safety map that is its Definition-1 fixed point.
#[derive(Clone, Debug)]
pub struct SafetyState {
    /// Fault set the snapshot was computed against.
    pub cfg: FaultConfig,
    /// The fixed-point safety map of `cfg`.
    pub map: SafetyMap,
}

/// Safety-level routing behind epoch snapshots — the concrete
/// [`RouteProvider`] driven by
/// [`hypersafe_simkit::service::RoutingService`].
pub struct SafetyService {
    epochs: EpochHandle<SafetyState>,
    /// Ground truth: updated immediately on churn, ahead of the
    /// published epoch by up to the publication lag.
    live: FaultConfig,
    /// Churn deltas applied to `live` but not yet published, FIFO.
    pending: VecDeque<(NodeId, bool)>,
    tb: TieBreak,
    /// Attempts answered, per verdict class (provider-side view).
    attempts: u64,
    /// Detour-rung reroutes computed (each runs a live-state GS).
    detours: u64,
    /// Accumulated delta-maintenance cost across publications.
    cells_changed: u64,
    /// Test hook: archive of every published snapshot (epoch order).
    archive: Option<Vec<Arc<Epoch<SafetyState>>>>,
}

impl SafetyService {
    /// A service over `cfg` with the default (paper) tie-break. Epoch
    /// 0 is the full fixed-point computation; all later epochs are
    /// incremental deltas.
    pub fn new(cfg: FaultConfig) -> Self {
        Self::with_tiebreak(cfg, TieBreak::LowestDim)
    }

    /// [`SafetyService::new`] with an explicit tie-break policy.
    pub fn with_tiebreak(cfg: FaultConfig, tb: TieBreak) -> Self {
        let map = SafetyMap::compute(&cfg);
        SafetyService {
            epochs: EpochHandle::new(SafetyState {
                cfg: cfg.clone(),
                map,
            }),
            live: cfg,
            pending: VecDeque::new(),
            tb,
            attempts: 0,
            detours: 0,
            cells_changed: 0,
            archive: None,
        }
    }

    /// Enables the snapshot archive (tests: re-validate every issued
    /// route against the exact snapshot that planned it).
    pub fn with_archive(mut self) -> Self {
        self.archive = Some(vec![self.epochs.load()]);
        self
    }

    /// Archived snapshots in epoch order (index = epoch number), if
    /// [`SafetyService::with_archive`] was enabled.
    pub fn archived(&self) -> Option<&[Arc<Epoch<SafetyState>>]> {
        self.archive.as_deref()
    }

    /// The live (ground-truth) fault configuration.
    pub fn live_cfg(&self) -> &FaultConfig {
        &self.live
    }

    /// The current published snapshot.
    pub fn snapshot(&self) -> Arc<Epoch<SafetyState>> {
        self.epochs.load()
    }

    /// Read access to the epoch store itself (e.g. to share with
    /// concurrent readers in tests).
    pub fn epochs(&self) -> &EpochHandle<SafetyState> {
        &self.epochs
    }

    /// Route attempts answered so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Detour-rung reroutes computed so far.
    pub fn detours(&self) -> u64 {
        self.detours
    }

    /// Total safety-map cells changed by incremental publications.
    pub fn cells_changed(&self) -> u64 {
        self.cells_changed
    }

    /// Churn deltas applied to the live set but not yet published.
    pub fn pending_publications(&self) -> usize {
        self.pending.len()
    }

    /// Plans `s → d` on the snapshot map and validates each hop
    /// against the live fault set. Returns the rung, the hop count,
    /// and the walked trail (for route-validity proptests).
    fn walk(
        &mut self,
        snap: &SafetyState,
        s: NodeId,
        d: NodeId,
        trail: Option<&mut Vec<NodeId>>,
    ) -> AttemptVerdict {
        let decision = source_decision_tb(&snap.map, s, d, self.tb);
        let (rung, first_dim) = match decision {
            Decision::AlreadyThere => {
                return AttemptVerdict::Delivered {
                    rung: DeliveryRung::Optimal,
                    hops: 0,
                }
            }
            Decision::Failure => return self.detour(s, d),
            Decision::Optimal { first_dim, .. } => (DeliveryRung::Optimal, first_dim),
            Decision::Suboptimal { first_dim } => (DeliveryRung::Suboptimal, first_dim),
        };

        let mut nv = NavVector::new(s, d);
        let mut at = s;
        let mut hops = 0u32;
        let mut dim = first_dim;
        let mut trail = trail;
        if let Some(t) = trail.as_deref_mut() {
            t.push(at);
        }
        loop {
            let next = at.neighbor(dim);
            if self.live.node_faulty(next) {
                // The plan was valid at snapshot time; the node died
                // since. Retry against a fresher epoch.
                return AttemptVerdict::Stale;
            }
            nv = nv.after_hop(dim);
            hops += 1;
            at = next;
            if let Some(t) = trail.as_deref_mut() {
                t.push(at);
            }
            if nv.is_done() {
                return AttemptVerdict::Delivered { rung, hops };
            }
            match intermediate_dim_tb(&snap.map, at, nv, self.tb) {
                Some(i) => dim = i,
                // Theorem 2 rules this out on a consistent snapshot;
                // treat a dead end defensively as staleness.
                None => return AttemptVerdict::Stale,
            }
        }
    }

    /// The detour rung: the snapshot refuses (`Failure`), but the live
    /// fault set — which may already contain recoveries the snapshot
    /// has not seen — might still admit a route via the dynamic
    /// reroute machinery (fresh map + per-hop re-decisions).
    fn detour(&mut self, s: NodeId, d: NodeId) -> AttemptVerdict {
        self.detours += 1;
        let run = route_dynamic(self.live.cube(), self.live.node_faults(), &[], s, d);
        match run.outcome {
            DynamicOutcome::Delivered => AttemptVerdict::Delivered {
                rung: DeliveryRung::Detour,
                hops: run.path.len(),
            },
            _ => AttemptVerdict::Unreachable,
        }
    }

    /// [`RouteProvider::attempt`], but also records the planned trail
    /// into `trail` (cleared first) — the hook the route-validity
    /// proptests use.
    pub fn attempt_traced(
        &mut self,
        s: NodeId,
        d: NodeId,
        trail: &mut Vec<NodeId>,
    ) -> AttemptOutcome {
        trail.clear();
        self.attempts += 1;
        let snap = self.epochs.load();
        if self.live.node_faulty(s) {
            return AttemptOutcome {
                epoch: snap.epoch,
                verdict: AttemptVerdict::SourceFaulty,
            };
        }
        if self.live.node_faulty(d) {
            return AttemptOutcome {
                epoch: snap.epoch,
                verdict: AttemptVerdict::DestinationFaulty,
            };
        }
        let verdict = self.walk(&snap.data, s, d, Some(trail));
        AttemptOutcome {
            epoch: snap.epoch,
            verdict,
        }
    }
}

impl RouteProvider for SafetyService {
    fn attempt(&mut self, s: NodeId, d: NodeId) -> AttemptOutcome {
        self.attempts += 1;
        let snap = self.epochs.load();
        if self.live.node_faulty(s) {
            return AttemptOutcome {
                epoch: snap.epoch,
                verdict: AttemptVerdict::SourceFaulty,
            };
        }
        if self.live.node_faulty(d) {
            return AttemptOutcome {
                epoch: snap.epoch,
                verdict: AttemptVerdict::DestinationFaulty,
            };
        }
        let verdict = self.walk(&snap.data, s, d, None);
        AttemptOutcome {
            epoch: snap.epoch,
            verdict,
        }
    }

    /// Redundant attempt: plan up to `k` node-disjoint paths on the
    /// snapshot ([`route_disjoint`]), then validate every planned path
    /// hop-by-hop against the *live* fault set — a copy whose path
    /// crossed a node that died since the snapshot is simply lost, the
    /// surviving copies still count. This is the E26 service's
    /// redundancy request seam: one call, up to `k` independent
    /// chances, no retry round-trip for single-fault losses.
    fn attempt_redundant(&mut self, s: NodeId, d: NodeId, k: u8) -> RedundantOutcome {
        self.attempts += 1;
        let snap = self.epochs.load();
        if self.live.node_faulty(s) || self.live.node_faulty(d) {
            return RedundantOutcome {
                epoch: snap.epoch,
                delivered_paths: 0,
                best_hops: 0,
                total_hops: 0,
            };
        }
        let planned = route_disjoint(&snap.data.cfg, &snap.data.map, s, d, k);
        let mut delivered_paths = 0u32;
        let mut best_hops = u32::MAX;
        let mut total_hops = 0u32;
        for p in &planned.paths {
            // Interior nodes and links must survive in the live set;
            // the endpoints were checked above.
            if p.path.traversable(&self.live, true) {
                delivered_paths += 1;
                best_hops = best_hops.min(p.path.len());
                total_hops += p.path.len();
            }
        }
        RedundantOutcome {
            epoch: snap.epoch,
            delivered_paths,
            best_hops: if delivered_paths == 0 { 0 } else { best_hops },
            total_hops,
        }
    }

    fn apply_churn(&mut self, node: NodeId, fault: bool) -> bool {
        if fault == self.live.node_faulty(node) {
            return false; // faulting the faulty / recovering the healthy
        }
        if fault {
            self.live.node_faults_mut().insert(node);
        } else {
            self.live.node_faults_mut().remove(node);
        }
        self.pending.push_back((node, fault));
        true
    }

    fn publish_next(&mut self) -> Option<u64> {
        let (node, fault) = self.pending.pop_front()?;
        let mut changed = 0u64;
        let epoch = self.epochs.update(|parent| {
            let mut cfg = parent.data.cfg.clone();
            let mut map = parent.data.map.clone();
            let stats = if fault {
                cfg.node_faults_mut().insert(node);
                map.apply_fault(&cfg, node)
            } else {
                cfg.node_faults_mut().remove(node);
                map.apply_recover(&cfg, node)
            };
            changed = stats.cells_changed;
            SafetyState { cfg, map }
        });
        self.cells_changed += changed;
        if let Some(arch) = self.archive.as_mut() {
            arch.push(self.epochs.load());
        }
        Some(epoch)
    }

    fn current_epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    fn check_invariants(&mut self) -> Result<(), String> {
        let snap = self.epochs.load();
        if let Some(node) = snap.data.map.check_fixed_point(&snap.data.cfg) {
            return Err(format!(
                "epoch {}: published map is not the fixed point of its config at node {node}",
                snap.epoch
            ));
        }
        if self.pending.is_empty() {
            // Quiescent writer: the published epoch must have caught
            // up with the live fault set exactly.
            let live: Vec<NodeId> = self.live.node_faults().iter().collect();
            let snap_faults: Vec<NodeId> = snap.data.cfg.node_faults().iter().collect();
            if live != snap_faults {
                return Err(format!(
                    "epoch {}: published faults {:?} diverge from live {:?} with no pending delta",
                    snap.epoch, snap_faults, live
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn fig1_service() -> SafetyService {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        SafetyService::new(cfg)
    }

    #[test]
    fn epoch_zero_is_the_full_fixed_point() {
        let mut svc = fig1_service();
        assert_eq!(svc.current_epoch(), 0);
        assert!(svc.check_invariants().is_ok());
        let snap = svc.snapshot();
        assert_eq!(
            snap.data.map.level(NodeId::from_binary("1110").unwrap()),
            4,
            "the paper's fig. 1 level"
        );
    }

    #[test]
    fn optimal_route_on_a_quiet_service() {
        let mut svc = fig1_service();
        let s = NodeId::from_binary("1110").unwrap();
        let d = NodeId::from_binary("0001").unwrap();
        let out = svc.attempt(s, d);
        assert_eq!(out.epoch, 0);
        assert_eq!(
            out.verdict,
            AttemptVerdict::Delivered {
                rung: DeliveryRung::Optimal,
                hops: 4
            }
        );
    }

    #[test]
    fn churn_is_live_immediately_but_published_after_the_delta() {
        let mut svc = fig1_service();
        let a = NodeId::from_binary("1111").unwrap();
        assert!(svc.apply_churn(a, true));
        assert!(!svc.apply_churn(a, true), "double fault is a no-op");
        assert!(svc.live_cfg().node_faulty(a));
        assert!(!svc.snapshot().data.cfg.node_faulty(a), "not yet published");
        assert_eq!(svc.pending_publications(), 1);
        assert_eq!(svc.publish_next(), Some(1));
        assert!(svc.snapshot().data.cfg.node_faulty(a));
        assert!(svc.check_invariants().is_ok(), "delta kept the fixed point");
        assert_eq!(svc.publish_next(), None);
    }

    #[test]
    fn stale_snapshot_yields_stale_then_fresh_epoch_delivers() {
        // A roomy 5-cube: killing one intermediate leaves plenty of
        // optimal alternatives for the fresh epoch to re-plan onto.
        let cube = Hypercube::new(5);
        let mut svc = SafetyService::new(FaultConfig::fault_free(cube));
        let s = NodeId::from_binary("00000").unwrap();
        let d = NodeId::from_binary("11111").unwrap();
        // Record the snapshot plan, then kill its first intermediate.
        let mut trail = Vec::new();
        let out = svc.attempt_traced(s, d, &mut trail);
        assert!(matches!(out.verdict, AttemptVerdict::Delivered { .. }));
        let first_hop = trail[1];
        assert!(svc.apply_churn(first_hop, true));
        // Live set knows; the snapshot does not — the same plan now
        // reports staleness.
        let out = svc.attempt(s, d);
        assert_eq!(out.verdict, AttemptVerdict::Stale);
        assert_eq!(out.epoch, 0);
        // Publish the delta: the fresher epoch routes around it.
        svc.publish_next();
        let out = svc.attempt(s, d);
        assert_eq!(out.epoch, 1);
        assert!(
            matches!(out.verdict, AttemptVerdict::Delivered { .. }),
            "fresh epoch re-plans: {:?}",
            out.verdict
        );
    }

    #[test]
    fn faulty_endpoints_are_typed_rejections() {
        let mut svc = fig1_service();
        let faulty = NodeId::from_binary("0011").unwrap();
        let healthy = NodeId::from_binary("0000").unwrap();
        assert_eq!(
            svc.attempt(faulty, healthy).verdict,
            AttemptVerdict::SourceFaulty
        );
        assert_eq!(
            svc.attempt(healthy, faulty).verdict,
            AttemptVerdict::DestinationFaulty
        );
    }

    #[test]
    fn recovery_pending_publication_enables_the_detour_rung() {
        // Isolate node 0000 in a 3-cube: fault all three neighbors.
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["001", "010", "100"]),
        );
        let mut svc = SafetyService::new(cfg);
        let s = NodeId::from_binary("000").unwrap();
        let d = NodeId::from_binary("111").unwrap();
        assert_eq!(
            svc.attempt(s, d).verdict,
            AttemptVerdict::Unreachable,
            "fully isolated: even the detour rung fails"
        );
        // Recover 001 in the live set; the snapshot still refuses, but
        // the detour (live-state reroute) now delivers.
        assert!(svc.apply_churn(NodeId::from_binary("001").unwrap(), false));
        let out = svc.attempt(s, d);
        assert_eq!(
            out.verdict,
            AttemptVerdict::Delivered {
                rung: DeliveryRung::Detour,
                hops: 3
            },
            "live recovery reachable via detour before publication"
        );
        assert_eq!(svc.detours(), 2);
    }

    #[test]
    fn redundant_attempt_fans_and_survives_post_snapshot_churn() {
        let cube = Hypercube::new(4);
        let mut svc = SafetyService::new(FaultConfig::fault_free(cube));
        let s = NodeId::from_binary("0000").unwrap();
        let d = NodeId::from_binary("0011").unwrap();
        // Quiet fault-free service: the full fan of n copies delivers.
        let out = svc.attempt_redundant(s, d, 4);
        assert_eq!(out.epoch, 0);
        assert_eq!(out.delivered_paths, 4);
        assert_eq!(out.best_hops, 2);
        assert_eq!(out.total_hops, 2 + 2 + 4 + 4, "2 optimal + 2 detours");
        // Kill one planned intermediate after the snapshot: exactly one
        // copy is lost, the rest still deliver — no Stale round-trip.
        assert!(svc.apply_churn(NodeId::from_binary("0001").unwrap(), true));
        let out = svc.attempt_redundant(s, d, 4);
        assert_eq!(out.epoch, 0, "still planning on the stale snapshot");
        assert_eq!(out.delivered_paths, 3);
        // k = 1 degrades to a single safest copy.
        let single = svc.attempt_redundant(s, d, 1);
        assert!(single.delivered_paths <= 1);
        // Faulty endpoints deliver nothing.
        let dead = NodeId::from_binary("0001").unwrap();
        assert_eq!(svc.attempt_redundant(dead, d, 4).delivered_paths, 0);
        assert_eq!(svc.attempt_redundant(s, dead, 4).delivered_paths, 0);
    }

    #[test]
    fn archive_records_every_epoch_in_order() {
        let mut svc = fig1_service().with_archive();
        for (k, bits) in ["1111", "0000"].iter().enumerate() {
            let a = NodeId::from_binary(bits).unwrap();
            svc.apply_churn(a, true);
            assert_eq!(svc.publish_next(), Some(k as u64 + 1));
        }
        let arch = svc.archived().unwrap();
        assert_eq!(arch.len(), 3, "epoch 0 + two publications");
        for (k, e) in arch.iter().enumerate() {
            assert_eq!(e.epoch, k as u64);
            assert!(e.data.map.check_fixed_point(&e.data.cfg).is_none());
        }
    }
}
