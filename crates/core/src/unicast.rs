//! The paper's unicasting algorithm (§3.1–§3.2).
//!
//! At the **source** `s` with destination `d`, `H = H(s, d)`:
//!
//! * `C1`: `S(s) ≥ H` — the source itself is safe enough; **or**
//! * `C2`: some *preferred* neighbor `sⁱ` has `S(sⁱ) ≥ H − 1`
//!   → **optimal** unicasting: forward to the preferred neighbor with
//!   the highest safety level; the path has length exactly `H`.
//! * else `C3`: some *spare* neighbor has `S ≥ H + 1`
//!   → **suboptimal** unicasting: forward to the spare neighbor with
//!   the highest safety level; the path has length exactly `H + 2`.
//! * else the unicast **fails** — detected locally at the source
//!   (too many nearby faults, or `d` lies in another component of a
//!   disconnected cube, §3.3).
//!
//! At every **intermediate** node the rule is uniform: forward to the
//! preferred neighbor (w.r.t. the navigation vector) with the highest
//! safety level; stop when the vector is zero.
//!
//! Tie-breaking: the paper chooses arbitrarily among equal-level
//! neighbors ("say 1111 along dimension 0"); we deterministically take
//! the lowest dimension among the maxima, which reproduces the paper's
//! narrated routes exactly.

use crate::navigation::NavVector;
use crate::safety::{Level, SafetyMap};
use hypersafe_simkit::Trace;
use hypersafe_topology::{FaultConfig, NodeId, Path};

/// The source-side routing decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// `C1 ∨ C2` holds: an optimal (Hamming-length) path is guaranteed.
    Optimal {
        /// Which condition fired (`C1` may hold together with `C2`;
        /// `C1` is reported when it holds).
        condition: Condition,
        /// First-hop dimension.
        first_dim: u8,
    },
    /// Only `C3` holds: a suboptimal (`H + 2`) path is guaranteed.
    Suboptimal {
        /// First-hop (spare) dimension.
        first_dim: u8,
    },
    /// All three conditions fail; the unicast is aborted at the source.
    Failure,
    /// `s == d`: nothing to route.
    AlreadyThere,
}

/// Which feasibility condition admitted the unicast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Condition {
    /// `S(s) ≥ H`.
    C1,
    /// `∃ i: S(sⁱ) ≥ H − 1 ∧ N(i) = 1`.
    C2,
    /// `∃ i: S(sⁱ) ≥ H + 1 ∧ N(i) = 0`.
    C3,
}

/// Full outcome of routing one unicast to completion.
#[derive(Clone, Debug)]
pub struct RouteResult {
    /// The source decision taken.
    pub decision: Decision,
    /// The realized path (present unless the decision was `Failure`;
    /// for `AlreadyThere` it is the zero-length path).
    pub path: Option<Path>,
    /// Whether the message reached `d` over nonfaulty intermediate
    /// nodes and usable links. (`true` even if `d` itself is faulty —
    /// footnote 3: delivery to a faulty destination is still delivery.)
    pub delivered: bool,
}

/// How to break ties among equally-safe candidate neighbors.
///
/// The paper chooses arbitrarily ("say 1111 along dimension 0"); the
/// policy only affects *which* of several equally-guaranteed routes is
/// taken, never feasibility or length — but it does affect how traffic
/// spreads over links (measured by the E17 experiment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Lowest dimension among the maxima — the workspace default,
    /// which reproduces the paper's narrated walks.
    #[default]
    LowestDim,
    /// Highest dimension among the maxima.
    HighestDim,
    /// Pseudo-random among the maxima, seeded by `(node, salt)` so the
    /// choice is deterministic per hop yet decorrelated across sources
    /// — spreads load without carrying an RNG through the router.
    Hashed {
        /// Per-unicast salt (e.g. a message id).
        salt: u64,
    },
}

/// Picks the neighbor of `at` along the dimension set `dims` with the
/// highest safety level, breaking ties per `tb`. Returns
/// `(dim, level)`.
pub(crate) fn argmax_level_tb(
    map: &SafetyMap,
    at: NodeId,
    dims: impl Iterator<Item = u8>,
    tb: TieBreak,
) -> Option<(u8, Level)> {
    // Tied dimensions live on the stack (≤ MAX_DIM of them) — this
    // runs once per hop on the batched routing path, so no heap.
    let mut ties = [0u8; hypersafe_topology::MAX_DIM as usize];
    let mut num_ties = 0usize;
    let mut best_level: Option<Level> = None;
    for i in dims {
        let lv = map.level(at.neighbor(i));
        match best_level {
            Some(b) if b > lv => {}
            Some(b) if b == lv => {
                ties[num_ties] = i;
                num_ties += 1;
            }
            _ => {
                best_level = Some(lv);
                ties[0] = i;
                num_ties = 1;
            }
        }
    }
    let lv = best_level?;
    let dim = match tb {
        TieBreak::LowestDim => ties[0],
        TieBreak::HighestDim => ties[num_ties - 1],
        TieBreak::Hashed { salt } => {
            // SplitMix64 over (node, salt): cheap, stateless, uniform.
            let mut z = at.raw() ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            ties[(z % num_ties as u64) as usize]
        }
    };
    Some((dim, lv))
}

fn argmax_level(
    map: &SafetyMap,
    at: NodeId,
    dims: impl Iterator<Item = u8>,
) -> Option<(u8, Level)> {
    argmax_level_tb(map, at, dims, TieBreak::LowestDim)
}

/// `UNICASTING_AT_SOURCE_NODE`: evaluates `C1`/`C2`/`C3` and returns
/// the decision, without forwarding.
pub fn source_decision(map: &SafetyMap, s: NodeId, d: NodeId) -> Decision {
    source_decision_tb(map, s, d, TieBreak::LowestDim)
}

/// [`source_decision`] with an explicit tie-break policy.
pub fn source_decision_tb(map: &SafetyMap, s: NodeId, d: NodeId, tb: TieBreak) -> Decision {
    let n = map.dim();
    let nv = NavVector::new(s, d);
    let h = nv.remaining() as u16;
    if h == 0 {
        return Decision::AlreadyThere;
    }

    let c1 = (map.level(s) as u16) >= h;
    let preferred_best = argmax_level_tb(map, s, nv.preferred_dims(), tb);
    let c2 = preferred_best.is_some_and(|(_, lv)| (lv as u16) + 1 >= h);
    if c1 || c2 {
        let (first_dim, _) = preferred_best.expect("H ≥ 1 gives ≥ 1 preferred dim");
        let condition = if c1 { Condition::C1 } else { Condition::C2 };
        return Decision::Optimal {
            condition,
            first_dim,
        };
    }

    let spare_best = argmax_level_tb(map, s, nv.spare_dims(n), tb);
    if let Some((i, lv)) = spare_best {
        if (lv as u16) > h {
            return Decision::Suboptimal { first_dim: i };
        }
    }
    Decision::Failure
}

/// `UNICASTING_AT_INTERMEDIATE_NODE`: the forwarding dimension chosen
/// at `at` for navigation vector `nv` — the preferred neighbor with
/// the highest safety level. `None` when `nv` is zero.
pub fn intermediate_dim(map: &SafetyMap, at: NodeId, nv: NavVector) -> Option<u8> {
    argmax_level(map, at, nv.preferred_dims()).map(|(i, _)| i)
}

/// [`intermediate_dim`] with an explicit tie-break policy.
pub fn intermediate_dim_tb(map: &SafetyMap, at: NodeId, nv: NavVector, tb: TieBreak) -> Option<u8> {
    argmax_level_tb(map, at, nv.preferred_dims(), tb).map(|(i, _)| i)
}

/// Routes one unicast from `s` to `d` to completion, simulating every
/// hop, with an optional trace of the hops taken.
///
/// The route is driven purely by safety levels, exactly as the
/// distributed algorithm would run; `cfg` is consulted only to *judge*
/// the outcome (was a faulty node entered?), never to steer. If the
/// message enters a faulty node before the navigation vector empties,
/// the unicast is recorded as undelivered (fault-stop nodes drop
/// traffic) — with a correct safety map this can only happen when the
/// source decision was already `Failure` and the caller forced routing
/// anyway, or when `d` itself is faulty.
///
/// # Examples
///
/// ```
/// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
/// use hypersafe_core::{route, SafetyMap, Decision};
///
/// let cube = Hypercube::new(4);
/// let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
/// let cfg = FaultConfig::with_node_faults(cube, faults);
/// let map = SafetyMap::compute(&cfg);
/// let res = route(&cfg, &map,
///     NodeId::from_binary("1110").unwrap(),
///     NodeId::from_binary("0001").unwrap());
/// assert!(res.delivered);
/// assert!(res.path.unwrap().is_optimal());
/// ```
pub fn route(cfg: &FaultConfig, map: &SafetyMap, s: NodeId, d: NodeId) -> RouteResult {
    route_traced(cfg, map, s, d, &mut Trace::disabled())
}

/// [`route`] with an explicit tie-break policy (default routing uses
/// [`TieBreak::LowestDim`]). Feasibility and path length are policy-
/// independent; only the choice among equally-guaranteed routes moves.
pub fn route_tb(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    tb: TieBreak,
) -> RouteResult {
    route_traced_tb(cfg, map, s, d, tb, &mut Trace::disabled())
}

/// [`route`] with hop tracing.
pub fn route_traced(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    trace: &mut Trace,
) -> RouteResult {
    route_traced_tb(cfg, map, s, d, TieBreak::LowestDim, trace)
}

/// [`route_tb`] with hop tracing.
pub fn route_traced_tb(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    tb: TieBreak,
    trace: &mut Trace,
) -> RouteResult {
    let decision = source_decision_tb(map, s, d, tb);
    let first_dim = match decision {
        Decision::AlreadyThere => {
            return RouteResult {
                decision,
                path: Some(Path::starting_at(s)),
                delivered: !cfg.node_faulty(s),
            }
        }
        Decision::Failure => {
            return RouteResult {
                decision,
                path: None,
                delivered: false,
            }
        }
        Decision::Optimal { first_dim, .. } | Decision::Suboptimal { first_dim } => first_dim,
    };

    let mut nv = NavVector::new(s, d);
    let mut at = s;
    let mut path = Path::starting_at(s);
    let mut dim = first_dim;

    loop {
        let next = at.neighbor(dim);
        if cfg.link_faults().contains(at, next) {
            // The physical send is lost on the faulty link.
            return RouteResult {
                decision,
                path: Some(path),
                delivered: false,
            };
        }
        nv = nv.after_hop(dim);
        trace.hop(at, next, dim, nv.0);
        path.push(next);
        at = next;
        if cfg.node_faulty(at) {
            // The message just entered a faulty node: lost, unless this
            // *is* the destination (footnote 3 — the physical link
            // delivered it to the dead node's doorstep).
            return RouteResult {
                decision,
                path: Some(path),
                delivered: nv.is_done(),
            };
        }
        if nv.is_done() {
            return RouteResult {
                decision,
                path: Some(path),
                delivered: true,
            };
        }
        match intermediate_dim_tb(map, at, nv, tb) {
            Some(i) => dim = i,
            None => {
                return RouteResult {
                    decision,
                    path: Some(path),
                    delivered: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    fn fig1() -> (FaultConfig, SafetyMap) {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        (cfg, map)
    }

    #[test]
    fn fig1_unicast_1110_to_0001_is_the_narrated_path() {
        // §3.2 first worked example: optimal via C1 (S(1110) = 4 = H),
        // route 1110 → 1111 → 1101 → 0101 → 0001.
        let (cfg, map) = fig1();
        let s = n("1110");
        let d = n("0001");
        let res = route(&cfg, &map, s, d);
        assert!(matches!(
            res.decision,
            Decision::Optimal {
                condition: Condition::C1,
                first_dim: 0
            }
        ));
        assert!(res.delivered);
        let p = res.path.unwrap();
        assert!(p.is_optimal());
        let expected: Vec<NodeId> = ["1110", "1111", "1101", "0101", "0001"]
            .iter()
            .map(|s| n(s))
            .collect();
        assert_eq!(p.nodes(), expected.as_slice());
    }

    #[test]
    fn fig1_unicast_0001_to_1100_uses_c2() {
        // §3.2 second worked example: S(0001) = 1 < H = 3, but preferred
        // neighbors 0000 and 0101 have level 2 = H − 1 → optimal via C2,
        // route 0001 → 0000 → 1000 → 1100.
        let (cfg, map) = fig1();
        let s = n("0001");
        let d = n("1100");
        assert_eq!(map.level(s), 1);
        let res = route(&cfg, &map, s, d);
        assert!(matches!(
            res.decision,
            Decision::Optimal {
                condition: Condition::C2,
                ..
            }
        ));
        assert!(res.delivered);
        let p = res.path.unwrap();
        assert!(p.is_optimal());
        let expected: Vec<NodeId> = ["0001", "0000", "1000", "1100"]
            .iter()
            .map(|s| n(s))
            .collect();
        assert_eq!(p.nodes(), expected.as_slice());
    }

    #[test]
    fn safe_source_always_optimal() {
        // "If the source node is safe, optimality is automatically
        // guaranteed for any unicasting." Check every destination from
        // each safe node in Fig. 1.
        let (cfg, map) = fig1();
        for s in cfg.healthy_nodes().filter(|&a| map.is_safe(a)) {
            for d in cfg.healthy_nodes() {
                if s == d {
                    continue;
                }
                let res = route(&cfg, &map, s, d);
                assert!(
                    matches!(res.decision, Decision::Optimal { .. }),
                    "{s} → {d}"
                );
                assert!(res.delivered, "{s} → {d}");
                assert!(res.path.unwrap().is_optimal(), "{s} → {d}");
            }
        }
    }

    #[test]
    fn optimal_paths_avoid_faulty_intermediates() {
        let (cfg, map) = fig1();
        for s in cfg.healthy_nodes() {
            for d in cfg.healthy_nodes() {
                let res = route(&cfg, &map, s, d);
                if let Some(p) = &res.path {
                    if res.delivered {
                        assert!(p.traversable(&cfg, false), "{s} → {d}: {p}");
                        match res.decision {
                            Decision::Optimal { .. } => assert!(p.is_optimal(), "{s} → {d}"),
                            Decision::Suboptimal { .. } => {
                                assert!(p.is_suboptimal(), "{s} → {d}")
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn already_there_is_trivial() {
        let (cfg, map) = fig1();
        let res = route(&cfg, &map, n("0000"), n("0000"));
        assert_eq!(res.decision, Decision::AlreadyThere);
        assert!(res.delivered);
        assert!(res.path.unwrap().is_empty());
    }

    #[test]
    fn delivery_to_adjacent_faulty_destination() {
        // Footnote 3 semantics: H = 1 to a faulty destination is
        // "delivered" (the physical link carries it out).
        let (cfg, map) = fig1();
        let res = route(&cfg, &map, n("0010"), n("0011"));
        assert!(matches!(res.decision, Decision::Optimal { .. }));
        assert!(res.delivered);
    }

    #[test]
    fn trace_records_hops() {
        let (cfg, map) = fig1();
        let mut trace = Trace::enabled();
        let res = route_traced(&cfg, &map, n("1110"), n("0001"), &mut trace);
        assert!(res.delivered);
        assert_eq!(trace.events().len(), 4, "one event per hop");
        let rendered = trace.render();
        assert!(rendered.contains("1110 → 1111"));
    }

    #[test]
    fn tiebreak_changes_route_not_contract() {
        // All tie-break policies keep the decision, delivery and length
        // identical; only the realized route may differ.
        let (cfg, map) = fig1();
        let policies = [
            TieBreak::LowestDim,
            TieBreak::HighestDim,
            TieBreak::Hashed { salt: 1 },
            TieBreak::Hashed { salt: 99 },
        ];
        for s in cfg.healthy_nodes() {
            for d in cfg.healthy_nodes() {
                if s == d {
                    continue;
                }
                let base = route(&cfg, &map, s, d);
                for tb in policies {
                    let r = route_tb(&cfg, &map, s, d, tb);
                    assert_eq!(
                        std::mem::discriminant(&base.decision),
                        std::mem::discriminant(&r.decision),
                        "{s} → {d} {tb:?}"
                    );
                    assert_eq!(base.delivered, r.delivered, "{s} → {d} {tb:?}");
                    if let (Some(a), Some(b)) = (&base.path, &r.path) {
                        assert_eq!(a.len(), b.len(), "{s} → {d} {tb:?}");
                        assert!(b.traversable(&cfg, true), "{s} → {d} {tb:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn highest_dim_takes_a_different_fig1_route() {
        let (cfg, map) = fig1();
        let s = n("1110");
        let d = n("0001");
        let low = route_tb(&cfg, &map, s, d, TieBreak::LowestDim);
        let high = route_tb(&cfg, &map, s, d, TieBreak::HighestDim);
        assert_ne!(low.path.unwrap().nodes(), high.path.unwrap().nodes());
        assert!(high.delivered);
    }

    #[test]
    fn failure_when_surrounded() {
        // Isolate 1110 as in Fig. 3; routing from it must fail at the
        // source for any destination.
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
        );
        let map = SafetyMap::compute(&cfg);
        for d in cfg.healthy_nodes() {
            if d == n("1110") {
                continue;
            }
            let res = route(&cfg, &map, n("1110"), d);
            assert_eq!(res.decision, Decision::Failure, "→ {d}");
            assert!(!res.delivered);
        }
    }
}
