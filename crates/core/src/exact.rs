//! Exact optimal-reachability oracle — ground truth for Theorem 2.
//!
//! The safety level is an *approximation* "of the number and
//! distribution of faulty nodes": a `k`-safe node is guaranteed
//! optimal paths within distance `k`, but the converse does not hold —
//! a node may reach further optimally than its level promises. This
//! module computes the exact predicate
//!
//! > `OPT(a, d)` — "an optimal (Hamming-length) path from `a` to `d`
//! > with nonfaulty intermediate nodes exists"
//!
//! by dynamic programming over navigation masks, and from it each
//! node's exact *guaranteed radius* `r(a) = max{k : OPT(a, d) for all
//! d within k}`. Theorem 2 says `S(a) ≤ r(a)` everywhere (tested
//! exhaustively and by property); the E16 experiment measures the gap,
//! i.e. the price the paper's `n − 1`-round computability costs
//! relative to perfect information.
//!
//! Complexity is `Θ(n · 4ⁿ)` time and `4ⁿ` bits of memory — exact
//! oracles do not come cheap; practical for `n ≤ 10` in release
//! builds, and exactly why the paper's cheap approximation matters.

use crate::safety::{Level, SafetyMap};
use hypersafe_topology::{e, BitDims, FaultConfig, NodeId};

/// The exact reachability table for one faulty-cube instance.
pub struct ExactReach {
    n: u8,
    /// `table[a * 2ⁿ + m]` — whether an optimal path from `a` exists
    /// for navigation mask `m` (destination `a ⊕ m`).
    table: Vec<bool>,
}

impl ExactReach {
    /// # Examples
    ///
    /// ```
    /// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
    /// use hypersafe_core::{ExactReach, SafetyMap, tightness};
    ///
    /// let cube = Hypercube::new(4);
    /// let faults = FaultSet::from_binary_strs(cube, &["0001", "0010"]);
    /// let cfg = FaultConfig::with_node_faults(cube, faults);
    /// let ex = ExactReach::compute(&cfg);
    /// // Both optimal intermediates to 0011 are dead:
    /// assert!(!ex.optimal_path_exists(NodeId::ZERO, NodeId::new(0b0011)));
    /// // …and the safety level never over-promises:
    /// let map = SafetyMap::compute(&cfg);
    /// assert_eq!(tightness(&cfg, &map, &ex).violations, 0);
    /// ```
    ///
    /// Builds the full table.
    ///
    /// # Panics
    /// Panics for `n > 12` (the table would exceed 16M entries; use
    /// sampling approaches beyond that).
    pub fn compute(cfg: &FaultConfig) -> Self {
        let cube = cfg.cube();
        let n = cube.dim();
        assert!(n <= 12, "exact oracle limited to n ≤ 12 (4ⁿ table)");
        assert!(cfg.link_faults().is_empty(), "node faults only");
        let size = cube.num_nodes() as usize;
        let mut table = vec![false; size * size];

        // Masks in increasing popcount so every OPT(b, m ⊕ eᵢ) is
        // already final when OPT(a, m) is evaluated.
        let mut masks: Vec<u64> = (0..cube.num_nodes()).collect();
        masks.sort_by_key(|m| m.count_ones());
        for &m in &masks {
            if m == 0 {
                // Trivially "there" for every a.
                for a in 0..size {
                    table[a * size + m as usize] = true;
                }
                continue;
            }
            for a in 0..size as u64 {
                let ok = if m.count_ones() == 1 {
                    // A neighbor is always reachable directly, faulty
                    // or not (Theorem 2's base case / footnote 3).
                    true
                } else {
                    BitDims(m).any(|i| {
                        let b = a ^ e(i).raw();
                        !cfg.node_faulty(NodeId::new(b))
                            && table[(b as usize) * size + (m ^ e(i).raw()) as usize]
                    })
                };
                table[(a as usize) * size + m as usize] = ok;
            }
        }
        ExactReach { n, table }
    }

    /// Whether an optimal path `a → d` with nonfaulty intermediates
    /// exists.
    #[inline]
    pub fn optimal_path_exists(&self, a: NodeId, d: NodeId) -> bool {
        let size = 1usize << self.n;
        self.table[(a.raw() as usize) * size + a.xor(d).raw() as usize]
    }

    /// The exact guaranteed radius of `a`: the largest `k` such that
    /// *every* node within Hamming distance `k` is optimally
    /// reachable. 0 for a faulty node by convention.
    pub fn radius(&self, cfg: &FaultConfig, a: NodeId) -> Level {
        if cfg.node_faulty(a) {
            return 0;
        }
        let size = 1u64 << self.n;
        let mut best = self.n;
        for m in 1..size {
            if !self.table[(a.raw() as usize) * size as usize + m as usize] {
                best = best.min(m.count_ones() as u8 - 1);
            }
        }
        best
    }

    /// Per-node exact radii as a [`SafetyMap`]-shaped vector (handy for
    /// comparisons with the real map).
    pub fn radii(&self, cfg: &FaultConfig) -> Vec<Level> {
        cfg.cube().nodes().map(|a| self.radius(cfg, a)).collect()
    }

    /// The exact per-distance *reach vector* of `a`: `v[k − 1]` is
    /// true iff **every** node at Hamming distance exactly `k` is
    /// optimally reachable. The safety level compresses this vector to
    /// its longest all-true prefix; the follow-on "safety vector" line
    /// of work keeps the whole thing — this is its exact (perfect-
    /// information) counterpart.
    pub fn reach_vector(&self, a: NodeId) -> Vec<bool> {
        let size = 1u64 << self.n;
        let mut v = vec![true; self.n as usize];
        for m in 1..size {
            let k = m.count_ones() as usize;
            if !self.table[(a.raw() as usize) * size as usize + m as usize] {
                v[k - 1] = false;
            }
        }
        v
    }
}

/// Summary of the safety-level vs exact-radius comparison for one
/// instance — the paper's approximation quality, quantified.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TightnessSummary {
    /// Nonfaulty nodes examined.
    pub nodes: u64,
    /// Nodes where `S(a) = r(a)` (the approximation is tight).
    pub tight: u64,
    /// Mean slack `r(a) − S(a)`.
    pub mean_slack: f64,
    /// Maximum slack observed.
    pub max_slack: u8,
    /// Nodes where `S(a) > r(a)` — a Theorem 2 violation; always 0.
    pub violations: u64,
}

/// Compares a safety map against the exact oracle.
pub fn tightness(cfg: &FaultConfig, map: &SafetyMap, exact: &ExactReach) -> TightnessSummary {
    let mut s = TightnessSummary::default();
    let mut slack_sum = 0u64;
    for a in cfg.healthy_nodes() {
        let lv = map.level(a);
        let r = exact.radius(cfg, a);
        s.nodes += 1;
        if lv == r {
            s.tight += 1;
        }
        if lv > r {
            s.violations += 1;
        } else {
            let slack = r - lv;
            slack_sum += slack as u64;
            s.max_slack = s.max_slack.max(slack);
        }
    }
    s.mean_slack = if s.nodes == 0 {
        0.0
    } else {
        slack_sum as f64 / s.nodes as f64
    };
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn fault_free_everything_reachable() {
        let cfg = cfg4(&[]);
        let ex = ExactReach::compute(&cfg);
        for a in cfg.cube().nodes() {
            for d in cfg.cube().nodes() {
                assert!(ex.optimal_path_exists(a, d));
            }
            assert_eq!(ex.radius(&cfg, a), 4);
        }
    }

    #[test]
    fn theorem2_lower_bound_exhaustive_q4() {
        // For every ≤ 5-fault pattern of Q_4: S(a) ≤ r(a), and the
        // greedy guarantee matches the oracle within the level.
        let cube = Hypercube::new(4);
        for mask in 0u64..(1 << 16) {
            if mask.count_ones() > 5 {
                continue;
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let map = SafetyMap::compute(&cfg);
            let ex = ExactReach::compute(&cfg);
            let t = tightness(&cfg, &map, &ex);
            assert_eq!(t.violations, 0, "mask {mask:#x}: S(a) > r(a) somewhere");
        }
    }

    #[test]
    fn fig1_exact_radii() {
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let map = SafetyMap::compute(&cfg);
        let ex = ExactReach::compute(&cfg);
        // Safe nodes are exactly radius-4 here.
        for a in cfg.healthy_nodes() {
            assert!(map.level(a) <= ex.radius(&cfg, a), "{a}");
        }
        // 0001 is 1-safe but can actually reach optimally further to
        // *some* nodes — yet its guaranteed radius is larger than its
        // level (slack), e.g. both distance-2 destinations via 0000 and
        // 0101 work.
        let t = tightness(&cfg, &map, &ex);
        assert_eq!(t.violations, 0);
        assert!(t.nodes == 12);
    }

    #[test]
    fn blocked_pair_detected() {
        // Both optimal intermediates 0001/0010 dead → 0000 cannot reach
        // 0011 optimally.
        let cfg = cfg4(&["0001", "0010"]);
        let ex = ExactReach::compute(&cfg);
        assert!(!ex.optimal_path_exists(NodeId::new(0), NodeId::new(0b0011)));
        assert!(ex.optimal_path_exists(NodeId::new(0), NodeId::new(0b1100)));
        assert_eq!(ex.radius(&cfg, NodeId::new(0)), 1);
    }

    #[test]
    fn faulty_destination_at_distance_one_counts() {
        let cfg = cfg4(&["0001"]);
        let ex = ExactReach::compute(&cfg);
        assert!(
            ex.optimal_path_exists(NodeId::new(0), NodeId::new(1)),
            "footnote 3"
        );
    }

    #[test]
    fn reach_vector_prefix_is_radius() {
        let cfg = cfg4(&["0011", "0100", "0110", "1001"]);
        let ex = ExactReach::compute(&cfg);
        for a in cfg.healthy_nodes() {
            let v = ex.reach_vector(a);
            let prefix = v.iter().take_while(|&&b| b).count() as Level;
            assert_eq!(prefix, ex.radius(&cfg, a), "{a}");
        }
    }

    #[test]
    fn reach_vector_can_have_holes() {
        // A node can fail distance k yet cover distance k + 1 — the
        // information the scalar safety level throws away. Search a
        // small instance exhibiting a hole.
        let cube = Hypercube::new(4);
        let mut found = false;
        'outer: for mask in 0u64..(1 << 16) {
            if mask.count_ones() != 3 {
                continue;
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let ex = ExactReach::compute(&cfg);
            for a in cfg.healthy_nodes() {
                let v = ex.reach_vector(a);
                if (0..v.len() - 1).any(|k| !v[k] && v[k + 1]) {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "a reach-vector hole exists in some 3-fault Q_4");
    }

    #[test]
    fn radius_of_faulty_node_is_zero() {
        let cfg = cfg4(&["0011"]);
        let ex = ExactReach::compute(&cfg);
        assert_eq!(ex.radius(&cfg, NodeId::new(0b0011)), 0);
    }
}
