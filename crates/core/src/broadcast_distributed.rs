//! The safety-level broadcast as a real message-passing protocol.
//!
//! [`crate::broadcast::broadcast`] evaluates the broadcast tree
//! centrally; here each node is an actor that receives
//! `(payload, responsibility set)` and forwards sub-ranges to its
//! children ordered by their safety level — the same algorithm,
//! executed hop by hop on the discrete-event engine. The test suite
//! checks both implementations agree on coverage, message count, and
//! completion time.

use crate::broadcast::BroadcastResult;
use crate::safety::{Level, SafetyMap};
use hypersafe_simkit::{Actor, Ctx, EventEngine, HypercubeNet, Time};
use hypersafe_topology::{FaultConfig, NodeId};

/// A broadcast message: the dimension set the receiver becomes
/// responsible for (as a bitmask).
#[derive(Clone, Copy, Debug)]
pub struct BcastMsg {
    /// Remaining responsibility dimensions.
    pub dims: u64,
}

/// Per-node broadcast actor.
pub struct BcastNode {
    /// Neighbor levels by dimension (local knowledge after GS).
    neighbor_levels: Vec<Level>,
    /// Set when the message arrives (virtual time).
    pub received_at: Option<Time>,
    /// Role at start: `Some(dims)` for the origin.
    start: Option<u64>,
    latency: Time,
}

const START_TAG: u64 = 0xB0;

impl BcastNode {
    fn new(map: &SafetyMap, cfg: &FaultConfig, me: NodeId, latency: Time) -> Self {
        BcastNode {
            neighbor_levels: cfg.cube().neighbors(me).map(|b| map.level(b)).collect(),
            received_at: None,
            start: None,
            latency,
        }
    }

    fn fan_out(&self, ctx: &mut Ctx<BcastMsg>, dims: u64) {
        // Children ordered by safety level descending (lowest dimension
        // first among ties), largest remaining subtree to the safest.
        let mut order: Vec<u8> = hypersafe_topology::BitDims(dims).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.neighbor_levels[i as usize]), i));
        let mut remaining = dims;
        for &i in &order {
            remaining &= !(1u64 << i);
            ctx.send(
                ctx.self_id().neighbor(i),
                BcastMsg { dims: remaining },
                self.latency,
            );
        }
    }
}

impl Actor for BcastNode {
    type Msg = BcastMsg;

    fn on_timer(&mut self, ctx: &mut Ctx<BcastMsg>, tag: u64) {
        if tag != START_TAG {
            return;
        }
        if let Some(dims) = self.start.take() {
            self.received_at = Some(ctx.now());
            self.fan_out(ctx, dims);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<BcastMsg>, _from: NodeId, msg: BcastMsg) {
        if self.received_at.is_none() {
            self.received_at = Some(ctx.now());
        }
        self.fan_out(ctx, msg.dims);
    }
}

/// Runs the broadcast from `source` as a distributed protocol
/// (per-hop `latency`), assuming a converged safety map. Handles the
/// safe-relay case exactly like the centralized version: an unsafe
/// source with a safe neighbor hands the whole dimension set to it.
pub fn run_broadcast(
    cfg: &FaultConfig,
    map: &SafetyMap,
    source: NodeId,
    latency: Time,
) -> BroadcastResult {
    let cube = cfg.cube();
    let n = cube.dim();
    let latency = latency.max(1);
    let all_dims = (1u64 << n) - 1;

    let mut relayed_via = None;
    let mut origin = source;
    if !cfg.node_faulty(source) && !map.is_safe(source) {
        if let Some(relay) = cube.neighbors(source).find(|&b| map.is_safe(b)) {
            relayed_via = Some(relay);
            origin = relay;
        }
    }

    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::new(&net, |a| {
        let mut node = BcastNode::new(map, cfg, a, latency);
        if a == origin && !cfg.node_faulty(origin) {
            node.start = Some(all_dims);
        }
        node
    });
    if !cfg.node_faulty(origin) {
        // The relay handoff costs one message/hop before the tree
        // starts; model it as a delayed start.
        let delay = if relayed_via.is_some() { latency } else { 0 };
        eng.inject(origin, START_TAG, delay);
    }
    eng.run(u64::MAX);

    let mut received = vec![false; cube.num_nodes() as usize];
    let mut steps = 0u32;
    for a in cube.nodes() {
        if let Some(node) = eng.actor(a) {
            if let Some(t) = node.received_at {
                received[a.raw() as usize] = true;
                steps = steps.max((t / latency) as u32);
            }
        }
    }
    // The source itself counts as covered (it originated the payload).
    if !cfg.node_faulty(source) {
        received[source.raw() as usize] = true;
    }
    let messages = eng.stats().delivered + eng.stats().dropped + relayed_via.is_some() as u64;
    BroadcastResult::from_parts(received, messages, steps, relayed_via)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::broadcast;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn n(s: &str) -> NodeId {
        NodeId::from_binary(s).unwrap()
    }

    fn fig1() -> (FaultConfig, SafetyMap) {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        (cfg, map)
    }

    #[test]
    fn distributed_matches_centralized_on_fig1() {
        let (cfg, map) = fig1();
        for s in cfg.healthy_nodes() {
            let central = broadcast(&cfg, &map, s);
            let dist = run_broadcast(&cfg, &map, s, 1);
            assert_eq!(central.coverage(), dist.coverage(), "source {s}");
            assert_eq!(central.complete(&cfg), dist.complete(&cfg), "source {s}");
            assert_eq!(central.messages, dist.messages, "source {s}");
            assert_eq!(central.relayed_via, dist.relayed_via, "source {s}");
        }
    }

    #[test]
    fn distributed_matches_centralized_exhaustive_q3() {
        let cube = Hypercube::new(3);
        for mask in 0u64..256 {
            let mut f = FaultSet::new(cube);
            for i in 0..8 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let map = SafetyMap::compute(&cfg);
            for s in cfg.healthy_nodes() {
                let central = broadcast(&cfg, &map, s);
                let dist = run_broadcast(&cfg, &map, s, 1);
                assert_eq!(
                    central.coverage(),
                    dist.coverage(),
                    "mask {mask:#b} source {s}"
                );
                assert_eq!(central.messages, dist.messages, "mask {mask:#b} source {s}");
            }
        }
    }

    #[test]
    fn arrival_times_respect_tree_depth() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::fault_free(cube);
        let map = SafetyMap::compute(&cfg);
        let r = run_broadcast(&cfg, &map, n("00000"), 3);
        assert!(r.complete(&cfg));
        assert_eq!(r.steps, 5, "binomial depth in latency units");
    }

    #[test]
    fn faulty_source_stays_silent() {
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["000"]));
        let map = SafetyMap::compute(&cfg);
        let r = run_broadcast(&cfg, &map, NodeId::ZERO, 1);
        assert_eq!(r.coverage(), 0);
    }
}
