//! Batched unicast routing — the query-side throughput path.
//!
//! [`crate::route`] materializes a [`hypersafe_topology::Path`] per
//! call, which is the right interface for inspecting one route but
//! wasteful when a workload asks for millions of routing *decisions*
//! against one safety map. [`route_light`] runs the identical §3
//! algorithm hop-by-hop without building the path, and [`route_many`]
//! fans a batch of source/destination pairs over the vendored rayon's
//! `for_each_chunk_pair` — workers write straight into one
//! preallocated output vector, order-preserving and deterministic, so
//! the result is bitwise-identical at any `RAYON_NUM_THREADS` (CI
//! diffs 1 vs 4 threads on every push).

use crate::navigation::NavVector;
use crate::safety::SafetyMap;
use crate::unicast::{intermediate_dim_tb, source_decision_tb, Decision, TieBreak};
use hypersafe_topology::{FaultConfig, NodeId};

/// Compact outcome of one batched unicast: the source decision, the
/// hop count actually walked, and delivery — everything the
/// experiments aggregate, with no allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The source decision taken.
    pub decision: Decision,
    /// Hops walked before the route ended (0 for `AlreadyThere` and
    /// source-side `Failure`).
    pub hops: u32,
    /// Same delivery semantics as [`crate::RouteResult::delivered`].
    pub delivered: bool,
}

/// Routes one unicast exactly like [`crate::route_tb`] but returns the
/// compact [`BatchOutcome`] instead of materializing the path. The two
/// agree decision-for-decision, hop-for-hop (enforced by tests).
pub fn route_light(
    cfg: &FaultConfig,
    map: &SafetyMap,
    s: NodeId,
    d: NodeId,
    tb: TieBreak,
) -> BatchOutcome {
    let decision = source_decision_tb(map, s, d, tb);
    let first_dim = match decision {
        Decision::AlreadyThere => {
            return BatchOutcome {
                decision,
                hops: 0,
                delivered: !cfg.node_faulty(s),
            }
        }
        Decision::Failure => {
            return BatchOutcome {
                decision,
                hops: 0,
                delivered: false,
            }
        }
        Decision::Optimal { first_dim, .. } | Decision::Suboptimal { first_dim } => first_dim,
    };

    let mut nv = NavVector::new(s, d);
    let mut at = s;
    let mut hops = 0u32;
    let mut dim = first_dim;
    loop {
        let next = at.neighbor(dim);
        if cfg.link_faults().contains(at, next) {
            return BatchOutcome {
                decision,
                hops,
                delivered: false,
            };
        }
        nv = nv.after_hop(dim);
        hops += 1;
        at = next;
        if cfg.node_faulty(at) {
            // Footnote 3: entering a faulty *destination* still counts
            // as delivered; a faulty intermediate eats the message.
            return BatchOutcome {
                decision,
                hops,
                delivered: nv.is_done(),
            };
        }
        if nv.is_done() {
            return BatchOutcome {
                decision,
                hops,
                delivered: true,
            };
        }
        match intermediate_dim_tb(map, at, nv, tb) {
            Some(i) => dim = i,
            None => {
                return BatchOutcome {
                    decision,
                    hops,
                    delivered: false,
                }
            }
        }
    }
}

/// Routes every `(source, destination)` pair against one safety map,
/// in parallel, preserving input order. Deterministic at any thread
/// count: chunks are contiguous and results are concatenated in chunk
/// order, and each route is a pure function of `(cfg, map, pair)`.
///
/// # Examples
///
/// ```
/// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig, NodeId};
/// use hypersafe_core::{route_many, route_many_seq, SafetyMap};
///
/// let cube = Hypercube::new(4);
/// let faults = FaultSet::from_binary_strs(cube, &["0011", "0100"]);
/// let cfg = FaultConfig::with_node_faults(cube, faults);
/// let map = SafetyMap::compute(&cfg);
/// let pairs: Vec<_> = cfg
///     .healthy_nodes()
///     .flat_map(|s| cfg.healthy_nodes().map(move |d| (s, d)))
///     .collect();
/// let out = route_many(&cfg, &map, &pairs);
/// assert_eq!(out.len(), pairs.len());
/// assert_eq!(out, route_many_seq(&cfg, &map, &pairs));
/// assert!(out.iter().all(|o| o.delivered));
/// ```
pub fn route_many(
    cfg: &FaultConfig,
    map: &SafetyMap,
    pairs: &[(NodeId, NodeId)],
) -> Vec<BatchOutcome> {
    route_many_tb(cfg, map, pairs, TieBreak::LowestDim)
}

/// [`route_many`] with an explicit tie-break policy.
pub fn route_many_tb(
    cfg: &FaultConfig,
    map: &SafetyMap,
    pairs: &[(NodeId, NodeId)],
    tb: TieBreak,
) -> Vec<BatchOutcome> {
    if pairs.is_empty() {
        return Vec::new();
    }
    // A one-thread pool (RAYON_NUM_THREADS=1) gains nothing from the
    // fan-out — route straight into the result and skip even the
    // prealloc fill, so the fallback is byte-for-byte the sequential
    // loop.
    if rayon::num_threads() <= 1 {
        return pairs
            .iter()
            .map(|&(s, d)| route_light(cfg, map, s, d, tb))
            .collect();
    }
    // Workers write straight into one preallocated output — no
    // per-chunk result vectors, no concatenation copy. One contiguous
    // chunk per worker keeps the fork/join overhead at a handful of
    // spawns per call.
    const FILLER: BatchOutcome = BatchOutcome {
        decision: Decision::Failure,
        hops: 0,
        delivered: false,
    };
    let mut out = vec![FILLER; pairs.len()];
    let chunk = pairs.len().div_ceil(rayon::num_threads()).max(1);
    rayon::for_each_chunk_pair(pairs, &mut out, chunk, |ins, outs| {
        // Walk the packed level store once up front so the chunk's
        // first routes pay sequential-prefetch misses, not random ones.
        map.store().warm();
        for (o, &(s, d)) in outs.iter_mut().zip(ins) {
            *o = route_light(cfg, map, s, d, tb);
        }
    });
    out
}

/// The sequential loop [`route_many`] is benchmarked against (also the
/// honest baseline for the ≥2× batched-throughput acceptance bar).
pub fn route_many_seq(
    cfg: &FaultConfig,
    map: &SafetyMap,
    pairs: &[(NodeId, NodeId)],
) -> Vec<BatchOutcome> {
    pairs
        .iter()
        .map(|&(s, d)| route_light(cfg, map, s, d, TieBreak::LowestDim))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unicast::route_tb;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn fig1() -> (FaultConfig, SafetyMap) {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
        );
        let map = SafetyMap::compute(&cfg);
        (cfg, map)
    }

    #[test]
    fn light_route_matches_full_route_all_pairs_all_policies() {
        let (cfg, map) = fig1();
        let policies = [
            TieBreak::LowestDim,
            TieBreak::HighestDim,
            TieBreak::Hashed { salt: 7 },
        ];
        for s in cfg.cube().nodes() {
            for d in cfg.cube().nodes() {
                for tb in policies {
                    let full = route_tb(&cfg, &map, s, d, tb);
                    let light = route_light(&cfg, &map, s, d, tb);
                    assert_eq!(light.decision, full.decision, "{s} → {d} {tb:?}");
                    assert_eq!(light.delivered, full.delivered, "{s} → {d} {tb:?}");
                    let full_hops = full.path.as_ref().map_or(0, |p| p.len());
                    assert_eq!(light.hops, full_hops, "{s} → {d} {tb:?}");
                }
            }
        }
    }

    #[test]
    fn route_many_preserves_order_and_matches_seq() {
        let (cfg, map) = fig1();
        let pairs: Vec<_> = cfg
            .cube()
            .nodes()
            .flat_map(|s| cfg.cube().nodes().map(move |d| (s, d)))
            .collect();
        let par = route_many(&cfg, &map, &pairs);
        let seq = route_many_seq(&cfg, &map, &pairs);
        assert_eq!(par, seq);
        assert_eq!(par.len(), pairs.len());
        // Spot-check positional alignment against the scalar router.
        for (i, &(s, d)) in pairs.iter().enumerate().step_by(17) {
            assert_eq!(par[i], route_light(&cfg, &map, s, d, TieBreak::LowestDim));
        }
    }

    #[test]
    fn route_many_handles_degenerate_batches() {
        let (cfg, map) = fig1();
        assert!(route_many(&cfg, &map, &[]).is_empty());
        let one = route_many(&cfg, &map, &[(NodeId::new(0), NodeId::new(0))]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].decision, Decision::AlreadyThere);
    }
}
