//! Unicasting in generalized hypercubes (paper §4.2, Theorem 2′).
//!
//! "Routing in `GH_n` is exactly the same as in a regular hypercube,
//! because all the nodes are directly connected along the same
//! dimension": a preferred hop jumps straight to the node carrying the
//! destination's digit in that dimension, resolving the coordinate in
//! one step. The source feasibility conditions mirror `C1`/`C2`/`C3`
//! with the per-neighbor eligibility the paper's Fig. 5 walk uses (a
//! specific preferred neighbor is eligible iff its own level is at
//! least the remaining distance minus one).

use crate::gh_safety::GhSafetyMap;
use crate::safety::Level;
use hypersafe_topology::{FaultSet, GeneralizedHypercube, GhNode, NodeId};

/// Source decision for a GH unicast, mirroring [`crate::unicast::Decision`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhDecision {
    /// Optimal routing is feasible (source level or an eligible
    /// preferred neighbor admits it).
    Optimal,
    /// Only the spare-detour route is feasible (length `H + 2`).
    Suboptimal,
    /// Neither condition holds; abort at the source.
    Failure,
    /// `s == d`.
    AlreadyThere,
}

/// Result of routing one GH unicast.
#[derive(Clone, Debug)]
pub struct GhRouteResult {
    /// The source decision.
    pub decision: GhDecision,
    /// Node sequence traversed (present unless `Failure`).
    pub nodes: Option<Vec<GhNode>>,
    /// Whether the message reached `d` without entering a faulty node
    /// (other than `d` itself).
    pub delivered: bool,
}

impl GhRouteResult {
    /// Number of hops of the realized route.
    pub fn hops(&self) -> Option<u32> {
        self.nodes.as_ref().map(|p| (p.len() - 1) as u32)
    }
}

fn level_of(map: &GhSafetyMap, a: GhNode) -> Level {
    map.level(a)
}

/// The preferred neighbor of `at` along dimension `i` for destination
/// `d`: the clique node carrying `d`'s digit.
fn preferred_neighbor(gh: &GeneralizedHypercube, at: GhNode, d: GhNode, i: u8) -> GhNode {
    gh.with_digit(at, i, gh.digit(d, i))
}

/// Picks the forwarding dimension at `at`: among unresolved dimensions,
/// the one whose destination-digit neighbor has the highest safety
/// level (lowest dimension wins ties).
fn forwarding_dim(
    gh: &GeneralizedHypercube,
    map: &GhSafetyMap,
    at: GhNode,
    d: GhNode,
) -> Option<(u8, GhNode, Level)> {
    let mut best: Option<(u8, GhNode, Level)> = None;
    for i in gh.differing_dims(at, d) {
        let nb = preferred_neighbor(gh, at, d, i);
        let lv = level_of(map, nb);
        match best {
            Some((_, _, b)) if b >= lv => {}
            _ => best = Some((i, nb, lv)),
        }
    }
    best
}

/// Source feasibility for a GH unicast.
pub fn gh_source_decision(
    gh: &GeneralizedHypercube,
    map: &GhSafetyMap,
    s: GhNode,
    d: GhNode,
) -> GhDecision {
    let h = gh.distance(s, d) as u16;
    if h == 0 {
        return GhDecision::AlreadyThere;
    }
    // C1: the source's own level covers the distance.
    if (map.level(s) as u16) >= h {
        return GhDecision::Optimal;
    }
    // C2: some preferred (destination-digit) neighbor has level ≥ H − 1.
    if let Some((_, _, lv)) = forwarding_dim(gh, map, s, d) {
        if (lv as u16) + 1 >= h {
            return GhDecision::Optimal;
        }
    }
    // C3: some spare-dimension clique neighbor has level ≥ H + 1.
    for i in 0..gh.dim() {
        if gh.digit(s, i) == gh.digit(d, i) {
            for nb in gh.neighbors_along(s, i) {
                if (level_of(map, nb) as u16) > h {
                    return GhDecision::Suboptimal;
                }
            }
        }
    }
    GhDecision::Failure
}

/// Routes one GH unicast to completion, judging the physical outcome
/// against `faults` while steering purely by safety levels.
pub fn gh_route(
    gh: &GeneralizedHypercube,
    map: &GhSafetyMap,
    faults: &FaultSet,
    s: GhNode,
    d: GhNode,
) -> GhRouteResult {
    let decision = gh_source_decision(gh, map, s, d);
    match decision {
        GhDecision::AlreadyThere => {
            return GhRouteResult {
                decision,
                nodes: Some(vec![s]),
                delivered: !faults.contains(NodeId::new(s.raw())),
            }
        }
        GhDecision::Failure => {
            return GhRouteResult {
                decision,
                nodes: None,
                delivered: false,
            }
        }
        GhDecision::Optimal | GhDecision::Suboptimal => {}
    }

    let mut at = s;
    let mut nodes = vec![s];
    if decision == GhDecision::Suboptimal {
        // First hop: the best spare-clique neighbor with level ≥ H + 1.
        let h = gh.distance(s, d) as u16;
        let mut best: Option<(GhNode, Level)> = None;
        for i in 0..gh.dim() {
            if gh.digit(s, i) == gh.digit(d, i) {
                for nb in gh.neighbors_along(s, i) {
                    let lv = level_of(map, nb);
                    if (lv as u16) > h {
                        match best {
                            Some((_, b)) if b >= lv => {}
                            _ => best = Some((nb, lv)),
                        }
                    }
                }
            }
        }
        let (nb, _) = best.expect("Suboptimal decision implies an eligible spare");
        at = nb;
        nodes.push(at);
        if faults.contains(NodeId::new(at.raw())) {
            return GhRouteResult {
                decision,
                nodes: Some(nodes),
                delivered: false,
            };
        }
    }

    while at != d {
        let Some((_, next, _)) = forwarding_dim(gh, map, at, d) else {
            return GhRouteResult {
                decision,
                nodes: Some(nodes),
                delivered: false,
            };
        };
        at = next;
        nodes.push(at);
        if faults.contains(NodeId::new(at.raw())) {
            return GhRouteResult {
                decision,
                nodes: Some(nodes),
                delivered: at == d,
            };
        }
    }
    GhRouteResult {
        decision,
        nodes: Some(nodes),
        delivered: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Fig.-5-shaped instance of GH(2, 3, 2) with four faulty nodes,
    /// found by exhaustive search over all C(12, 4) fault sets for the
    /// one consistent with the paper's narration (`repro fig5` rederives
    /// it): exactly four 3-safe nodes, 011 and 100 faulty, the dim-2
    /// neighbor 110 of the source at level 1 (ineligible), and the
    /// narrated optimal route 010 → 000 → 001 → 101.
    fn fig5_like() -> (GeneralizedHypercube, FaultSet, GhSafetyMap) {
        let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
        let f = gh.fault_set_from_strs(&["011", "100", "111", "121"]);
        let map = GhSafetyMap::compute(&gh, &f);
        (gh, f, map)
    }

    #[test]
    fn preferred_neighbor_resolves_digit() {
        let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
        let s = gh.parse("010").unwrap();
        let d = gh.parse("101").unwrap();
        let nb = preferred_neighbor(&gh, s, d, 1);
        assert_eq!(gh.format(nb), "000");
    }

    #[test]
    fn route_in_fault_free_gh_is_optimal() {
        let gh = GeneralizedHypercube::from_product(&[3, 4, 2]);
        let f = gh.fault_set();
        let map = GhSafetyMap::compute(&gh, &f);
        for s in gh.nodes() {
            for d in gh.nodes() {
                let res = gh_route(&gh, &map, &f, s, d);
                assert!(res.delivered);
                assert_eq!(
                    res.hops(),
                    Some(gh.distance(s, d)),
                    "{} → {}",
                    gh.format(s),
                    gh.format(d)
                );
            }
        }
    }

    #[test]
    fn fig5_like_walk_010_to_101() {
        let (gh, f, map) = fig5_like();
        let s = gh.parse("010").unwrap();
        let d = gh.parse("101").unwrap();
        assert_eq!(gh.distance(s, d), 3);
        let res = gh_route(&gh, &map, &f, s, d);
        assert_eq!(res.decision, GhDecision::Optimal);
        assert!(res.delivered);
        assert_eq!(res.hops(), Some(3));
        // The realized route is exactly the paper's narrated walk:
        // 010 → 000 (dim 1, ring/clique hop) → 001 (dim 0) → 101 (dim 2).
        let walk: Vec<String> = res.nodes.unwrap().iter().map(|&a| gh.format(a)).collect();
        assert_eq!(walk, vec!["010", "000", "001", "101"]);
        // Exactly four safe nodes, as the paper states.
        assert_eq!(map.safe_nodes().len(), 4);
        // The dim-2 neighbor of the source is at level 1 — "less than
        // 3 − 1 = 2 and again is not eligible".
        assert_eq!(map.level(gh.parse("110").unwrap()), 1);
    }

    #[test]
    fn unsafe_nonfaulty_nodes_have_safe_neighbor_fig5() {
        // §4.2: "each unsafe but nonfaulty node has a safe neighbor" in
        // the Fig. 5 instance.
        let (gh, f, map) = fig5_like();
        for a in gh.nodes() {
            if f.contains(NodeId::new(a.raw())) || map.is_safe(a) {
                continue;
            }
            assert!(
                gh.neighbors(a).any(|b| map.is_safe(b)),
                "{} lacks a safe neighbor",
                gh.format(a)
            );
        }
    }

    #[test]
    fn failure_reported_when_surrounded() {
        // GH(2,2): a 4-cycle. Fault both neighbors of node (0,0).
        let gh = GeneralizedHypercube::new(&[2, 2]);
        let mut f = gh.fault_set();
        f.insert(NodeId::new(gh.node_from_digits(&[1, 0]).raw()));
        f.insert(NodeId::new(gh.node_from_digits(&[0, 1]).raw()));
        let map = GhSafetyMap::compute(&gh, &f);
        let s = gh.node_from_digits(&[0, 0]);
        let d = gh.node_from_digits(&[1, 1]);
        let res = gh_route(&gh, &map, &f, s, d);
        assert_eq!(res.decision, GhDecision::Failure);
        assert!(!res.delivered);
    }

    #[test]
    fn already_there() {
        let (gh, f, map) = fig5_like();
        let s = gh.parse("000").unwrap();
        let res = gh_route(&gh, &map, &f, s, s);
        assert_eq!(res.decision, GhDecision::AlreadyThere);
        assert!(res.delivered);
        assert_eq!(res.hops(), Some(0));
    }
}
