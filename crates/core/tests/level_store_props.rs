//! Property tests for the packed level store: the packed
//! representation must be observationally identical to a plain
//! `Vec<Level>` — element-for-element, plane-for-plane, and round by
//! round through the bit-plane safety kernels.

use hypersafe_core::{Level, LevelStore, PlaneView, SafetyMap};
use hypersafe_topology::{FaultConfig, FaultSet, Hypercube, NodeId};
use proptest::prelude::*;

/// Random `(max_level, levels)` including the boundary levels 0 and
/// `max_level`, with lengths that straddle nibble-word (16) and
/// plane-word (64) boundaries.
fn levels_input() -> impl Strategy<Value = (u8, Vec<Level>)> {
    // Word-boundary lengths (16 nibbles / 64 plane bits per word) are
    // where the tail masks live, so they get their own slots.
    const LENS: [usize; 10] = [1, 5, 15, 16, 17, 63, 64, 65, 128, 200];
    (1u8..=30, 0usize..LENS.len()).prop_flat_map(|(max, li)| {
        let len = LENS[li];
        // Sample past the ceiling, then fold the overflow onto the
        // boundary levels so 0 and max_level appear often.
        proptest::collection::vec(0u8..=max.saturating_add(2), len..=len).prop_map(move |raw| {
            let v = raw
                .iter()
                .map(|&x| {
                    if x > max {
                        if x % 2 == 0 {
                            0
                        } else {
                            max
                        }
                    } else {
                        x
                    }
                })
                .collect();
            (max, v)
        })
    })
}

fn faulty_cube() -> impl Strategy<Value = FaultConfig> {
    (3u8..=9).prop_flat_map(|n| {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        let max_faults = (total as usize / 4).max(1);
        proptest::collection::btree_set(0..total, 0..=max_faults).prop_map(move |set| {
            FaultConfig::with_node_faults(
                cube,
                FaultSet::from_nodes(cube, set.into_iter().map(NodeId::new)),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packing then unpacking is the identity, and random point
    /// lookups agree with the unpacked vector at every index —
    /// including the first and last node of each nibble/plane word.
    #[test]
    fn pack_unpack_roundtrip((max, levels) in levels_input()) {
        let store = LevelStore::from_levels(max, &levels);
        prop_assert_eq!(store.len(), levels.len() as u64);
        prop_assert_eq!(store.to_vec(), levels.clone());
        for i in [0, levels.len() - 1, levels.len() / 2, 15.min(levels.len() - 1), 64.min(levels.len() - 1)] {
            prop_assert_eq!(store.get(i as u64), levels[i], "index {}", i);
        }
    }

    /// Random point writes behave exactly like writes to a
    /// `Vec<Level>` model, and equality between stores is level
    /// equality (trailing padding never leaks in).
    #[test]
    fn set_matches_vec_model(
        (max, mut levels) in levels_input(),
        writes in proptest::collection::vec((0u16..512, 0u8..=30), 1..40),
    ) {
        let mut store = LevelStore::from_levels(max, &levels);
        for (i, l) in writes {
            let i = i as usize % levels.len();
            let l = l.min(max);
            levels[i] = l;
            store.set(i as u64, l);
        }
        prop_assert_eq!(store.to_vec(), levels.clone());
        prop_assert_eq!(&store, &LevelStore::from_levels(max, &levels));
    }

    /// Counting and iterating a level class agrees with a scalar scan
    /// — the primitives `safe_count` / `safe_nodes_iter` sit on.
    #[test]
    fn count_and_iter_match_scan((max, levels) in levels_input(), probe in 0u8..=30) {
        let probe = probe.min(max);
        let store = LevelStore::from_levels(max, &levels);
        let expect: Vec<u64> = levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == probe)
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(store.count_eq(probe), expect.len() as u64);
        prop_assert_eq!(store.iter_eq(probe).collect::<Vec<u64>>(), expect);
    }

    /// The bit-plane view round-trips through the packed store and
    /// reads back the same levels bit by bit.
    #[test]
    fn plane_view_roundtrip((max, levels) in levels_input()) {
        let store = LevelStore::from_levels(max, &levels);
        let view = PlaneView::from_store(&store);
        for (i, &l) in levels.iter().enumerate() {
            prop_assert_eq!(view.get(i as u64), l, "index {}", i);
        }
        prop_assert_eq!(&view.to_store(), &store);
    }

    /// The plane Jacobi kernel equals the scalar reference not just at
    /// the fixed point but after *every* round — the packed compute is
    /// the same iteration, not merely the same limit.
    #[test]
    fn plane_kernel_matches_reference_round_by_round(cfg in faulty_cube()) {
        let (map, trace) = SafetyMap::compute_trace(&cfg);
        let (refmap, reftrace) = SafetyMap::compute_reference_trace(&cfg);
        prop_assert_eq!(map.rounds(), refmap.rounds());
        prop_assert_eq!(map.to_vec(), refmap.to_vec());
        prop_assert_eq!(trace.len(), reftrace.len());
        for (r, (a, b)) in trace.iter().zip(&reftrace).enumerate() {
            prop_assert_eq!(a, b, "round {}", r);
        }
    }

    /// The constructive kernel lands on the identical packed store.
    #[test]
    fn constructive_matches_jacobi_store(cfg in faulty_cube()) {
        let jacobi = SafetyMap::compute(&cfg);
        let cons = SafetyMap::compute_constructive(&cfg);
        prop_assert_eq!(jacobi.store(), cons.store());
    }
}
