//! Oracle property tests for `core::multipath`: the k-disjoint router
//! promises to deliver exactly `min(k, F(s, d))` pairwise node-disjoint
//! paths, where `F` is the vertex-disjoint Menger bound of the faulty
//! cube. `F` is recomputed here by an *independent* Edmonds-Karp
//! max-flow (dense capacity matrix, shortest augmenting paths) that
//! shares no code with the router's greedy-fan + augmentation pipeline,
//! so an off-by-one in either implementation breaks the comparison.
//!
//! Alongside the count: every returned fan must pass the structural
//! [`check_disjoint_delivery`] contract, and multi-path delivery must
//! dominate the single-path router (whenever `route` delivers, the fan
//! delivers on at least one path).

use hypersafe_core::{check_disjoint_delivery, route, route_disjoint, SafetyMap};
use hypersafe_topology::{FaultConfig, FaultSet, Hypercube, LinkFaultSet, NodeId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Vertex-disjoint Menger bound between healthy `s` and `d` via
/// Edmonds-Karp on the node-split graph: every healthy node becomes
/// `in → out` with capacity 1, every usable link `u – v` becomes
/// `u.out → v.in` (both directions) with capacity 1; the answer is the
/// max flow from `s.out` to `d.in`.
fn menger_bound(cfg: &FaultConfig, s: NodeId, d: NodeId) -> u32 {
    let cube = cfg.cube();
    let states = 2 * cube.num_nodes() as usize;
    let sin = |v: NodeId| 2 * v.raw() as usize;
    let sout = |v: NodeId| 2 * v.raw() as usize + 1;
    let mut cap = vec![vec![0i32; states]; states];
    for v in cfg.healthy_nodes() {
        cap[sin(v)][sout(v)] = 1;
    }
    for u in cube.nodes() {
        for dim in 0..cube.dim() {
            let v = u.neighbor(dim);
            if cfg.link_usable(u, v) {
                cap[sout(u)][sin(v)] = 1;
            }
        }
    }
    let (src, snk) = (sout(s), sin(d));
    let mut flow = 0;
    loop {
        let mut parent = vec![usize::MAX; states];
        parent[src] = src;
        let mut queue = VecDeque::from([src]);
        'bfs: while let Some(u) = queue.pop_front() {
            for v in 0..states {
                if parent[v] == usize::MAX && cap[u][v] > 0 {
                    parent[v] = u;
                    if v == snk {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if parent[snk] == usize::MAX {
            return flow;
        }
        let mut v = snk;
        while v != src {
            let u = parent[v];
            cap[u][v] -= 1;
            cap[v][u] += 1;
            v = u;
        }
        flow += 1;
    }
}

/// Safety levels are node-fault-defined; with link faults in play the
/// map is computed on the node faults alone (it only orders the fan
/// candidates — the router checks the full config link by link).
fn map_of(cfg: &FaultConfig) -> SafetyMap {
    SafetyMap::compute(&FaultConfig::with_node_faults(
        cfg.cube(),
        cfg.node_faults().clone(),
    ))
}

/// Asserts the full contract for one `(s, d, k)`: oracle-exact count,
/// structural disjointness, and dominance over the single-path router.
fn assert_contract(cfg: &FaultConfig, map: &SafetyMap, s: NodeId, d: NodeId, k: u8) {
    let res = route_disjoint(cfg, map, s, d, k);
    let oracle = menger_bound(cfg, s, d);
    assert_eq!(
        res.delivered() as u32,
        oracle.min(u32::from(k.min(cfg.cube().dim()))),
        "{s} -> {d} k={k}: delivered {} vs Menger bound {oracle}",
        res.delivered()
    );
    if let Err(e) = check_disjoint_delivery(cfg, s, d, &res) {
        panic!("{s} -> {d} k={k}: structural check failed: {e}");
    }
    if k >= 1 && route(cfg, map, s, d).delivered {
        assert!(
            res.delivered() >= 1,
            "{s} -> {d} k={k}: single-path delivered but the fan did not"
        );
    }
}

/// A cube of dimension `nmin..=nmax` with up to a quarter of its nodes
/// and a handful of links faulty.
fn faulty_cfg(nmin: u8, nmax: u8) -> impl Strategy<Value = FaultConfig> {
    (nmin..=nmax).prop_flat_map(|n| {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        (
            proptest::collection::btree_set(0..total, 0..=(total as usize / 4).max(1)),
            proptest::collection::vec((0..total, 0..n), 0..6),
        )
            .prop_map(move |(nodes, links)| {
                let mut lf = LinkFaultSet::new();
                for (raw, dim) in links {
                    let a = NodeId::new(raw);
                    lf.insert(a, a.neighbor(dim));
                }
                FaultConfig::with_faults(
                    cube,
                    FaultSet::from_nodes(cube, nodes.into_iter().map(NodeId::new)),
                    lf,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random cubes up to `Q_6` with mixed node + link faults: the
    /// delivered count is oracle-exact for a spread of `k` values.
    #[test]
    fn delivered_matches_menger_oracle(cfg in faulty_cfg(3, 6), salt in any::<u64>()) {
        let map = map_of(&cfg);
        let n = cfg.cube().dim();
        let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
        prop_assume!(healthy.len() >= 2);
        for probe in 0..4u64 {
            let s = healthy[(salt.wrapping_add(probe) % healthy.len() as u64) as usize];
            let d = healthy[(salt.wrapping_mul(31).wrapping_add(7 * probe) % healthy.len() as u64) as usize];
            if s == d {
                continue;
            }
            for k in [1, n / 2, n, n + 2] {
                assert_contract(&cfg, &map, s, d, k);
            }
        }
    }
}

/// Exhaustive sweep on small cubes: `Q_3` and `Q_4` under a battery of
/// hand-picked and seeded fault sets, checking *every* ordered healthy
/// pair at full redundancy against the oracle.
#[test]
fn exhaustive_small_cubes_match_oracle_for_every_pair() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0A11_D15C);
    for n in [3u8, 4] {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        let mut configs: Vec<FaultConfig> = vec![
            FaultConfig::fault_free(cube),
            FaultConfig::with_node_faults(cube, FaultSet::from_nodes(cube, [NodeId::new(1)])),
        ];
        for _ in 0..12 {
            let mut nodes = FaultSet::new(cube);
            for _ in 0..rng.gen_range(0..=n as usize) {
                nodes.insert(NodeId::new(rng.gen_range(0..total)));
            }
            let mut links = LinkFaultSet::new();
            for _ in 0..rng.gen_range(0..=3) {
                let a = NodeId::new(rng.gen_range(0..total));
                links.insert(a, a.neighbor(rng.gen_range(0..n)));
            }
            configs.push(FaultConfig::with_faults(cube, nodes, links));
        }
        for cfg in &configs {
            let map = map_of(cfg);
            let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
            for &s in &healthy {
                for &d in &healthy {
                    if s != d {
                        assert_contract(cfg, &map, s, d, n);
                    }
                }
            }
        }
    }
}

/// The fault-free cube is the paper's classic result: exactly `n`
/// disjoint paths between any two nodes — `H(s, d)` optimal ones and
/// `n − H` two-hop detours — for every ordered pair of `Q_3..Q_5`.
#[test]
fn fault_free_fan_is_exact_everywhere() {
    for n in 3u8..=5 {
        let cube = Hypercube::new(n);
        let cfg = FaultConfig::fault_free(cube);
        let map = SafetyMap::compute(&cfg);
        for s in cube.nodes() {
            for d in cube.nodes() {
                if s == d {
                    continue;
                }
                let res = route_disjoint(&cfg, &map, s, d, n);
                let h = s.distance(d);
                assert_eq!(res.delivered() as u32, u32::from(n));
                let optimal = res.paths.iter().filter(|p| p.path.len() == h).count() as u32;
                let detour = res.paths.iter().filter(|p| p.path.len() == h + 2).count() as u32;
                assert_eq!(optimal, h, "{s} -> {d}");
                assert_eq!(detour, u32::from(n) - h, "{s} -> {d}");
                assert_eq!(menger_bound(&cfg, s, d), u32::from(n));
            }
        }
    }
}
