//! Property tests for hypersafe-core beyond the workspace-level suite:
//! broadcasting, EGS dual views, GH routing, dynamic rerouting.

use hypersafe_core::gh_safety::GhSafetyMap;
use hypersafe_core::gh_unicast::{gh_route, GhDecision};
use hypersafe_core::{
    broadcast, route, route_dynamic, route_egs, run_gs_reliable, run_unicast_lossy, DynamicOutcome,
    ExtendedSafetyMap, FaultEvent, LossyOutcome, SafetyMap,
};
use hypersafe_simkit::{ChannelModel, ReliableConfig};
use hypersafe_topology::{
    connectivity, FaultConfig, FaultSet, GeneralizedHypercube, GhNode, Hypercube, LinkFaultSet,
    NodeId,
};
use proptest::prelude::*;

fn faulty_cube(max_ratio: f64) -> impl Strategy<Value = FaultConfig> {
    (3u8..=7).prop_flat_map(move |n| {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        let max_faults = ((total as f64 * max_ratio) as usize).max(1);
        proptest::collection::btree_set(0..total, 0..=max_faults).prop_map(move |set| {
            FaultConfig::with_node_faults(
                cube,
                FaultSet::from_nodes(cube, set.into_iter().map(NodeId::new)),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Broadcast guarantee: a safe source always reaches every
    /// nonfaulty node, using exactly one message per non-source node
    /// of the cube.
    #[test]
    fn safe_broadcast_always_complete(cfg in faulty_cube(0.25)) {
        let map = SafetyMap::compute(&cfg);
        for s in cfg.healthy_nodes().filter(|&a| map.is_safe(a)).take(4) {
            let r = broadcast(&cfg, &map, s);
            prop_assert!(r.complete(&cfg), "source {}", s);
            prop_assert_eq!(r.messages, cfg.cube().num_nodes() - 1);
            prop_assert!(r.steps <= cfg.cube().dim() as u32);
        }
    }

    /// Broadcast under the < n faults regime is complete from *every*
    /// healthy source (via Property 2 relays).
    #[test]
    fn broadcast_complete_under_n_faults(cfg in faulty_cube(0.1)) {
        prop_assume!(cfg.node_faults().len() < cfg.cube().dim() as usize);
        let map = SafetyMap::compute(&cfg);
        for s in cfg.healthy_nodes().take(6) {
            let r = broadcast(&cfg, &map, s);
            prop_assert!(r.complete(&cfg), "source {}", s);
        }
    }

    /// EGS invariants on random node+link fault mixes: N1 views agree
    /// with plain GS over the effective fault set; N2 advertises 0;
    /// routing never loses an accepted message except across faulty
    /// links at the last hop.
    #[test]
    fn egs_views_consistent(
        cfg in faulty_cube(0.15),
        link_picks in proptest::collection::vec((any::<u64>(), 0u8..7), 0..4),
    ) {
        let cube = cfg.cube();
        let mut links = LinkFaultSet::new();
        for (raw, d) in link_picks {
            let a = NodeId::new(raw & (cube.num_nodes() - 1));
            links.insert(a, a.neighbor(d % cube.dim()));
        }
        let cfg = FaultConfig::with_faults(cube, cfg.node_faults().clone(), links);
        let emap = ExtendedSafetyMap::compute(&cfg);
        for a in cube.nodes() {
            if emap.is_n2(a) {
                prop_assert!(!cfg.node_faulty(a));
                prop_assert_eq!(emap.advertised_level(a), 0);
            } else {
                prop_assert_eq!(emap.own_level(a), emap.advertised_level(a));
            }
        }
        // Routing spot-check.
        let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
        for &s in healthy.iter().take(4) {
            for &d in healthy.iter().rev().take(4) {
                if s == d { continue; }
                let res = route_egs(&cfg, &emap, s, d);
                if let Some(p) = &res.path {
                    if res.delivered {
                        prop_assert!(p.traversable(&cfg, true), "{} → {}", s, d);
                    }
                }
            }
        }
    }

    /// GH routing: an Optimal decision delivers in exactly H hops over
    /// nonfaulty nodes; a Suboptimal one in H + 2.
    #[test]
    fn gh_route_contracts(
        radices in proptest::collection::vec(2u16..=4, 2..=4),
        fault_picks in proptest::collection::btree_set(0u64..256, 0..6),
    ) {
        let gh = GeneralizedHypercube::new(&radices);
        let mut f = gh.fault_set();
        for v in fault_picks {
            f.insert(NodeId::new(v % gh.num_nodes()));
        }
        let map = GhSafetyMap::compute(&gh, &f);
        let healthy: Vec<GhNode> = gh
            .nodes()
            .filter(|a| !f.contains(NodeId::new(a.raw())))
            .collect();
        for &s in healthy.iter().take(5) {
            for &d in healthy.iter().rev().take(5) {
                let res = gh_route(&gh, &map, &f, s, d);
                match res.decision {
                    GhDecision::Optimal => {
                        prop_assert!(res.delivered, "{} → {}", gh.format(s), gh.format(d));
                        prop_assert_eq!(res.hops(), Some(gh.distance(s, d)));
                    }
                    GhDecision::Suboptimal => {
                        prop_assert!(res.delivered);
                        prop_assert_eq!(res.hops(), Some(gh.distance(s, d) + 2));
                    }
                    GhDecision::Failure => prop_assert!(!res.delivered),
                    GhDecision::AlreadyThere => prop_assert_eq!(res.hops(), Some(0)),
                }
            }
        }
    }

    /// Dynamic routing with arrivals that never hit the endpoints:
    /// outcome is always one of the defined terminals, the walk is
    /// physically consistent, and a Delivered walk ends at d having
    /// avoided every node that was faulty *when it was entered*.
    #[test]
    fn dynamic_route_terminates_consistently(
        cfg in faulty_cube(0.1),
        arrivals in proptest::collection::vec((1u32..6, any::<u64>()), 0..4),
    ) {
        let cube = cfg.cube();
        let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
        prop_assume!(healthy.len() >= 2);
        let s = healthy[0];
        let d = *healthy.last().unwrap();
        prop_assume!(s != d);
        let mut events: Vec<FaultEvent> = arrivals
            .into_iter()
            .map(|(hop, raw)| FaultEvent {
                after_hop: hop,
                node: NodeId::new(raw & (cube.num_nodes() - 1)),
            })
            .filter(|e| e.node != s && e.node != d && !cfg.node_faulty(e.node))
            .collect();
        events.sort_by_key(|e| e.after_hop);
        events.dedup_by_key(|e| e.node);
        let run = route_dynamic(cube, cfg.node_faults(), &events, s, d);
        match run.outcome {
            DynamicOutcome::Delivered => {
                prop_assert_eq!(run.path.end(), d);
                prop_assert!(!run.path.has_repeats() || run.restabilizations > 0);
            }
            DynamicOutcome::AbortedAt(at) => {
                prop_assert_eq!(run.path.end(), at);
                prop_assert!(run.restabilizations >= 1 || connectivity_broken(&cfg, s, d));
            }
            DynamicOutcome::HolderFailed(h) => prop_assert_eq!(run.path.end(), h),
            DynamicOutcome::DestinationFailed => {}
            DynamicOutcome::InfeasibleAtSource => prop_assert!(run.path.is_empty()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Loss-robustness acceptance property (ISSUE): for any seeded
    /// fault set and per-link loss rate in {1%, 5%, 20%}, distributed
    /// GS over the reliable layer goes quiescent at exactly the
    /// centralized `SafetyMap`, and distributed unicast delivers
    /// whenever the centralized `route` says the pair is feasible —
    /// with zero duplicate copies ever surfaced to actors.
    #[test]
    fn lossy_protocols_match_lossless_semantics(
        cfg in small_faulty_cube(0.2),
        seed in any::<u64>(),
    ) {
        let central = SafetyMap::compute(&cfg);
        let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
        for (k, &loss) in [0.01, 0.05, 0.2].iter().enumerate() {
            let ch = ChannelModel::lossy(seed ^ k as u64, loss).with_jitter(2);
            let run = run_gs_reliable(&cfg, ch, ReliableConfig::default(), 1, 5_000_000);
            prop_assert!(run.quiescent, "GS budget exhausted at loss {}", loss);
            prop_assert_eq!(run.links_abandoned, 0);
            prop_assert_eq!(run.map.store(), central.store(), "loss {}", loss);

            // Unicast over the converged map: feasible pairs deliver.
            for (i, &s) in healthy.iter().enumerate().take(3) {
                let d = healthy[healthy.len() - 1 - i];
                if s == d || !route(&cfg, &central, s, d).delivered {
                    continue;
                }
                let ch = ChannelModel::lossy(seed ^ (k as u64) << 8 ^ i as u64, loss)
                    .with_jitter(2)
                    .with_duplication(0.05);
                let run = run_unicast_lossy(
                    &cfg, &central, s, d, 1, ch,
                    ReliableConfig::default(), 5_000_000,
                );
                prop_assert!(
                    matches!(run.outcome, LossyOutcome::Delivered { .. }),
                    "{} → {} at loss {}: {:?}", s, d, loss, run.outcome
                );
                prop_assert_eq!(run.duplicate_deliveries, 0);
                if loss > 0.0 {
                    // Overhead counters are plumbed through.
                    prop_assert!(run.stats.acked > 0);
                }
            }
        }
    }
}

/// Like [`faulty_cube`] but capped at 5 dimensions: the reliable-layer
/// runs simulate every retransmission timer, so the budget matters.
fn small_faulty_cube(max_ratio: f64) -> impl Strategy<Value = FaultConfig> {
    (3u8..=5).prop_flat_map(move |n| {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        let max_faults = ((total as f64 * max_ratio) as usize).max(1);
        proptest::collection::btree_set(0..total, 0..=max_faults).prop_map(move |set| {
            FaultConfig::with_node_faults(
                cube,
                FaultSet::from_nodes(cube, set.into_iter().map(NodeId::new)),
            )
        })
    })
}

/// Helper: whether s and d were already separated in the *initial*
/// configuration (an abort without restabilization is then expected).
fn connectivity_broken(cfg: &FaultConfig, s: NodeId, d: NodeId) -> bool {
    !connectivity::connected(cfg, s, d)
}
