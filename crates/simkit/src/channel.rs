//! Lossy-channel model for the discrete-event engines.
//!
//! The paper's system model assumes reliable links: a message sent over
//! a usable link always arrives. Real interconnects drop, delay, and
//! occasionally duplicate packets, so the robustness experiments plug a
//! [`ChannelModel`] into [`crate::event::EventEngine`]: every send across a
//! *usable* link (fault-stop drops still happen first and are counted
//! separately) is independently lost with probability `loss`, delayed
//! by a uniform extra jitter in `0..=jitter`, and duplicated with
//! probability `duplicate`. Jitter makes reordering observable: a
//! later send can overtake an earlier one.
//!
//! Determinism: every per-message decision is a pure function of
//! `(seed, src, dst, per-channel message counter)` via SplitMix64-style
//! mixing — no RNG state is shared with the workload generators, and a
//! run is exactly reproducible from the engine's inputs.

use crate::event::Time;

/// One 64-bit avalanche round (the SplitMix64 finalizer). Shared with
/// [`crate::sim::AdversarialScheduler`], whose decisions must be just
/// as reproducible as the channel's.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from 53 high bits.
pub(crate) fn unit(z: u64) -> f64 {
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `0..=bound` via widening multiply.
pub(crate) fn uniform_inclusive(z: u64, bound: u64) -> u64 {
    ((z as u128 * (bound as u128 + 1)) >> 64) as u64
}

/// The fate the channel assigns to one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFate {
    /// The message vanishes entirely (no copy arrives).
    pub lost: bool,
    /// Extra delivery delay of the primary copy, in ticks.
    pub jitter: Time,
    /// Extra delay of a duplicated second copy, if one is injected.
    pub duplicate: Option<Time>,
}

impl LinkFate {
    /// The fate of a message over a perfect channel.
    pub const CLEAN: LinkFate = LinkFate {
        lost: false,
        jitter: 0,
        duplicate: None,
    };
}

/// A seeded, deterministic per-link noise model.
///
/// Cheap to clone; the embedded counter advances once per decision, so
/// clone *before* the run if two engines must see identical noise.
#[derive(Clone, Debug)]
pub struct ChannelModel {
    seed: u64,
    loss: f64,
    duplicate: f64,
    jitter: Time,
    counter: u64,
}

impl ChannelModel {
    /// A noiseless channel with the given seed; compose with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        ChannelModel {
            seed,
            loss: 0.0,
            duplicate: 0.0,
            jitter: 0,
            counter: 0,
        }
    }

    /// Convenience: a channel that only loses messages.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        Self::new(seed).with_loss(loss)
    }

    /// Sets the per-message loss probability (must be in `[0, 1)`:
    /// a channel that loses everything can never converge).
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1)"
        );
        self.loss = p;
        self
    }

    /// Sets the per-message duplication probability in `[0, 1)`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "duplication probability must be in [0, 1)"
        );
        self.duplicate = p;
        self
    }

    /// Sets the maximum extra latency; each copy is delayed by a
    /// uniform draw from `0..=jitter` (this is what makes reordering
    /// possible).
    pub fn with_jitter(mut self, jitter: Time) -> Self {
        self.jitter = jitter;
        self
    }

    /// Configured loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Configured duplication probability.
    pub fn duplication(&self) -> f64 {
        self.duplicate
    }

    /// Configured maximum jitter.
    pub fn jitter(&self) -> Time {
        self.jitter
    }

    /// Fate decisions drawn so far (the internal counter) — exported
    /// into [`crate::obs::MetricsSnapshot`] so runs can report how much
    /// traffic actually crossed the noisy channel.
    pub fn decisions(&self) -> u64 {
        self.counter
    }

    /// Decides the fate of the next message on link `src → dst`.
    /// Advances the internal counter; deterministic in
    /// `(seed, src, dst, counter)`.
    pub fn fate(&mut self, src: u64, dst: u64) -> LinkFate {
        self.counter += 1;
        let base = mix(self
            .seed
            .wrapping_add(mix(src.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .wrapping_add(mix(dst.rotate_left(32) ^ 0xD6E8_FEB8_6659_FD93))
            .wrapping_add(self.counter.wrapping_mul(0x2545_F491_4F6C_DD1D)));
        if unit(mix(base ^ 1)) < self.loss {
            return LinkFate {
                lost: true,
                jitter: 0,
                duplicate: None,
            };
        }
        let jitter = if self.jitter == 0 {
            0
        } else {
            uniform_inclusive(mix(base ^ 2), self.jitter)
        };
        let duplicate = (unit(mix(base ^ 3)) < self.duplicate).then(|| {
            if self.jitter == 0 {
                0
            } else {
                uniform_inclusive(mix(base ^ 4), self.jitter)
            }
        });
        LinkFate {
            lost: false,
            jitter,
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_channel_is_clean() {
        let mut ch = ChannelModel::new(7);
        for k in 0..100 {
            assert_eq!(ch.fate(k, k + 1), LinkFate::CLEAN);
        }
    }

    #[test]
    fn same_seed_same_fates() {
        let mk = || {
            ChannelModel::new(42)
                .with_loss(0.3)
                .with_jitter(5)
                .with_duplication(0.2)
        };
        let (mut a, mut b) = (mk(), mk());
        for k in 0..200 {
            assert_eq!(a.fate(k % 7, k % 5), b.fate(k % 7, k % 5));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChannelModel::lossy(1, 0.5);
        let mut b = ChannelModel::lossy(2, 0.5);
        let diff = (0..200).filter(|&k| a.fate(0, k) != b.fate(0, k)).count();
        assert!(diff > 0, "independent seeds should disagree somewhere");
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let mut ch = ChannelModel::lossy(3, 0.25);
        let lost = (0..10_000)
            .filter(|&k| ch.fate(k % 16, (k + 1) % 16).lost)
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "measured loss {rate}");
    }

    #[test]
    fn jitter_within_bound_and_exercised() {
        let mut ch = ChannelModel::new(4).with_jitter(6);
        let mut seen = [false; 7];
        for k in 0..1000 {
            let f = ch.fate(k % 8, (k + 3) % 8);
            assert!(f.jitter <= 6);
            seen[f.jitter as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all jitter values 0..=6 occur");
    }

    #[test]
    fn duplication_rate_is_roughly_honored() {
        let mut ch = ChannelModel::new(5).with_duplication(0.1);
        let dups = (0..10_000)
            .filter(|&k| ch.fate(1, 2 + (k % 3)).duplicate.is_some())
            .count();
        let rate = dups as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "measured duplication {rate}");
    }

    #[test]
    #[should_panic]
    fn total_loss_rejected() {
        let _ = ChannelModel::lossy(0, 1.0);
    }
}
