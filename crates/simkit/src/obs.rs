//! `obs` — structured observability for the event engine.
//!
//! The flat [`crate::stats::EventStats`] answers *how many* messages a
//! run cost; this module answers *where* and *how long*: per-node and
//! per-dimension counters, fixed-memory latency/hop/round histograms
//! with quantile readout, a bounded flight recorder for post-mortem
//! trace dumps, and a serializable [`MetricsSnapshot`] the experiment
//! harness exports next to its CSVs.
//!
//! Design constraints, in order:
//!
//! 1. **Zero perturbation.** Observability must never change what the
//!    engine computes: every hook is read-only with respect to
//!    protocol state, and the engine goldens
//!    (`tests/goldens/engine_goldens.txt`) are recorded with hooks
//!    compiled in — byte-identical whether a [`Metrics`] is installed
//!    or not.
//! 2. **Zero allocation when disabled.** An engine without an
//!    installed registry pays one `Option` discriminant test per hook
//!    site and allocates nothing.
//! 3. **Fixed memory when enabled.** All histograms are log-linear
//!    with a fixed bucket array ([`QuantileHist`]); the flight
//!    recorder is a ring buffer that keeps the *last* `cap` events of
//!    arbitrarily long runs. Nothing in the hot path grows with run
//!    length.

use crate::trace::{Severity, TraceEvent, TraceKind, TraceSink};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Linear region of [`QuantileHist`]: values `0..LINEAR` are counted
/// exactly, one bucket per value.
const LINEAR: u64 = 64;
/// Sub-buckets per power-of-two range above the linear region; bounds
/// the relative quantile error at `1/SUBBUCKETS` (12.5%).
const SUBBUCKETS: u64 = 8;
/// Total bucket count: 64 linear + 8 per octave for octaves 6..=63.
const BUCKETS: usize = (LINEAR + (64 - 6) * SUBBUCKETS) as usize;

/// A fixed-memory log-linear histogram over `u64` observations with
/// quantile readout — the generalization of the ad-hoc
/// [`crate::stats::Histogram`] (exact small buckets, overflow bucket,
/// mean) to unbounded value ranges: values below 64 are counted
/// exactly, larger values land in one of 8 sub-buckets per
/// power-of-two range, so any tick count fits in ~4 KiB with ≤ 12.5%
/// relative quantile error (the maximum is tracked exactly).
#[derive(Clone, Debug)]
pub struct QuantileHist {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for QuantileHist {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        // Octave k = floor(log2 v) ≥ 6; sub-bucket from the next 3
        // bits below the leading one.
        let k = 63 - v.leading_zeros() as u64;
        let sub = (v >> (k - 3)) & (SUBBUCKETS - 1);
        (LINEAR + (k - 6) * SUBBUCKETS + sub) as usize
    }
}

/// Upper bound of the values a bucket covers (the quantile
/// representative reported for it).
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR {
        i
    } else {
        let k = 6 + (i - LINEAR) / SUBBUCKETS;
        let sub = (i - LINEAR) % SUBBUCKETS;
        // Bucket covers [2^k + sub·2^(k-3), 2^k + (sub+1)·2^(k-3)).
        (1u64 << k) + (sub + 1).saturating_mul(1u64 << (k - 3)) - 1
    }
}

impl QuantileHist {
    /// An empty histogram (~4 KiB, allocated once).
    pub fn new() -> Self {
        QuantileHist {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum observed, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q ∈ [0, 1]`: exact below 64, bucket
    /// upper bound (≤ 12.5% high) above; the top quantile is clamped
    /// to the exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The standard readout: p50 / p95 / p99 / max.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.total,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &QuantileHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Summary quantiles of one histogram, as exported in snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quantiles {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (≤ 12.5% high above 63).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Per-node counters (indexed by raw node id).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStat {
    /// Messages this node handed to the transport.
    pub sent: u64,
    /// Messages delivered to this node.
    pub delivered: u64,
    /// This node's sends dropped at a faulty destination/link, plus
    /// messages dropped on delivery because this node was dead.
    pub dropped: u64,
    /// This node's sends eaten by channel noise.
    pub lost: u64,
    /// Timer events fired on this node.
    pub timers: u64,
    /// Retransmissions performed by this node's ARQ endpoint.
    pub retransmits: u64,
    /// Acknowledgements sent by this node's ARQ endpoint.
    pub acks: u64,
    /// Whether the node was fault-stopped mid-run.
    pub killed: bool,
}

/// Per-dimension (port) counters, aggregated over all nodes — on a
/// binary cube, port ≡ dimension, so this is per-dimension link load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DimStat {
    /// Messages sent out of this port.
    pub sent: u64,
    /// Messages delivered that arrived through this port (receiver
    /// side).
    pub delivered: u64,
    /// Sends out of this port eaten by channel noise.
    pub lost: u64,
    /// Duplicate copies the channel injected on this port.
    pub duplicated: u64,
    /// ARQ retransmissions on this port.
    pub retransmits: u64,
}

/// The metrics registry: installed into an
/// [`crate::event::EventEngine`] via `set_metrics`, filled by the
/// engine / channel / ARQ hooks, read back via `take_metrics` and
/// [`Metrics::snapshot`]. Protocol runners additionally record
/// end-to-end observations ([`Metrics::record_hops`],
/// [`Metrics::record_rounds`]).
#[derive(Clone, Debug)]
pub struct Metrics {
    nodes: Vec<NodeStat>,
    dims: Vec<DimStat>,
    /// Per-delivery transit time (delivery tick − send tick): base
    /// latency + jitter + queueing, one observation per delivered
    /// copy. Recorded by the engine.
    pub latency: QuantileHist,
    /// End-to-end hop counts. Recorded by protocol runners (e.g. the
    /// unicast trail length).
    pub hops: QuantileHist,
    /// Convergence observations: synchronous rounds or quiescence
    /// ticks, whichever the recording runner documents. Recorded by
    /// protocol runners.
    pub rounds: QuantileHist,
    /// Channel fate decisions drawn ([`crate::channel::ChannelModel::decisions`]),
    /// folded in when the engine releases the registry.
    pub channel_decisions: u64,
}

impl Metrics {
    /// A registry sized for `num_nodes` nodes of maximum degree
    /// `max_degree`. (The engine's `enable_metrics` sizes this from
    /// its network.)
    pub fn new(num_nodes: usize, max_degree: usize) -> Self {
        Metrics {
            nodes: vec![NodeStat::default(); num_nodes],
            dims: vec![DimStat::default(); max_degree],
            latency: QuantileHist::new(),
            hops: QuantileHist::new(),
            rounds: QuantileHist::new(),
            channel_decisions: 0,
        }
    }

    /// Per-node counters, indexed by raw node id.
    pub fn nodes(&self) -> &[NodeStat] {
        &self.nodes
    }

    /// Per-dimension counters, indexed by port number.
    pub fn dims(&self) -> &[DimStat] {
        &self.dims
    }

    // -- engine hooks (crate-public so the hot path can inline them) --

    #[inline]
    pub(crate) fn on_send(&mut self, src: u64, port: usize) {
        self.nodes[src as usize].sent += 1;
        self.dims[port].sent += 1;
    }

    #[inline]
    pub(crate) fn on_fault_drop(&mut self, src: u64) {
        self.nodes[src as usize].dropped += 1;
    }

    #[inline]
    pub(crate) fn on_lost(&mut self, src: u64, port: usize) {
        self.nodes[src as usize].lost += 1;
        self.dims[port].lost += 1;
    }

    #[inline]
    pub(crate) fn on_duplicated(&mut self, port: usize) {
        self.dims[port].duplicated += 1;
    }

    #[inline]
    pub(crate) fn on_delivered(&mut self, dst: u64, port: Option<usize>, transit: u64) {
        self.nodes[dst as usize].delivered += 1;
        if let Some(p) = port {
            self.dims[p].delivered += 1;
        }
        self.latency.record(transit);
    }

    #[inline]
    pub(crate) fn on_dead_drop(&mut self, dst: u64) {
        self.nodes[dst as usize].dropped += 1;
    }

    #[inline]
    pub(crate) fn on_timer(&mut self, dst: u64) {
        self.nodes[dst as usize].timers += 1;
    }

    #[inline]
    pub(crate) fn on_kill(&mut self, dst: u64) {
        self.nodes[dst as usize].killed = true;
    }

    #[inline]
    pub(crate) fn on_arq(&mut self, node: u64, retransmits: u64, acks: u64, retx_ports: &[usize]) {
        let n = &mut self.nodes[node as usize];
        n.retransmits += retransmits;
        n.acks += acks;
        for &p in retx_ports {
            if let Some(d) = self.dims.get_mut(p) {
                d.retransmits += 1;
            }
        }
    }

    // -- protocol-level recording --

    /// Records one end-to-end hop-count observation.
    pub fn record_hops(&mut self, hops: u64) {
        self.hops.record(hops);
    }

    /// Records one convergence observation (rounds or ticks — the
    /// recording runner documents which).
    pub fn record_rounds(&mut self, rounds: u64) {
        self.rounds.record(rounds);
    }

    /// Folds `other` into this registry (cross-trial aggregation).
    /// Counter vectors grow to the larger size; `killed` flags OR.
    pub fn merge(&mut self, other: &Metrics) {
        if other.nodes.len() > self.nodes.len() {
            self.nodes.resize(other.nodes.len(), NodeStat::default());
        }
        if other.dims.len() > self.dims.len() {
            self.dims.resize(other.dims.len(), DimStat::default());
        }
        for (a, b) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            a.sent += b.sent;
            a.delivered += b.delivered;
            a.dropped += b.dropped;
            a.lost += b.lost;
            a.timers += b.timers;
            a.retransmits += b.retransmits;
            a.acks += b.acks;
            a.killed |= b.killed;
        }
        for (a, b) in self.dims.iter_mut().zip(other.dims.iter()) {
            a.sent += b.sent;
            a.delivered += b.delivered;
            a.lost += b.lost;
            a.duplicated += b.duplicated;
            a.retransmits += b.retransmits;
        }
        self.latency.merge(&other.latency);
        self.hops.merge(&other.hops);
        self.rounds.merge(&other.rounds);
        self.channel_decisions += other.channel_decisions;
    }

    /// Freezes the registry into an exportable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut totals = SnapshotTotals::default();
        for n in &self.nodes {
            totals.sends += n.sent;
            totals.delivered += n.delivered;
            totals.dropped += n.dropped;
            totals.lost += n.lost;
            totals.timers += n.timers;
            totals.retransmitted += n.retransmits;
            totals.acked += n.acks;
            totals.killed += n.killed as u64;
        }
        for d in &self.dims {
            totals.duplicated += d.duplicated;
        }
        MetricsSnapshot {
            totals,
            per_node: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, &s)| (i as u64, s))
                .collect(),
            per_dim: self
                .dims
                .iter()
                .enumerate()
                .map(|(i, &s)| (i as u8, s))
                .collect(),
            latency: self.latency.quantiles(),
            hops: self.hops.quantiles(),
            rounds: self.rounds.quantiles(),
            channel_decisions: self.channel_decisions,
        }
    }
}

/// Workspace-wide totals of a snapshot (the per-run view
/// [`crate::stats::EventStats`] gives, recomputed from the per-node
/// rows so the two accountings can be cross-checked).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct SnapshotTotals {
    pub sends: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub lost: u64,
    pub duplicated: u64,
    pub retransmitted: u64,
    pub acked: u64,
    pub timers: u64,
    pub killed: u64,
}

/// A frozen, serializable view of one [`Metrics`] registry.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Aggregate counters.
    pub totals: SnapshotTotals,
    /// `(node id, counters)`, every node of the network.
    pub per_node: Vec<(u64, NodeStat)>,
    /// `(dimension, counters)`, every port index.
    pub per_dim: Vec<(u8, DimStat)>,
    /// Per-delivery transit-time quantiles.
    pub latency: Quantiles,
    /// End-to-end hop-count quantiles.
    pub hops: Quantiles,
    /// Convergence (rounds/ticks) quantiles.
    pub rounds: Quantiles,
    /// Channel fate decisions drawn.
    pub channel_decisions: u64,
}

fn json_quantiles(out: &mut String, q: &Quantiles) {
    let _ = write!(
        out,
        "{{\"count\":{},\"mean\":{:.4},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        q.count, q.mean, q.p50, q.p95, q.p99, q.max
    );
}

impl MetricsSnapshot {
    /// Renders the snapshot as a single deterministic JSON object
    /// (fixed key order; no external serializer). The shape is pinned
    /// by `tests/goldens/obs_schema.json`.
    pub fn to_json(&self) -> String {
        let t = &self.totals;
        let mut out = String::with_capacity(1024 + 96 * self.per_node.len());
        let _ = write!(
            out,
            "{{\"schema\":\"hypersafe.obs.v1\",\"totals\":{{\"sends\":{},\"delivered\":{},\
             \"dropped\":{},\"lost\":{},\"duplicated\":{},\"retransmitted\":{},\"acked\":{},\
             \"timers\":{},\"killed\":{}}}",
            t.sends,
            t.delivered,
            t.dropped,
            t.lost,
            t.duplicated,
            t.retransmitted,
            t.acked,
            t.timers,
            t.killed
        );
        out.push_str(",\"latency\":");
        json_quantiles(&mut out, &self.latency);
        out.push_str(",\"hops\":");
        json_quantiles(&mut out, &self.hops);
        out.push_str(",\"rounds\":");
        json_quantiles(&mut out, &self.rounds);
        let _ = write!(out, ",\"channel_decisions\":{}", self.channel_decisions);
        out.push_str(",\"per_dim\":[");
        for (i, (dim, d)) in self.per_dim.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"dim\":{dim},\"sent\":{},\"delivered\":{},\"lost\":{},\"duplicated\":{},\
                 \"retransmits\":{}}}",
                d.sent, d.delivered, d.lost, d.duplicated, d.retransmits
            );
        }
        out.push_str("],\"per_node\":[");
        for (i, (node, n)) in self.per_node.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":{node},\"sent\":{},\"delivered\":{},\"dropped\":{},\"lost\":{},\
                 \"timers\":{},\"retransmits\":{},\"acks\":{},\"killed\":{}}}",
                n.sent, n.delivered, n.dropped, n.lost, n.timers, n.retransmits, n.acks, n.killed
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot as a tall CSV (`scope,index,field,value`),
    /// one row per counter — trivially joinable/diffable.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scope,index,field,value\n");
        let t = &self.totals;
        for (k, v) in [
            ("sends", t.sends),
            ("delivered", t.delivered),
            ("dropped", t.dropped),
            ("lost", t.lost),
            ("duplicated", t.duplicated),
            ("retransmitted", t.retransmitted),
            ("acked", t.acked),
            ("timers", t.timers),
            ("killed", t.killed),
            ("channel_decisions", self.channel_decisions),
        ] {
            let _ = writeln!(out, "total,,{k},{v}");
        }
        for (name, q) in [
            ("latency", &self.latency),
            ("hops", &self.hops),
            ("rounds", &self.rounds),
        ] {
            let _ = writeln!(out, "hist,{name},count,{}", q.count);
            let _ = writeln!(out, "hist,{name},mean,{:.4}", q.mean);
            let _ = writeln!(out, "hist,{name},p50,{}", q.p50);
            let _ = writeln!(out, "hist,{name},p95,{}", q.p95);
            let _ = writeln!(out, "hist,{name},p99,{}", q.p99);
            let _ = writeln!(out, "hist,{name},max,{}", q.max);
        }
        for (dim, d) in &self.per_dim {
            let _ = writeln!(out, "dim,{dim},sent,{}", d.sent);
            let _ = writeln!(out, "dim,{dim},delivered,{}", d.delivered);
            let _ = writeln!(out, "dim,{dim},lost,{}", d.lost);
            let _ = writeln!(out, "dim,{dim},duplicated,{}", d.duplicated);
            let _ = writeln!(out, "dim,{dim},retransmits,{}", d.retransmits);
        }
        for (node, n) in &self.per_node {
            let _ = writeln!(out, "node,{node},sent,{}", n.sent);
            let _ = writeln!(out, "node,{node},delivered,{}", n.delivered);
            let _ = writeln!(out, "node,{node},dropped,{}", n.dropped);
            let _ = writeln!(out, "node,{node},lost,{}", n.lost);
            let _ = writeln!(out, "node,{node},timers,{}", n.timers);
            let _ = writeln!(out, "node,{node},retransmits,{}", n.retransmits);
            let _ = writeln!(out, "node,{node},acks,{}", n.acks);
            let _ = writeln!(out, "node,{node},killed,{}", n.killed as u8);
        }
        out
    }
}

/// A bounded ring-buffer [`TraceSink`]: keeps the *last* `cap` events
/// that pass its kind/severity filter, so week-long DST or churn runs
/// can dump a post-mortem window instead of growing an unbounded
/// [`crate::trace::Trace`]. Events arriving while full evict the
/// oldest; [`FlightRecorder::evicted`] reports how many scrolled off.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    min_severity: Severity,
    kinds: [bool; 3],
    seen: u64,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` events of every kind and
    /// severity (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.clamp(1, 4096)),
            min_severity: Severity::Debug,
            kinds: [true; 3],
            seen: 0,
            evicted: 0,
        }
    }

    /// Drops events below `min` before they enter the ring.
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.min_severity = min;
        self
    }

    /// Keeps only events whose [`TraceKind`] is in `kinds`.
    pub fn with_kinds(mut self, kinds: &[TraceKind]) -> Self {
        self.kinds = [false; 3];
        for k in kinds {
            self.kinds[*k as usize] = true;
        }
        self
    }

    /// Events admitted by the filter since construction (retained or
    /// since evicted).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Admitted events that scrolled off the ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained window, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Renders the retained window one event per line, prefixed with a
    /// header stating what scrolled off.
    pub fn dump(&self) -> String {
        let mut out = format!(
            "-- flight recorder: last {} of {} events ({} evicted) --\n",
            self.buf.len(),
            self.seen,
            self.evicted
        );
        for ev in &self.buf {
            let _ = writeln!(out, "{ev}");
        }
        out
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, ev: TraceEvent) {
        if ev.severity() < self.min_severity || !self.kinds[ev.kind() as usize] {
            return;
        }
        self.seen += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
    }

    fn into_flight_recorder(self: Box<Self>) -> Option<FlightRecorder> {
        Some(*self)
    }
}

/// A minimal JSON value — just enough to validate exported snapshots
/// against the checked-in schema without an external parser.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The schema type-name of this value (`"number"`, `"string"`,
    /// `"bool"`, `"array"`, `"object"`, `"null"`).
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses a JSON document (strict enough for the snapshots this module
/// emits; escapes are kept verbatim).
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut m = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let JsonValue::Str(k) = parse_value(b, pos)? else {
                    return Err(format!("object key must be a string at byte {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                m.push((k, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut a = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(a));
            }
            loop {
                a.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(a));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let start = *pos;
            while *pos < b.len() && b[*pos] != b'"' {
                if b[*pos] == b'\\' {
                    *pos += 1;
                }
                *pos += 1;
            }
            if *pos >= b.len() {
                return Err("unterminated string".into());
            }
            let s = String::from_utf8_lossy(&b[start..*pos]).into_owned();
            *pos += 1;
            Ok(JsonValue::Str(s))
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(JsonValue::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

/// Validates `json` against a schema document: the schema is itself
/// JSON mirroring the expected shape, where every leaf is the string
/// name of the required type (`"number"`, `"string"`, `"bool"`),
/// objects require exactly their listed keys, and a one-element schema
/// array types every element of the instance array. Returns the first
/// mismatch as `Err`.
pub fn validate_json(json: &str, schema: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("document: {e}"))?;
    let sch = parse_json(schema).map_err(|e| format!("schema: {e}"))?;
    validate_value(&doc, &sch, "$")
}

fn validate_value(doc: &JsonValue, sch: &JsonValue, path: &str) -> Result<(), String> {
    match sch {
        JsonValue::Str(want) => {
            let got = doc.type_name();
            if got == want {
                Ok(())
            } else {
                Err(format!("{path}: expected {want}, got {got}"))
            }
        }
        JsonValue::Obj(fields) => {
            let JsonValue::Obj(m) = doc else {
                return Err(format!("{path}: expected object, got {}", doc.type_name()));
            };
            for (k, sub) in fields {
                let Some(v) = doc.get(k) else {
                    return Err(format!("{path}.{k}: missing"));
                };
                validate_value(v, sub, &format!("{path}.{k}"))?;
            }
            for (k, _) in m {
                if fields.iter().all(|(f, _)| f != k) {
                    return Err(format!("{path}.{k}: unexpected key"));
                }
            }
            Ok(())
        }
        JsonValue::Arr(elem) => {
            let JsonValue::Arr(items) = doc else {
                return Err(format!("{path}: expected array, got {}", doc.type_name()));
            };
            let Some(proto) = elem.first() else {
                return Ok(());
            };
            for (i, v) in items.iter().enumerate() {
                validate_value(v, proto, &format!("{path}[{i}]"))?;
            }
            Ok(())
        }
        _ => Err(format!("{path}: schema leaves must be type-name strings")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::NodeId;

    #[test]
    fn hist_is_exact_in_the_linear_region() {
        let mut h = QuantileHist::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.total(), 64);
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.max(), 63);
        assert!((h.mean() - 31.5).abs() < 1e-9);
    }

    #[test]
    fn hist_quantile_error_is_bounded_above_linear() {
        let mut h = QuantileHist::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, u64::MAX / 2] {
            h.record(v);
            let q = h.quantiles();
            assert_eq!(q.max, v, "max is exact");
        }
        // Every recorded value's bucket upper bound is within 12.5%.
        for v in [100u64, 1_000, 10_000, 1_000_000] {
            let ub = bucket_upper(bucket_of(v));
            assert!(ub >= v, "upper bound covers the value");
            assert!(ub as f64 <= v as f64 * 1.125 + 1.0, "{v} → {ub}");
        }
    }

    #[test]
    fn hist_bucket_roundtrip_is_monotone() {
        let mut prev = 0usize;
        for k in 0..200u64 {
            let v = k * k * k + k; // strictly increasing sample
            let b = bucket_of(v);
            assert!(b >= prev, "bucket index must not decrease: {v}");
            assert!(bucket_upper(b) >= v);
            prev = b;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn hist_merge_matches_combined_recording() {
        let (mut a, mut b, mut c) = (
            QuantileHist::new(),
            QuantileHist::new(),
            QuantileHist::new(),
        );
        for v in 0..100u64 {
            a.record(v * 7);
            c.record(v * 7);
        }
        for v in 0..50u64 {
            b.record(v * 131);
            c.record(v * 131);
        }
        a.merge(&b);
        assert_eq!(a.total(), c.total());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn empty_hist_reads_zero() {
        let h = QuantileHist::new();
        let q = h.quantiles();
        assert_eq!((q.count, q.p50, q.p99, q.max), (0, 0, 0, 0));
        assert_eq!(q.mean, 0.0);
    }

    #[test]
    fn metrics_snapshot_totals_sum_per_node_rows() {
        let mut m = Metrics::new(4, 2);
        m.on_send(0, 1);
        m.on_send(0, 0);
        m.on_delivered(1, Some(1), 3);
        m.on_lost(0, 0);
        m.on_timer(2);
        m.on_kill(3);
        m.record_hops(2);
        let s = m.snapshot();
        assert_eq!(s.totals.sends, 2);
        assert_eq!(s.totals.delivered, 1);
        assert_eq!(s.totals.lost, 1);
        assert_eq!(s.totals.timers, 1);
        assert_eq!(s.totals.killed, 1);
        assert_eq!(s.per_node.len(), 4);
        assert_eq!(s.per_dim.len(), 2);
        assert_eq!(s.hops.count, 1);
        assert_eq!(s.latency.max, 3);
    }

    #[test]
    fn metrics_merge_adds_counters() {
        let mut a = Metrics::new(2, 1);
        let mut b = Metrics::new(2, 1);
        a.on_send(0, 0);
        b.on_send(0, 0);
        b.on_kill(1);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.totals.sends, 2);
        assert_eq!(s.totals.killed, 1);
    }

    #[test]
    fn snapshot_json_roundtrips_through_the_parser() {
        let mut m = Metrics::new(3, 2);
        m.on_send(1, 0);
        m.on_delivered(0, Some(0), 5);
        m.record_rounds(4);
        let json = m.snapshot().to_json();
        let v = parse_json(&json).expect("snapshot JSON parses");
        assert_eq!(
            v.get("schema"),
            Some(&JsonValue::Str("hypersafe.obs.v1".into()))
        );
        let Some(JsonValue::Arr(nodes)) = v.get("per_node") else {
            panic!("per_node array");
        };
        assert_eq!(nodes.len(), 3);
        assert_eq!(
            v.get("totals").and_then(|t| t.get("sends")),
            Some(&JsonValue::Num(1.0))
        );
    }

    #[test]
    fn snapshot_csv_is_tall_and_complete() {
        let mut m = Metrics::new(2, 1);
        m.on_send(0, 0);
        let csv = m.snapshot().to_csv();
        assert!(csv.starts_with("scope,index,field,value\n"));
        assert!(csv.contains("total,,sends,1\n"));
        assert!(csv.contains("hist,latency,p99,0\n"));
        assert!(csv.contains("node,0,sent,1\n"));
        assert!(csv.contains("dim,0,sent,1\n"));
    }

    #[test]
    fn validator_accepts_matching_and_rejects_drift() {
        let schema = r#"{"a":"number","b":[{"x":"number"}],"c":"string"}"#;
        assert!(validate_json(r#"{"a":1,"b":[{"x":2},{"x":3}],"c":"hi"}"#, schema).is_ok());
        // Missing key.
        assert!(validate_json(r#"{"a":1,"b":[],"c":"hi","d":0}"#, schema)
            .unwrap_err()
            .contains("unexpected key"));
        let err = validate_json(r#"{"a":1,"b":[{"x":"no"}],"c":"hi"}"#, schema).unwrap_err();
        assert!(err.contains("$.b[0].x"), "{err}");
        assert!(validate_json(r#"{"a":1,"c":"hi"}"#, schema)
            .unwrap_err()
            .contains("missing"));
    }

    #[test]
    fn flight_recorder_keeps_the_last_n() {
        let mut fr = FlightRecorder::new(3);
        for k in 0..10u64 {
            fr.record(TraceEvent::Hop {
                from: NodeId::new(k),
                to: NodeId::new(k + 1),
                dim: Some(0),
                word: k,
            });
        }
        assert_eq!(fr.seen(), 10);
        assert_eq!(fr.evicted(), 7);
        let words: Vec<u64> = fr
            .events()
            .map(|e| match e {
                TraceEvent::Hop { word, .. } => *word,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(words, vec![7, 8, 9], "the last three survive, in order");
        assert!(fr.dump().contains("last 3 of 10 events (7 evicted)"));
    }

    #[test]
    fn flight_recorder_filters_by_kind_and_severity() {
        let mut fr = FlightRecorder::new(8)
            .with_kinds(&[TraceKind::Note])
            .with_min_severity(Severity::Info);
        fr.record(TraceEvent::Hop {
            from: NodeId::ZERO,
            to: NodeId::new(1),
            dim: Some(0),
            word: 0,
        });
        fr.record(TraceEvent::Note("kept".into()));
        assert_eq!(fr.seen(), 1, "hops are filtered out");
        assert!(matches!(fr.events().next(), Some(TraceEvent::Note(s)) if s == "kept"));
    }
}
