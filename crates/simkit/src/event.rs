//! The discrete-event engine: asynchronous protocol execution over any
//! [`Network`].
//!
//! The paper remarks that `GLOBAL_STATUS` "can be implemented
//! asynchronously" and that the demand-driven / state-change-driven
//! maintenance modes are naturally asynchronous (§2.2). This engine
//! provides the substrate: virtual-time message delivery between
//! adjacent nodes with per-message latency, plus node-local timers —
//! on binary cubes ([`crate::network::HypercubeNet`], with link
//! faults) and generalized hypercubes ([`crate::network::GhNet`],
//! §4.2) alike, so one actor implementation serves every topology the
//! workspace models.
//!
//! Determinism: events at equal virtual times are processed in the
//! order decided by the installed [`Scheduler`] (the default
//! [`crate::sim::FifoScheduler`] uses the monotone sequence number, so
//! equal-time events run in scheduling order), and ties on the
//! scheduler's key fall back to the sequence number — a run is a pure
//! function of the initial state, the actors' logic, and the
//! scheduler/channel seeds. Channel noise ([`ChannelModel`]) is itself
//! seeded, keeping lossy runs reproducible.

use crate::channel::ChannelModel;
use crate::network::Network;
use crate::obs::Metrics;
use crate::sim::{FifoScheduler, Invariant, InvariantViolation, Scheduler};
use crate::stats::EventStats;
use crate::trace::{TraceEvent, TraceSink};
use hypersafe_topology::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time, in abstract ticks.
pub type Time = u64;

/// Who armed a timer. Protocol actors arm [`TimerTag::Actor`] tags via
/// [`Ctx::set_timer`]; the reliable ARQ layer ([`crate::reliable`])
/// arms [`TimerTag::Arq`] retransmission timers. The two spaces are
/// disjoint by construction, so a wrapped actor can use any `u64` tag
/// without colliding with the transport (this replaces an earlier
/// reserved-high-bit convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerTag {
    /// An actor-armed timer carrying an opaque protocol tag.
    Actor(u64),
    /// A retransmission timer of the reliable layer: the pending
    /// sequence number on one outgoing port.
    Arq {
        /// The port whose link the timer watches.
        port: u32,
        /// The sequence number awaiting acknowledgement.
        seq: u64,
    },
}

/// What an actor may do in response to an event: collected by the
/// [`Ctx`] handed to every callback.
pub struct Ctx<M> {
    /// The node this context belongs to.
    self_id: NodeId,
    now: Time,
    sends: Vec<(Time, NodeId, M)>,
    timers: Vec<(Time, TimerTag)>,
    retransmits: u64,
    acks: u64,
    /// Ports of individual retransmissions, for per-dimension metrics
    /// attribution. Only filled while a metrics registry is installed
    /// (`obs_on`), so the disabled path never allocates.
    retx_ports: Vec<usize>,
    obs_on: bool,
    halt: bool,
}

impl<M> Ctx<M> {
    /// Builds a context detached from any engine, for callers (the
    /// model checker in [`crate::mc`]) that execute actor callbacks
    /// outside an [`EventEngine`] and absorb the effects themselves.
    pub(crate) fn detached(self_id: NodeId, now: Time) -> Self {
        Ctx {
            self_id,
            now,
            sends: Vec::new(),
            timers: Vec::new(),
            retransmits: 0,
            acks: 0,
            retx_ports: Vec::new(),
            obs_on: false,
            halt: false,
        }
    }

    /// Tears the context apart into its raw effects `(sends, timers,
    /// halt)` for out-of-engine absorption (crate-internal; the engine
    /// itself uses `absorb_ctx`). Send and timer entries carry the
    /// absolute times the engine would have enqueued them at.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_effects(self) -> (Vec<(Time, NodeId, M)>, Vec<(Time, TimerTag)>, bool) {
        (self.sends, self.timers, self.halt)
    }

    /// The node executing the current callback.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to neighbor `dst`, arriving after `latency` ticks
    /// (latency 0 is delivered at the current time, after all
    /// already-queued same-time events).
    pub fn send(&mut self, dst: NodeId, msg: M, latency: Time) {
        self.sends.push((self.now + latency, dst, msg));
    }

    /// Arms a timer on this node firing after `delay` ticks, carrying an
    /// opaque `tag`.
    pub fn set_timer(&mut self, delay: Time, tag: u64) {
        self.timers.push((self.now + delay, TimerTag::Actor(tag)));
    }

    /// Arms a reliable-layer retransmission timer (crate-internal: only
    /// [`crate::reliable`] may occupy the ARQ tag space).
    pub(crate) fn set_arq_timer(&mut self, delay: Time, port: u32, seq: u64) {
        self.timers
            .push((self.now + delay, TimerTag::Arq { port, seq }));
    }

    /// Records `n` retransmissions into [`EventStats::retransmitted`]
    /// — called by the reliable layer ([`crate::reliable`]) so the
    /// engine's statistics reflect protocol-level recovery work.
    pub fn note_retransmits(&mut self, n: u64) {
        self.retransmits += n;
    }

    /// Records one retransmission attributed to outgoing `port` — like
    /// [`Ctx::note_retransmits`], but additionally feeds the
    /// per-dimension metrics row when a registry is installed.
    pub fn note_retransmit_on(&mut self, port: usize) {
        self.retransmits += 1;
        if self.obs_on {
            self.retx_ports.push(port);
        }
    }

    /// Records `n` acknowledgements into [`EventStats::acked`].
    pub fn note_acks(&mut self, n: u64) {
        self.acks += n;
    }

    /// Requests the whole simulation to stop after this callback.
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

/// A per-node event handler.
pub trait Actor: Sized {
    /// The message type exchanged between nodes. `Clone` lets the
    /// channel model inject duplicate copies.
    type Msg: Clone;

    /// Called once per node before any event is processed.
    fn on_start(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    /// Called when a message from neighbor `from` is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<Self::Msg>, _tag: u64) {}

    /// Full-tag dispatch. Plain actors keep the default, which routes
    /// [`TimerTag::Actor`] to [`Actor::on_timer`] and ignores ARQ
    /// timers (only the reliable wrapper arms those, and it overrides
    /// this method to claim them).
    fn on_timer_tag(&mut self, ctx: &mut Ctx<Self::Msg>, tag: TimerTag) {
        match tag {
            TimerTag::Actor(t) => self.on_timer(ctx, t),
            TimerTag::Arq { .. } => {
                debug_assert!(false, "ARQ timer delivered to an unwrapped actor");
            }
        }
    }
}

enum Payload<M> {
    Message {
        from: NodeId,
        msg: M,
        /// Virtual time of the send, kept so delivery can report the
        /// transit time (latency + jitter) into the metrics registry.
        sent: Time,
    },
    Timer {
        tag: TimerTag,
    },
    /// An externally injected fault: the destination node fault-stops
    /// the moment this event is processed (see
    /// [`EventEngine::inject_kill`]).
    Kill,
}

struct Pending<M> {
    time: Time,
    /// Same-tick tiebreak assigned by the [`Scheduler`]; the FIFO
    /// scheduler returns `seq` so `(time, key, seq)` ordering
    /// degenerates to the historical `(time, seq)`.
    key: u64,
    seq: u64,
    dst: NodeId,
    payload: Payload<M>,
}

/// Min-heap ordering by (time, key, seq).
impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.key, self.seq).cmp(&(other.time, other.key, other.seq))
    }
}

/// The discrete-event executor over any [`Network`].
pub struct EventEngine<'a, N: Network, A: Actor> {
    net: &'a N,
    actors: Vec<Option<A>>,
    /// `dead[i]` marks a node fault-stopped *mid-run* via
    /// [`EventEngine::inject_kill`]: it processes no further events, but
    /// its final state stays inspectable (post-mortem) through
    /// [`EventEngine::actor`] — unlike pre-run faults, which never had
    /// an actor at all.
    dead: Vec<bool>,
    queue: BinaryHeap<Reverse<Pending<A::Msg>>>,
    seq: u64,
    now: Time,
    stats: EventStats,
    channel: Option<ChannelModel>,
    sched: Box<dyn Scheduler>,
    halted: bool,
    trace: Option<Box<dyn TraceSink>>,
    /// Metrics registry ([`crate::obs`]); `None` keeps every hook a
    /// single branch with no allocation or arithmetic.
    metrics: Option<Metrics>,
}

impl<'a, N: Network, A: Actor> EventEngine<'a, N, A> {
    /// Builds the engine with one actor per nonfaulty node and runs
    /// every actor's `on_start`. Links are perfect (the paper's model);
    /// use [`EventEngine::with_channel`] for lossy links.
    pub fn new(net: &'a N, init: impl FnMut(NodeId) -> A) -> Self {
        Self::with_parts(net, None, Box::new(FifoScheduler), init)
    }

    /// Like [`EventEngine::new`], but every send across a usable link
    /// passes through `channel` (loss / jitter / duplication).
    pub fn with_channel(net: &'a N, channel: ChannelModel, init: impl FnMut(NodeId) -> A) -> Self {
        Self::with_parts(net, Some(channel), Box::new(FifoScheduler), init)
    }

    /// The fully general constructor: optional lossy channel plus an
    /// explicit [`Scheduler`]. The scheduler must be installed at
    /// construction time because `on_start` — which already enqueues
    /// events — runs here.
    pub fn with_parts(
        net: &'a N,
        channel: Option<ChannelModel>,
        sched: Box<dyn Scheduler>,
        init: impl FnMut(NodeId) -> A,
    ) -> Self {
        Self::build(net, channel, sched, false, init)
    }

    /// Like [`EventEngine::with_parts`], but with a metrics registry
    /// ([`crate::obs::Metrics`]) installed *before* the actors'
    /// `on_start` runs — the only way `on_start` sends are attributed.
    /// ([`EventEngine::enable_metrics`] after construction misses
    /// them, since `on_start` already ran.)
    pub fn with_parts_observed(
        net: &'a N,
        channel: Option<ChannelModel>,
        sched: Box<dyn Scheduler>,
        init: impl FnMut(NodeId) -> A,
    ) -> Self {
        Self::build(net, channel, sched, true, init)
    }

    fn build(
        net: &'a N,
        channel: Option<ChannelModel>,
        sched: Box<dyn Scheduler>,
        observe: bool,
        mut init: impl FnMut(NodeId) -> A,
    ) -> Self {
        let actors: Vec<Option<A>> = (0..net.num_nodes())
            .map(|a| (!net.node_faulty(a)).then(|| init(NodeId::new(a))))
            .collect();
        let dead = vec![false; net.num_nodes() as usize];
        let mut eng = EventEngine {
            net,
            actors,
            dead,
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            stats: EventStats::default(),
            channel,
            sched,
            halted: false,
            trace: None,
            metrics: None,
        };
        if observe {
            eng.enable_metrics();
        }
        for a in 0..eng.net.num_nodes() {
            if eng.actors[a as usize].is_some() {
                let id = NodeId::new(a);
                let mut ctx = eng.ctx_for(id);
                eng.actors[a as usize]
                    .as_mut()
                    .expect("present")
                    .on_start(&mut ctx);
                eng.absorb_ctx(id, ctx);
            }
        }
        eng
    }

    /// Records every delivered message as a [`TraceEvent::Hop`] into
    /// `sink` (dimension = sender's port, word = engine sequence
    /// number). Reclaim the sink with [`EventEngine::take_trace`].
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detaches the trace sink installed via [`EventEngine::set_trace`].
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Installs a metrics registry sized for this engine's network:
    /// engine, channel, and ARQ layers report per-node/per-dimension
    /// counters and latency observations into it from now on. Without
    /// this call every hook is a no-op branch (see [`crate::obs`]).
    /// Note `on_start` already ran at construction — use
    /// [`EventEngine::with_parts_observed`] to attribute its sends too.
    pub fn enable_metrics(&mut self) {
        let max_degree = (0..self.net.num_nodes())
            .map(|a| self.net.degree(a))
            .max()
            .unwrap_or(0);
        self.metrics = Some(Metrics::new(self.net.num_nodes() as usize, max_degree));
    }

    /// Installs a caller-built registry (e.g. one carried across
    /// engine restarts to aggregate a multi-run sweep).
    pub fn set_metrics(&mut self, m: Metrics) {
        self.metrics = Some(m);
    }

    /// Read access to the installed registry, if any.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// Detaches the metrics registry, folding in the channel's
    /// decision counter so the snapshot reports channel traffic.
    pub fn take_metrics(&mut self) -> Option<Metrics> {
        let mut m = self.metrics.take()?;
        if let Some(ch) = &self.channel {
            m.channel_decisions += ch.decisions();
        }
        Some(m)
    }

    fn ctx_for(&self, a: NodeId) -> Ctx<A::Msg> {
        Ctx {
            self_id: a,
            now: self.now,
            sends: Vec::new(),
            timers: Vec::new(),
            retransmits: 0,
            acks: 0,
            retx_ports: Vec::new(),
            obs_on: self.metrics.is_some(),
            halt: false,
        }
    }

    fn enqueue(&mut self, time: Time, dst: NodeId, payload: Payload<A::Msg>) {
        self.seq += 1;
        let key = self.sched.order_key(self.seq, dst.raw());
        self.queue.push(Reverse(Pending {
            time,
            key,
            seq: self.seq,
            dst,
            payload,
        }));
    }

    fn absorb_ctx(&mut self, src: NodeId, ctx: Ctx<A::Msg>) {
        for (time, dst, msg) in ctx.sends {
            let Some(port) = self.net.port_of(src.raw(), dst.raw()) else {
                panic!("{src} may only message neighbors, not {dst}");
            };
            // Every send attempt is counted exactly once here, before
            // any fate is decided — the anchor of the conservation law
            // delivered + dropped + lost == sends + duplicated.
            self.stats.sends += 1;
            if let Some(m) = &mut self.metrics {
                m.on_send(src.raw(), port);
            }
            // Messages into faulty nodes or across faulty links vanish
            // (fault-stop model: no malicious behaviour, just silence).
            if self.net.node_faulty(dst.raw()) || self.net.link_faulty(src.raw(), dst.raw()) {
                self.stats.dropped += 1;
                if let Some(m) = &mut self.metrics {
                    m.on_fault_drop(src.raw());
                }
                continue;
            }
            // A usable link may still be noisy: the channel model
            // decides loss, extra delay, and duplication per message,
            // and the scheduler may pile its own adversarial fate on
            // top (extra stretch, burst loss/duplication).
            let mut fate = match &mut self.channel {
                Some(ch) => ch.fate(src.raw(), dst.raw()),
                None => crate::channel::LinkFate::CLEAN,
            };
            if !fate.lost {
                let adv = self.sched.perturb(self.now, src.raw(), dst.raw());
                fate.lost |= adv.lost;
                fate.jitter += adv.jitter;
                if fate.duplicate.is_none() {
                    fate.duplicate = adv.duplicate;
                }
            }
            if fate.lost {
                self.stats.lost += 1;
                if let Some(m) = &mut self.metrics {
                    m.on_lost(src.raw(), port);
                }
                continue;
            }
            if let Some(dup_jitter) = fate.duplicate {
                self.stats.duplicated += 1;
                if let Some(m) = &mut self.metrics {
                    m.on_duplicated(port);
                }
                self.enqueue(
                    time + dup_jitter,
                    dst,
                    Payload::Message {
                        from: src,
                        msg: msg.clone(),
                        sent: self.now,
                    },
                );
            }
            self.enqueue(
                time + fate.jitter,
                dst,
                Payload::Message {
                    from: src,
                    msg,
                    sent: self.now,
                },
            );
        }
        self.stats.retransmitted += ctx.retransmits;
        self.stats.acked += ctx.acks;
        if let Some(m) = &mut self.metrics {
            m.on_arq(src.raw(), ctx.retransmits, ctx.acks, &ctx.retx_ports);
        }
        for (time, tag) in ctx.timers {
            self.enqueue(time, src, Payload::Timer { tag });
        }
        if ctx.halt {
            self.halted = true;
        }
    }

    /// The network this engine runs over.
    pub fn network(&self) -> &'a N {
        self.net
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EventStats {
        &self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read access to a node's actor (`None` for pre-run faulty
    /// nodes). A node killed mid-run still returns its frozen
    /// post-mortem state — pair with [`EventEngine::is_dead`] to tell
    /// the two apart.
    pub fn actor(&self, a: NodeId) -> Option<&A> {
        self.actors[a.raw() as usize].as_ref()
    }

    /// Whether `a` was fault-stopped mid-run by [`EventEngine::inject_kill`].
    pub fn is_dead(&self, a: NodeId) -> bool {
        self.dead[a.raw() as usize]
    }

    /// Processes a single event. Returns `false` when the queue is
    /// empty or an actor requested a halt.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time travels forward");
        self.now = ev.time;
        self.stats.end_time = self.now;
        let idx = ev.dst.raw() as usize;
        // Kills are handled before the liveness check so they stay
        // idempotent: re-killing a dead node — or one that was faulty
        // from the start — is a no-op that touches no counter. (An
        // earlier ordering ran the liveness check first, so double
        // kills and kills racing initial faults inflated the
        // message-drop counter.)
        if let Payload::Kill = ev.payload {
            if self.actors[idx].is_some() && !self.dead[idx] {
                // The node fault-stops: it processes no further events,
                // and everything already queued toward it drops on
                // delivery. Its state is frozen rather than discarded
                // so the run's outcome collectors and invariant
                // checkers can still read what it knew at the instant
                // of death (e.g. a destination killed *after* delivery
                // still shows `received_at`).
                self.dead[idx] = true;
                self.stats.killed += 1;
                if let Some(m) = &mut self.metrics {
                    m.on_kill(ev.dst.raw());
                }
                if let Some(sink) = &mut self.trace {
                    sink.record(TraceEvent::Note(format!(
                        "t={}: node {} killed",
                        self.now, ev.dst
                    )));
                }
            }
            return !self.halted;
        }
        // Destination may have become faulty after the send: pending
        // messages drop (they are in-flight traffic the fault ate);
        // pending timers are quashed silently — a timer is node-local
        // control state, not a message, and counting it as `dropped`
        // would break the send/fate balance.
        if self.actors[idx].is_none() || self.dead[idx] {
            match ev.payload {
                Payload::Message { .. } => {
                    self.stats.dropped += 1;
                    if let Some(m) = &mut self.metrics {
                        m.on_dead_drop(ev.dst.raw());
                    }
                }
                Payload::Timer { .. } => self.stats.timers_quashed += 1,
                Payload::Kill => unreachable!("handled above"),
            }
            return true;
        }
        let mut ctx = self.ctx_for(ev.dst);
        match ev.payload {
            Payload::Message { from, msg, sent } => {
                self.stats.delivered += 1;
                if self.trace.is_some() || self.metrics.is_some() {
                    let port = self.net.port_of(from.raw(), ev.dst.raw());
                    if let Some(m) = &mut self.metrics {
                        m.on_delivered(ev.dst.raw(), port, self.now - sent);
                    }
                    if let Some(sink) = &mut self.trace {
                        sink.record(TraceEvent::Hop {
                            from,
                            to: ev.dst,
                            dim: port.and_then(|p| u8::try_from(p).ok()),
                            word: ev.seq,
                        });
                    }
                }
                self.actors[idx]
                    .as_mut()
                    .expect("present")
                    .on_message(&mut ctx, from, msg);
            }
            Payload::Timer { tag } => {
                self.stats.timers += 1;
                if let Some(m) = &mut self.metrics {
                    m.on_timer(ev.dst.raw());
                }
                self.actors[idx]
                    .as_mut()
                    .expect("present")
                    .on_timer_tag(&mut ctx, tag);
            }
            Payload::Kill => unreachable!("handled above"),
        }
        self.absorb_ctx(ev.dst, ctx);
        !self.halted
    }

    /// Runs until the event queue drains, an actor halts, or
    /// `max_events` have been processed. Returns the number of events
    /// processed.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Virtual time of the earliest queued event, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.peek().map(|Reverse(p)| p.time)
    }

    /// Whether the engine is at a quiescent point: no event remains at
    /// the current virtual time, so every node's state is a consistent
    /// cut (nothing is "mid-tick").
    pub fn is_quiescent(&self) -> bool {
        self.next_event_time().is_none_or(|t| t > self.now)
    }

    /// Like [`EventEngine::run`], but evaluates every [`Invariant`] at
    /// each quiescent point — once before the first event, after the
    /// last event of every virtual tick, and when the run ends. Stops
    /// at the first violation and reports when and why.
    pub fn run_checked(
        &mut self,
        max_events: u64,
        invariants: &mut [&mut dyn Invariant<N, A>],
    ) -> Result<u64, InvariantViolation> {
        let mut n = 0;
        let mut check = |eng: &Self, n: u64| -> Result<(), InvariantViolation> {
            for inv in invariants.iter_mut() {
                if let Err(detail) = inv.check(eng) {
                    return Err(InvariantViolation {
                        invariant: inv.name().to_string(),
                        time: eng.now,
                        events_processed: n,
                        detail,
                    });
                }
            }
            Ok(())
        };
        if self.is_quiescent() {
            check(self, n)?;
        }
        while n < max_events && self.step() {
            n += 1;
            if self.is_quiescent() {
                check(self, n)?;
            }
        }
        Ok(n)
    }

    /// Iterates the actors as `(node, actor)` pairs — the view an
    /// [`Invariant`] inspects at a quiescent point. Nodes killed
    /// mid-run are included with their frozen post-mortem state (an
    /// invariant over them keeps holding trivially, since the state no
    /// longer changes); pre-run faulty nodes are not.
    pub fn actors_iter(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.actors
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|a| (NodeId::new(i as u64), a)))
    }

    /// Injects an external message to `dst` from outside the network
    /// (e.g. the "host" handing a unicast request to the source node),
    /// delivered as an actor timer with `tag` after `delay` ticks.
    pub fn inject(&mut self, dst: NodeId, tag: u64, delay: Time) {
        self.enqueue(
            self.now + delay,
            dst,
            Payload::Timer {
                tag: TimerTag::Actor(tag),
            },
        );
    }

    /// Injects a fault: after `delay` ticks node `dst` fault-stops —
    /// it processes no further events and all its queued and future
    /// traffic is silently dropped, exactly like a node that was faulty
    /// from the start (its last state stays readable post-mortem). This
    /// is the DST adversary's "fault burst" primitive; killing an
    /// already-dead node is a no-op.
    pub fn inject_kill(&mut self, dst: NodeId, delay: Time) {
        self.enqueue(self.now + delay, dst, Payload::Kill);
    }

    /// Extracts all actors as `(node, actor)` pairs.
    pub fn into_actors(self) -> Vec<(NodeId, A)> {
        self.actors
            .into_iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|a| (NodeId::new(i as u64), a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{GhNet, HypercubeNet};
    use crate::trace::Trace;
    use hypersafe_topology::{FaultConfig, FaultSet, GeneralizedHypercube, GhNode, Hypercube};

    /// Flood protocol: on start, node 0 floods a token; every node
    /// remembers the earliest time it saw it and forwards once on all
    /// its ports (topology-agnostic).
    struct Flood {
        neighbors: Vec<NodeId>,
        seen_at: Option<Time>,
        origin: bool,
    }

    impl Flood {
        fn new<N: Network>(net: &N, a: NodeId, origin: NodeId) -> Self {
            Flood {
                neighbors: (0..net.degree(a.raw()))
                    .map(|p| NodeId::new(net.neighbor(a.raw(), p)))
                    .collect(),
                seen_at: None,
                origin: a == origin,
            }
        }

        fn flood<M: Clone + Default>(&self, ctx: &mut Ctx<M>) {
            for &b in &self.neighbors {
                ctx.send(b, M::default(), 1);
            }
        }
    }

    impl Actor for Flood {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            if self.origin {
                self.seen_at = Some(0);
                self.flood(ctx);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<()>, _from: NodeId, _msg: ()) {
            if self.seen_at.is_none() {
                self.seen_at = Some(ctx.now());
                self.flood(ctx);
            }
        }
    }

    #[test]
    fn flood_reaches_everyone_at_hamming_time() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        eng.run(u64::MAX);
        for a in cube.nodes() {
            // With unit latency the first arrival equals BFS distance.
            assert_eq!(
                eng.actor(a).unwrap().seen_at,
                Some(a.weight() as u64),
                "node {a}"
            );
        }
        assert!(eng.stats().delivered > 0);
    }

    #[test]
    fn faulty_node_blocks_flood_component() {
        let cube = Hypercube::new(2);
        // 2-cube path: 00 - 01/10 - 11. Make 01 and 10 faulty → 11 unreachable.
        let cfg =
            FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["01", "10"]));
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        eng.run(u64::MAX);
        assert_eq!(eng.actor(NodeId::new(0b11)).unwrap().seen_at, None);
        assert_eq!(eng.stats().dropped, 2, "two sends into faulty neighbors");
    }

    #[test]
    fn link_fault_drops_messages() {
        let cube = Hypercube::new(2);
        let mut cfg = FaultConfig::fault_free(cube);
        cfg.link_faults_mut()
            .insert(NodeId::new(0b00), NodeId::new(0b01));
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        eng.run(u64::MAX);
        // 01 still hears the flood via the 00→10→11→01 detour.
        assert_eq!(eng.actor(NodeId::new(0b01)).unwrap().seen_at, Some(3));
        assert!(eng.stats().dropped >= 1, "the faulty link ate a send");
    }

    #[test]
    fn flood_arrival_equals_gh_distance() {
        let gh = GeneralizedHypercube::from_product(&[3, 4]);
        let faults = gh.fault_set();
        let net = GhNet::new(&gh, &faults);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        eng.run(u64::MAX);
        for a in 0..net.num_nodes() {
            let d = gh.distance(GhNode(0), GhNode(a));
            assert_eq!(
                eng.actor(NodeId::new(a)).unwrap().seen_at,
                Some(d as u64),
                "node {a}"
            );
        }
    }

    #[test]
    fn gh_faulty_nodes_drop_messages() {
        let gh = GeneralizedHypercube::from_product(&[2, 2]);
        let mut faults = gh.fault_set();
        faults.insert(NodeId::new(1));
        faults.insert(NodeId::new(2));
        let net = GhNet::new(&gh, &faults);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        eng.run(u64::MAX);
        assert_eq!(
            eng.actor(NodeId::new(3)).unwrap().seen_at,
            None,
            "cut off by faults"
        );
        assert_eq!(eng.stats().dropped, 2);
    }

    #[test]
    fn timers_fire_in_order() {
        struct T {
            fired: Vec<u64>,
        }
        impl Actor for T {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(5, 5);
                ctx.set_timer(1, 1);
                ctx.set_timer(3, 3);
            }
            fn on_message(&mut self, _: &mut Ctx<()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<()>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let cube = Hypercube::new(1);
        let mut faults = FaultSet::new(cube);
        faults.insert(NodeId::new(1));
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |_| T { fired: vec![] });
        eng.run(u64::MAX);
        assert_eq!(eng.actor(NodeId::new(0)).unwrap().fired, vec![1, 3, 5]);
        assert_eq!(eng.stats().timers, 3);
        assert_eq!(eng.stats().end_time, 5);
    }

    #[test]
    fn halt_stops_the_run() {
        struct H;
        impl Actor for H {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(1, 0);
                ctx.set_timer(2, 1);
            }
            fn on_message(&mut self, _: &mut Ctx<()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<()>, tag: u64) {
                if tag == 0 {
                    ctx.halt();
                }
            }
        }
        let cube = Hypercube::new(1);
        let mut faults = FaultSet::new(cube);
        faults.insert(NodeId::new(1));
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |_| H);
        eng.run(u64::MAX);
        assert_eq!(eng.stats().timers, 1, "second timer never fires");
    }

    #[test]
    fn inject_delivers_as_timer() {
        struct I {
            tags: Vec<u64>,
        }
        impl Actor for I {
            type Msg = ();
            fn on_message(&mut self, _: &mut Ctx<()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<()>, tag: u64) {
                self.tags.push(tag);
            }
        }
        let cube = Hypercube::new(2);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |_| I { tags: vec![] });
        eng.inject(NodeId::new(2), 42, 0);
        eng.inject(NodeId::new(2), 7, 5);
        eng.run(u64::MAX);
        assert_eq!(
            eng.actor(NodeId::new(2)).unwrap().tags,
            vec![42, 7],
            "time order respected"
        );
        assert_eq!(eng.stats().end_time, 5);
    }

    #[test]
    fn trace_sink_records_hops() {
        let cube = Hypercube::new(2);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        eng.set_trace(Box::new(Trace::enabled()));
        eng.run(u64::MAX);
        let delivered = eng.stats().delivered;
        let sink = eng.take_trace().expect("sink installed");
        let trace = sink.into_trace().expect("Trace sink");
        assert_eq!(trace.events().len() as u64, delivered);
        assert!(trace
            .events()
            .iter()
            .all(|e| matches!(e, TraceEvent::Hop { .. })));
    }

    #[test]
    fn adversarial_permutation_preserves_flood_reachability() {
        use crate::sim::AdversarialScheduler;
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        for seed in 0..8 {
            let mut eng = EventEngine::with_parts(
                &net,
                None,
                Box::new(AdversarialScheduler::permute(seed)),
                |a| Flood::new(&net, a, NodeId::ZERO),
            );
            eng.run(u64::MAX);
            for a in cube.nodes() {
                let seen = eng.actor(a).unwrap().seen_at;
                assert!(seen.is_some(), "seed {seed}: node {a} never flooded");
                // Stretch only delays; BFS distance is a lower bound.
                assert!(seen.unwrap() >= a.weight() as u64);
            }
        }
    }

    #[test]
    fn same_seed_same_adversarial_run() {
        use crate::sim::AdversarialScheduler;
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let run = |seed| {
            let mut eng = EventEngine::with_parts(
                &net,
                None,
                Box::new(AdversarialScheduler::from_seed(seed)),
                |a| Flood::new(&net, a, NodeId::ZERO),
            );
            eng.set_trace(Box::new(Trace::enabled()));
            eng.run(u64::MAX);
            let trace = eng.take_trace().unwrap().into_trace().unwrap().render();
            (trace, eng.stats().clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7).0,
            run(8).0,
            "different seeds should schedule differently"
        );
    }

    #[test]
    fn inject_kill_fault_stops_a_node() {
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        // Kill node 001 before the tick-1 deliveries reach it.
        eng.inject_kill(NodeId::new(0b001), 0);
        eng.run(u64::MAX);
        // The corpse is dead but its last state stays inspectable: it
        // died before any delivery, so it never saw the flood.
        assert!(eng.is_dead(NodeId::new(0b001)));
        assert!(eng.actor(NodeId::new(0b001)).unwrap().seen_at.is_none());
        assert_eq!(eng.stats().killed, 1);
        // Everyone else still hears the flood via other dimensions.
        for a in cube.nodes().filter(|a| a.raw() != 0b001) {
            assert!(eng.actor(a).unwrap().seen_at.is_some(), "node {a}");
        }
        assert!(eng.stats().dropped > 0, "traffic into the corpse dropped");
    }

    #[test]
    fn double_kill_counts_once_and_drops_nothing() {
        // Regression: the liveness check used to run before the Kill
        // branch, so the second kill of an already-dead node was
        // counted as a dropped *message*.
        let cube = Hypercube::new(2);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |_| Idle);
        eng.inject_kill(NodeId::new(0b01), 0);
        eng.inject_kill(NodeId::new(0b01), 1);
        eng.inject_kill(NodeId::new(0b01), 2);
        eng.run(u64::MAX);
        assert!(eng.is_dead(NodeId::new(0b01)));
        assert_eq!(eng.stats().killed, 1, "kill is idempotent");
        assert_eq!(eng.stats().dropped, 0, "no message was dropped");
    }

    #[test]
    fn kill_of_pre_run_faulty_node_is_a_noop() {
        // Regression: a kill racing an initial fault used to inflate
        // the message-drop counter.
        let cube = Hypercube::new(2);
        let cfg = FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["10"]));
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |_| Idle);
        eng.inject_kill(NodeId::new(0b10), 0);
        eng.run(u64::MAX);
        assert!(!eng.is_dead(NodeId::new(0b10)), "never ran, never killed");
        assert_eq!(eng.stats().killed, 0);
        assert_eq!(eng.stats().dropped, 0);
    }

    /// An actor that does nothing (kill/timer accounting fixtures).
    struct Idle;
    impl Actor for Idle {
        type Msg = ();
        fn on_message(&mut self, _: &mut Ctx<()>, _: NodeId, _: ()) {}
    }

    #[test]
    fn timer_to_dead_node_is_quashed_not_dropped() {
        struct Arm;
        impl Actor for Arm {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(10, 0);
            }
            fn on_message(&mut self, _: &mut Ctx<()>, _: NodeId, _: ()) {}
        }
        let cube = Hypercube::new(1);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |_| Arm);
        // Both nodes arm a t=10 timer; node 1 dies at t=5.
        eng.inject_kill(NodeId::new(1), 5);
        eng.run(u64::MAX);
        assert_eq!(eng.stats().timers, 1, "only the survivor's timer fires");
        assert_eq!(eng.stats().timers_quashed, 1);
        assert_eq!(eng.stats().dropped, 0, "a quashed timer is not a message");
    }

    #[test]
    fn sends_counter_balances_fates() {
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let channel = crate::channel::ChannelModel::new(11)
            .with_loss(0.2)
            .with_jitter(3)
            .with_duplication(0.1);
        let mut eng =
            EventEngine::with_channel(&net, channel, |a| Flood::new(&net, a, NodeId::ZERO));
        eng.inject_kill(NodeId::new(0b101), 1);
        eng.run(u64::MAX);
        let s = eng.stats();
        assert!(s.sends > 0);
        assert_eq!(
            s.delivered + s.dropped + s.lost,
            s.sends + s.duplicated,
            "every send attempt meets exactly one fate: {s:?}"
        );
    }

    #[test]
    fn metrics_do_not_perturb_the_run_and_agree_with_stats() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let channel = crate::channel::ChannelModel::new(9)
            .with_loss(0.1)
            .with_jitter(2)
            .with_duplication(0.05);
        let run = |observe: bool| {
            let build = if observe {
                EventEngine::with_parts_observed
            } else {
                EventEngine::with_parts
            };
            let mut eng = build(&net, Some(channel.clone()), Box::new(FifoScheduler), |a| {
                Flood::new(&net, a, NodeId::ZERO)
            });
            eng.set_trace(Box::new(Trace::enabled()));
            eng.inject_kill(NodeId::new(0b0110), 2);
            eng.run(u64::MAX);
            let trace = eng.take_trace().unwrap().into_trace().unwrap().render();
            let metrics = eng.take_metrics();
            (trace, eng.stats().clone(), metrics)
        };
        let (trace_off, stats_off, none) = run(false);
        let (trace_on, stats_on, metrics) = run(true);
        assert!(none.is_none());
        assert_eq!(trace_off, trace_on, "observability must not perturb");
        assert_eq!(stats_off, stats_on);
        // The registry's totals are a refinement of the flat stats.
        let snap = metrics.expect("installed").snapshot();
        assert_eq!(snap.totals.sends, stats_on.sends);
        assert_eq!(snap.totals.delivered, stats_on.delivered);
        assert_eq!(snap.totals.dropped, stats_on.dropped);
        assert_eq!(snap.totals.lost, stats_on.lost);
        assert_eq!(snap.totals.duplicated, stats_on.duplicated);
        assert_eq!(snap.totals.timers, stats_on.timers);
        assert_eq!(snap.totals.killed, stats_on.killed);
        assert_eq!(snap.latency.count, stats_on.delivered);
        assert!(snap.channel_decisions > 0);
        // Per-dimension sends on a fault-free flood are symmetric:
        // every node sends once on every port.
        let per_dim: u64 = metrics_dim_sent(&snap);
        assert_eq!(per_dim, stats_on.sends);
    }

    fn metrics_dim_sent(snap: &crate::obs::MetricsSnapshot) -> u64 {
        snap.per_dim.iter().map(|(_, d)| d.sent).sum()
    }

    #[test]
    fn run_checked_reports_violations_at_quiescence() {
        use crate::sim::Invariant;
        struct NobodyAtDistanceThree;
        impl Invariant<HypercubeNet<'_>, Flood> for NobodyAtDistanceThree {
            fn name(&self) -> &'static str {
                "nobody-at-distance-3"
            }
            fn check(
                &mut self,
                eng: &EventEngine<'_, HypercubeNet<'_>, Flood>,
            ) -> Result<(), String> {
                for (a, f) in eng.actors_iter() {
                    if a.weight() == 3 && f.seen_at.is_some() {
                        return Err(format!("{a} saw the flood"));
                    }
                }
                Ok(())
            }
        }
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        let mut inv = NobodyAtDistanceThree;
        let err = eng
            .run_checked(u64::MAX, &mut [&mut inv])
            .expect_err("the flood must reach 111 and trip the invariant");
        assert_eq!(err.invariant, "nobody-at-distance-3");
        assert_eq!(err.time, 3, "violation surfaces at the tick it happens");
    }

    #[test]
    fn run_checked_passes_clean_invariants() {
        use crate::sim::Invariant;
        struct SeenAtMostOnce;
        impl Invariant<HypercubeNet<'_>, Flood> for SeenAtMostOnce {
            fn name(&self) -> &'static str {
                "seen-at-most-once"
            }
            fn check(
                &mut self,
                eng: &EventEngine<'_, HypercubeNet<'_>, Flood>,
            ) -> Result<(), String> {
                // seen_at is monotone: once set it never changes.
                for (a, f) in eng.actors_iter() {
                    if let Some(t) = f.seen_at {
                        if t > eng.now() {
                            return Err(format!("{a} saw the future"));
                        }
                    }
                }
                Ok(())
            }
        }
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| Flood::new(&net, a, NodeId::ZERO));
        let mut inv = SeenAtMostOnce;
        let n = eng.run_checked(u64::MAX, &mut [&mut inv]).unwrap();
        assert!(n > 0);
    }

    #[test]
    #[should_panic]
    fn sending_to_non_neighbor_panics() {
        struct Bad;
        impl Actor for Bad {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                if ctx.self_id() == NodeId::ZERO {
                    ctx.send(NodeId::new(0b11), (), 1);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<()>, _: NodeId, _: ()) {}
        }
        let cube = Hypercube::new(2);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let _ = EventEngine::new(&net, |_| Bad);
    }
}
