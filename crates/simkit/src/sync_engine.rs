//! Lock-step synchronous round engine.
//!
//! The paper's `GLOBAL_STATUS` algorithm (Fig. in §2.2) is a
//! synchronous iteration: in each round every nonfaulty node sends its
//! current status to all neighbors, then recomputes its own status from
//! the received values (`parbegin NODE_STATUS(a) ∀a parend`). This
//! engine reproduces that execution model exactly for any protocol
//! expressible as "broadcast my state, absorb neighbor states":
//! deliveries are strictly round-synchronous, and a node never observes
//! a neighbor's *current*-round update, only last round's value.

use crate::stats::SyncStats;
use hypersafe_topology::{FaultConfig, NodeId};

/// A per-node state machine driven by the synchronous engine.
pub trait SyncNode {
    /// The value exchanged with neighbors each round.
    type Msg: Clone;

    /// The value this node shares with *all* its neighbors this round.
    fn broadcast(&self) -> Self::Msg;

    /// Absorbs the neighbor values received this round as
    /// `(dimension, value)` pairs (only usable links deliver). Returns
    /// `true` iff the node's state changed.
    fn receive(&mut self, inbox: &[(u8, Self::Msg)]) -> bool;
}

/// Synchronous round executor over the nonfaulty nodes of one faulty
/// hypercube instance.
///
/// Faulty nodes do not execute and do not send; messages across faulty
/// links are not delivered. Protocols that must still *account for*
/// faulty neighbors (like GS, where a faulty neighbor reads as safety
/// level 0) encode that in the node state at construction time.
pub struct SyncEngine<'a, N: SyncNode> {
    cfg: &'a FaultConfig,
    nodes: Vec<Option<N>>,
    stats: SyncStats,
}

impl<'a, N: SyncNode> SyncEngine<'a, N> {
    /// Builds the engine, instantiating a state machine for every
    /// nonfaulty node via `init`.
    pub fn new(cfg: &'a FaultConfig, mut init: impl FnMut(NodeId) -> N) -> Self {
        let nodes = cfg
            .cube()
            .nodes()
            .map(|a| (!cfg.node_faulty(a)).then(|| init(a)))
            .collect();
        SyncEngine {
            cfg,
            nodes,
            stats: SyncStats::default(),
        }
    }

    /// The fault configuration this engine runs over.
    pub fn config(&self) -> &FaultConfig {
        self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// Read access to a node's state machine (`None` for faulty nodes).
    pub fn node(&self, a: NodeId) -> Option<&N> {
        self.nodes[a.raw() as usize].as_ref()
    }

    /// Executes one lock-step round: every nonfaulty node broadcasts,
    /// then every nonfaulty node absorbs. Returns the number of nodes
    /// whose state changed.
    ///
    /// The absorb half is data-parallel by construction — every node
    /// reads only the immutable pre-round snapshot and writes only its
    /// own state — so it fans out across rayon workers in contiguous
    /// node-id chunks. Results are bitwise-identical to sequential
    /// execution: per-chunk counters are committed in chunk order, and
    /// no node observes another's current-round update either way.
    pub fn run_round(&mut self) -> usize
    where
        N: Send,
        N::Msg: Sync,
    {
        use rayon::prelude::*;
        let cube = self.cfg.cube();
        let cfg = self.cfg;
        // Snapshot phase: collect every node's outgoing value first so
        // that all receives observe pre-round state (parbegin/parend).
        let outgoing: Vec<Option<N::Msg>> = self
            .nodes
            .iter()
            .map(|n| n.as_ref().map(SyncNode::broadcast))
            .collect();

        let chunk_len = self.nodes.len().div_ceil(rayon::num_threads()).max(1);
        let per_chunk: Vec<(usize, u64)> = self
            .nodes
            .par_chunks_mut(chunk_len)
            .enumerate()
            .map(|(ci, nodes)| {
                let base = ci * chunk_len;
                let mut changed = 0usize;
                let mut messages = 0u64;
                let mut inbox: Vec<(u8, N::Msg)> = Vec::with_capacity(cube.dim() as usize);
                for (off, slot) in nodes.iter_mut().enumerate() {
                    let Some(node) = slot.as_mut() else {
                        continue;
                    };
                    let a = NodeId::new((base + off) as u64);
                    inbox.clear();
                    for (dim, b) in cube.neighbors_with_dims(a) {
                        if cfg.link_faults().contains(a, b) {
                            continue;
                        }
                        if let Some(msg) = &outgoing[b.raw() as usize] {
                            inbox.push((dim, msg.clone()));
                            messages += 1;
                        }
                    }
                    if node.receive(&inbox) {
                        changed += 1;
                    }
                }
                (changed, messages)
            })
            .collect();

        let mut changed = 0usize;
        for (c, m) in per_chunk {
            changed += c;
            self.stats.messages += m;
        }
        self.stats.rounds_run += 1;
        if changed > 0 {
            self.stats.active_rounds += 1;
            self.stats.state_changes += changed as u64;
        }
        changed
    }

    /// Runs rounds until a fully quiescent round occurs or `max_rounds`
    /// have executed. Returns the number of *active* rounds (rounds in
    /// which some node changed) — the paper's Fig. 2 metric.
    pub fn run_until_stable(&mut self, max_rounds: u32) -> u32
    where
        N: Send,
        N::Msg: Sync,
    {
        for _ in 0..max_rounds {
            if self.run_round() == 0 {
                break;
            }
        }
        self.stats.active_rounds
    }

    /// Runs exactly `rounds` rounds regardless of quiescence — the
    /// paper's fixed-`D` formulation of `GLOBAL_STATUS`.
    pub fn run_fixed(&mut self, rounds: u32)
    where
        N: Send,
        N::Msg: Sync,
    {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Extracts every node's final state as `(node, state)` pairs.
    pub fn into_states(self) -> Vec<(NodeId, N)> {
        let cube = self.cfg.cube();
        self.nodes
            .into_iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let _ = cube;
                n.map(|n| (NodeId::new(i as u64), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    /// Toy protocol: every node computes min(own, neighbors) each round
    /// — converges to the global minimum in diameter rounds.
    struct MinNode {
        value: u64,
    }

    impl SyncNode for MinNode {
        type Msg = u64;

        fn broadcast(&self) -> u64 {
            self.value
        }

        fn receive(&mut self, inbox: &[(u8, u64)]) -> bool {
            let m = inbox.iter().map(|&(_, v)| v).min().unwrap_or(self.value);
            if m < self.value {
                self.value = m;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn min_converges_in_diameter_rounds() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::fault_free(cube);
        let mut eng = SyncEngine::new(&cfg, |a| MinNode { value: a.raw() });
        let rounds = eng.run_until_stable(32);
        assert!(rounds <= 5, "diameter bound, got {rounds}");
        for a in cube.nodes() {
            assert_eq!(eng.node(a).unwrap().value, 0);
        }
        // Message accounting: every active+quiescent round delivers
        // 2 · num_links messages.
        let per_round = 2 * cube.num_links();
        assert_eq!(eng.stats().messages % per_round, 0);
    }

    #[test]
    fn faulty_nodes_do_not_participate() {
        let cube = Hypercube::new(3);
        // Make node 0 (the global min) faulty: min among healthy is 1.
        let cfg = FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["000"]));
        let mut eng = SyncEngine::new(&cfg, |a| MinNode { value: a.raw() });
        eng.run_until_stable(16);
        assert!(eng.node(NodeId::new(0)).is_none());
        for a in cfg.healthy_nodes() {
            assert_eq!(eng.node(a).unwrap().value, 1, "node {a}");
        }
    }

    #[test]
    fn link_fault_blocks_exchange() {
        let cube = Hypercube::new(1);
        let mut cfg = FaultConfig::fault_free(cube);
        cfg.link_faults_mut().insert(NodeId::new(0), NodeId::new(1));
        let mut eng = SyncEngine::new(&cfg, |a| MinNode { value: a.raw() });
        eng.run_until_stable(8);
        // With the only link down, node 1 never learns of value 0.
        assert_eq!(eng.node(NodeId::new(1)).unwrap().value, 1);
        assert_eq!(eng.stats().messages, 0);
    }

    #[test]
    fn fixed_round_execution_counts_rounds() {
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::fault_free(cube);
        let mut eng = SyncEngine::new(&cfg, |a| MinNode { value: a.raw() });
        eng.run_fixed(3);
        assert_eq!(eng.stats().rounds_run, 3);
    }

    #[test]
    fn quiescent_start_reports_zero_active_rounds() {
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::fault_free(cube);
        let mut eng = SyncEngine::new(&cfg, |_| MinNode { value: 7 });
        assert_eq!(eng.run_until_stable(10), 0);
        assert_eq!(
            eng.stats().rounds_run,
            1,
            "one probe round to detect quiescence"
        );
    }

    #[test]
    fn into_states_returns_healthy_nodes() {
        let cube = Hypercube::new(3);
        let cfg = FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["101"]));
        let eng = SyncEngine::new(&cfg, |a| MinNode { value: a.raw() });
        let states = eng.into_states();
        assert_eq!(states.len(), 7);
        assert!(states.iter().all(|(a, _)| *a != NodeId::new(0b101)));
    }
}
