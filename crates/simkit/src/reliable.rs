//! Reliable delivery over lossy links: per-neighbor sequence numbers,
//! cumulative ACKs, retransmission timers with exponential backoff, and
//! duplicate suppression.
//!
//! The protocols in `hypersafe-core` are specified against the paper's
//! reliable-link model. To run them over a noisy
//! [`crate::channel::ChannelModel`] without touching their logic, this
//! module provides a shim layer in the style of a minimal transport:
//!
//! * [`ReliableActor`] — what a protocol implements: the same three
//!   callbacks as [`Actor`], but sends go through
//!   [`RelCtx::send_reliable`].
//! * [`Reliable<A>`] — the wrapper that is the actual [`Actor`]: it
//!   owns a [`ReliableEndpoint`] doing sequencing/ACK/retransmit and
//!   surfaces to the inner actor only fresh, in-order messages.
//!
//! Per link (one per neighbor port; on a binary cube, port ≡
//! dimension) the endpoint keeps an outgoing stream with sequence
//! numbers starting at 1 and an incoming cursor `cum` = highest
//! sequence delivered in order. Every arriving `Data` is answered with
//! a cumulative `Ack { cum }`; data at or below `cum` (channel
//! duplicates or retransmissions that crossed an ACK) are suppressed,
//! data above `cum + 1` is buffered until the gap fills, so the inner
//! actor sees each message exactly once, in send order.
//! Unacknowledged messages are retransmitted individually on a
//! per-sequence timer whose period doubles each attempt up to
//! [`ReliableConfig::rto_cap`], plus a seeded jitter of up to
//! [`ReliableConfig::jitter_max`] ticks (a pure function of the seed,
//! port, sequence, and attempt — so runs stay deterministic while
//! retry storms desynchronize instead of thundering in lockstep). An
//! ACK that acknowledges anything new resets the backoff of the
//! sequences still outstanding on that link back to the base
//! [`ReliableConfig::rto`]: fresh proof the peer is alive makes the
//! grown ladder stale evidence (duplicate ACKs keep it). After
//! [`ReliableConfig::max_retries`] attempts the link is declared dead
//! (the peer is fault-stop silent — indistinguishable from total
//! loss) and recorded in [`ReliableEndpoint::gave_up_dims`].
//!
//! Retransmission timers live in their own [`TimerTag::Arq`] tag
//! space, so inner actors may use any `u64` tag without colliding with
//! the transport. Retransmission and ACK counts are folded into the
//! engine's [`crate::stats::EventStats`] via
//! [`Ctx::note_retransmit_on`] / [`Ctx::note_acks`] (the former also
//! attributes each retransmission to its outgoing port when a
//! [`crate::obs::Metrics`] registry is installed), so experiment code
//! can read total overhead from one place.

use crate::channel::{mix, uniform_inclusive};
use crate::event::{Actor, Ctx, Time, TimerTag};
use crate::mc::{McHasher, StateHash};
use hypersafe_topology::NodeId;
use std::collections::BTreeMap;

/// Tuning knobs for the retransmission machinery.
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Initial retransmission timeout, in ticks. Should comfortably
    /// exceed one round trip (2 × latency + jitter).
    pub rto: Time,
    /// Upper bound the exponential backoff saturates at.
    pub rto_cap: Time,
    /// Retransmission attempts per message before the link is declared
    /// dead. With loss rate p the residual failure probability is
    /// p^(max_retries + 1).
    pub max_retries: u32,
    /// Extra delay added to every retransmission, uniform in
    /// `0..=jitter_max` ticks. Zero disables jitter and makes the
    /// backoff chain exact.
    pub jitter_max: Time,
    /// Seed of the jitter stream. The jitter of one retransmission is
    /// a pure function of `(jitter_seed, port, seq, attempt)`, so the
    /// same configuration replays tick-identically.
    pub jitter_seed: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            rto: 8,
            rto_cap: 256,
            max_retries: 12,
            jitter_max: 2,
            jitter_seed: 0xB0FF_5EED,
        }
    }
}

/// Wire format of the reliable layer.
#[derive(Clone, Debug)]
pub enum ReliableMsg<M> {
    /// A sequenced payload.
    Data {
        /// Per-link sequence number, starting at 1.
        seq: u64,
        /// The inner actor's message.
        payload: M,
    },
    /// Cumulative acknowledgement: every sequence `≤ cum` arrived.
    Ack {
        /// Highest in-order sequence received on this link.
        cum: u64,
    },
}

#[derive(Clone)]
struct OutLink<M> {
    next_seq: u64,
    /// seq → (payload, attempts so far, current rto).
    unacked: BTreeMap<u64, (M, u32, Time)>,
    dead: bool,
}

impl<M> Default for OutLink<M> {
    fn default() -> Self {
        OutLink {
            next_seq: 1,
            unacked: BTreeMap::new(),
            dead: false,
        }
    }
}

#[derive(Clone)]
struct InLink<M> {
    cum: u64,
    buffer: BTreeMap<u64, M>,
}

impl<M> Default for InLink<M> {
    fn default() -> Self {
        InLink {
            cum: 0,
            buffer: BTreeMap::new(),
        }
    }
}

/// Per-node transport state: one outgoing stream and one incoming
/// cursor per neighbor port.
#[derive(Clone)]
pub struct ReliableEndpoint<M> {
    /// The node at port `p`'s far end, fixed at construction.
    neighbors: Vec<NodeId>,
    latency: Time,
    cfg: ReliableConfig,
    out: Vec<OutLink<M>>,
    inn: Vec<InLink<M>>,
    retransmits: u64,
    acks_sent: u64,
    duplicates_suppressed: u64,
    gave_up: Vec<u8>,
}

impl<M: Clone> ReliableEndpoint<M> {
    /// Fresh endpoint for node `me` of an `n`-cube (port `p` reaches
    /// the dimension-`p` neighbor); `latency` is the per-hop send
    /// latency used for both data and ACKs.
    pub fn new(me: NodeId, n: u8, latency: Time, cfg: ReliableConfig) -> Self {
        Self::with_neighbors((0..n).map(|d| me.neighbor(d)).collect(), latency, cfg)
    }

    /// Fresh endpoint with an explicit port → neighbor table, for
    /// topologies where ports are not cube dimensions.
    pub fn with_neighbors(neighbors: Vec<NodeId>, latency: Time, cfg: ReliableConfig) -> Self {
        assert!(cfg.rto > 0, "rto must be positive");
        let ports = neighbors.len();
        ReliableEndpoint {
            neighbors,
            latency: latency.max(1),
            cfg,
            out: (0..ports).map(|_| OutLink::default()).collect(),
            inn: (0..ports).map(|_| InLink::default()).collect(),
            retransmits: 0,
            acks_sent: 0,
            duplicates_suppressed: 0,
            gave_up: Vec::new(),
        }
    }

    /// Total retransmissions performed by this endpoint.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Total acknowledgements sent.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Arrivals suppressed as duplicates (never shown to the actor).
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Messages sent but not yet acknowledged, across all links.
    pub fn in_flight(&self) -> usize {
        self.out.iter().map(|o| o.unacked.len()).sum()
    }

    /// Ports on which delivery was abandoned after `max_retries`
    /// attempts (dead or unreachable peer). On a binary cube a port is
    /// exactly a dimension, hence the name.
    pub fn gave_up_dims(&self) -> &[u8] {
        &self.gave_up
    }

    fn port_of(&self, peer: NodeId) -> usize {
        self.neighbors
            .iter()
            .position(|&b| b == peer)
            .expect("peer must be a neighbor")
    }

    fn send(&mut self, raw: &mut Ctx<ReliableMsg<M>>, port: usize, payload: M) {
        let link = &mut self.out[port];
        if link.dead {
            return; // peer already declared dead; don't queue behind it
        }
        let seq = link.next_seq;
        link.next_seq += 1;
        link.unacked.insert(seq, (payload.clone(), 0, self.cfg.rto));
        raw.send(
            self.neighbors[port],
            ReliableMsg::Data { seq, payload },
            self.latency,
        );
        raw.set_arq_timer(self.cfg.rto, port as u32, seq);
    }

    fn handle_message(
        &mut self,
        raw: &mut Ctx<ReliableMsg<M>>,
        from: NodeId,
        msg: ReliableMsg<M>,
    ) -> Vec<(NodeId, M)> {
        let port = self.port_of(from);
        match msg {
            ReliableMsg::Ack { cum } => {
                self.on_ack(port, cum);
                Vec::new()
            }
            ReliableMsg::Data { seq, payload } => {
                let link = &mut self.inn[port];
                let mut delivered = Vec::new();
                if seq <= link.cum || link.buffer.contains_key(&seq) {
                    self.duplicates_suppressed += 1;
                } else {
                    link.buffer.insert(seq, payload);
                    while let Some(m) = link.buffer.remove(&(link.cum + 1)) {
                        link.cum += 1;
                        delivered.push((from, m));
                    }
                }
                // Always (re-)acknowledge: a lost ACK is recovered by
                // the retransmission this answer belongs to.
                let cum = link.cum;
                raw.send(from, ReliableMsg::Ack { cum }, self.latency);
                raw.note_acks(1);
                self.acks_sent += 1;
                delivered
            }
        }
    }

    /// Processes a cumulative acknowledgement on `port`: drops every
    /// sequence at or below `cum`, and — if that acknowledged anything
    /// new — resets the backoff of the sequences still outstanding to
    /// the base timeout. A duplicate ACK acknowledges nothing and
    /// keeps the grown ladder (it is not evidence of forward
    /// progress). Attempt counts are deliberately *not* reset, so the
    /// per-message give-up bound survives a half-alive peer.
    fn on_ack(&mut self, port: usize, cum: u64) {
        let link = &mut self.out[port];
        let before = link.unacked.len();
        link.unacked.retain(|&seq, _| seq > cum);
        if link.unacked.len() < before {
            for entry in link.unacked.values_mut() {
                entry.2 = self.cfg.rto;
            }
        }
    }

    fn handle_timer(&mut self, raw: &mut Ctx<ReliableMsg<M>>, port: u32, seq: u64) {
        let link = &mut self.out[port as usize];
        let Some((payload, attempts, rto)) = link.unacked.get_mut(&seq) else {
            return; // acknowledged in the meantime — stale timer
        };
        if *attempts >= self.cfg.max_retries {
            // The peer never answered across the whole backoff ladder:
            // treat the link as dead and stop spending messages on it.
            link.dead = true;
            link.unacked.clear();
            self.gave_up.push(port as u8);
            return;
        }
        *attempts += 1;
        *rto = (*rto * 2).min(self.cfg.rto_cap);
        let jitter = uniform_inclusive(
            mix(self
                .cfg
                .jitter_seed
                .wrapping_add((port as u64) << 48)
                .wrapping_add(seq.rotate_left(16))
                .wrapping_add(*attempts as u64)),
            self.cfg.jitter_max,
        );
        let delay = *rto + jitter;
        let msg = ReliableMsg::Data {
            seq,
            payload: payload.clone(),
        };
        raw.send(self.neighbors[port as usize], msg, self.latency);
        raw.set_arq_timer(delay, port, seq);
        raw.note_retransmit_on(port as usize);
        self.retransmits += 1;
    }
}

/// Context handed to a [`ReliableActor`]: like [`Ctx`], but sends are
/// sequenced/acknowledged.
pub struct RelCtx<'a, M: Clone> {
    raw: &'a mut Ctx<ReliableMsg<M>>,
    ep: &'a mut ReliableEndpoint<M>,
}

impl<M: Clone> RelCtx<'_, M> {
    /// The node executing the current callback.
    pub fn self_id(&self) -> NodeId {
        self.raw.self_id()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.raw.now()
    }

    /// Sends `msg` to neighbor `dst` with exactly-once, in-order
    /// delivery (as long as the peer is alive and the loss rate is
    /// below 1).
    pub fn send_reliable(&mut self, dst: NodeId, msg: M) {
        let port = self.ep.port_of(dst);
        self.ep.send(self.raw, port, msg);
    }

    /// Arms a timer for the inner actor. Any tag is fine:
    /// retransmission timers live in their own [`TimerTag::Arq`]
    /// space, so collisions are impossible by construction.
    pub fn set_timer(&mut self, delay: Time, tag: u64) {
        self.raw.set_timer(delay, tag);
    }

    /// Requests the whole simulation to stop after this callback.
    pub fn halt(&mut self) {
        self.raw.halt();
    }

    /// Read access to the transport state (retransmit counters,
    /// dead links, in-flight count).
    pub fn endpoint(&self) -> &ReliableEndpoint<M> {
        self.ep
    }
}

/// A per-node event handler whose sends are reliable. Mirror of
/// [`Actor`] over [`RelCtx`].
pub trait ReliableActor: Sized {
    /// The message type exchanged between nodes.
    type Msg: Clone;

    /// Called once per node before any event is processed.
    fn on_start(&mut self, _ctx: &mut RelCtx<Self::Msg>) {}

    /// Called when a fresh in-order message from neighbor `from` is
    /// delivered (duplicates never reach this).
    fn on_message(&mut self, ctx: &mut RelCtx<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer armed via [`RelCtx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut RelCtx<Self::Msg>, _tag: u64) {}
}

/// The [`Actor`] adapter running a [`ReliableActor`] over the reliable
/// layer. Construct with [`Reliable::new`] and hand to
/// [`crate::event::EventEngine`] as usual.
#[derive(Clone)]
pub struct Reliable<A: ReliableActor> {
    /// The wrapped protocol actor.
    pub inner: A,
    /// Transport state for this node.
    pub endpoint: ReliableEndpoint<A::Msg>,
}

impl<A: ReliableActor> Reliable<A> {
    /// Wraps `inner` for node `me` of an `n`-cube.
    pub fn new(inner: A, me: NodeId, n: u8, latency: Time, cfg: ReliableConfig) -> Self {
        Reliable {
            inner,
            endpoint: ReliableEndpoint::new(me, n, latency, cfg),
        }
    }

    /// Wraps `inner` with an explicit port → neighbor table (for
    /// non-cube topologies driven through the generic engine).
    pub fn with_neighbors(
        inner: A,
        neighbors: Vec<NodeId>,
        latency: Time,
        cfg: ReliableConfig,
    ) -> Self {
        Reliable {
            inner,
            endpoint: ReliableEndpoint::with_neighbors(neighbors, latency, cfg),
        }
    }
}

impl<A: ReliableActor> Actor for Reliable<A> {
    type Msg = ReliableMsg<A::Msg>;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>) {
        let Reliable { inner, endpoint } = self;
        inner.on_start(&mut RelCtx {
            raw: ctx,
            ep: endpoint,
        });
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: NodeId, msg: Self::Msg) {
        let delivered = self.endpoint.handle_message(ctx, from, msg);
        for (src, m) in delivered {
            let Reliable { inner, endpoint } = self;
            inner.on_message(
                &mut RelCtx {
                    raw: ctx,
                    ep: endpoint,
                },
                src,
                m,
            );
        }
    }

    fn on_timer_tag(&mut self, ctx: &mut Ctx<Self::Msg>, tag: TimerTag) {
        match tag {
            TimerTag::Arq { port, seq } => self.endpoint.handle_timer(ctx, port, seq),
            TimerTag::Actor(t) => {
                let Reliable { inner, endpoint } = self;
                inner.on_timer(
                    &mut RelCtx {
                        raw: ctx,
                        ep: endpoint,
                    },
                    t,
                );
            }
        }
    }
}

impl<M: StateHash> StateHash for ReliableMsg<M> {
    fn state_hash(&self, h: &mut McHasher) {
        match self {
            ReliableMsg::Data { seq, payload } => {
                h.write_bytes(&[0]);
                h.write_u64(*seq);
                payload.state_hash(h);
            }
            ReliableMsg::Ack { cum } => {
                h.write_bytes(&[1]);
                h.write_u64(*cum);
            }
        }
    }
}

/// Canonical transport state for model checking: sequence cursors,
/// unacked payloads with their attempt counts, reorder buffers, dead
/// links and give-ups. Excludes the timing ladder (per-entry RTO) and
/// the observational counters — two endpoints that differ only in
/// backoff or tallies are protocol-equivalent.
impl<M: StateHash> StateHash for ReliableEndpoint<M> {
    fn state_hash(&self, h: &mut McHasher) {
        h.write_u64(self.out.len() as u64);
        for link in &self.out {
            h.write_u64(link.next_seq);
            h.write_bytes(&[link.dead as u8]);
            h.write_u64(link.unacked.len() as u64);
            for (seq, (payload, attempts, _rto)) in &link.unacked {
                h.write_u64(*seq);
                payload.state_hash(h);
                h.write_u64(*attempts as u64);
            }
        }
        for link in &self.inn {
            h.write_u64(link.cum);
            h.write_u64(link.buffer.len() as u64);
            for (seq, payload) in &link.buffer {
                h.write_u64(*seq);
                payload.state_hash(h);
            }
        }
        // Give-up order is schedule noise; the *set* is the state.
        let mut gave: Vec<u8> = self.gave_up.clone();
        gave.sort_unstable();
        gave.state_hash(h);
    }
}

impl<A> StateHash for Reliable<A>
where
    A: ReliableActor + StateHash,
    A::Msg: StateHash,
{
    fn state_hash(&self, h: &mut McHasher) {
        self.inner.state_hash(h);
        self.endpoint.state_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use crate::event::EventEngine;
    use crate::network::HypercubeNet;
    use hypersafe_topology::{FaultConfig, FaultSet, Hypercube};

    /// Node 0 streams `count` numbered messages to node 1; node 1 logs
    /// what the reliable layer surfaces.
    struct Stream {
        count: u64,
        log: Vec<u64>,
    }

    impl ReliableActor for Stream {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut RelCtx<u64>) {
            if ctx.self_id() == NodeId::ZERO {
                for k in 0..self.count {
                    ctx.send_reliable(ctx.self_id().neighbor(0), k);
                }
            }
        }

        fn on_message(&mut self, _ctx: &mut RelCtx<u64>, _from: NodeId, msg: u64) {
            self.log.push(msg);
        }
    }

    fn stream_run(
        channel: Option<ChannelModel>,
        count: u64,
    ) -> (Vec<u64>, crate::stats::EventStats) {
        let cube = Hypercube::new(1);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let init = |a: NodeId| {
            Reliable::new(
                Stream { count, log: vec![] },
                a,
                1,
                1,
                ReliableConfig::default(),
            )
        };
        let mut eng = match channel {
            Some(ch) => EventEngine::with_channel(&net, ch, init),
            None => EventEngine::new(&net, init),
        };
        eng.run(1_000_000);
        let stats = eng.stats().clone();
        (eng.actor(NodeId::new(1)).unwrap().inner.log.clone(), stats)
    }

    #[test]
    fn clean_channel_no_retransmits() {
        let (log, stats) = stream_run(None, 10);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
        assert_eq!(
            stats.retransmitted, 0,
            "ACKs beat every timer on a clean link"
        );
        assert_eq!(stats.acked, 10);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn lossy_jittery_duplicating_channel_delivers_exactly_once_in_order() {
        let ch = ChannelModel::new(0xBEEF)
            .with_loss(0.3)
            .with_jitter(4)
            .with_duplication(0.15);
        let (log, stats) = stream_run(Some(ch), 25);
        assert_eq!(log, (0..25).collect::<Vec<_>>(), "exactly once, in order");
        assert!(stats.lost > 0, "the channel did lose messages");
        assert!(stats.retransmitted > 0, "losses forced retransmissions");
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let mk = || ChannelModel::new(7).with_loss(0.2).with_jitter(3);
        let a = stream_run(Some(mk()), 15);
        let b = stream_run(Some(mk()), 15);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "identical stats, tick for tick");
    }

    #[test]
    fn dead_peer_makes_sender_give_up_bounded() {
        let cube = Hypercube::new(2);
        let mut faults = FaultSet::new(cube);
        faults.insert(NodeId::new(1));
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let rcfg = ReliableConfig {
            rto: 2,
            rto_cap: 16,
            max_retries: 5,
            jitter_max: 0,
            jitter_seed: 0,
        };
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| {
            Reliable::new(
                Stream {
                    count: if a == NodeId::ZERO { 1 } else { 0 },
                    log: vec![],
                },
                a,
                2,
                1,
                rcfg,
            )
        });
        let events = eng.run(100_000);
        assert!(events < 100_000, "run drains: give-up bounds the retries");
        let ep = &eng.actor(NodeId::ZERO).unwrap().endpoint;
        assert_eq!(ep.gave_up_dims(), &[0], "dimension 0 declared dead");
        assert_eq!(ep.retransmits(), 5, "exactly max_retries attempts");
        assert_eq!(ep.in_flight(), 0, "abandoned messages are cleared");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        // With rto 2 and cap 8, retransmissions of an unreachable peer
        // happen at t = 2, then +4, +8, +8... — verify via end_time.
        let cube = Hypercube::new(1);
        let mut faults = FaultSet::new(cube);
        faults.insert(NodeId::new(1));
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let rcfg = ReliableConfig {
            rto: 2,
            rto_cap: 8,
            max_retries: 4,
            jitter_max: 0,
            jitter_seed: 0,
        };
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| {
            Reliable::new(
                Stream {
                    count: 1,
                    log: vec![],
                },
                a,
                1,
                1,
                rcfg,
            )
        });
        eng.run(u64::MAX);
        // Timer chain: 2, 2+4=6, 6+8=14, 14+8=22, give-up check at 30.
        assert_eq!(eng.stats().end_time, 30);
    }

    /// One retransmission chain against a silent peer, with jitter:
    /// end time lands inside the exact-chain-plus-jitter envelope,
    /// replays tick-identically under the same seed, and moves when
    /// the seed moves.
    #[test]
    fn retransmit_jitter_is_seeded_bounded_and_deterministic() {
        let run = |jitter_seed: u64| {
            let cube = Hypercube::new(1);
            let mut faults = FaultSet::new(cube);
            faults.insert(NodeId::new(1));
            let cfg = FaultConfig::with_node_faults(cube, faults);
            let rcfg = ReliableConfig {
                rto: 2,
                rto_cap: 8,
                max_retries: 4,
                jitter_max: 3,
                jitter_seed,
            };
            let net = HypercubeNet::new(&cfg);
            let mut eng = EventEngine::new(&net, |a| {
                Reliable::new(
                    Stream {
                        count: 1,
                        log: vec![],
                    },
                    a,
                    1,
                    1,
                    rcfg,
                )
            });
            eng.run(u64::MAX);
            eng.stats().end_time
        };
        // The zero-jitter chain ends at 30 (see backoff_doubles_and_caps);
        // each of the 4 re-arms plus the give-up check adds 0..=3 ticks.
        let ends: Vec<Time> = (0..4).map(run).collect();
        for &e in &ends {
            assert!((30..=45).contains(&e), "inside the jitter envelope: {e}");
        }
        assert_eq!(run(0), ends[0], "same seed, same ticks");
        assert!(
            ends.iter().any(|&e| e != ends[0]),
            "jitter responds to the seed: {ends:?}"
        );
    }

    /// An ACK that acknowledges progress collapses the grown backoff
    /// of the sequences still outstanding back to the base rto; a
    /// duplicate ACK (no progress) leaves the ladder alone.
    #[test]
    fn ack_resets_backoff_of_outstanding_sequences() {
        let rcfg = ReliableConfig {
            rto: 2,
            rto_cap: 64,
            max_retries: 10,
            jitter_max: 0,
            jitter_seed: 0,
        };
        let mut ep: ReliableEndpoint<u64> = ReliableEndpoint::new(NodeId::ZERO, 1, 1, rcfg);
        // Two messages mid-ladder on port 0: both backed off to 16.
        ep.out[0].next_seq = 3;
        ep.out[0].unacked.insert(1, (10, 3, 16));
        ep.out[0].unacked.insert(2, (20, 3, 16));
        // Duplicate ACK: cum 0 acknowledges nothing — ladder kept.
        ep.on_ack(0, 0);
        assert_eq!(ep.out[0].unacked[&1].2, 16, "duplicate ACK keeps backoff");
        // Progress: seq 1 acknowledged — seq 2's rto resets, its
        // attempt count (the give-up budget) does not.
        ep.on_ack(0, 1);
        assert!(!ep.out[0].unacked.contains_key(&1));
        let (_, attempts, rto) = ep.out[0].unacked[&2];
        assert_eq!(rto, rcfg.rto, "outstanding seq resets to base rto");
        assert_eq!(attempts, 3, "attempts survive the reset");
    }

    /// The old reserved-bit convention made tags like `1 << 63`
    /// collide with retransmission timers; the typed [`TimerTag`]
    /// spaces make every `u64` safe for inner actors.
    #[test]
    fn any_inner_timer_tag_is_safe() {
        struct EdgeTags {
            fired: Vec<u64>,
        }
        impl ReliableActor for EdgeTags {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut RelCtx<()>) {
                ctx.set_timer(1, u64::MAX);
                ctx.set_timer(2, 1 << 63);
                ctx.set_timer(3, 0);
            }
            fn on_message(&mut self, _: &mut RelCtx<()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut RelCtx<()>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let cube = Hypercube::new(1);
        let cfg = FaultConfig::fault_free(cube);
        let net = HypercubeNet::new(&cfg);
        let mut eng = EventEngine::new(&net, |a| {
            Reliable::new(
                EdgeTags { fired: vec![] },
                a,
                1,
                1,
                ReliableConfig::default(),
            )
        });
        eng.run(u64::MAX);
        assert_eq!(
            eng.actor(NodeId::ZERO).unwrap().inner.fired,
            vec![u64::MAX, 1 << 63, 0],
            "high-bit tags reach the inner actor untouched"
        );
        assert_eq!(
            eng.actor(NodeId::ZERO).unwrap().endpoint.retransmits(),
            0,
            "no tag was mistaken for an ARQ timer"
        );
    }
}
