//! Lightweight execution traces.
//!
//! Protocol implementations in `hypersafe-core` optionally record what
//! happened at each hop/round so tests and examples can assert on — and
//! humans can read — the exact execution, mirroring the worked examples
//! in the paper (§3.2's step-by-step unicast narration).

use hypersafe_topology::NodeId;
use std::fmt;

/// One recorded step of a protocol execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message hop from one node to a neighbor.
    Hop {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Dimension crossed.
        dim: u8,
        /// Navigation vector (or other per-hop word) after the hop.
        word: u64,
    },
    /// A node changed local state (e.g. its safety level).
    StateChange {
        /// The node.
        node: NodeId,
        /// Previous value.
        old: u64,
        /// New value.
        new: u64,
        /// Round at which the change happened.
        round: u32,
    },
    /// Free-form annotation.
    Note(String),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Hop {
                from,
                to,
                dim,
                word,
            } => {
                write!(f, "hop {from} → {to} (dim {dim}, word {word:b})")
            }
            TraceEvent::StateChange {
                node,
                old,
                new,
                round,
            } => {
                write!(f, "round {round}: {node} level {old} → {new}")
            }
            TraceEvent::Note(s) => write!(f, "{s}"),
        }
    }
}

/// A consumer of trace events. The event engine
/// ([`crate::event::EventEngine::set_trace`]) streams per-delivery
/// [`TraceEvent::Hop`]s into one; [`Trace`] is the standard in-memory
/// implementation, but tests can plug in counters or filters.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, ev: TraceEvent);

    /// Recovers the concrete [`Trace`] when this sink is one (lets
    /// callers read back events without downcasting machinery).
    fn into_trace(self: Box<Self>) -> Option<Trace> {
        None
    }
}

impl TraceSink for Trace {
    fn record(&mut self, ev: TraceEvent) {
        self.push(ev);
    }

    fn into_trace(self: Box<Self>) -> Option<Trace> {
        Some(*self)
    }
}

/// An append-only trace. The `enabled` flag lets hot paths skip
/// recording without the callers branching.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A no-op trace that drops all events.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// Records a hop event.
    pub fn hop(&mut self, from: NodeId, to: NodeId, dim: u8, word: u64) {
        self.push(TraceEvent::Hop {
            from,
            to,
            dim,
            word,
        });
    }

    /// Records a free-form note (formatted eagerly only when enabled).
    pub fn note(&mut self, f: impl FnOnce() -> String) {
        if self.enabled {
            self.events.push(TraceEvent::Note(f()));
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders the trace one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.hop(NodeId::new(0), NodeId::new(1), 0, 0b1);
        t.note(|| panic!("must not be evaluated"));
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_renders() {
        let mut t = Trace::enabled();
        t.hop(NodeId::new(0b1110), NodeId::new(0b1111), 0, 0b1110);
        t.push(TraceEvent::StateChange {
            node: NodeId::new(0b0101),
            old: 4,
            new: 2,
            round: 2,
        });
        t.note(|| "done".to_string());
        assert_eq!(t.events().len(), 3);
        let s = t.render();
        assert!(s.contains("hop 1110 → 1111"));
        assert!(s.contains("round 2: 101 level 4 → 2"));
        assert!(s.ends_with("done\n"));
    }
}
