//! Lightweight execution traces.
//!
//! Protocol implementations in `hypersafe-core` optionally record what
//! happened at each hop/round so tests and examples can assert on — and
//! humans can read — the exact execution, mirroring the worked examples
//! in the paper (§3.2's step-by-step unicast narration).

use hypersafe_topology::NodeId;
use std::fmt;

/// Coarse importance of a [`TraceEvent`], used by filtering sinks
/// (e.g. [`crate::obs::FlightRecorder`]) to keep long runs' windows
/// focused. Ordered: `Debug < Info < Warn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-message noise (every hop).
    Debug,
    /// Protocol-level progress (state changes).
    Info,
    /// Out-of-band happenings worth keeping (notes: kills, aborts).
    Warn,
}

/// The variant of a [`TraceEvent`], for kind-based filtering. The
/// discriminants are dense so sinks can index a small filter table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// [`TraceEvent::Hop`]
    Hop = 0,
    /// [`TraceEvent::StateChange`]
    StateChange = 1,
    /// [`TraceEvent::Note`]
    Note = 2,
}

/// One recorded step of a protocol execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message hop from one node to a neighbor.
    Hop {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Dimension crossed — `None` when the recording layer could
        /// not resolve a port for the pair (e.g. an externally
        /// injected delivery), rendered as `dim ?`. An earlier
        /// encoding truncated the unknown sentinel to a
        /// legitimate-looking `255`.
        dim: Option<u8>,
        /// Navigation vector (or other per-hop word) after the hop.
        word: u64,
    },
    /// A node changed local state (e.g. its safety level).
    StateChange {
        /// The node.
        node: NodeId,
        /// Previous value.
        old: u64,
        /// New value.
        new: u64,
        /// Round at which the change happened.
        round: u32,
    },
    /// Free-form annotation.
    Note(String),
}

impl TraceEvent {
    /// This event's variant, for kind-based filtering.
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::Hop { .. } => TraceKind::Hop,
            TraceEvent::StateChange { .. } => TraceKind::StateChange,
            TraceEvent::Note(_) => TraceKind::Note,
        }
    }

    /// This event's severity: hops are `Debug` noise, state changes
    /// are `Info` progress, notes (kills, aborts) are `Warn`.
    pub fn severity(&self) -> Severity {
        match self {
            TraceEvent::Hop { .. } => Severity::Debug,
            TraceEvent::StateChange { .. } => Severity::Info,
            TraceEvent::Note(_) => Severity::Warn,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Hop {
                from,
                to,
                dim,
                word,
            } => match dim {
                Some(d) => write!(f, "hop {from} → {to} (dim {d}, word {word:b})"),
                None => write!(f, "hop {from} → {to} (dim ?, word {word:b})"),
            },
            TraceEvent::StateChange {
                node,
                old,
                new,
                round,
            } => {
                write!(f, "round {round}: {node} level {old} → {new}")
            }
            TraceEvent::Note(s) => write!(f, "{s}"),
        }
    }
}

/// A consumer of trace events. The event engine
/// ([`crate::event::EventEngine::set_trace`]) streams per-delivery
/// [`TraceEvent::Hop`]s into one; [`Trace`] is the standard in-memory
/// implementation, but tests can plug in counters or filters.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, ev: TraceEvent);

    /// Recovers the concrete [`Trace`] when this sink is one (lets
    /// callers read back events without downcasting machinery).
    fn into_trace(self: Box<Self>) -> Option<Trace> {
        None
    }

    /// Recovers the concrete [`crate::obs::FlightRecorder`] when this
    /// sink is one (same recovery pattern as [`TraceSink::into_trace`]).
    fn into_flight_recorder(self: Box<Self>) -> Option<crate::obs::FlightRecorder> {
        None
    }
}

impl TraceSink for Trace {
    fn record(&mut self, ev: TraceEvent) {
        self.push(ev);
    }

    fn into_trace(self: Box<Self>) -> Option<Trace> {
        Some(*self)
    }
}

/// An append-only trace. The `enabled` flag lets hot paths skip
/// recording without the callers branching.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A no-op trace that drops all events.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// Records a hop event (a known dimension — protocol code always
    /// knows which dimension it crossed).
    pub fn hop(&mut self, from: NodeId, to: NodeId, dim: u8, word: u64) {
        self.push(TraceEvent::Hop {
            from,
            to,
            dim: Some(dim),
            word,
        });
    }

    /// Records a free-form note (formatted eagerly only when enabled).
    pub fn note(&mut self, f: impl FnOnce() -> String) {
        if self.enabled {
            self.events.push(TraceEvent::Note(f()));
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders the trace one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.hop(NodeId::new(0), NodeId::new(1), 0, 0b1);
        t.note(|| panic!("must not be evaluated"));
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_renders() {
        let mut t = Trace::enabled();
        t.hop(NodeId::new(0b1110), NodeId::new(0b1111), 0, 0b1110);
        t.push(TraceEvent::StateChange {
            node: NodeId::new(0b0101),
            old: 4,
            new: 2,
            round: 2,
        });
        t.note(|| "done".to_string());
        assert_eq!(t.events().len(), 3);
        let s = t.render();
        assert!(s.contains("hop 1110 → 1111"));
        assert!(s.contains("round 2: 101 level 4 → 2"));
        assert!(s.ends_with("done\n"));
    }

    #[test]
    fn unknown_dim_renders_distinctly() {
        // Regression: the old encoding collapsed "unknown" into a
        // legitimate-looking `dim 255`.
        let known = TraceEvent::Hop {
            from: NodeId::new(0),
            to: NodeId::new(1),
            dim: Some(255),
            word: 1,
        };
        let unknown = TraceEvent::Hop {
            from: NodeId::new(0),
            to: NodeId::new(1),
            dim: None,
            word: 1,
        };
        assert!(known.to_string().contains("dim 255"));
        assert!(unknown.to_string().contains("dim ?"));
        assert_ne!(known.to_string(), unknown.to_string());
    }

    #[test]
    fn kinds_and_severities_classify_events() {
        let hop = TraceEvent::Hop {
            from: NodeId::ZERO,
            to: NodeId::new(1),
            dim: Some(0),
            word: 0,
        };
        let change = TraceEvent::StateChange {
            node: NodeId::ZERO,
            old: 0,
            new: 1,
            round: 0,
        };
        let note = TraceEvent::Note("x".into());
        assert_eq!(hop.kind(), TraceKind::Hop);
        assert_eq!(change.kind(), TraceKind::StateChange);
        assert_eq!(note.kind(), TraceKind::Note);
        assert!(hop.severity() < change.severity());
        assert!(change.severity() < note.severity());
    }
}
