//! # hypersafe-simkit
//!
//! Message-passing simulation substrate: a lock-step synchronous round
//! engine (the execution model of the paper's `GLOBAL_STATUS`
//! algorithm) and a deterministic discrete-event engine (for the
//! asynchronous and maintenance-mode variants), plus statistics and
//! tracing.
//!
//! The engines are generic over per-node state machines and the
//! [`network::Network`] topology they run over — binary cubes with
//! fault overlays ([`network::HypercubeNet`]) and generalized
//! hypercubes ([`network::GhNet`]) share one event engine, one actor
//! trait, and one reliability layer. The engines enforce the paper's
//! system model: fault-stop nodes (faulty nodes neither run nor send),
//! neighbor-only communication, and silent loss across faulty links.
//!
//! Beyond the paper's reliable-link assumption, [`channel`] models
//! noisy links (seeded deterministic loss / jitter / duplication) and
//! [`reliable`] recovers exactly-once in-order delivery on top of them
//! (sequence numbers, cumulative ACKs, exponential-backoff
//! retransmission) — the substrate for the loss-robustness experiments.
//!
//! [`obs`] layers structured observability over the event engine: a
//! per-node / per-dimension metrics registry with fixed-memory
//! quantile histograms, a bounded flight-recorder trace sink, and
//! JSON/CSV snapshot export — all zero-allocation no-ops unless a
//! registry is installed.
//!
//! [`service`] turns the routing stack into a long-lived resilient
//! service: lock-free epoch snapshots ([`service::EpochHandle`]), an
//! explicit request lifecycle with deadlines / bounded retries /
//! cancellation / admission control, and a graceful-degradation
//! ladder — all deterministic under the DST scheduler.
//!
//! [`sim`] adds deterministic simulation testing on top: a pluggable
//! [`sim::Scheduler`] (seeded adversarial reordering, latency
//! stretching, loss/duplication bursts), an [`sim::Invariant`] hook
//! checked at every quiescent point, and a delta-debugging shrinker
//! that reduces failing injection lists to minimal reproducers.

#![warn(missing_docs)]

pub mod channel;
pub mod event;
pub mod mc;
pub mod network;
pub mod obs;
pub mod reliable;
pub mod service;
pub mod sim;
pub mod stats;
pub mod sync_engine;
pub mod trace;

pub use channel::{ChannelModel, LinkFate};
pub use event::{Actor, Ctx, EventEngine, Time, TimerTag};
pub use mc::{
    engine_projection, explore, parse_artifact_path, projection_hash, render_artifact, replay,
    McCheck, McConfig, McHasher, McReplay, McReport, McSnapshot, McViolation, StateHash,
};
pub use network::{gh_port_dim, GenericSyncEngine, GhNet, HypercubeNet, Network, PortNode};
pub use obs::{
    parse_json, validate_json, DimStat, FlightRecorder, JsonValue, Metrics, MetricsSnapshot,
    NodeStat, QuantileHist, Quantiles, SnapshotTotals,
};
pub use reliable::{
    RelCtx, Reliable, ReliableActor, ReliableConfig, ReliableEndpoint, ReliableMsg,
};
pub use service::{
    AttemptOutcome, AttemptVerdict, DegradeReason, DeliveryRung, Epoch, EpochHandle, Injection,
    RedundantOutcome, RejectReason, ReqId, ReqState, RouteProvider, RoutingService, ServiceConfig,
    ServiceStats, Terminal,
};
pub use sim::{
    shrink_injections, AdversarialScheduler, FifoScheduler, Invariant, InvariantViolation,
    Scheduler,
};
pub use stats::{EventStats, Histogram, SyncStats};
pub use sync_engine::{SyncEngine, SyncNode};
pub use trace::{Severity, Trace, TraceEvent, TraceKind, TraceSink};
