//! Topology-generic synchronous execution.
//!
//! [`crate::sync_engine::SyncEngine`] is specialized to binary
//! hypercubes (ports ≡ dimensions). The paper's §4.2 runs the same
//! round-exchange protocols on *generalized* hypercubes, where a node
//! has `Σ (m_i − 1)` neighbors grouped by dimension; this module
//! provides a [`Network`] abstraction (nodes with numbered ports) and
//! a lock-step engine over it, so `GLOBAL_STATUS`-style protocols can
//! be executed message-accurately on any port-labeled topology.

use crate::stats::SyncStats;
use hypersafe_topology::{FaultConfig, FaultSet, GeneralizedHypercube, Hypercube, NodeId};

/// A static point-to-point topology: `num_nodes` endpoints, each with
/// `degree(a)` numbered ports; `neighbor(a, p)` is the node at the far
/// end of port `p`.
///
/// Port numbering is *local to each node* and stable; protocols that
/// need structure (e.g. the GH dimension grouping) receive it at node
/// construction time.
///
/// A network also carries the fault model the engines consult:
/// [`Network::node_faulty`] and [`Network::link_faulty`] default to a
/// fault-free topology, and the wrappers [`HypercubeNet`] / [`GhNet`]
/// overlay a concrete fault configuration on the pure topologies.
pub trait Network {
    /// Number of nodes; addresses are `0..num_nodes`.
    fn num_nodes(&self) -> u64;

    /// Number of ports of node `a`.
    fn degree(&self, a: u64) -> usize;

    /// The node reached from `a` through port `p` (`p < degree(a)`).
    fn neighbor(&self, a: u64, p: usize) -> u64;

    /// The port of `a` that reaches `b`, or `None` when they are not
    /// adjacent. The default scans `a`'s ports; implementations with
    /// structure (e.g. binary cubes) override it with O(1) lookups.
    fn port_of(&self, a: u64, b: u64) -> Option<usize> {
        (0..self.degree(a)).find(|&p| self.neighbor(a, p) == b)
    }

    /// Whether node `a` is fault-stop dead (no actor, drops arrivals).
    fn node_faulty(&self, _a: u64) -> bool {
        false
    }

    /// Whether the link `a ↔ b` is faulty (messages across it vanish).
    fn link_faulty(&self, _a: u64, _b: u64) -> bool {
        false
    }
}

/// A binary hypercube with its fault configuration: the [`Network`]
/// the cube-specific protocols hand to the event engine. Ports are
/// dimensions, so `port_of` is a single XOR.
pub struct HypercubeNet<'a> {
    cfg: &'a FaultConfig,
}

impl<'a> HypercubeNet<'a> {
    /// Wraps a fault configuration as an engine-ready network.
    pub fn new(cfg: &'a FaultConfig) -> Self {
        HypercubeNet { cfg }
    }

    /// The underlying fault configuration.
    pub fn config(&self) -> &'a FaultConfig {
        self.cfg
    }
}

impl Network for HypercubeNet<'_> {
    fn num_nodes(&self) -> u64 {
        self.cfg.cube().num_nodes()
    }

    fn degree(&self, _a: u64) -> usize {
        self.cfg.cube().dim() as usize
    }

    fn neighbor(&self, a: u64, p: usize) -> u64 {
        a ^ (1 << p)
    }

    fn port_of(&self, a: u64, b: u64) -> Option<usize> {
        let x = a ^ b;
        (x.count_ones() == 1).then(|| x.trailing_zeros() as usize)
    }

    fn node_faulty(&self, a: u64) -> bool {
        self.cfg.node_faulty(NodeId::new(a))
    }

    fn link_faulty(&self, a: u64, b: u64) -> bool {
        self.cfg
            .link_faults()
            .contains(NodeId::new(a), NodeId::new(b))
    }
}

/// A generalized hypercube with a node-fault overlay (the GH extension
/// models no link faults, matching §4.2).
pub struct GhNet<'a> {
    gh: &'a GeneralizedHypercube,
    faults: &'a FaultSet,
}

impl<'a> GhNet<'a> {
    /// Wraps a GH and its faulty-node set as an engine-ready network.
    pub fn new(gh: &'a GeneralizedHypercube, faults: &'a FaultSet) -> Self {
        GhNet { gh, faults }
    }

    /// The underlying topology.
    pub fn gh(&self) -> &'a GeneralizedHypercube {
        self.gh
    }
}

impl Network for GhNet<'_> {
    fn num_nodes(&self) -> u64 {
        GeneralizedHypercube::num_nodes(self.gh)
    }

    fn degree(&self, a: u64) -> usize {
        Network::degree(self.gh, a)
    }

    fn neighbor(&self, a: u64, p: usize) -> u64 {
        Network::neighbor(self.gh, a, p)
    }

    fn node_faulty(&self, a: u64) -> bool {
        self.faults.contains(NodeId::new(a))
    }
}

impl Network for Hypercube {
    fn num_nodes(&self) -> u64 {
        Hypercube::num_nodes(*self)
    }

    fn degree(&self, _a: u64) -> usize {
        self.dim() as usize
    }

    fn neighbor(&self, a: u64, p: usize) -> u64 {
        a ^ (1 << p)
    }
}

impl Network for GeneralizedHypercube {
    fn num_nodes(&self) -> u64 {
        GeneralizedHypercube::num_nodes(self)
    }

    fn degree(&self, _a: u64) -> usize {
        self.degree() as usize
    }

    /// Ports are numbered dimension-major: dimension 0's `m_0 − 1`
    /// clique peers first (by ascending digit, skipping the node's own
    /// digit), then dimension 1's, and so on.
    fn neighbor(&self, a: u64, p: usize) -> u64 {
        let mut p = p;
        let node = hypersafe_topology::GhNode(a);
        for i in 0..self.dim() {
            let peers = self.radix(i) as usize - 1;
            if p < peers {
                let own = self.digit(node, i);
                // The p-th peer digit, skipping `own`.
                let digit = if (p as u16) < own {
                    p as u16
                } else {
                    p as u16 + 1
                };
                return self.with_digit(node, i, digit).raw();
            }
            p -= peers;
        }
        panic!("port out of range");
    }
}

/// The dimension a GH port belongs to, mirroring the port numbering of
/// the [`Network`] impl. Protocol nodes use this to group inbox
/// entries by dimension.
pub fn gh_port_dim(gh: &GeneralizedHypercube, mut p: usize) -> u8 {
    for i in 0..gh.dim() {
        let peers = gh.radix(i) as usize - 1;
        if p < peers {
            return i;
        }
        p -= peers;
    }
    panic!("port out of range");
}

/// Per-node state machine for the generic engine. Identical contract
/// to [`crate::sync_engine::SyncNode`], with ports instead of
/// dimensions.
pub trait PortNode {
    /// The value exchanged with neighbors each round.
    type Msg: Clone;

    /// The value this node shares with all neighbors this round.
    fn broadcast(&self) -> Self::Msg;

    /// Absorbs `(port, value)` pairs (only healthy neighbors deliver).
    /// Returns `true` iff state changed.
    fn receive(&mut self, inbox: &[(usize, Self::Msg)]) -> bool;
}

/// Lock-step engine over any [`Network`].
pub struct GenericSyncEngine<'a, N: Network, S: PortNode> {
    net: &'a N,
    faulty: Vec<bool>,
    nodes: Vec<Option<S>>,
    stats: SyncStats,
}

impl<'a, N: Network, S: PortNode> GenericSyncEngine<'a, N, S> {
    /// Builds the engine; `faulty[a]` marks dead nodes (no state, no
    /// messages), `init` constructs each healthy node's state machine.
    pub fn new(net: &'a N, faulty: Vec<bool>, mut init: impl FnMut(u64) -> S) -> Self {
        assert_eq!(faulty.len() as u64, net.num_nodes());
        let nodes = (0..net.num_nodes())
            .map(|a| (!faulty[a as usize]).then(|| init(a)))
            .collect();
        GenericSyncEngine {
            net,
            faulty,
            nodes,
            stats: SyncStats::default(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// Read access to a node's state machine.
    pub fn node(&self, a: u64) -> Option<&S> {
        self.nodes[a as usize].as_ref()
    }

    /// One lock-step round; returns the number of changed nodes.
    pub fn run_round(&mut self) -> usize {
        let outgoing: Vec<Option<S::Msg>> = self
            .nodes
            .iter()
            .map(|n| n.as_ref().map(PortNode::broadcast))
            .collect();
        let mut changed = 0usize;
        let mut inbox: Vec<(usize, S::Msg)> = Vec::new();
        for a in 0..self.net.num_nodes() {
            if self.faulty[a as usize] {
                continue;
            }
            inbox.clear();
            for p in 0..self.net.degree(a) {
                let b = self.net.neighbor(a, p);
                if let Some(msg) = &outgoing[b as usize] {
                    inbox.push((p, msg.clone()));
                    self.stats.messages += 1;
                }
            }
            let node = self.nodes[a as usize].as_mut().expect("healthy");
            if node.receive(&inbox) {
                changed += 1;
            }
        }
        self.stats.rounds_run += 1;
        if changed > 0 {
            self.stats.active_rounds += 1;
            self.stats.state_changes += changed as u64;
        }
        changed
    }

    /// Runs until a quiescent round or `max_rounds`; returns active
    /// rounds.
    pub fn run_until_stable(&mut self, max_rounds: u32) -> u32 {
        for _ in 0..max_rounds {
            if self.run_round() == 0 {
                break;
            }
        }
        self.stats.active_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Min-propagation, as in the hypercube engine tests.
    struct MinNode {
        value: u64,
    }

    impl PortNode for MinNode {
        type Msg = u64;
        fn broadcast(&self) -> u64 {
            self.value
        }
        fn receive(&mut self, inbox: &[(usize, u64)]) -> bool {
            let m = inbox.iter().map(|&(_, v)| v).min().unwrap_or(self.value);
            if m < self.value {
                self.value = m;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn hypercube_network_matches_bit_flips() {
        let q = Hypercube::new(4);
        assert_eq!(Network::num_nodes(&q), 16);
        assert_eq!(q.degree(3), 4);
        assert_eq!(Network::neighbor(&q, 0b0101, 1), 0b0111);
    }

    #[test]
    fn gh_network_port_enumeration() {
        let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
        // degree = 1 + 2 + 1 = 4 ports.
        assert_eq!(Network::degree(&gh, 0), 4);
        let a = gh.parse("010").unwrap().raw();
        let neighbors: Vec<String> = (0..4)
            .map(|p| gh.format(hypersafe_topology::GhNode(Network::neighbor(&gh, a, p))))
            .collect();
        // Port 0: dim-0 peer; ports 1–2: dim-1 peers by ascending digit
        // (skipping own digit 1); port 3: dim-2 peer.
        assert_eq!(neighbors, vec!["011", "000", "020", "110"]);
        assert_eq!(gh_port_dim(&gh, 0), 0);
        assert_eq!(gh_port_dim(&gh, 1), 1);
        assert_eq!(gh_port_dim(&gh, 2), 1);
        assert_eq!(gh_port_dim(&gh, 3), 2);
    }

    #[test]
    fn min_converges_on_gh() {
        let gh = GeneralizedHypercube::from_product(&[3, 4]);
        let faulty = vec![false; gh.num_nodes() as usize];
        let mut eng = GenericSyncEngine::new(&gh, faulty, |a| MinNode { value: a });
        let rounds = eng.run_until_stable(16);
        assert!(rounds <= 2, "GH diameter = #dims");
        for a in 0..Network::num_nodes(&gh) {
            assert_eq!(eng.node(a).unwrap().value, 0);
        }
    }

    #[test]
    fn faulty_nodes_excluded_generically() {
        let q = Hypercube::new(3);
        let mut faulty = vec![false; 8];
        faulty[0] = true;
        let mut eng = GenericSyncEngine::new(&q, faulty, |a| MinNode { value: a });
        eng.run_until_stable(8);
        assert!(eng.node(0).is_none());
        for a in 1..8 {
            assert_eq!(eng.node(a).unwrap().value, 1, "min among healthy");
        }
    }

    #[test]
    fn generic_engine_message_accounting() {
        let q = Hypercube::new(3);
        let faulty = vec![false; 8];
        let mut eng = GenericSyncEngine::new(&q, faulty, |a| MinNode { value: a });
        eng.run_round();
        assert_eq!(eng.stats().messages, 8 * 3, "full exchange per round");
    }
}
