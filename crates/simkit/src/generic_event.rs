//! Discrete-event execution over any [`crate::network::Network`] —
//! the asynchronous counterpart of
//! [`crate::network::GenericSyncEngine`], used by the generalized-
//! hypercube protocols (§4.2), whose clique links the binary-cube
//! [`crate::event_engine::EventEngine`] cannot express.
//!
//! Same determinism contract: `(time, sequence)`-ordered delivery,
//! fault-stop silence for dead nodes. Link faults are not modeled here
//! (the GH extension has none); use the binary engine when they
//! matter.

use crate::channel::ChannelModel;
use crate::network::Network;
use crate::stats::EventStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time, in abstract ticks.
pub type Time = u64;

/// Action collector handed to every callback (generic flavor of
/// [`crate::event_engine::Ctx`]).
pub struct GCtx<M> {
    self_id: u64,
    now: Time,
    sends: Vec<(Time, u64, M)>,
    timers: Vec<(Time, u64)>,
    retransmits: u64,
    acks: u64,
}

impl<M> GCtx<M> {
    /// The node executing the current callback.
    pub fn self_id(&self) -> u64 {
        self.self_id
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `dst` (must be a neighbor port-reachable from
    /// this node), arriving after `latency` ticks.
    pub fn send(&mut self, dst: u64, msg: M, latency: Time) {
        self.sends.push((self.now + latency, dst, msg));
    }

    /// Arms a timer on this node after `delay` ticks.
    pub fn set_timer(&mut self, delay: Time, tag: u64) {
        self.timers.push((self.now + delay, tag));
    }

    /// Records `n` retransmissions into [`EventStats::retransmitted`].
    pub fn note_retransmits(&mut self, n: u64) {
        self.retransmits += n;
    }

    /// Records `n` acknowledgements into [`EventStats::acked`].
    pub fn note_acks(&mut self, n: u64) {
        self.acks += n;
    }
}

/// Per-node event handler over a generic network.
pub trait GActor: Sized {
    /// Message type. `Clone` lets the channel model inject duplicate
    /// copies.
    type Msg: Clone;

    /// Called once before any event.
    fn on_start(&mut self, _ctx: &mut GCtx<Self::Msg>) {}

    /// A message from `from` arrived.
    fn on_message(&mut self, ctx: &mut GCtx<Self::Msg>, from: u64, msg: Self::Msg);

    /// A timer fired.
    fn on_timer(&mut self, _ctx: &mut GCtx<Self::Msg>, _tag: u64) {}
}

enum Payload<M> {
    Message { from: u64, msg: M },
    Timer { tag: u64 },
}

struct Pending<M> {
    time: Time,
    seq: u64,
    dst: u64,
    payload: Payload<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The generic discrete-event executor.
pub struct GenericEventEngine<'a, N: Network, A: GActor> {
    net: &'a N,
    faulty: Vec<bool>,
    actors: Vec<Option<A>>,
    queue: BinaryHeap<Reverse<Pending<A::Msg>>>,
    seq: u64,
    now: Time,
    stats: EventStats,
    channel: Option<ChannelModel>,
}

impl<'a, N: Network, A: GActor> GenericEventEngine<'a, N, A> {
    /// Builds the engine and runs every healthy actor's `on_start`.
    /// Links are perfect; use [`GenericEventEngine::with_channel`] for
    /// lossy links.
    pub fn new(net: &'a N, faulty: Vec<bool>, init: impl FnMut(u64) -> A) -> Self {
        Self::build(net, faulty, None, init)
    }

    /// Like [`GenericEventEngine::new`], but every send to a healthy
    /// node passes through `channel` (loss / jitter / duplication).
    pub fn with_channel(
        net: &'a N,
        faulty: Vec<bool>,
        channel: ChannelModel,
        init: impl FnMut(u64) -> A,
    ) -> Self {
        Self::build(net, faulty, Some(channel), init)
    }

    fn build(
        net: &'a N,
        faulty: Vec<bool>,
        channel: Option<ChannelModel>,
        mut init: impl FnMut(u64) -> A,
    ) -> Self {
        assert_eq!(faulty.len() as u64, net.num_nodes());
        let actors: Vec<Option<A>> = (0..net.num_nodes())
            .map(|a| (!faulty[a as usize]).then(|| init(a)))
            .collect();
        let mut eng = GenericEventEngine {
            net,
            faulty,
            actors,
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            stats: EventStats::default(),
            channel,
        };
        for a in 0..eng.net.num_nodes() {
            if eng.actors[a as usize].is_some() {
                let mut ctx = eng.ctx_for(a);
                eng.actors[a as usize]
                    .as_mut()
                    .expect("present")
                    .on_start(&mut ctx);
                eng.absorb(a, ctx);
            }
        }
        eng
    }

    fn ctx_for(&self, a: u64) -> GCtx<A::Msg> {
        GCtx {
            self_id: a,
            now: self.now,
            sends: Vec::new(),
            timers: Vec::new(),
            retransmits: 0,
            acks: 0,
        }
    }

    fn is_neighbor(&self, src: u64, dst: u64) -> bool {
        (0..self.net.degree(src)).any(|p| self.net.neighbor(src, p) == dst)
    }

    fn enqueue_message(&mut self, time: Time, dst: u64, from: u64, msg: A::Msg) {
        self.seq += 1;
        self.queue.push(Reverse(Pending {
            time,
            seq: self.seq,
            dst,
            payload: Payload::Message { from, msg },
        }));
    }

    fn absorb(&mut self, src: u64, ctx: GCtx<A::Msg>) {
        for (time, dst, msg) in ctx.sends {
            assert!(
                self.is_neighbor(src, dst),
                "{src} may only message neighbors, not {dst}"
            );
            if self.faulty[dst as usize] {
                self.stats.dropped += 1;
                continue;
            }
            let fate = match &mut self.channel {
                Some(ch) => ch.fate(src, dst),
                None => crate::channel::LinkFate::CLEAN,
            };
            if fate.lost {
                self.stats.lost += 1;
                continue;
            }
            if let Some(dup_jitter) = fate.duplicate {
                self.stats.duplicated += 1;
                self.enqueue_message(time + dup_jitter, dst, src, msg.clone());
            }
            self.enqueue_message(time + fate.jitter, dst, src, msg);
        }
        self.stats.retransmitted += ctx.retransmits;
        self.stats.acked += ctx.acks;
        for (time, tag) in ctx.timers {
            self.seq += 1;
            self.queue.push(Reverse(Pending {
                time,
                seq: self.seq,
                dst: src,
                payload: Payload::Timer { tag },
            }));
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EventStats {
        &self.stats
    }

    /// Read access to an actor.
    pub fn actor(&self, a: u64) -> Option<&A> {
        self.actors[a as usize].as_ref()
    }

    /// Injects an external kick as a timer on `dst`.
    pub fn inject(&mut self, dst: u64, tag: u64, delay: Time) {
        self.seq += 1;
        self.queue.push(Reverse(Pending {
            time: self.now + delay,
            seq: self.seq,
            dst,
            payload: Payload::Timer { tag },
        }));
    }

    /// Processes one event; `false` when drained.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        self.now = ev.time;
        self.stats.end_time = self.now;
        let idx = ev.dst as usize;
        if self.actors[idx].is_none() {
            self.stats.dropped += 1;
            return true;
        }
        let mut ctx = self.ctx_for(ev.dst);
        match ev.payload {
            Payload::Message { from, msg } => {
                self.stats.delivered += 1;
                self.actors[idx]
                    .as_mut()
                    .expect("present")
                    .on_message(&mut ctx, from, msg);
            }
            Payload::Timer { tag } => {
                self.stats.timers += 1;
                self.actors[idx]
                    .as_mut()
                    .expect("present")
                    .on_timer(&mut ctx, tag);
            }
        }
        self.absorb(ev.dst, ctx);
        true
    }

    /// Runs until drained or `max_events` processed.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::GeneralizedHypercube;

    /// Flood over a GH: every node remembers its first-arrival time.
    struct Flood {
        neighbors: Vec<u64>,
        seen_at: Option<Time>,
        origin: bool,
    }

    impl GActor for Flood {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut GCtx<()>) {
            if self.origin {
                self.seen_at = Some(0);
                for &b in &self.neighbors {
                    ctx.send(b, (), 1);
                }
            }
        }

        fn on_message(&mut self, ctx: &mut GCtx<()>, _from: u64, _msg: ()) {
            if self.seen_at.is_none() {
                self.seen_at = Some(ctx.now());
                for &b in &self.neighbors {
                    ctx.send(b, (), 1);
                }
            }
        }
    }

    #[test]
    fn flood_arrival_equals_gh_distance() {
        let gh = GeneralizedHypercube::from_product(&[3, 4]);
        let faulty = vec![false; gh.num_nodes() as usize];
        let mut eng = GenericEventEngine::new(&gh, faulty, |a| Flood {
            neighbors: (0..Network::degree(&gh, a))
                .map(|p| Network::neighbor(&gh, a, p))
                .collect(),
            seen_at: None,
            origin: a == 0,
        });
        eng.run(u64::MAX);
        for a in 0..Network::num_nodes(&gh) {
            let d = gh.distance(hypersafe_topology::GhNode(0), hypersafe_topology::GhNode(a));
            assert_eq!(eng.actor(a).unwrap().seen_at, Some(d as u64), "node {a}");
        }
    }

    #[test]
    fn faulty_nodes_drop_messages() {
        let gh = GeneralizedHypercube::from_product(&[2, 2]);
        let mut faulty = vec![false; 4];
        faulty[1] = true;
        faulty[2] = true;
        let mut eng = GenericEventEngine::new(&gh, faulty, |a| Flood {
            neighbors: (0..Network::degree(&gh, a))
                .map(|p| Network::neighbor(&gh, a, p))
                .collect(),
            seen_at: None,
            origin: a == 0,
        });
        eng.run(u64::MAX);
        assert_eq!(eng.actor(3).unwrap().seen_at, None, "cut off by faults");
        assert_eq!(eng.stats().dropped, 2);
    }

    #[test]
    fn timers_and_injection() {
        struct T {
            fired: Vec<u64>,
        }
        impl GActor for T {
            type Msg = ();
            fn on_message(&mut self, _: &mut GCtx<()>, _: u64, _: ()) {}
            fn on_timer(&mut self, _: &mut GCtx<()>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let gh = GeneralizedHypercube::from_product(&[2, 2]);
        let faulty = vec![false; 4];
        let mut eng = GenericEventEngine::new(&gh, faulty, |_| T { fired: vec![] });
        eng.inject(2, 7, 5);
        eng.inject(2, 3, 1);
        eng.run(u64::MAX);
        assert_eq!(
            eng.actor(2).unwrap().fired,
            vec![3, 7],
            "time order respected"
        );
        assert_eq!(eng.stats().end_time, 5);
    }
}
