//! Deterministic simulation testing (DST) for the event engine.
//!
//! The paper's guarantees are schedule-free: Theorem 2's optimal-path
//! delivery and Theorem 4's infeasibility detection must hold under
//! *every* interleaving of delivery, loss, duplication, and fault
//! events, not just the ones a FIFO run happens to produce. This module
//! supplies the three DST ingredients in FoundationDB style:
//!
//! 1. a pluggable [`Scheduler`] that owns same-tick delivery order and
//!    may adversarially stretch latencies or inject loss/duplication
//!    bursts, all derived from a single `u64` seed
//!    ([`AdversarialScheduler`]) — the default [`FifoScheduler`]
//!    reproduces the engine's historical order bit-for-bit;
//! 2. an [`Invariant`] hook checked at every quiescent point (after the
//!    last event of each virtual tick) via
//!    [`crate::event::EventEngine::run_checked`];
//! 3. a delta-debugging shrinker ([`shrink_injections`]) that reduces a
//!    failing injected-event list to a 1-minimal reproducer, so a
//!    violation replays from `seed + trace` alone.
//!
//! Everything here is a pure function of its inputs: same seed, same
//! schedule, same verdict — on any machine, at any thread count.

use crate::channel::{mix, uniform_inclusive, unit, LinkFate};
use crate::event::{Actor, EventEngine, Time};
use crate::network::Network;
use std::fmt;

/// Decides same-tick delivery order and per-message adversarial
/// perturbation. Installed into an engine via
/// [`crate::event::EventEngine::with_parts`]; the engine consults it
/// for every enqueued event (messages *and* timers) and every send
/// across a usable link.
pub trait Scheduler {
    /// Tiebreak key for an event enqueued with engine sequence number
    /// `seq` toward node `dst`. Events at equal virtual time are
    /// processed in ascending `(key, seq)` order, so returning `seq`
    /// preserves FIFO order and returning a seeded hash permutes every
    /// same-tick batch.
    fn order_key(&mut self, seq: u64, dst: u64) -> u64;

    /// Adversarial fate applied to a message crossing `src → dst` at
    /// time `now`, *on top of* the channel model's own fate: extra
    /// stretch adds to the channel jitter, loss and duplication compose
    /// with it. The default is no perturbation.
    fn perturb(&mut self, _now: Time, _src: u64, _dst: u64) -> LinkFate {
        LinkFate::CLEAN
    }
}

/// The engine's historical behaviour: strict FIFO within a tick
/// (ordering by `(time, seq, seq)` equals ordering by `(time, seq)`),
/// no perturbation. Golden traces recorded before the scheduler
/// existed replay byte-identically under this scheduler.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn order_key(&mut self, seq: u64, _dst: u64) -> u64 {
        seq
    }
}

/// A seeded adversary over the schedule space. From one `u64` seed it
/// derives, deterministically:
///
/// - a pseudo-random permutation of every same-tick delivery batch
///   (the `order_key` is a hash of the seed, a call counter, and the
///   destination);
/// - a latency stretch of `0..=max_stretch` extra ticks per message;
/// - optional *finite* loss and duplication burst windows (`[0,
///   until)` in virtual time) during which messages are additionally
///   lost / duplicated with the configured probability.
///
/// Burst windows are finite so that ARQ-protected protocols still
/// converge: after the window closes the adversary only reorders and
/// delays, which the paper's model (and any correct protocol) must
/// tolerate. Protocols that assume reliable links should face
/// [`AdversarialScheduler::permute`] (reorder + stretch only).
#[derive(Clone, Debug)]
pub struct AdversarialScheduler {
    seed: u64,
    counter: u64,
    max_stretch: Time,
    loss_until: Time,
    loss_p: f64,
    dup_until: Time,
    dup_p: f64,
}

impl AdversarialScheduler {
    /// A reorder-and-stretch adversary (no loss, no duplication): safe
    /// against protocols that assume the paper's reliable links.
    pub fn permute(seed: u64) -> Self {
        AdversarialScheduler {
            seed: mix(seed ^ 0x5EED_5C4E_D01E_D0C5),
            counter: 0,
            max_stretch: 1 + uniform_inclusive(mix(seed ^ 1), 2),
            loss_until: 0,
            loss_p: 0.0,
            dup_until: 0,
            dup_p: 0.0,
        }
    }

    /// The full adversary: everything [`AdversarialScheduler::permute`]
    /// does, plus loss and duplication bursts whose windows and
    /// intensities are themselves derived from `seed` (loss up to 35%
    /// and duplication up to 25%, each over a window of up to 64
    /// ticks). Pair with an ARQ-protected protocol.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = Self::permute(seed);
        s.loss_until = uniform_inclusive(mix(seed ^ 2), 64);
        s.loss_p = 0.35 * unit(mix(seed ^ 3));
        s.dup_until = uniform_inclusive(mix(seed ^ 4), 64);
        s.dup_p = 0.25 * unit(mix(seed ^ 5));
        s
    }

    /// Overrides the maximum per-message latency stretch.
    pub fn with_stretch(mut self, max_stretch: Time) -> Self {
        self.max_stretch = max_stretch;
        self
    }

    /// Overrides the loss burst: probability `p` until virtual time
    /// `until` (must be `< 1`: a window that eats everything forever
    /// would defeat even ARQ if `until` exceeded the give-up horizon).
    pub fn with_loss_burst(mut self, until: Time, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "burst loss must be in [0, 1)");
        self.loss_until = until;
        self.loss_p = p;
        self
    }

    /// Overrides the duplication burst window and probability.
    pub fn with_dup_burst(mut self, until: Time, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "burst duplication must be in [0, 1)"
        );
        self.dup_until = until;
        self.dup_p = p;
        self
    }

    fn draw(&mut self, salt: u64) -> u64 {
        self.counter += 1;
        mix(self
            .seed
            .wrapping_add(self.counter.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .wrapping_add(mix(salt)))
    }
}

impl Scheduler for AdversarialScheduler {
    fn order_key(&mut self, seq: u64, dst: u64) -> u64 {
        // A seeded hash: same-tick batches are processed in an order
        // that varies per seed but is identical across replays. `seq`
        // still breaks exact key collisions deterministically.
        let _ = seq;
        self.draw(dst.rotate_left(17) ^ 0xD1CE_D1CE_D1CE_D1CE)
    }

    fn perturb(&mut self, now: Time, src: u64, dst: u64) -> LinkFate {
        let base = self.draw(src.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dst.rotate_left(32));
        if now < self.loss_until && unit(mix(base ^ 1)) < self.loss_p {
            return LinkFate {
                lost: true,
                jitter: 0,
                duplicate: None,
            };
        }
        let jitter = if self.max_stretch == 0 {
            0
        } else {
            uniform_inclusive(mix(base ^ 2), self.max_stretch)
        };
        let duplicate = (now < self.dup_until && unit(mix(base ^ 3)) < self.dup_p)
            .then(|| uniform_inclusive(mix(base ^ 4), self.max_stretch.max(1)));
        LinkFate {
            lost: false,
            jitter,
            duplicate,
        }
    }
}

/// A property of the running simulation, checked at every quiescent
/// point (after the last event of each virtual tick, and once more
/// when the run ends) by
/// [`crate::event::EventEngine::run_checked`]. Implementations may
/// keep state across checks — e.g. remembering each node's previous
/// safety level to assert monotone convergence.
pub trait Invariant<N: Network, A: Actor> {
    /// Short stable name, quoted in violation reports.
    fn name(&self) -> &'static str;

    /// Inspects the engine at a consistent cut. Returns `Err(detail)`
    /// to abort the run with an [`InvariantViolation`].
    fn check(&mut self, eng: &EventEngine<'_, N, A>) -> Result<(), String>;
}

/// A failed [`Invariant`] check: which invariant, when, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// [`Invariant::name`] of the failed check.
    pub invariant: String,
    /// Virtual time of the quiescent point that failed.
    pub time: Time,
    /// Events processed before the failure.
    pub events_processed: u64,
    /// Human-readable explanation from the invariant.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant '{}' violated at t={} (event {}): {}",
            self.invariant, self.time, self.events_processed, self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// Delta-debugging (`ddmin`) over an injected-event list: returns a
/// subsequence of `events` on which `fails` still returns `true`, and
/// which is 1-minimal — removing any single remaining element makes
/// the failure disappear. `fails` must be deterministic (in DST it
/// replays a seeded simulation, so it is). If the full list does not
/// fail, it is returned unchanged.
///
/// Complexity is the classic `O(k²)` reruns in the worst case; DST
/// reproducers are short enough that this is seconds, not hours.
pub fn shrink_injections<I: Clone>(events: &[I], mut fails: impl FnMut(&[I]) -> bool) -> Vec<I> {
    let mut current: Vec<I> = events.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<I> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .cloned()
                .collect();
            if fails(&candidate) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_key_is_sequence_number() {
        let mut s = FifoScheduler;
        for seq in [0, 1, 7, u64::MAX] {
            assert_eq!(s.order_key(seq, 3), seq);
        }
        assert_eq!(s.perturb(0, 0, 1), LinkFate::CLEAN);
    }

    #[test]
    fn adversary_is_deterministic_per_seed() {
        let mut a = AdversarialScheduler::from_seed(42);
        let mut b = AdversarialScheduler::from_seed(42);
        for k in 0..200 {
            assert_eq!(a.order_key(k, k % 5), b.order_key(k, k % 5));
            assert_eq!(a.perturb(k, k % 3, k % 7), b.perturb(k, k % 3, k % 7));
        }
    }

    #[test]
    fn different_seeds_permute_differently() {
        let mut a = AdversarialScheduler::permute(1);
        let mut b = AdversarialScheduler::permute(2);
        let diff = (0..100)
            .filter(|&k| a.order_key(k, 0) != b.order_key(k, 0))
            .count();
        assert!(diff > 90, "only {diff}/100 keys differ");
    }

    #[test]
    fn permute_never_loses_or_duplicates() {
        let mut s = AdversarialScheduler::permute(0xFEED);
        for k in 0..500 {
            let f = s.perturb(k, k % 4, (k + 1) % 4);
            assert!(!f.lost);
            assert!(f.duplicate.is_none());
            assert!(f.jitter <= s.max_stretch);
        }
    }

    #[test]
    fn bursts_end_at_their_window() {
        let mut s = AdversarialScheduler::from_seed(9)
            .with_loss_burst(10, 0.9)
            .with_dup_burst(10, 0.9);
        let lost_in = (0..200).filter(|_| s.perturb(5, 0, 1).lost).count();
        assert!(lost_in > 100, "burst window should lose plenty");
        for _ in 0..200 {
            let f = s.perturb(10, 0, 1);
            assert!(!f.lost, "window is half-open: t=10 is outside");
            assert!(f.duplicate.is_none());
        }
    }

    #[test]
    fn shrinker_finds_minimal_pair() {
        let events: Vec<u32> = (0..100).collect();
        let mut runs = 0;
        let shrunk = shrink_injections(&events, |c| {
            runs += 1;
            c.contains(&13) && c.contains(&57)
        });
        assert_eq!(shrunk, vec![13, 57]);
        assert!(runs < 200, "ddmin should not brute-force ({runs} runs)");
    }

    #[test]
    fn shrinker_result_is_one_minimal() {
        let events: Vec<u32> = (0..64).collect();
        let fails = |c: &[u32]| c.iter().filter(|&&x| x % 9 == 0).count() >= 3;
        let shrunk = shrink_injections(&events, fails);
        assert!(fails(&shrunk));
        for i in 0..shrunk.len() {
            let mut without = shrunk.clone();
            without.remove(i);
            assert!(!fails(&without), "removing {} still fails", shrunk[i]);
        }
    }

    #[test]
    fn shrinker_keeps_non_failing_input() {
        let events = vec![1, 2, 3];
        assert_eq!(shrink_injections(&events, |_| false), events);
        let empty: Vec<u32> = vec![];
        assert!(shrink_injections(&empty, |_| true).is_empty());
    }

    #[test]
    fn shrinker_handles_singleton_cause() {
        let events: Vec<u32> = (0..33).collect();
        let shrunk = shrink_injections(&events, |c| c.contains(&17));
        assert_eq!(shrunk, vec![17]);
    }
}
