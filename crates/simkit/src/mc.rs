//! Explicit-state model checking over the [`crate::event`] actor
//! abstractions.
//!
//! Where the DST layer ([`crate::sim`]) *samples* schedules, this
//! module *enumerates* them: a state is (per-actor protocol states ×
//! the in-flight message multiset × armed timers × remaining adversary
//! budgets), a transition is one atomic choice (deliver an envelope,
//! fire a timer, drop or duplicate an envelope, kill a node), and
//! exploration is breadth-first over canonically hashed states. Every
//! interleaving a timed engine schedule can produce is a path here —
//! the checker abstracts time away entirely and delivers in arbitrary
//! causal order, which strictly subsumes any latency/jitter assignment.
//!
//! Two reductions keep small instances tractable without losing
//! states:
//!
//! * **Sleep sets** (Godefroid-style): two enabled transitions that
//!   commute — deliveries to different nodes, timer fires on different
//!   nodes, budgeted choices without contention — need not be explored
//!   in both orders from the same state. The reduction prunes
//!   *transition executions* but provably preserves the *reachable
//!   state set* (we cache visited states and re-explore with the
//!   intersection of sleep sets when a state is re-reached with a
//!   different one), so the cross-validation property "every sampled
//!   DST state is in the checker's reachable set" survives it.
//! * **No-op closure** (optional, [`McConfig::closure`]): an envelope
//!   whose delivery provably changes nothing (actor hash unchanged, no
//!   sends, no timers, no halt) is consumed eagerly instead of being
//!   kept as a pending choice, collapsing the 2^k lattice of "which
//!   stale announcements are still in flight" into one state. Sound
//!   only for protocols where a no-op *stays* a no-op after any other
//!   transition (monotone merges: GS and delta-GS qualify, the ARQ
//!   layer does not — see DESIGN.md §14) — callers flip the flag per
//!   protocol.
//!
//! Properties are checked at every newly discovered state; a violation
//! stops the search and is reported as a canonical *choice-index path*
//! from the initial state, replayable deterministically (and rendered
//! byte-identically) by [`replay`] — no seeds, no clocks.

use crate::event::{Actor, Ctx, Time, TimerTag};
use crate::network::Network;
use hypersafe_topology::NodeId;
use std::collections::{HashMap, HashSet, VecDeque};

// ---------------------------------------------------------------------------
// Canonical state hashing
// ---------------------------------------------------------------------------

/// 128-bit FNV-1a accumulator used for canonical state hashing. Not a
/// cryptographic hash: the checker identifies states by hash alone
/// (standard explicit-state practice), and 128 bits make an accidental
/// collision across even billions of states vanishingly unlikely.
#[derive(Clone, Copy, Debug)]
pub struct McHasher {
    h: u128,
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c590;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

impl McHasher {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        McHasher { h: FNV128_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u128;
            self.h = self.h.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs one `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u128 {
        self.h
    }
}

impl Default for McHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Canonical protocol-state hashing for model checking.
///
/// Implementations must absorb exactly the *protocol-relevant* state:
/// include everything a transition function reads, exclude static
/// configuration (latencies, topology constants) and observational
/// counters (retransmit tallies, arrival timestamps) — two states that
/// differ only in excluded fields are merged by the checker, which is
/// what makes the untimed abstraction collapse timing detail.
pub trait StateHash {
    /// Absorbs this value's canonical representation into `h`.
    fn state_hash(&self, h: &mut McHasher);
}

macro_rules! impl_statehash_int {
    ($($t:ty),*) => {$(
        impl StateHash for $t {
            fn state_hash(&self, h: &mut McHasher) {
                h.write_bytes(&(*self as u128).to_le_bytes()[..core::mem::size_of::<$t>()]);
            }
        }
    )*};
}
impl_statehash_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl StateHash for u128 {
    fn state_hash(&self, h: &mut McHasher) {
        h.write_u128(*self);
    }
}

impl StateHash for bool {
    fn state_hash(&self, h: &mut McHasher) {
        h.write_bytes(&[*self as u8]);
    }
}

impl<T: StateHash> StateHash for Option<T> {
    fn state_hash(&self, h: &mut McHasher) {
        match self {
            None => h.write_bytes(&[0]),
            Some(v) => {
                h.write_bytes(&[1]);
                v.state_hash(h);
            }
        }
    }
}

impl<T: StateHash> StateHash for [T] {
    fn state_hash(&self, h: &mut McHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.state_hash(h);
        }
    }
}

impl<T: StateHash> StateHash for Vec<T> {
    fn state_hash(&self, h: &mut McHasher) {
        self.as_slice().state_hash(h);
    }
}

impl<A: StateHash, B: StateHash> StateHash for (A, B) {
    fn state_hash(&self, h: &mut McHasher) {
        self.0.state_hash(h);
        self.1.state_hash(h);
    }
}

impl StateHash for NodeId {
    fn state_hash(&self, h: &mut McHasher) {
        h.write_u64(self.raw());
    }
}

impl StateHash for TimerTag {
    fn state_hash(&self, h: &mut McHasher) {
        match self {
            TimerTag::Actor(t) => {
                h.write_bytes(&[0]);
                h.write_u64(*t);
            }
            TimerTag::Arq { port, seq } => {
                h.write_bytes(&[1]);
                h.write_u64(*port as u64);
                h.write_u64(*seq);
            }
        }
    }
}

fn hash_of<T: StateHash + ?Sized>(v: &T) -> u128 {
    let mut h = McHasher::new();
    v.state_hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// States and transitions
// ---------------------------------------------------------------------------

/// One in-flight message with its cached canonical key.
#[derive(Clone)]
struct Env<M> {
    from: u64,
    to: u64,
    msg: M,
    /// Canonical hash of `msg`, cached so sorting and state hashing
    /// never re-walk the payload.
    mh: u128,
}

impl<M> Env<M> {
    /// Canonical multiset key: destination-major so same-target
    /// deliveries (always dependent) are adjacent.
    fn key(&self) -> (u64, u64, u128) {
        (self.to, self.from, self.mh)
    }
}

/// A full checker state. Envelope and timer lists are kept canonically
/// sorted so the multiset hash is order-insensitive.
struct St<A: Actor> {
    actors: Vec<Option<A>>,
    /// Killed mid-exploration (post-mortem state retained, like the
    /// engine's `dead` vector). Pre-run faulty nodes have no actor.
    dead: Vec<bool>,
    inflight: Vec<Env<A::Msg>>,
    timers: Vec<(u64, TimerTag)>,
    loss: u32,
    dup: u32,
    kills: u32,
    halted: bool,
}

impl<A: Actor + Clone> Clone for St<A> {
    fn clone(&self) -> Self {
        St {
            actors: self.actors.clone(),
            dead: self.dead.clone(),
            inflight: self.inflight.clone(),
            timers: self.timers.clone(),
            loss: self.loss,
            dup: self.dup,
            kills: self.kills,
            halted: self.halted,
        }
    }
}

impl<A: Actor + StateHash> St<A> {
    fn hash(&self) -> u128 {
        let mut h = McHasher::new();
        for a in &self.actors {
            match a {
                None => h.write_bytes(&[0]),
                Some(a) => {
                    h.write_bytes(&[1]);
                    a.state_hash(&mut h);
                }
            }
        }
        for &d in &self.dead {
            h.write_bytes(&[d as u8]);
        }
        h.write_u64(self.inflight.len() as u64);
        for e in &self.inflight {
            h.write_u64(e.from);
            h.write_u64(e.to);
            h.write_u128(e.mh);
        }
        h.write_u64(self.timers.len() as u64);
        for (v, tag) in &self.timers {
            h.write_u64(*v);
            tag.state_hash(&mut h);
        }
        h.write_u64(self.loss as u64);
        h.write_u64(self.dup as u64);
        h.write_u64(self.kills as u64);
        h.write_bytes(&[self.halted as u8]);
        h.finish()
    }

    fn projection(&self) -> u128 {
        projection_hash(&self.actors, &self.dead)
    }
}

/// Hash of the *actor projection* of a state: per-node protocol states
/// plus mid-run death flags, excluding in-flight messages, timers and
/// budgets. This is the surface on which engine runs and checker
/// states are compared — see [`engine_projection`].
pub fn projection_hash<A: StateHash>(actors: &[Option<A>], dead: &[bool]) -> u128 {
    let mut h = McHasher::new();
    for a in actors {
        match a {
            None => h.write_bytes(&[0]),
            Some(a) => {
                h.write_bytes(&[1]);
                a.state_hash(&mut h);
            }
        }
    }
    for &d in dead {
        h.write_bytes(&[d as u8]);
    }
    h.finish()
}

/// The actor projection of a live [`crate::event::EventEngine`],
/// hashable against a checker run's [`McReport::projections`] set:
/// cross-validation asserts every projection an engine schedule passes
/// through is one the exhaustive search also reached.
pub fn engine_projection<N: Network, A: Actor + StateHash>(
    eng: &crate::event::EventEngine<'_, N, A>,
) -> u128 {
    let n = eng.network().num_nodes();
    let mut h = McHasher::new();
    for v in 0..n {
        match eng.actor(NodeId::new(v)) {
            None => h.write_bytes(&[0]),
            Some(a) => {
                h.write_bytes(&[1]);
                a.state_hash(&mut h);
            }
        }
    }
    for v in 0..n {
        h.write_bytes(&[eng.is_dead(NodeId::new(v)) as u8]);
    }
    h.finish()
}

/// One atomic exploration choice, by position in the canonical
/// enumeration of the source state (see [`McReport`] paths).
#[derive(Clone, Copy, Debug)]
enum Choice {
    Deliver(usize),
    Fire(usize),
    Drop(usize),
    Dup(usize),
    Kill(u64),
}

/// Transition metadata used for the independence relation and as sleep
/// set entries. `fp` uniquely fingerprints the transition across
/// states (same envelope key / timer / victim ⇒ same fingerprint).
#[derive(Clone, Copy, Debug, PartialEq)]
struct TMeta {
    fp: u128,
    /// 0 deliver, 1 fire, 2 drop, 3 dup, 4 kill.
    kind: u8,
    /// Actor whose state the transition touches (deliver/fire target,
    /// kill victim), or `u64::MAX` for budget-only choices.
    target: u64,
    /// Envelope key for deliver/drop/dup.
    ekey: Option<(u64, u64, u128)>,
}

/// Conservative independence: `true` only when executing either
/// transition first provably commutes *from the given state* (budgets
/// matter: two drops contend when only one loss remains).
fn indep<A: Actor>(a: &TMeta, b: &TMeta, st: &St<A>) -> bool {
    if a.fp == b.fp {
        return false;
    }
    if a.kind == 4 || b.kind == 4 {
        let (k, o) = if a.kind == 4 { (a, b) } else { (b, a) };
        if o.kind == 4 {
            return st.kills >= 2 && k.target != o.target;
        }
        // A kill purges envelopes to and timers on the victim; anything
        // addressing the victim is therefore order-sensitive.
        return o.target != k.target && o.ekey.is_none_or(|e| e.0 != k.target);
    }
    if a.kind <= 1 && b.kind <= 1 {
        // Two actor-touching transitions commute iff they touch
        // different actors (each only reads/writes its own target and
        // appends fresh effects).
        return a.target != b.target;
    }
    if let (Some(x), Some(y)) = (a.ekey, b.ekey) {
        if x == y {
            // Same envelope key: consuming/duplicating copies of the
            // same message — conservatively ordered.
            return false;
        }
    }
    if a.kind == 2 && b.kind == 2 {
        return st.loss >= 2;
    }
    if a.kind == 3 && b.kind == 3 {
        return st.dup >= 2;
    }
    true
}

// ---------------------------------------------------------------------------
// Configuration, properties, reports
// ---------------------------------------------------------------------------

/// Exploration bounds and reductions for one checker run.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Messages the adversary may silently drop along any path.
    pub loss_budget: u32,
    /// Messages the adversary may duplicate along any path.
    pub dup_budget: u32,
    /// Nodes the adversary may fault-stop mid-run.
    pub kill_budget: u32,
    /// Which nodes a kill may target (empty = kills disabled even with
    /// budget). Restricting victims keeps the branching factor scoped
    /// to the scenario under test.
    pub kill_victims: Vec<u64>,
    /// Hard cap on distinct visited states; exceeding it stops the
    /// search and sets [`McReport::truncated`] (never silent).
    pub max_states: u64,
    /// Enables the sleep-set reduction (state coverage is identical
    /// either way; this only prunes redundant transition executions).
    pub sleep_sets: bool,
    /// Enables no-op closure — only sound for protocols whose no-op
    /// deliveries are *stable* (GS/delta-GS yes, ARQ no; DESIGN.md §14).
    pub closure: bool,
    /// Collects the actor-projection hash of every reached state into
    /// [`McReport::projections`] for cross-validation against engine
    /// runs.
    pub collect_projections: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            loss_budget: 0,
            dup_budget: 0,
            kill_budget: 0,
            kill_victims: Vec::new(),
            max_states: 20_000_000,
            sleep_sets: true,
            closure: false,
            collect_projections: false,
        }
    }
}

/// A read-only view of one reached state handed to property checks.
pub struct McSnapshot<'s, A> {
    /// Per-node actor states (`None` = faulty before the run started).
    pub actors: &'s [Option<A>],
    /// Nodes fault-stopped mid-run (post-mortem actor state retained).
    pub dead: &'s [bool],
    /// `true` when nothing is in flight and no timer is armed — the
    /// states a real execution can end in.
    pub quiescent: bool,
}

/// One safety property: checked at every newly discovered state, or —
/// with [`McCheck::terminal_only`] — only at quiescent/halted states.
pub struct McCheck<'p, A> {
    /// Property name reported on violation.
    pub name: &'static str,
    /// Restricts the check to quiescent (or halted) states.
    pub terminal_only: bool,
    /// Returns `Err(detail)` on violation.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn Fn(&McSnapshot<'_, A>) -> Result<(), String> + 'p>,
}

/// A property violation with its replayable counterexample.
#[derive(Clone, Debug)]
pub struct McViolation {
    /// Name of the violated [`McCheck`].
    pub property: String,
    /// Checker-supplied detail string.
    pub detail: String,
    /// BFS depth (number of transitions from the initial state).
    pub depth: u32,
    /// Canonical choice indices from the initial state: replay with
    /// [`replay`] re-executes exactly this path, seedlessly.
    pub path: Vec<u32>,
    /// Human-readable rendering of the path (one line per step),
    /// byte-identical to what [`replay`] reproduces.
    pub rendered: String,
}

/// Outcome of one [`explore`] run.
#[derive(Clone, Debug, Default)]
pub struct McReport {
    /// Distinct states visited (after reductions).
    pub states: u64,
    /// Transitions actually executed.
    pub transitions: u64,
    /// Transitions skipped by the sleep-set reduction.
    pub pruned: u64,
    /// No-op envelopes/timers consumed by closure.
    pub closed: u64,
    /// Peak BFS frontier length.
    pub frontier_peak: u64,
    /// Quiescent states reached (where a real run can end).
    pub terminals: u64,
    /// Longest path explored, in transitions.
    pub max_depth: u32,
    /// `true` when [`McConfig::max_states`] stopped the search early —
    /// verdicts from a truncated run are not exhaustive.
    pub truncated: bool,
    /// First property violation found, if any (the search stops on it).
    pub violation: Option<McViolation>,
    /// Actor-projection hashes of every reached state, when
    /// [`McConfig::collect_projections`] was set.
    pub projections: Option<HashSet<u128>>,
}

impl McReport {
    /// Fraction of candidate transitions the sleep-set reduction
    /// skipped: `pruned / (executed + pruned)`.
    pub fn reduction_ratio(&self) -> f64 {
        let tot = self.transitions + self.pruned;
        if tot == 0 {
            0.0
        } else {
            self.pruned as f64 / tot as f64
        }
    }
}

/// Result of replaying a counterexample path.
#[derive(Clone, Debug)]
pub struct McReplay {
    /// One line per replayed step, byte-identical across replays of
    /// the same path.
    pub rendered: String,
    /// Canonical state hash after every step (initial state first).
    pub state_hashes: Vec<u128>,
    /// First `(property, detail)` violation encountered during replay.
    pub violation: Option<(String, String)>,
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

struct Mc<'a, N: Network, A: Actor> {
    net: &'a N,
    cfg: &'a McConfig,
    report: McReport,
    _ph: std::marker::PhantomData<A>,
}

impl<'a, N, A> Mc<'a, N, A>
where
    N: Network,
    A: Actor + Clone + StateHash,
    A::Msg: Clone + StateHash + std::fmt::Debug,
{
    /// Runs `f` as an actor callback on node `v` of `st` and absorbs
    /// the effects, mirroring the engine's `absorb_ctx`: sends to
    /// non-neighbors panic, sends into faulty nodes / across faulty
    /// links / to killed nodes vanish.
    fn run_callback(&self, st: &mut St<A>, v: u64, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>)) {
        let mut ctx = Ctx::detached(NodeId::new(v), 0 as Time);
        let actor = st.actors[v as usize]
            .as_mut()
            .expect("callback on a node with no actor");
        f(actor, &mut ctx);
        let (sends, timers, halt) = ctx.into_effects();
        for (_t, dst, msg) in sends {
            let d = dst.raw();
            assert!(
                self.net.port_of(v, d).is_some(),
                "{v} may only message neighbors, not {d}"
            );
            if self.net.node_faulty(d) || self.net.link_faulty(v, d) || st.dead[d as usize] {
                continue;
            }
            let mh = hash_of(&msg);
            st.inflight.push(Env {
                from: v,
                to: d,
                msg,
                mh,
            });
        }
        for (_t, tag) in timers {
            st.timers.push((v, tag));
        }
        st.halted |= halt;
    }

    fn normalize(&mut self, st: &mut St<A>) {
        st.inflight.sort_by_key(|e| e.key());
        st.timers.sort_unstable();
        if self.cfg.closure {
            self.close_noops(st);
        }
    }

    /// No-op closure: consumes envelopes/timers whose handling leaves
    /// the target actor hash-identical and produces no effects, to a
    /// fixpoint. See the module docs for the stability requirement.
    fn close_noops(&mut self, st: &mut St<A>) {
        loop {
            let mut removed = false;
            let mut i = 0;
            while i < st.inflight.len() {
                // Identical envelopes share the verdict; test one copy.
                if i > 0 && st.inflight[i].key() == st.inflight[i - 1].key() {
                    i += 1;
                    continue;
                }
                let e = &st.inflight[i];
                if self.is_noop(st, e.to, |a, ctx| {
                    let (from, msg) = (NodeId::new(e.from), e.msg.clone());
                    a.on_message(ctx, from, msg)
                }) {
                    st.inflight.remove(i);
                    self.report.closed += 1;
                    removed = true;
                } else {
                    i += 1;
                }
            }
            let mut j = 0;
            while j < st.timers.len() {
                if j > 0 && st.timers[j] == st.timers[j - 1] {
                    j += 1;
                    continue;
                }
                let (v, tag) = st.timers[j];
                if self.is_noop(st, v, |a, ctx| a.on_timer_tag(ctx, tag)) {
                    st.timers.remove(j);
                    self.report.closed += 1;
                    removed = true;
                } else {
                    j += 1;
                }
            }
            if !removed {
                break;
            }
        }
    }

    fn is_noop(&self, st: &St<A>, v: u64, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>)) -> bool {
        let Some(actor) = st.actors[v as usize].as_ref() else {
            return false;
        };
        let before = hash_of(actor);
        let mut probe = actor.clone();
        let mut ctx = Ctx::detached(NodeId::new(v), 0 as Time);
        f(&mut probe, &mut ctx);
        let (sends, timers, halt) = ctx.into_effects();
        sends.is_empty() && timers.is_empty() && !halt && hash_of(&probe) == before
    }

    /// Canonical transition enumeration. The index into the returned
    /// vector is the canonical choice index used in violation paths.
    fn choices(&self, st: &St<A>) -> Vec<(Choice, TMeta)> {
        let mut out = Vec::new();
        if st.halted {
            return out;
        }
        let per_env = |kind: u8, mk: fn(usize) -> Choice, out: &mut Vec<(Choice, TMeta)>| {
            for i in 0..st.inflight.len() {
                if i > 0 && st.inflight[i].key() == st.inflight[i - 1].key() {
                    continue; // identical copies yield identical successors
                }
                let e = &st.inflight[i];
                let mut h = McHasher::new();
                h.write_bytes(&[kind]);
                h.write_u64(e.from);
                h.write_u64(e.to);
                h.write_u128(e.mh);
                out.push((
                    mk(i),
                    TMeta {
                        fp: h.finish(),
                        kind,
                        target: if kind == 0 { e.to } else { u64::MAX },
                        ekey: Some(e.key()),
                    },
                ));
            }
        };
        per_env(0, Choice::Deliver, &mut out);
        for i in 0..st.timers.len() {
            if i > 0 && st.timers[i] == st.timers[i - 1] {
                continue;
            }
            let (v, tag) = st.timers[i];
            let mut h = McHasher::new();
            h.write_bytes(&[1]);
            h.write_u64(v);
            tag.state_hash(&mut h);
            out.push((
                Choice::Fire(i),
                TMeta {
                    fp: h.finish(),
                    kind: 1,
                    target: v,
                    ekey: None,
                },
            ));
        }
        if st.loss > 0 {
            per_env(2, Choice::Drop, &mut out);
        }
        if st.dup > 0 {
            per_env(3, Choice::Dup, &mut out);
        }
        if st.kills > 0 {
            for &v in &self.cfg.kill_victims {
                let alive = st.actors[v as usize].is_some() && !st.dead[v as usize];
                if !alive {
                    continue;
                }
                let mut h = McHasher::new();
                h.write_bytes(&[4]);
                h.write_u64(v);
                out.push((
                    Choice::Kill(v),
                    TMeta {
                        fp: h.finish(),
                        kind: 4,
                        target: v,
                        ekey: None,
                    },
                ));
            }
        }
        out
    }

    /// Executes one choice on a copy of `st` and canonicalizes the
    /// successor.
    fn exec(&mut self, st: &St<A>, c: Choice) -> St<A> {
        let mut nx = st.clone();
        match c {
            Choice::Deliver(i) => {
                let e = nx.inflight.remove(i);
                if !nx.dead[e.to as usize] {
                    self.run_callback(&mut nx, e.to, |a, ctx| {
                        a.on_message(ctx, NodeId::new(e.from), e.msg)
                    });
                }
            }
            Choice::Fire(i) => {
                let (v, tag) = nx.timers.remove(i);
                if !nx.dead[v as usize] {
                    self.run_callback(&mut nx, v, |a, ctx| a.on_timer_tag(ctx, tag));
                }
            }
            Choice::Drop(i) => {
                nx.inflight.remove(i);
                nx.loss -= 1;
            }
            Choice::Dup(i) => {
                let e = nx.inflight[i].clone();
                nx.inflight.push(e);
                nx.dup -= 1;
            }
            Choice::Kill(v) => {
                nx.dead[v as usize] = true;
                nx.kills -= 1;
                nx.inflight.retain(|e| e.to != v);
                nx.timers.retain(|&(t, _)| t != v);
            }
        }
        self.report.transitions += 1;
        self.normalize(&mut nx);
        nx
    }

    fn render_choice(&self, st: &St<A>, c: Choice) -> String {
        match c {
            Choice::Deliver(i) => {
                let e = &st.inflight[i];
                format!("deliver {} -> {}  {:?}", e.from, e.to, e.msg)
            }
            Choice::Fire(i) => {
                let (v, tag) = st.timers[i];
                format!("fire   {v}  {tag:?}")
            }
            Choice::Drop(i) => {
                let e = &st.inflight[i];
                format!("drop   {} -> {}  {:?}", e.from, e.to, e.msg)
            }
            Choice::Dup(i) => {
                let e = &st.inflight[i];
                format!("dup    {} -> {}  {:?}", e.from, e.to, e.msg)
            }
            Choice::Kill(v) => format!("kill   {v}"),
        }
    }

    fn initial(
        &mut self,
        mut init: impl FnMut(NodeId) -> A,
        injections: &[(NodeId, u64)],
    ) -> St<A> {
        let n = self.net.num_nodes();
        let mut st = St {
            actors: (0..n)
                .map(|v| {
                    if self.net.node_faulty(v) {
                        None
                    } else {
                        Some(init(NodeId::new(v)))
                    }
                })
                .collect(),
            dead: vec![false; n as usize],
            inflight: Vec::new(),
            timers: Vec::new(),
            loss: self.cfg.loss_budget,
            dup: self.cfg.dup_budget,
            kills: self.cfg.kill_budget,
            halted: false,
        };
        for v in 0..n {
            if st.actors[v as usize].is_some() {
                self.run_callback(&mut st, v, |a, ctx| a.on_start(ctx));
            }
        }
        for &(node, tag) in injections {
            assert!(
                st.actors[node.raw() as usize].is_some(),
                "injection into a faulty node"
            );
            st.timers.push((node.raw(), TimerTag::Actor(tag)));
        }
        self.normalize(&mut st);
        st
    }

    fn check_state(
        &self,
        st: &St<A>,
        checks: &[McCheck<'_, A>],
        quiescent: bool,
        terminal: bool,
    ) -> Option<(String, String)> {
        let snap = McSnapshot {
            actors: &st.actors,
            dead: &st.dead,
            quiescent,
        };
        for c in checks {
            if c.terminal_only && !terminal {
                continue;
            }
            if let Err(detail) = (c.check)(&snap) {
                return Some((c.name.to_string(), detail));
            }
        }
        None
    }
}

struct VisitedEntry {
    sleep: Vec<TMeta>,
    /// `true` once the state has been expanded with (at least) the
    /// current sleep set; re-reaching it with a strictly smaller one
    /// re-queues it.
    expanded: bool,
    parent: Option<(u128, u32)>,
    depth: u32,
}

fn sleep_superset(a: &[TMeta], b: &[TMeta]) -> bool {
    // Both sorted by fp: is `a` ⊇ `b`?
    b.iter()
        .all(|t| a.binary_search_by(|x| x.fp.cmp(&t.fp)).is_ok())
}

fn sleep_intersect(a: &[TMeta], b: &[TMeta]) -> Vec<TMeta> {
    a.iter()
        .filter(|t| b.binary_search_by(|x| x.fp.cmp(&t.fp)).is_ok())
        .cloned()
        .collect()
}

/// Exhaustively explores every reachable state of the protocol
/// `init` spawns on `net`, checking `checks` at each one.
///
/// `injections` are initial actor-timer events (node, tag) — the
/// checker explores every position in the schedule for them, exactly
/// like engine-injected timers race with protocol traffic.
///
/// On violation the search stops and [`McReport::violation`] carries a
/// canonical choice-index path from the initial state plus its
/// rendering; [`replay`] re-executes it deterministically.
pub fn explore<N, A>(
    net: &N,
    init: impl FnMut(NodeId) -> A,
    injections: &[(NodeId, u64)],
    cfg: &McConfig,
    checks: &[McCheck<'_, A>],
) -> McReport
where
    N: Network,
    A: Actor + Clone + StateHash,
    A::Msg: Clone + StateHash + std::fmt::Debug,
{
    let mut mc = Mc::<'_, N, A> {
        net,
        cfg,
        report: McReport::default(),
        _ph: std::marker::PhantomData,
    };
    if cfg.collect_projections {
        mc.report.projections = Some(HashSet::new());
    }

    let init_st = mc.initial(init, injections);
    let h0 = init_st.hash();
    let mut visited: HashMap<u128, VisitedEntry> = HashMap::new();
    visited.insert(
        h0,
        VisitedEntry {
            sleep: Vec::new(),
            expanded: false,
            parent: None,
            depth: 0,
        },
    );
    mc.report.states = 1;
    if let Some(p) = mc.report.projections.as_mut() {
        p.insert(init_st.projection());
    }

    let mut frontier: VecDeque<(St<A>, u128)> = VecDeque::new();
    let mut violation_at: Option<(u128, String, String)> = None;

    // Check the initial state before exploring from it.
    {
        let quiescent = init_st.inflight.is_empty() && init_st.timers.is_empty();
        let terminal = quiescent || init_st.halted;
        if let Some((p, d)) = mc.check_state(&init_st, checks, quiescent, terminal) {
            violation_at = Some((h0, p, d));
        }
        if quiescent {
            mc.report.terminals += 1;
        }
    }
    if violation_at.is_none() {
        frontier.push_back((init_st, h0));
    }

    'search: while let Some((st, h)) = frontier.pop_front() {
        mc.report.frontier_peak = mc.report.frontier_peak.max(frontier.len() as u64 + 1);
        let (sleep, depth) = {
            let e = visited.get_mut(&h).expect("frontier state is visited");
            if e.expanded {
                continue; // a fresher queue entry already covered this sleep set
            }
            e.expanded = true;
            (e.sleep.clone(), e.depth)
        };
        let cs = mc.choices(&st);
        let mut explored: Vec<TMeta> = Vec::new();
        for (i, (c, m)) in cs.iter().enumerate() {
            if cfg.sleep_sets && sleep.binary_search_by(|x| x.fp.cmp(&m.fp)).is_ok() {
                mc.report.pruned += 1;
                continue;
            }
            let succ = mc.exec(&st, *c);
            let hs = succ.hash();
            let mut next_sleep: Vec<TMeta> = if cfg.sleep_sets {
                sleep
                    .iter()
                    .chain(explored.iter())
                    .filter(|t| indep::<A>(t, m, &st))
                    .cloned()
                    .collect()
            } else {
                Vec::new()
            };
            next_sleep.sort_by_key(|t| t.fp);
            next_sleep.dedup_by(|a, b| a.fp == b.fp);
            explored.push(*m);

            match visited.get_mut(&hs) {
                None => {
                    let quiescent = succ.inflight.is_empty() && succ.timers.is_empty();
                    let terminal = quiescent || succ.halted;
                    if quiescent {
                        mc.report.terminals += 1;
                    }
                    visited.insert(
                        hs,
                        VisitedEntry {
                            sleep: next_sleep,
                            expanded: false,
                            parent: Some((h, i as u32)),
                            depth: depth + 1,
                        },
                    );
                    mc.report.states += 1;
                    mc.report.max_depth = mc.report.max_depth.max(depth + 1);
                    if let Some(p) = mc.report.projections.as_mut() {
                        p.insert(succ.projection());
                    }
                    if let Some((prop, det)) = mc.check_state(&succ, checks, quiescent, terminal) {
                        violation_at = Some((hs, prop, det));
                        break 'search;
                    }
                    if mc.report.states >= cfg.max_states {
                        mc.report.truncated = true;
                        break 'search;
                    }
                    frontier.push_back((succ, hs));
                }
                Some(e) => {
                    if sleep_superset(&next_sleep, &e.sleep) {
                        // Arriving with a bigger (or equal) sleep set:
                        // everything we would explore is already
                        // covered.
                        continue;
                    }
                    e.sleep = sleep_intersect(&e.sleep, &next_sleep);
                    if e.expanded {
                        e.expanded = false;
                        frontier.push_back((succ, hs));
                    }
                }
            }
        }
    }

    if let Some((hv, prop, detail)) = violation_at {
        // Walk the parent chain back to the root to get the canonical
        // index path, then replay it once for the rendering.
        let mut path: Vec<u32> = Vec::new();
        let mut cur = hv;
        let mut depth = 0;
        while let Some(e) = visited.get(&cur) {
            depth = depth.max(e.depth);
            match e.parent {
                Some((ph, idx)) => {
                    path.push(idx);
                    cur = ph;
                }
                None => break,
            }
        }
        path.reverse();
        mc.report.violation = Some(McViolation {
            property: prop,
            detail,
            depth,
            rendered: String::new(),
            path,
        });
    }
    mc.report
}

/// Deterministically re-executes a canonical choice-index `path` from
/// the initial state of the same system, re-running `checks` along the
/// way. Two replays of the same path produce byte-identical
/// [`McReplay::rendered`] text — the artifact format counterexamples
/// are pinned in.
pub fn replay<N, A>(
    net: &N,
    init: impl FnMut(NodeId) -> A,
    injections: &[(NodeId, u64)],
    cfg: &McConfig,
    checks: &[McCheck<'_, A>],
    path: &[u32],
) -> McReplay
where
    N: Network,
    A: Actor + Clone + StateHash,
    A::Msg: Clone + StateHash + std::fmt::Debug,
{
    let mut mc = Mc::<'_, N, A> {
        net,
        cfg,
        report: McReport::default(),
        _ph: std::marker::PhantomData,
    };
    let mut st = mc.initial(init, injections);
    let mut rendered = String::new();
    let mut hashes = vec![st.hash()];
    let mut violation = None;
    let check_here = |mc: &Mc<'_, N, A>, st: &St<A>| {
        let quiescent = st.inflight.is_empty() && st.timers.is_empty();
        mc.check_state(st, checks, quiescent, quiescent || st.halted)
    };
    if violation.is_none() {
        violation = check_here(&mc, &st);
    }
    for (step, &idx) in path.iter().enumerate() {
        let cs = mc.choices(&st);
        assert!(
            (idx as usize) < cs.len(),
            "replay step {step}: choice {idx} out of range ({} enabled)",
            cs.len()
        );
        let (c, _) = cs[idx as usize];
        use std::fmt::Write as _;
        let _ = writeln!(
            rendered,
            "step {:>3}: choice {:>2}  {}",
            step + 1,
            idx,
            mc.render_choice(&st, c)
        );
        st = mc.exec(&st, c);
        hashes.push(st.hash());
        if violation.is_none() {
            violation = check_here(&mc, &st);
        }
    }
    McReplay {
        rendered,
        state_hashes: hashes,
        violation,
    }
}

/// Renders a violation into the trace-artifact text format used under
/// `tests/corpus/`: a header naming the property, then the replayed
/// step lines. Byte-stable across runs.
pub fn render_artifact(v: &McViolation) -> String {
    format!(
        "mc counterexample\nproperty: {}\ndetail: {}\ndepth: {}\npath: {}\n--\n{}",
        v.property,
        v.detail,
        v.depth,
        v.path
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(","),
        v.rendered
    )
}

/// Parses the `path:` line back out of a [`render_artifact`] trace.
pub fn parse_artifact_path(text: &str) -> Option<Vec<u32>> {
    let line = text.lines().find(|l| l.starts_with("path: "))?;
    let body = line.trim_start_matches("path: ").trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::HypercubeNet;
    use hypersafe_topology::{FaultConfig, Hypercube};

    /// A toy flood: node 0 holds a token and announces it; every node
    /// that first receives it re-announces once. Monotone (a holder
    /// never un-holds, re-deliveries are no-ops), so no-op closure is
    /// sound, and the total message count is bounded by 2 per node —
    /// the whole state space stays tiny even without reductions.
    #[derive(Clone)]
    struct Flood {
        me: u64,
        have: bool,
        n: u8,
    }

    impl StateHash for Flood {
        fn state_hash(&self, h: &mut McHasher) {
            h.write_bytes(&[self.have as u8]);
        }
    }

    impl Actor for Flood {
        type Msg = u8;

        fn on_start(&mut self, ctx: &mut Ctx<u8>) {
            if self.have {
                for d in 0..self.n {
                    ctx.send(ctx.self_id().neighbor(d), 1, 1);
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<u8>, _from: NodeId, _msg: u8) {
            if !self.have {
                self.have = true;
                for d in 0..self.n {
                    ctx.send(ctx.self_id().neighbor(d), 1, 1);
                }
            }
        }
    }

    fn gossip_init(v: NodeId) -> Flood {
        Flood {
            me: v.raw(),
            have: v.raw() == 0,
            n: 2,
        }
    }

    fn q2() -> FaultConfig {
        FaultConfig::fault_free(Hypercube::new(2))
    }

    fn full_knowledge_check<'p>() -> McCheck<'p, Flood> {
        McCheck {
            name: "flood-complete",
            terminal_only: true,
            check: Box::new(|s: &McSnapshot<'_, Flood>| {
                if !s.quiescent {
                    return Ok(());
                }
                for a in s.actors.iter().flatten() {
                    if !a.have {
                        return Err(format!("node {} never got the token", a.me));
                    }
                }
                Ok(())
            }),
        }
    }

    #[test]
    fn gossip_on_q2_converges_everywhere() {
        let cfg = q2();
        let net = HypercubeNet::new(&cfg);
        let mcfg = McConfig {
            closure: true,
            ..McConfig::default()
        };
        let rep = explore(&net, gossip_init, &[], &mcfg, &[full_knowledge_check()]);
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert!(!rep.truncated);
        assert!(rep.states > 1);
        assert!(rep.terminals >= 1);
    }

    #[test]
    fn sleep_sets_preserve_the_reachable_state_set() {
        let cfg = q2();
        let net = HypercubeNet::new(&cfg);
        let base = McConfig {
            collect_projections: true,
            sleep_sets: false,
            ..McConfig::default()
        };
        let slept = McConfig {
            sleep_sets: true,
            ..base.clone()
        };
        let a = explore(&net, gossip_init, &[], &base, &[]);
        let b = explore(&net, gossip_init, &[], &slept, &[]);
        assert_eq!(a.projections, b.projections);
        assert_eq!(a.states, b.states);
        assert!(b.pruned > 0, "sleep sets should prune something");
        assert!(b.transitions < a.transitions);
    }

    #[test]
    fn closure_collapses_noop_deliveries_without_changing_projections() {
        let cfg = q2();
        let net = HypercubeNet::new(&cfg);
        let open = McConfig {
            collect_projections: true,
            closure: false,
            ..McConfig::default()
        };
        let closed = McConfig {
            closure: true,
            ..open.clone()
        };
        let a = explore(&net, gossip_init, &[], &open, &[]);
        let b = explore(&net, gossip_init, &[], &closed, &[]);
        assert!(b.closed > 0, "closure should consume stale announcements");
        assert!(b.states < a.states);
        // Every actor projection reachable with closure is reachable
        // without it (closure only removes no-effect transitions).
        let (pa, pb) = (a.projections.unwrap(), b.projections.unwrap());
        assert!(pb.is_subset(&pa));
        // And the full-knowledge projections agree.
        assert!(a.violation.is_none() && b.violation.is_none());
    }

    #[test]
    fn violation_paths_replay_byte_identically() {
        // Plant a violation: the all-ones state is reported as an
        // error, so the checker must find a path to convergence.
        let cfg = q2();
        let net = HypercubeNet::new(&cfg);
        let trap = McCheck {
            name: "trap",
            terminal_only: false,
            check: Box::new(|s: &McSnapshot<'_, Flood>| {
                let holders = s.actors.iter().flatten().filter(|a| a.have).count();
                if holders >= 3 {
                    Err(format!("{holders} nodes hold the token"))
                } else {
                    Ok(())
                }
            }),
        };
        let mcfg = McConfig::default();
        let rep = explore(&net, gossip_init, &[], &mcfg, &[trap]);
        let v = rep.violation.expect("trap must spring");
        assert!(!v.path.is_empty());
        let r1 = replay(&net, gossip_init, &[], &mcfg, &[], &v.path);
        let r2 = replay(&net, gossip_init, &[], &mcfg, &[], &v.path);
        assert_eq!(r1.rendered, r2.rendered);
        assert_eq!(r1.state_hashes, r2.state_hashes);
        assert!(!r1.rendered.is_empty());
    }

    #[test]
    fn loss_budget_reaches_partially_informed_terminals() {
        let cfg = q2();
        let net = HypercubeNet::new(&cfg);
        let lossy = McConfig {
            loss_budget: 4,
            ..McConfig::default()
        };
        let lossless = McConfig::default();
        // Losslessly the flood always completes ...
        let a = explore(&net, gossip_init, &[], &lossless, &[full_knowledge_check()]);
        assert!(a.violation.is_none(), "{:?}", a.violation);
        assert_eq!(a.terminals, 1, "lossless flood has one quiescent state");
        // ... but an adversary that may drop messages can strand nodes,
        // which the terminal check must catch with a replayable path.
        let b = explore(&net, gossip_init, &[], &lossy, &[full_knowledge_check()]);
        let v = b.violation.expect("a dropped token must strand a node");
        assert!(!v.path.is_empty());
        let r = replay(&net, gossip_init, &[], &lossy, &[], &v.path);
        assert!(r.rendered.contains("drop"));
    }

    #[test]
    fn kill_choices_purge_and_are_bounded() {
        let cfg = q2();
        let net = HypercubeNet::new(&cfg);
        let mcfg = McConfig {
            kill_budget: 1,
            kill_victims: vec![3],
            ..McConfig::default()
        };
        let rep = explore(&net, gossip_init, &[], &mcfg, &[]);
        assert!(rep.violation.is_none());
        assert!(!rep.truncated);
        // Killing node 3 must be reachable; with it dead the others
        // may still converge among themselves.
        assert!(rep.states > 0);
    }

    #[test]
    fn artifact_roundtrips_path() {
        let v = McViolation {
            property: "p".into(),
            detail: "d".into(),
            depth: 3,
            path: vec![0, 2, 1],
            rendered: "step 1\n".into(),
        };
        let text = render_artifact(&v);
        assert_eq!(parse_artifact_path(&text).unwrap(), vec![0, 2, 1]);
    }

    #[test]
    fn injections_race_with_protocol_traffic() {
        let cfg = q2();
        let net = HypercubeNet::new(&cfg);
        let mcfg = McConfig::default();
        // An injected timer on node 0 (ignored by Gossip::on_timer
        // default) must still appear as an explorable choice.
        let rep = explore(&net, gossip_init, &[(NodeId::new(0), 7)], &mcfg, &[]);
        assert!(rep.violation.is_none());
        assert!(rep.states > 1);
    }
}
