//! Resilient routing service: epoch snapshots, a request lifecycle
//! state machine, and a graceful-degradation ladder under fault churn.
//!
//! The paper's router assumes a quiescent fault set; a long-lived
//! service must keep answering route queries *while* faults churn.
//! This module supplies the topology-agnostic machinery:
//!
//! * [`EpochHandle`] — a hand-rolled `ArcSwap`-style publication cell.
//!   Readers obtain an immutable [`Epoch`] snapshot without ever
//!   blocking and without ever observing a torn value; a single writer
//!   clones the current snapshot, applies a delta, and publishes the
//!   next epoch atomically.
//! * [`RoutingService`] — a deterministic discrete-event loop driving
//!   the explicit request state machine `Pending → Routing →
//!   {Delivered, Degraded, Rejected, TimedOut}` with per-request
//!   deadlines, bounded retries with exponential backoff + seeded
//!   jitter, cancellation, and admission control (a bounded in-flight
//!   window with a load-shed counter). Same-tick event order is
//!   delegated to the DST [`Scheduler`], so whole service runs are
//!   seed-replayable and shrinkable exactly like engine runs.
//! * [`RouteProvider`] — the seam between the generic lifecycle and
//!   the concrete safety-level routing stack (implemented in
//!   `hypersafe-core`, which layers `safety_delta::apply_fault` /
//!   `apply_recover` and the reroute machinery behind it).
//!
//! ## The degradation ladder
//!
//! One route attempt resolves to a rung, best first:
//!
//! 1. **Optimal** — the snapshot admits an optimal path and the walk
//!    survives the live fault set.
//! 2. **Suboptimal** — the snapshot only admits a suboptimal path
//!    (delivered, length ≤ `H + 2`).
//! 3. **Detour** — the snapshot refuses, but a dynamic reroute against
//!    the live fault set still delivers.
//! 4. **Retry** — the walk hit a node that died after the snapshot was
//!    taken (`Stale`): back off and re-route against a fresher epoch,
//!    up to [`ServiceConfig::retry_limit`] attempts.
//! 5. **Typed rejection** — `Unreachable` after the retry budget,
//!    `SourceFaulty` / `DestinationFaulty` immediately, `Overloaded`
//!    at admission, `Cancelled` on request.
//!
//! Requests that exhaust their deadline terminate `TimedOut` exactly
//! one tick after the deadline (the deadline event itself), never
//! later — the lifecycle proptests pin this.

use crate::channel::{mix, uniform_inclusive};
use crate::event::Time;
use crate::obs::QuantileHist;
use crate::sim::Scheduler;
use hypersafe_topology::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

// ---------------------------------------------------------------------------
// Epoch snapshots
// ---------------------------------------------------------------------------

/// An immutable published generation: the epoch number and the value.
#[derive(Debug)]
pub struct Epoch<T> {
    /// Monotone generation counter, starting at 0 for the initial value.
    pub epoch: u64,
    /// The snapshot payload (e.g. a `(FaultConfig, SafetyMap)` pair).
    pub data: T,
}

/// One ring slot: an optionally-published immutable generation.
type EpochSlot<T> = RwLock<Option<Arc<Epoch<T>>>>;

/// A hand-rolled `ArcSwap`: readers [`EpochHandle::load`] an
/// `Arc<Epoch<T>>` snapshot without blocking; one writer at a time
/// [`EpochHandle::publish`]es the next generation atomically.
///
/// Internally a small ring of slots. The writer installs generation
/// `e` into slot `e % SLOTS` *before* flipping the `current` index, so
/// a reader that loads `current` never races the slot being written —
/// the slot under mutation is always `SLOTS − 1` generations away from
/// the published one. A reader that stalls long enough for the ring to
/// lap it simply retries and picks up a *newer* fully-published epoch;
/// it can never observe a torn or partially-written value, because
/// every observation is an `Arc` clone of an immutable allocation.
///
/// No `unsafe`, no dependencies beyond `std::sync`.
pub struct EpochHandle<T> {
    slots: Box<[EpochSlot<T>]>,
    /// Index of the latest fully-published slot.
    current: AtomicUsize,
    /// Serializes writers; holds the next epoch number.
    writer: Mutex<u64>,
}

/// Ring size: how many generations a reader may lag before it retries
/// against a newer epoch.
const EPOCH_SLOTS: usize = 8;

impl<T> EpochHandle<T> {
    /// A handle whose epoch 0 is `initial`.
    pub fn new(initial: T) -> Self {
        let slots: Box<[EpochSlot<T>]> = (0..EPOCH_SLOTS)
            .map(|_| RwLock::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        *slots[0].write().expect("fresh lock") = Some(Arc::new(Epoch {
            epoch: 0,
            data: initial,
        }));
        EpochHandle {
            slots,
            current: AtomicUsize::new(0),
            writer: Mutex::new(1),
        }
    }

    /// The latest published snapshot. Never blocks on the writer: the
    /// slot being written is never the one `current` points at, and a
    /// lapped reader retries against the fresher index.
    pub fn load(&self) -> Arc<Epoch<T>> {
        loop {
            let i = self.current.load(Ordering::Acquire);
            if let Ok(guard) = self.slots[i].try_read() {
                if let Some(snap) = guard.as_ref() {
                    return Arc::clone(snap);
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Epoch number of the latest published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }

    /// Publishes `data` as the next generation and returns its epoch
    /// number. Concurrent writers serialize; readers are never blocked
    /// (they keep loading the previous generation until the atomic
    /// index flips).
    pub fn publish(&self, data: T) -> u64 {
        let mut next = self.writer.lock().expect("writer lock");
        let e = *next;
        let slot = (e as usize) % self.slots.len();
        {
            // Only a reader lapped by SLOTS−1 generations can still
            // hold this slot's read guard; the wait is bounded by its
            // (tiny) guard scope.
            let mut guard = self.slots[slot].write().expect("slot lock");
            *guard = Some(Arc::new(Epoch { epoch: e, data }));
        }
        self.current.store(slot, Ordering::Release);
        *next = e + 1;
        e
    }

    /// Clone-apply-publish in one step: reads the current snapshot,
    /// derives the next value, publishes it. The read and publish are
    /// atomic with respect to other `update` callers.
    pub fn update(&self, f: impl FnOnce(&Epoch<T>) -> T) -> u64 {
        // Hold the writer lock across the read so two updaters cannot
        // both derive from the same parent.
        let mut next = self.writer.lock().expect("writer lock");
        let parent = {
            let i = self.current.load(Ordering::Acquire);
            let guard = self.slots[i].read().expect("slot lock");
            Arc::clone(guard.as_ref().expect("current slot is published"))
        };
        let data = f(&parent);
        let e = *next;
        let slot = (e as usize) % self.slots.len();
        {
            let mut guard = self.slots[slot].write().expect("slot lock");
            *guard = Some(Arc::new(Epoch { epoch: e, data }));
        }
        self.current.store(slot, Ordering::Release);
        *next = e + 1;
        e
    }
}

// ---------------------------------------------------------------------------
// Request lifecycle types
// ---------------------------------------------------------------------------

/// Request identifier: position in the injection load order.
pub type ReqId = u64;

/// Which ladder rung a successful attempt landed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryRung {
    /// Snapshot admitted an optimal (Hamming-length) path.
    Optimal,
    /// Snapshot admitted only a suboptimal path.
    Suboptimal,
    /// Snapshot refused; a dynamic reroute against the live fault set
    /// delivered anyway.
    Detour,
}

/// Why a delivered request is reported `Degraded` instead of
/// `Delivered`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// Delivered on the suboptimal rung (path ≤ `H + 2`).
    Suboptimal,
    /// Delivered by detouring via the live-state reroute machinery.
    Detour,
    /// Delivered only after one or more stale-snapshot retries.
    StaleRetry {
        /// Retries spent before the successful attempt.
        attempts: u32,
    },
}

/// Why a request was rejected. Every reason is typed so callers can
/// distinguish load shedding from topology and from cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission control: the in-flight window was full at submit time.
    Overloaded,
    /// The caller cancelled before a terminal state was reached.
    Cancelled,
    /// The source node is faulty in the live fault set.
    SourceFaulty,
    /// The destination node is faulty in the live fault set.
    DestinationFaulty,
    /// No feasible route after the full retry ladder.
    Unreachable {
        /// Attempts spent (initial + retries).
        attempts: u32,
    },
}

/// Terminal state of one request — exactly one is ever assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// Delivered on the optimal rung, first attempt.
    Delivered {
        /// Hops walked.
        hops: u32,
    },
    /// Delivered, but on a lower rung of the ladder.
    Degraded {
        /// Which rung / why.
        reason: DegradeReason,
        /// Hops walked by the successful attempt.
        hops: u32,
    },
    /// Not delivered, with a typed reason.
    Rejected {
        /// Why the service refused.
        reason: RejectReason,
    },
    /// The per-request deadline elapsed before any attempt succeeded.
    TimedOut,
}

/// Lifecycle state machine of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqState {
    /// Submitted, not yet admitted.
    Pending,
    /// Admitted; attempt(s) in flight.
    Routing {
        /// Retries consumed so far.
        attempts: u32,
    },
    /// Finished; the terminal state is final and unique.
    Done(Terminal),
}

/// Verdict of one route attempt, produced by the [`RouteProvider`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptVerdict {
    /// Delivered on the given rung.
    Delivered {
        /// Rung the attempt landed on.
        rung: DeliveryRung,
        /// Hops walked.
        hops: u32,
    },
    /// The snapshot's plan crossed a node that is faulty in the live
    /// fault set — the snapshot is stale; retry against a fresher one.
    Stale,
    /// No feasible route even via detour against the live state.
    Unreachable,
    /// The source is faulty in the live fault set.
    SourceFaulty,
    /// The destination is faulty in the live fault set.
    DestinationFaulty,
}

/// One attempt: which epoch's snapshot planned it, and how it ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttemptOutcome {
    /// Epoch of the snapshot the plan was issued against.
    pub epoch: u64,
    /// How the attempt resolved.
    pub verdict: AttemptVerdict,
}

/// One *redundant* attempt: the message was fanned across up to `k`
/// node-disjoint paths, and `delivered_paths` of them survived the
/// live fault set. Produced by [`RouteProvider::attempt_redundant`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RedundantOutcome {
    /// Epoch of the snapshot the fan was planned against.
    pub epoch: u64,
    /// Disjoint paths that delivered (0 = the request failed).
    pub delivered_paths: u32,
    /// Hops of the shortest delivered copy (first-copy latency);
    /// 0 when nothing delivered.
    pub best_hops: u32,
    /// Hops summed over all delivered copies (message overhead).
    pub total_hops: u32,
}

/// The seam between the generic lifecycle engine and a concrete
/// routing stack. `hypersafe-core` implements this over
/// `SafetyMap` snapshots maintained by `safety_delta`.
pub trait RouteProvider {
    /// One route attempt `s → d` against the current snapshot,
    /// validated against the live fault set.
    fn attempt(&mut self, s: NodeId, d: NodeId) -> AttemptOutcome;

    /// One *redundant* attempt: plan up to `k` node-disjoint paths on
    /// the snapshot, validate each against the live fault set, and
    /// report how many copies got through. The default degrades
    /// gracefully to a single [`RouteProvider::attempt`] — providers
    /// with a real multi-path planner (e.g. `hypersafe-core`'s
    /// `route_disjoint`) override this.
    fn attempt_redundant(&mut self, s: NodeId, d: NodeId, k: u8) -> RedundantOutcome {
        let _ = k;
        let out = self.attempt(s, d);
        match out.verdict {
            AttemptVerdict::Delivered { hops, .. } => RedundantOutcome {
                epoch: out.epoch,
                delivered_paths: 1,
                best_hops: hops,
                total_hops: hops,
            },
            _ => RedundantOutcome {
                epoch: out.epoch,
                delivered_paths: 0,
                best_hops: 0,
                total_hops: 0,
            },
        }
    }

    /// Applies a churn event to the *live* fault set immediately and
    /// queues the corresponding epoch delta for publication. Returns
    /// `false` for no-ops (faulting a faulty node, recovering a
    /// healthy one) — the event is then dropped.
    fn apply_churn(&mut self, node: NodeId, fault: bool) -> bool;

    /// Publishes the oldest queued epoch delta (the writer side of the
    /// snapshot store). Returns the new epoch number, or `None` if
    /// nothing was pending.
    fn publish_next(&mut self) -> Option<u64>;

    /// Epoch number of the latest published snapshot.
    fn current_epoch(&self) -> u64;

    /// Consistency check run at quiescent points (after each epoch
    /// publication and at end of run). `Err` aborts nothing but is
    /// recorded as an invariant violation.
    fn check_invariants(&mut self) -> Result<(), String> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Service configuration and statistics
// ---------------------------------------------------------------------------

/// Tuning knobs for the request lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Admission window: submits beyond this many in-flight requests
    /// are shed with [`RejectReason::Overloaded`].
    pub max_in_flight: usize,
    /// Retries after the first attempt before
    /// [`RejectReason::Unreachable`].
    pub retry_limit: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Time,
    /// Backoff saturation.
    pub backoff_cap: Time,
    /// Maximum extra seeded jitter added to each backoff delay.
    pub jitter_max: Time,
    /// Seed for the deterministic retry jitter.
    pub jitter_seed: u64,
    /// Delay between a churn event hitting the live fault set and the
    /// corresponding epoch publication (the safety-level
    /// restabilization window; staleness is real inside it).
    pub publish_lag: Time,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_in_flight: 64,
            retry_limit: 3,
            backoff_base: 2,
            backoff_cap: 16,
            jitter_max: 2,
            jitter_seed: 0x5EED_0F5E_51CE,
            publish_lag: 4,
        }
    }
}

/// Ladder-rung and lifecycle counters plus per-rung latency
/// histograms. All latencies are virtual ticks from submit to the
/// terminal transition.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Delivered on the optimal rung, first attempt.
    pub delivered_optimal: u64,
    /// Delivered suboptimally, first attempt.
    pub degraded_suboptimal: u64,
    /// Delivered via live-state detour, first attempt.
    pub degraded_detour: u64,
    /// Delivered after ≥ 1 stale-snapshot retry.
    pub degraded_retry: u64,
    /// Shed at admission.
    pub rejected_overloaded: u64,
    /// Cancelled by the caller.
    pub rejected_cancelled: u64,
    /// Source faulty at attempt time.
    pub rejected_source_faulty: u64,
    /// Destination faulty at attempt time.
    pub rejected_destination_faulty: u64,
    /// Retry ladder exhausted.
    pub rejected_unreachable: u64,
    /// Deadline elapsed.
    pub timed_out: u64,
    /// Retry attempts scheduled (across all requests).
    pub retries: u64,
    /// Cancel events that arrived after a terminal state (no-ops).
    pub cancels_ignored: u64,
    /// Churn events applied to the live fault set.
    pub churn_applied: u64,
    /// Churn events dropped as no-ops.
    pub churn_skipped: u64,
    /// Epochs published by the writer.
    pub epochs_published: u64,
    /// Terminal transitions performed — must equal the number of
    /// requests at end of run (each request terminates exactly once).
    pub terminal_transitions: u64,
    /// High-water mark of the in-flight window.
    pub max_in_flight_seen: usize,
    /// Invariant violations recorded at quiescent points.
    pub invariant_violations: u64,
    /// Latency histogram per successful rung.
    pub lat_optimal: QuantileHist,
    /// Latency histogram, suboptimal rung.
    pub lat_suboptimal: QuantileHist,
    /// Latency histogram, detour rung.
    pub lat_detour: QuantileHist,
    /// Latency histogram, retry rung.
    pub lat_retry: QuantileHist,
    /// Latency histogram over rejected requests.
    pub lat_rejected: QuantileHist,
    /// Latency histogram over timed-out requests.
    pub lat_timed_out: QuantileHist,
}

impl ServiceStats {
    /// Total requests that reached a terminal state.
    pub fn terminals(&self) -> u64 {
        self.delivered_optimal
            + self.degraded_suboptimal
            + self.degraded_detour
            + self.degraded_retry
            + self.rejected_overloaded
            + self.rejected_cancelled
            + self.rejected_source_faulty
            + self.rejected_destination_faulty
            + self.rejected_unreachable
            + self.timed_out
    }

    /// Requests that were actually delivered (any rung).
    pub fn delivered(&self) -> u64 {
        self.delivered_optimal
            + self.degraded_suboptimal
            + self.degraded_detour
            + self.degraded_retry
    }

    /// Deterministic text rendering — the replay-equality artifact for
    /// the byte-identical soak tests.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let q = |h: &QuantileHist| {
            let q = h.quantiles();
            format!(
                "n={} p50={} p95={} p99={} max={}",
                h.total(),
                q.p50,
                q.p95,
                q.p99,
                q.max
            )
        };
        let _ = writeln!(
            s,
            "optimal {} [{}]",
            self.delivered_optimal,
            q(&self.lat_optimal)
        );
        let _ = writeln!(
            s,
            "suboptimal {} [{}]",
            self.degraded_suboptimal,
            q(&self.lat_suboptimal)
        );
        let _ = writeln!(
            s,
            "detour {} [{}]",
            self.degraded_detour,
            q(&self.lat_detour)
        );
        let _ = writeln!(s, "retry {} [{}]", self.degraded_retry, q(&self.lat_retry));
        let _ = writeln!(
            s,
            "rejected overloaded={} cancelled={} source={} dest={} unreachable={} [{}]",
            self.rejected_overloaded,
            self.rejected_cancelled,
            self.rejected_source_faulty,
            self.rejected_destination_faulty,
            self.rejected_unreachable,
            q(&self.lat_rejected),
        );
        let _ = writeln!(
            s,
            "timed_out {} [{}]",
            self.timed_out,
            q(&self.lat_timed_out)
        );
        let _ = writeln!(
            s,
            "retries={} cancels_ignored={} churn_applied={} churn_skipped={} epochs={} \
             terminals={} max_in_flight={} violations={}",
            self.retries,
            self.cancels_ignored,
            self.churn_applied,
            self.churn_skipped,
            self.epochs_published,
            self.terminal_transitions,
            self.max_in_flight_seen,
            self.invariant_violations,
        );
        s
    }
}

// ---------------------------------------------------------------------------
// The deterministic service event loop
// ---------------------------------------------------------------------------

/// One externally-injected event for a service run. Loaded up front via
/// [`RoutingService::load`]; request ids are assigned in list order so
/// a workload generator can reference its own submits in `Cancel`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Submit a route request at `at` with a relative deadline.
    Submit {
        /// Arrival time.
        at: Time,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Ticks from submit to the deadline.
        deadline: Time,
    },
    /// Fault (`fault = true`) or recover a node at `at`.
    Churn {
        /// Event time.
        at: Time,
        /// The node.
        node: NodeId,
        /// `true` = fault, `false` = recover.
        fault: bool,
    },
    /// Cancel request `req` (the id of the `req`-th `Submit` in the
    /// injection list) at `at`. Idempotent: cancelling a terminal
    /// request is a no-op.
    Cancel {
        /// Event time.
        at: Time,
        /// Target request id.
        req: ReqId,
    },
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Submit(ReqId),
    Attempt(ReqId),
    Deadline(ReqId),
    Churn { node: NodeId, fault: bool },
    Publish,
    Cancel(ReqId),
}

#[derive(Clone, Debug)]
struct Request {
    src: NodeId,
    dst: NodeId,
    submit: Time,
    /// Absolute deadline; terminal no later than `deadline + 1`.
    deadline: Time,
    state: ReqState,
    /// Epoch of the last attempt's snapshot.
    epoch: u64,
    /// Time of the terminal transition.
    done_at: Time,
}

/// The resilient routing service: a deterministic discrete-event loop
/// over a [`RouteProvider`]. Construct, [`RoutingService::load`] an
/// injection list, then [`RoutingService::run`]; everything is a pure
/// function of `(provider, config, scheduler, injections)`.
pub struct RoutingService<P: RouteProvider> {
    provider: P,
    cfg: ServiceConfig,
    sched: Box<dyn Scheduler>,
    heap: BinaryHeap<Reverse<(Time, u64, u64, u64)>>,
    /// Payloads keyed by the heap entry's sequence number.
    events: Vec<Ev>,
    requests: Vec<Request>,
    now: Time,
    seq: u64,
    in_flight: usize,
    stats: ServiceStats,
    /// First few invariant-violation details, for reports.
    violations: Vec<String>,
}

impl<P: RouteProvider> RoutingService<P> {
    /// A service over `provider` with FIFO same-tick ordering.
    pub fn new(provider: P, cfg: ServiceConfig) -> Self {
        Self::with_scheduler(provider, cfg, Box::new(crate::sim::FifoScheduler))
    }

    /// A service whose same-tick event order is decided by `sched` —
    /// plug in an [`crate::sim::AdversarialScheduler`] for DST runs.
    pub fn with_scheduler(provider: P, cfg: ServiceConfig, sched: Box<dyn Scheduler>) -> Self {
        assert!(cfg.backoff_base > 0, "backoff_base must be positive");
        RoutingService {
            provider,
            cfg,
            sched,
            heap: BinaryHeap::new(),
            events: Vec::new(),
            requests: Vec::new(),
            now: 0,
            seq: 0,
            in_flight: 0,
            stats: ServiceStats::default(),
            violations: Vec::new(),
        }
    }

    /// Registers the workload. Submits are assigned consecutive
    /// [`ReqId`]s in list order (what `Injection::Cancel` refers to).
    pub fn load(&mut self, injections: &[Injection]) {
        for inj in injections {
            match *inj {
                Injection::Submit {
                    at,
                    src,
                    dst,
                    deadline,
                } => {
                    let id = self.requests.len() as ReqId;
                    self.requests.push(Request {
                        src,
                        dst,
                        submit: at,
                        deadline: at + deadline,
                        state: ReqState::Pending,
                        epoch: 0,
                        done_at: 0,
                    });
                    self.push(at, Ev::Submit(id), dst.raw());
                }
                Injection::Churn { at, node, fault } => {
                    self.push(at, Ev::Churn { node, fault }, node.raw());
                }
                Injection::Cancel { at, req } => {
                    self.push(at, Ev::Cancel(req), req);
                }
            }
        }
    }

    fn push(&mut self, at: Time, ev: Ev, dst_hint: u64) {
        let seq = self.seq;
        self.seq += 1;
        let key = self.sched.order_key(seq, dst_hint);
        self.events.push(ev);
        self.heap.push(Reverse((at, key, seq, seq)));
    }

    /// Runs the loop to quiescence (heap empty), returning the number
    /// of events processed. A final invariant check is recorded before
    /// returning.
    pub fn run(&mut self) -> u64 {
        let mut processed = 0u64;
        while let Some(Reverse((at, _key, _seq, idx))) = self.heap.pop() {
            debug_assert!(at >= self.now, "time travels forward");
            self.now = at;
            let ev = self.events[idx as usize];
            self.dispatch(ev);
            processed += 1;
        }
        self.check_invariants();
        processed
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Submit(id) => self.on_submit(id),
            Ev::Attempt(id) => self.on_attempt(id),
            Ev::Deadline(id) => {
                if !matches!(self.requests[id as usize].state, ReqState::Done(_)) {
                    self.finish(id, Terminal::TimedOut);
                }
            }
            Ev::Cancel(id) => self.on_cancel(id),
            Ev::Churn { node, fault } => {
                if self.provider.apply_churn(node, fault) {
                    self.stats.churn_applied += 1;
                    self.push(self.now + self.cfg.publish_lag, Ev::Publish, node.raw());
                } else {
                    self.stats.churn_skipped += 1;
                }
            }
            Ev::Publish => {
                if self.provider.publish_next().is_some() {
                    self.stats.epochs_published += 1;
                    self.check_invariants();
                }
            }
        }
    }

    fn on_submit(&mut self, id: ReqId) {
        let r = &self.requests[id as usize];
        if matches!(r.state, ReqState::Done(_)) {
            // A same-tick cancel was ordered ahead of this submit by
            // the scheduler: the request is already terminal
            // (Cancelled) and must not be admitted.
            return;
        }
        debug_assert_eq!(r.state, ReqState::Pending, "submit processed once");
        if self.in_flight >= self.cfg.max_in_flight {
            self.finish(
                id,
                Terminal::Rejected {
                    reason: RejectReason::Overloaded,
                },
            );
            return;
        }
        let (dst, deadline) = (r.dst, r.deadline);
        self.in_flight += 1;
        self.stats.max_in_flight_seen = self.stats.max_in_flight_seen.max(self.in_flight);
        self.requests[id as usize].state = ReqState::Routing { attempts: 0 };
        self.push(self.now, Ev::Attempt(id), dst.raw());
        // The deadline event is the unique TimedOut source: it fires
        // one tick after the deadline, so no request is ever terminal
        // later than deadline + 1.
        self.push(deadline + 1, Ev::Deadline(id), dst.raw());
    }

    fn on_attempt(&mut self, id: ReqId) {
        let (src, dst, attempts) = {
            let r = &self.requests[id as usize];
            let ReqState::Routing { attempts } = r.state else {
                return; // terminal (timed out / cancelled) — stale event
            };
            if self.now > r.deadline {
                // A retry landed past the deadline but before the
                // deadline event in the same tick order: time out now
                // (still ≤ deadline + 1).
                self.finish(id, Terminal::TimedOut);
                return;
            }
            (r.src, r.dst, attempts)
        };
        let out = self.provider.attempt(src, dst);
        self.requests[id as usize].epoch = out.epoch;
        match out.verdict {
            AttemptVerdict::Delivered { rung, hops } => {
                let t = if attempts > 0 {
                    Terminal::Degraded {
                        reason: DegradeReason::StaleRetry { attempts },
                        hops,
                    }
                } else {
                    match rung {
                        DeliveryRung::Optimal => Terminal::Delivered { hops },
                        DeliveryRung::Suboptimal => Terminal::Degraded {
                            reason: DegradeReason::Suboptimal,
                            hops,
                        },
                        DeliveryRung::Detour => Terminal::Degraded {
                            reason: DegradeReason::Detour,
                            hops,
                        },
                    }
                };
                self.finish(id, t);
            }
            AttemptVerdict::SourceFaulty => {
                self.finish(
                    id,
                    Terminal::Rejected {
                        reason: RejectReason::SourceFaulty,
                    },
                );
            }
            AttemptVerdict::DestinationFaulty => {
                self.finish(
                    id,
                    Terminal::Rejected {
                        reason: RejectReason::DestinationFaulty,
                    },
                );
            }
            AttemptVerdict::Stale | AttemptVerdict::Unreachable => {
                let attempts = attempts + 1;
                if attempts > self.cfg.retry_limit {
                    self.finish(
                        id,
                        Terminal::Rejected {
                            reason: RejectReason::Unreachable { attempts },
                        },
                    );
                    return;
                }
                self.requests[id as usize].state = ReqState::Routing { attempts };
                self.stats.retries += 1;
                let delay = self.backoff(id, attempts);
                self.push(self.now + delay, Ev::Attempt(id), dst.raw());
            }
        }
    }

    /// Exponential backoff with deterministic seeded jitter:
    /// `min(base · 2^(k−1), cap) + jitter(seed, id, k)`.
    fn backoff(&self, id: ReqId, attempt: u32) -> Time {
        let exp = self
            .cfg
            .backoff_base
            .saturating_mul(1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX))
            .min(self.cfg.backoff_cap);
        let jitter = if self.cfg.jitter_max == 0 {
            0
        } else {
            uniform_inclusive(
                mix(self
                    .cfg
                    .jitter_seed
                    .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(u64::from(attempt))),
                self.cfg.jitter_max,
            )
        };
        exp + jitter
    }

    fn on_cancel(&mut self, id: ReqId) {
        let Some(r) = self.requests.get(id as usize) else {
            self.stats.cancels_ignored += 1; // cancel for a never-submitted id
            return;
        };
        match r.state {
            ReqState::Done(_) => self.stats.cancels_ignored += 1,
            ReqState::Pending | ReqState::Routing { .. } => {
                self.finish(
                    id,
                    Terminal::Rejected {
                        reason: RejectReason::Cancelled,
                    },
                );
            }
        }
    }

    fn finish(&mut self, id: ReqId, t: Terminal) {
        let r = &mut self.requests[id as usize];
        debug_assert!(
            !matches!(r.state, ReqState::Done(_)),
            "terminal transition happens exactly once"
        );
        if matches!(r.state, ReqState::Routing { .. }) {
            self.in_flight -= 1;
        }
        r.state = ReqState::Done(t);
        r.done_at = self.now;
        let lat = self.now - r.submit;
        self.stats.terminal_transitions += 1;
        match t {
            Terminal::Delivered { .. } => {
                self.stats.delivered_optimal += 1;
                self.stats.lat_optimal.record(lat);
            }
            Terminal::Degraded { reason, .. } => match reason {
                DegradeReason::Suboptimal => {
                    self.stats.degraded_suboptimal += 1;
                    self.stats.lat_suboptimal.record(lat);
                }
                DegradeReason::Detour => {
                    self.stats.degraded_detour += 1;
                    self.stats.lat_detour.record(lat);
                }
                DegradeReason::StaleRetry { .. } => {
                    self.stats.degraded_retry += 1;
                    self.stats.lat_retry.record(lat);
                }
            },
            Terminal::Rejected { reason } => {
                match reason {
                    RejectReason::Overloaded => self.stats.rejected_overloaded += 1,
                    RejectReason::Cancelled => self.stats.rejected_cancelled += 1,
                    RejectReason::SourceFaulty => self.stats.rejected_source_faulty += 1,
                    RejectReason::DestinationFaulty => self.stats.rejected_destination_faulty += 1,
                    RejectReason::Unreachable { .. } => self.stats.rejected_unreachable += 1,
                }
                self.stats.lat_rejected.record(lat);
            }
            Terminal::TimedOut => {
                self.stats.timed_out += 1;
                self.stats.lat_timed_out.record(lat);
            }
        }
    }

    fn check_invariants(&mut self) {
        if let Err(detail) = self.provider.check_invariants() {
            self.stats.invariant_violations += 1;
            if self.violations.len() < 16 {
                self.violations.push(format!("t={}: {detail}", self.now));
            }
        }
    }

    /// Lifecycle state of request `id`.
    pub fn state(&self, id: ReqId) -> Option<ReqState> {
        self.requests.get(id as usize).map(|r| r.state)
    }

    /// `(state, submit, absolute deadline, terminal time, epoch of last
    /// attempt)` for every request, in id order.
    pub fn request_records(&self) -> impl Iterator<Item = (ReqState, Time, Time, Time, u64)> + '_ {
        self.requests
            .iter()
            .map(|r| (r.state, r.submit, r.deadline, r.done_at, r.epoch))
    }

    /// Number of loaded requests.
    pub fn num_requests(&self) -> usize {
        self.requests.len()
    }

    /// Counters and per-rung latency histograms.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// First few recorded invariant-violation details.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Virtual time of the last processed event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The provider, for post-run inspection.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Mutable provider access (e.g. to drain test archives).
    pub fn provider_mut(&mut self) -> &mut P {
        &mut self.provider
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    // -- EpochHandle ------------------------------------------------------

    /// A payload whose two halves must agree — any torn observation
    /// would show `a != b`.
    #[derive(Clone, Debug)]
    struct Pair {
        a: u64,
        b: u64,
    }

    #[test]
    fn epoch_handle_publishes_monotonically() {
        let h = EpochHandle::new(Pair { a: 0, b: 0 });
        assert_eq!(h.load().epoch, 0);
        for k in 1..100 {
            let e = h.publish(Pair { a: k, b: k });
            assert_eq!(e, k);
            let snap = h.load();
            assert_eq!(snap.epoch, k);
            assert_eq!(snap.data.a, k);
        }
    }

    #[test]
    fn epoch_update_derives_from_parent() {
        let h = EpochHandle::new(Pair { a: 1, b: 1 });
        for _ in 0..20 {
            h.update(|p| Pair {
                a: p.data.a * 2,
                b: p.data.b * 2,
            });
        }
        let snap = h.load();
        assert_eq!(snap.epoch, 20);
        assert_eq!(snap.data.a, 1 << 20);
        assert_eq!(snap.data.a, snap.data.b);
    }

    /// The torn-read test: readers hammer `load` while a writer
    /// publishes thousands of generations. Every observation must be
    /// internally consistent (`a == b == epoch`) and per-reader epochs
    /// must be monotone.
    #[test]
    fn concurrent_readers_never_observe_torn_or_regressing_snapshots() {
        let h = Arc::new(EpochHandle::new(Pair { a: 0, b: 0 }));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    loop {
                        let snap = h.load();
                        assert_eq!(snap.data.a, snap.data.b, "torn snapshot");
                        assert_eq!(snap.data.a, snap.epoch, "payload from another epoch");
                        assert!(snap.epoch >= last, "epoch regressed");
                        last = snap.epoch;
                        seen += 1;
                        if stop.load(Ordering::Relaxed) != 0 {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for k in 1..=5_000u64 {
            h.publish(Pair { a: k, b: k });
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0);
        }
        assert_eq!(h.load().epoch, 5_000);
    }

    // -- RoutingService over a scripted provider --------------------------

    /// A provider that replays a scripted verdict sequence and counts
    /// publications — lets the lifecycle be tested without a topology.
    struct Scripted {
        verdicts: Vec<AttemptVerdict>,
        next: usize,
        epoch: u64,
        pending: u64,
        live_faults: Vec<NodeId>,
    }

    impl Scripted {
        fn new(verdicts: Vec<AttemptVerdict>) -> Self {
            Scripted {
                verdicts,
                next: 0,
                epoch: 0,
                pending: 0,
                live_faults: Vec::new(),
            }
        }
    }

    impl RouteProvider for Scripted {
        fn attempt(&mut self, _s: NodeId, _d: NodeId) -> AttemptOutcome {
            let v = self
                .verdicts
                .get(self.next)
                .copied()
                .unwrap_or(AttemptVerdict::Unreachable);
            self.next += 1;
            AttemptOutcome {
                epoch: self.epoch,
                verdict: v,
            }
        }
        fn apply_churn(&mut self, node: NodeId, fault: bool) -> bool {
            if fault == self.live_faults.contains(&node) {
                return false;
            }
            if fault {
                self.live_faults.push(node);
            } else {
                self.live_faults.retain(|&a| a != node);
            }
            self.pending += 1;
            true
        }
        fn publish_next(&mut self) -> Option<u64> {
            if self.pending == 0 {
                return None;
            }
            self.pending -= 1;
            self.epoch += 1;
            Some(self.epoch)
        }
        fn current_epoch(&self) -> u64 {
            self.epoch
        }
    }

    #[test]
    fn default_attempt_redundant_degrades_to_single_path() {
        let mut p = Scripted::new(vec![
            AttemptVerdict::Delivered {
                rung: DeliveryRung::Optimal,
                hops: 3,
            },
            AttemptVerdict::Unreachable,
        ]);
        let out = p.attempt_redundant(NodeId::new(0), NodeId::new(7), 4);
        assert_eq!(out.delivered_paths, 1, "one copy: the single attempt");
        assert_eq!(out.best_hops, 3);
        assert_eq!(out.total_hops, 3);
        let out = p.attempt_redundant(NodeId::new(0), NodeId::new(7), 4);
        assert_eq!(out.delivered_paths, 0);
        assert_eq!(out.total_hops, 0);
    }

    fn one_submit(deadline: Time) -> Vec<Injection> {
        vec![Injection::Submit {
            at: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            deadline,
        }]
    }

    #[test]
    fn optimal_first_attempt_is_delivered() {
        let p = Scripted::new(vec![AttemptVerdict::Delivered {
            rung: DeliveryRung::Optimal,
            hops: 3,
        }]);
        let mut svc = RoutingService::new(p, ServiceConfig::default());
        svc.load(&one_submit(100));
        svc.run();
        assert_eq!(
            svc.state(0),
            Some(ReqState::Done(Terminal::Delivered { hops: 3 }))
        );
        assert_eq!(svc.stats().delivered_optimal, 1);
        assert_eq!(svc.stats().terminals(), 1);
    }

    #[test]
    fn stale_then_delivered_lands_on_retry_rung() {
        let p = Scripted::new(vec![
            AttemptVerdict::Stale,
            AttemptVerdict::Delivered {
                rung: DeliveryRung::Optimal,
                hops: 4,
            },
        ]);
        let mut svc = RoutingService::new(p, ServiceConfig::default());
        svc.load(&one_submit(100));
        svc.run();
        assert_eq!(
            svc.state(0),
            Some(ReqState::Done(Terminal::Degraded {
                reason: DegradeReason::StaleRetry { attempts: 1 },
                hops: 4
            }))
        );
        assert_eq!(svc.stats().degraded_retry, 1);
        assert_eq!(svc.stats().retries, 1);
    }

    #[test]
    fn retry_ladder_exhausts_into_typed_unreachable() {
        let cfg = ServiceConfig {
            retry_limit: 2,
            ..Default::default()
        };
        let p = Scripted::new(vec![AttemptVerdict::Unreachable; 8]);
        let mut svc = RoutingService::new(p, cfg);
        svc.load(&one_submit(1_000));
        svc.run();
        assert_eq!(
            svc.state(0),
            Some(ReqState::Done(Terminal::Rejected {
                reason: RejectReason::Unreachable { attempts: 3 }
            }))
        );
        assert_eq!(svc.stats().rejected_unreachable, 1);
    }

    #[test]
    fn deadline_fires_exactly_one_tick_late_at_most() {
        // Endless staleness + a tight deadline: the deadline event at
        // deadline+1 must be the terminal transition.
        let cfg = ServiceConfig {
            retry_limit: 100,
            ..Default::default()
        };
        let p = Scripted::new(vec![AttemptVerdict::Stale; 256]);
        let mut svc = RoutingService::new(p, cfg);
        svc.load(&one_submit(10));
        svc.run();
        let (state, submit, deadline, done_at, _) = svc.request_records().next().unwrap();
        assert_eq!(state, ReqState::Done(Terminal::TimedOut));
        assert_eq!(submit, 0);
        assert!(
            done_at <= deadline + 1,
            "terminal at {done_at}, deadline {deadline}"
        );
    }

    #[test]
    fn admission_control_sheds_beyond_the_window() {
        let cfg = ServiceConfig {
            max_in_flight: 2,
            retry_limit: 50,
            ..Default::default()
        };
        // All requests stall (stale forever) so the window stays full.
        let p = Scripted::new(vec![AttemptVerdict::Stale; 1024]);
        let mut svc = RoutingService::new(p, cfg);
        let injections: Vec<Injection> = (0..5)
            .map(|_| Injection::Submit {
                at: 0,
                src: NodeId::new(0),
                dst: NodeId::new(1),
                deadline: 6,
            })
            .collect();
        svc.load(&injections);
        svc.run();
        assert_eq!(
            svc.stats().rejected_overloaded,
            3,
            "window of 2 sheds 3 of 5"
        );
        assert_eq!(svc.stats().max_in_flight_seen, 2);
        assert_eq!(svc.stats().terminals(), 5, "shed and stalled all terminate");
    }

    #[test]
    fn cancellation_is_idempotent() {
        let cfg = ServiceConfig {
            retry_limit: 100,
            ..Default::default()
        };
        let p = Scripted::new(vec![AttemptVerdict::Stale; 256]);
        let mut svc = RoutingService::new(p, cfg);
        let mut inj = one_submit(50);
        inj.push(Injection::Cancel { at: 5, req: 0 });
        inj.push(Injection::Cancel { at: 6, req: 0 });
        inj.push(Injection::Cancel { at: 7, req: 99 });
        svc.load(&inj);
        svc.run();
        assert_eq!(
            svc.state(0),
            Some(ReqState::Done(Terminal::Rejected {
                reason: RejectReason::Cancelled
            }))
        );
        assert_eq!(svc.stats().rejected_cancelled, 1);
        assert_eq!(svc.stats().cancels_ignored, 2, "second cancel + unknown id");
        assert_eq!(svc.stats().terminal_transitions, 1);
    }

    #[test]
    fn churn_publishes_after_the_lag_and_no_ops_are_skipped() {
        let cfg = ServiceConfig {
            publish_lag: 3,
            ..Default::default()
        };
        let p = Scripted::new(vec![]);
        let mut svc = RoutingService::new(p, cfg);
        svc.load(&[
            Injection::Churn {
                at: 0,
                node: NodeId::new(5),
                fault: true,
            },
            Injection::Churn {
                at: 1,
                node: NodeId::new(5),
                fault: true,
            }, // no-op
            Injection::Churn {
                at: 2,
                node: NodeId::new(5),
                fault: false,
            },
        ]);
        svc.run();
        assert_eq!(svc.stats().churn_applied, 2);
        assert_eq!(svc.stats().churn_skipped, 1);
        assert_eq!(svc.stats().epochs_published, 2);
        assert_eq!(svc.provider().current_epoch(), 2);
        assert_eq!(svc.now(), 2 + 3, "last publish at churn time + lag");
    }

    #[test]
    fn backoff_is_exponential_capped_and_jitter_is_deterministic() {
        let cfg = ServiceConfig {
            backoff_base: 2,
            backoff_cap: 16,
            jitter_max: 3,
            jitter_seed: 42,
            ..Default::default()
        };
        let svc = RoutingService::new(Scripted::new(vec![]), cfg);
        let svc2 = RoutingService::new(Scripted::new(vec![]), cfg);
        let mut prev_exp = 0;
        for attempt in 1..=8u32 {
            let d1 = svc.backoff(7, attempt);
            let d2 = svc2.backoff(7, attempt);
            assert_eq!(d1, d2, "jitter is a pure function of (seed, id, attempt)");
            let exp = (2u64 << (attempt - 1).min(62)).min(16);
            assert!(
                d1 >= exp && d1 <= exp + 3,
                "attempt {attempt}: {d1} vs exp {exp}"
            );
            assert!(exp >= prev_exp, "monotone until the cap");
            prev_exp = exp;
        }
        assert_ne!(
            svc.backoff(1, 2) + svc.backoff(2, 2) + svc.backoff(3, 2),
            3 * svc.backoff(1, 2),
            "different ids draw different jitter (seed 42)"
        );
    }

    #[test]
    fn replay_is_byte_identical_under_an_adversarial_scheduler() {
        let run = |seed: u64| {
            let verdicts = [
                AttemptVerdict::Stale,
                AttemptVerdict::Delivered {
                    rung: DeliveryRung::Optimal,
                    hops: 2,
                },
                AttemptVerdict::Delivered {
                    rung: DeliveryRung::Suboptimal,
                    hops: 5,
                },
                AttemptVerdict::Unreachable,
                AttemptVerdict::Delivered {
                    rung: DeliveryRung::Detour,
                    hops: 7,
                },
            ];
            let p = Scripted::new(verdicts.repeat(20));
            let mut svc = RoutingService::with_scheduler(
                p,
                ServiceConfig::default(),
                Box::new(crate::sim::AdversarialScheduler::permute(seed)),
            );
            let inj: Vec<Injection> = (0..40)
                .flat_map(|k| {
                    vec![
                        Injection::Submit {
                            at: k % 7,
                            src: NodeId::new(k % 8),
                            dst: NodeId::new((k + 1) % 8),
                            deadline: 20,
                        },
                        Injection::Churn {
                            at: k % 5,
                            node: NodeId::new(k % 4),
                            fault: k % 2 == 0,
                        },
                    ]
                })
                .collect();
            svc.load(&inj);
            svc.run();
            svc.stats().render()
        };
        assert_eq!(run(0xD57), run(0xD57), "same seed, same bytes");
        assert_ne!(run(1), run(2), "the adversary actually reorders");
    }
}
