//! Execution statistics for simulator runs.

/// Counters accumulated by the synchronous round engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Rounds executed (including the final quiescent-detection round).
    pub rounds_run: u32,
    /// Rounds in which at least one node changed state — the paper's
    /// "number of rounds of information exchange" metric (Fig. 2).
    pub active_rounds: u32,
    /// Point-to-point messages delivered (each neighbor exchange along a
    /// usable link in one direction counts once).
    pub messages: u64,
    /// Number of node state changes, summed over all rounds.
    pub state_changes: u64,
}

/// Counters accumulated by the discrete-event engine.
///
/// Message accounting is conservative: every send attempt is counted
/// exactly once in [`EventStats::sends`], and every attempt meets
/// exactly one fate, so
/// `delivered + dropped + lost == sends + duplicated`
/// holds at every quiescent point (duplicates are extra copies the
/// channel injects; each is eventually delivered or dropped like a
/// primary copy). Timer and kill events are control events, not
/// messages, and never enter this balance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Message send attempts absorbed from actors (counted before any
    /// fault/channel fate is decided; excludes channel duplicates).
    pub sends: u64,
    /// Messages successfully delivered.
    pub delivered: u64,
    /// Messages dropped at a faulty destination or over a faulty link.
    pub dropped: u64,
    /// Messages lost by the [`crate::channel::ChannelModel`] (loss is
    /// channel noise on a usable link; `dropped` is fault-stop silence).
    pub lost: u64,
    /// Extra copies injected by channel duplication.
    pub duplicated: u64,
    /// Retransmissions performed by the reliable layer
    /// (`crate::reliable`), reported via [`crate::event::Ctx::note_retransmits`].
    pub retransmitted: u64,
    /// Acknowledgements sent by the reliable layer, reported via
    /// [`crate::event::Ctx::note_acks`].
    pub acked: u64,
    /// Timer events fired.
    pub timers: u64,
    /// Timer events silently discarded because their node had
    /// fault-stopped before they fired. Kept out of `dropped` — a
    /// quashed timer is not a lost message — so the send/fate balance
    /// stays exact. (An earlier accounting folded these, and kills of
    /// already-dead nodes, into `dropped`.)
    pub timers_quashed: u64,
    /// Nodes fault-stopped mid-run by an injected kill
    /// ([`crate::event::EventEngine::inject_kill`]). Kills are
    /// idempotent: re-killing a dead or absent node changes nothing.
    pub killed: u64,
    /// Virtual time of the last processed event.
    pub end_time: u64,
}

/// A tiny fixed-bucket histogram used by experiments to summarise hop
/// counts and round counts without pulling in a stats crate.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Histogram over the values `0..buckets`; anything larger lands in
    /// the overflow bucket.
    pub fn new(buckets: usize) -> Self {
        Histogram {
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        if (v as usize) < self.counts.len() {
            self.counts[v as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += v;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `v`.
    pub fn count(&self, v: u64) -> u64 {
        self.counts.get(v as usize).copied().unwrap_or(0)
    }

    /// Observations that exceeded the bucket range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Arithmetic mean of all observations, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest in-range value observed, `None` when empty or only
    /// overflow was recorded.
    pub fn max_in_range(&self) -> Option<u64> {
        self.counts.iter().rposition(|&c| c > 0).map(|i| i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max_in_range(), Some(3));
        assert!((h.mean() - 14.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(2);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_in_range(), None);
        assert_eq!(h.total(), 0);
    }
}
