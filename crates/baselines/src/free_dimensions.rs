//! Free dimensions (paper's reference [8], Raghavendra–Yang–Tien).
//!
//! A dimension `i` is *free* when no two faulty nodes are adjacent
//! along it — equivalently, every node pair `(a, a ⊕ eⁱ)` contains at
//! most one fault. Splitting the cube along a free dimension leaves
//! each faulty node with a nonfaulty partner in the opposite half, the
//! structural property [8] exploits for fault-tolerant routing.
//!
//! This module implements free-dimension identification exactly and a
//! simplified recursive router over it (cross a free preferred
//! dimension early, then recurse in the remaining subcube), falling
//! back to greedy-with-detour when no free preferred dimension helps.
//! It serves as an E9 comparison point, not a line-by-line port of [8].

use hypersafe_topology::{FaultConfig, NodeId, Path};

/// The dimensions of `cfg`'s cube along which no two faults are
/// adjacent, ascending.
pub fn free_dimensions(cfg: &FaultConfig) -> Vec<u8> {
    let cube = cfg.cube();
    (0..cube.dim())
        .filter(|&i| {
            !cfg.node_faults()
                .iter()
                .any(|f| cfg.node_faults().contains(f.neighbor(i)))
        })
        .collect()
}

/// Classic result of [8]: with at most `n` faults in an `n`-cube, at
/// least one free dimension exists for `n ≥ 3` unless the faults are
/// pathologically paired. This helper reports whether the instance has
/// one (used by experiments to bucket instances).
pub fn has_free_dimension(cfg: &FaultConfig) -> bool {
    !free_dimensions(cfg).is_empty()
}

/// Simplified free-dimension routing with hop budget `ttl`: at each
/// node, prefer a *free* preferred dimension whose neighbor is
/// nonfaulty, then any nonfaulty preferred dimension, then a free spare
/// dimension detour.
///
/// Returns the realized path with delivery status; `None` for faulty
/// endpoints.
pub fn fd_route(cfg: &FaultConfig, s: NodeId, d: NodeId, ttl: u32) -> Option<(Path, bool)> {
    if cfg.node_faulty(s) || cfg.node_faulty(d) {
        return None;
    }
    let cube = cfg.cube();
    let free = free_dimensions(cfg);
    let is_free = |i: u8| free.contains(&i);
    let mut at = s;
    let mut path = Path::starting_at(s);
    let mut last_dim: Option<u8> = None;
    while at != d {
        if path.len() >= ttl {
            return Some((path, false));
        }
        let usable = |at: NodeId, i: u8| {
            let b = at.neighbor(i);
            (!cfg.node_faulty(b) && cfg.link_usable(at, b)).then_some((i, b))
        };
        let pick = cube
            .preferred_dims(at, d)
            .filter(|&i| is_free(i))
            .filter_map(|i| usable(at, i))
            .next()
            .or_else(|| {
                cube.preferred_dims(at, d)
                    .filter_map(|i| usable(at, i))
                    .next()
            })
            .or_else(|| {
                cube.spare_dims(at, d)
                    .filter(|&i| is_free(i) && Some(i) != last_dim)
                    .filter_map(|i| usable(at, i))
                    .next()
            })
            .or_else(|| {
                cube.spare_dims(at, d)
                    .filter(|&i| Some(i) != last_dim)
                    .filter_map(|i| usable(at, i))
                    .next()
            });
        match pick {
            Some((i, b)) => {
                last_dim = Some(i);
                path.push(b);
                at = b;
            }
            None => return Some((path, false)),
        }
    }
    Some((path, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn all_dimensions_free_without_faults() {
        let cfg = cfg4(&[]);
        assert_eq!(free_dimensions(&cfg), vec![0, 1, 2, 3]);
    }

    #[test]
    fn adjacent_faults_block_their_dimension() {
        // 0000 and 0001 differ along dimension 0 → dimension 0 not free.
        let cfg = cfg4(&["0000", "0001"]);
        assert_eq!(free_dimensions(&cfg), vec![1, 2, 3]);
    }

    #[test]
    fn isolated_faults_keep_all_dimensions_free() {
        // Faults pairwise at distance ≥ 2.
        let cfg = cfg4(&["0000", "0011", "1111"]);
        assert_eq!(free_dimensions(&cfg), vec![0, 1, 2, 3]);
        assert!(has_free_dimension(&cfg));
    }

    #[test]
    fn no_free_dimension_possible() {
        // Pair faults along every dimension: (0000,0001) kills dim 0,
        // (0110, 0100) kills dim 1, (1011, 1111) kills dim 2,
        // (0010, 1010) kills dim 3.
        let cfg = cfg4(&[
            "0000", "0001", "0110", "0100", "1011", "1111", "0010", "1010",
        ]);
        assert!(!has_free_dimension(&cfg));
    }

    #[test]
    fn routes_fault_free_optimally() {
        let cfg = cfg4(&[]);
        for s in cfg.cube().nodes() {
            for d in cfg.cube().nodes() {
                let (p, ok) = fd_route(&cfg, s, d, 32).unwrap();
                assert!(ok);
                assert!(p.is_optimal());
            }
        }
    }

    #[test]
    fn routes_around_scattered_faults() {
        let cfg = cfg4(&["0011", "1100"]);
        let mut delivered = 0;
        let mut total = 0;
        for s in cfg.healthy_nodes() {
            for d in cfg.healthy_nodes() {
                if s == d {
                    continue;
                }
                total += 1;
                let (p, ok) = fd_route(&cfg, s, d, 32).unwrap();
                if ok {
                    assert!(p.traversable(&cfg, false));
                    delivered += 1;
                }
            }
        }
        assert!(delivered * 100 >= total * 95, "{delivered}/{total}");
    }
}
