//! Chiu–Wu-style routing over Wu–Fernandez safe-node status (the
//! paper's reference [4]).
//!
//! The original algorithm is not reproduced line-by-line (the cited
//! paper is outside this reproduction's corpus); what the paper relies
//! on is its *interface*: routing over the enhanced (Definition 3) safe
//! node status that establishes a path of length at most `H + 4`
//! whenever the hypercube is not fully unsafe, and that — like
//! Lee–Hayes routing — is inapplicable when the safe set is empty
//! (hence, by Theorem 4, in every disconnected hypercube). See
//! DESIGN.md §5 item 3.

use crate::wu_fernandez::WuFernandezStatus;
use hypersafe_topology::{FaultConfig, NodeId, Path};

/// Routes `s → d` over WF status: prefer safe preferred neighbors,
/// then any nonfaulty preferred neighbor, then a safe spare detour;
/// hop budget `H + 4` per the Chiu–Wu bound.
///
/// Returns `None` when the cube is fully unsafe (inapplicable), either
/// endpoint is faulty, or the budget is exhausted.
pub fn cw_route(
    cfg: &FaultConfig,
    status: &WuFernandezStatus,
    s: NodeId,
    d: NodeId,
) -> Option<Path> {
    if status.fully_unsafe() || cfg.node_faulty(s) || cfg.node_faulty(d) {
        return None;
    }
    let cube = cfg.cube();
    let budget = s.distance(d) + 4;
    let mut at = s;
    let mut path = Path::starting_at(s);
    let mut last_dim: Option<u8> = None;
    while at != d {
        if path.len() >= budget {
            return None;
        }
        if at.distance(d) == 1 {
            path.push(d);
            break;
        }
        let safe_pref = cube
            .preferred_dims(at, d)
            .map(|i| (i, at.neighbor(i)))
            .find(|&(_, b)| !cfg.node_faulty(b) && status.is_safe(b));
        let any_pref = cube
            .preferred_dims(at, d)
            .map(|i| (i, at.neighbor(i)))
            .find(|&(_, b)| !cfg.node_faulty(b));
        let safe_spare = cube
            .spare_dims(at, d)
            .filter(|&i| Some(i) != last_dim)
            .map(|i| (i, at.neighbor(i)))
            .find(|&(_, b)| !cfg.node_faulty(b) && status.is_safe(b));
        match safe_pref.or(any_pref).or(safe_spare) {
            Some((i, b)) => {
                last_dim = Some(i);
                path.push(b);
                at = b;
            }
            None => return None,
        }
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn delivers_within_h_plus_4_under_few_faults() {
        let cfg = cfg4(&["0011", "0100", "0110"]);
        let st = WuFernandezStatus::compute(&cfg);
        assert!(!st.fully_unsafe());
        for s in cfg.healthy_nodes() {
            for d in cfg.healthy_nodes() {
                if s == d {
                    continue;
                }
                if let Some(p) = cw_route(&cfg, &st, s, d) {
                    assert!(p.traversable(&cfg, false), "{s} → {d}");
                    assert!(p.len() <= s.distance(d) + 4, "{s} → {d}: {p}");
                }
            }
        }
    }

    #[test]
    fn inapplicable_when_fully_unsafe() {
        // §2.3 instance where the LH set is empty but WF is not — then a
        // denser instance where WF is empty too.
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let st = WuFernandezStatus::compute(&cfg);
        assert!(!st.fully_unsafe());
        assert!(cw_route(&cfg, &st, NodeId::new(1), NodeId::new(2)).is_some());

        // Disconnect the cube (Fig. 3 faults): Theorem 4 ⇒ WF set empty
        // ⇒ Chiu–Wu routing inapplicable everywhere.
        let cfg2 = cfg4(&["0110", "1010", "1100", "1111"]);
        let st2 = WuFernandezStatus::compute(&cfg2);
        assert!(st2.fully_unsafe());
        assert_eq!(
            cw_route(&cfg2, &st2, NodeId::new(0), NodeId::new(0b0011)),
            None
        );
    }

    #[test]
    fn faulty_endpoints_rejected() {
        let cfg = cfg4(&["0011"]);
        let st = WuFernandezStatus::compute(&cfg);
        assert_eq!(
            cw_route(&cfg, &st, NodeId::new(0b0011), NodeId::new(0)),
            None
        );
        assert_eq!(
            cw_route(&cfg, &st, NodeId::new(0), NodeId::new(0b0011)),
            None
        );
    }
}
