//! Wu–Fernandez enhanced safe nodes (paper's Definition 3, from [10]).
//!
//! > A nonfaulty node is *unsafe* if and only if one of the following
//! > conditions is true: there are two faulty neighbors, or there are
//! > at least three unsafe or faulty neighbors.
//!
//! Relaxing Lee–Hayes' rule enlarges the safe set (LH-safe ⊆ WF-safe ⊆
//! level-`n` nodes — property-tested in this crate) while the status
//! identification still needs `O(n²)` rounds in the worst case.

use hypersafe_topology::{FaultConfig, NodeId};

/// Boolean safe/unsafe status for every node, Wu–Fernandez style.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WuFernandezStatus {
    safe: Vec<bool>,
    rounds: u32,
}

impl WuFernandezStatus {
    /// Computes the greatest fixed point of Definition 3 by synchronous
    /// demotion rounds.
    pub fn compute(cfg: &FaultConfig) -> Self {
        assert!(
            cfg.link_faults().is_empty(),
            "Definition 3 covers node faults only"
        );
        let cube = cfg.cube();
        let mut safe: Vec<bool> = cube.nodes().map(|a| !cfg.node_faulty(a)).collect();
        let mut rounds = 0u32;
        loop {
            let prev = safe.clone();
            let mut changed = false;
            for a in cube.nodes() {
                let idx = a.raw() as usize;
                if cfg.node_faulty(a) || !prev[idx] {
                    continue;
                }
                let faulty = cube.neighbors(a).filter(|&b| cfg.node_faulty(b)).count();
                let bad = cube
                    .neighbors(a)
                    .filter(|&b| cfg.node_faulty(b) || !prev[b.raw() as usize])
                    .count();
                if faulty >= 2 || bad >= 3 {
                    safe[idx] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            rounds += 1;
        }
        WuFernandezStatus { safe, rounds }
    }

    /// Whether `a` is safe.
    #[inline]
    pub fn is_safe(&self, a: NodeId) -> bool {
        self.safe[a.raw() as usize]
    }

    /// Demotion rounds until stability.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The safe nodes, ascending.
    pub fn safe_nodes(&self) -> Vec<NodeId> {
        self.safe
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| NodeId::new(i as u64))
            .collect()
    }

    /// Whether the cube is fully unsafe under Definition 3.
    pub fn fully_unsafe(&self) -> bool {
        !self.safe.iter().any(|&s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lee_hayes::LeeHayesStatus;
    use hypersafe_core::SafetyMap;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn section23_example_wf_safe_set() {
        // §2.3: faults {0000, 0110, 1111}. The paper lists the WF set as
        // the SL set "with the absence of node 1100" — but under
        // Definition 3 *as the paper states it*, 1100 is safe: it has
        // zero faulty and exactly two unsafe neighbors (1110, 0100),
        // the same profile as 0101, which the paper keeps. The unique
        // greatest fixed point of the stated rule therefore includes
        // 1100; we pin that and record the discrepancy in
        // EXPERIMENTS.md (E3).
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let st = WuFernandezStatus::compute(&cfg);
        let names: Vec<String> = st.safe_nodes().iter().map(|a| a.to_binary(4)).collect();
        assert_eq!(
            names,
            vec!["0001", "0011", "0101", "1000", "1001", "1010", "1011", "1100", "1101"]
        );
        // The paper's listed members are all present (its set minus the
        // disputed 1100 is a subset of ours).
        for want in [
            "0001", "0011", "0101", "1000", "1001", "1010", "1011", "1101",
        ] {
            assert!(names.iter().any(|s| s == want), "{want} missing");
        }
    }

    #[test]
    fn containment_chain_exhaustive_q4_small_fault_sets() {
        // For every fault distribution: LH-safe ⊆ WF-safe ⊆ SL-safe
        // (the paper's §2.3 comparison). Exhaustive over all fault sets
        // of Q_4 with ≤ 4 faults.
        let cube = Hypercube::new(4);
        for mask in 0u64..(1 << 16) {
            if mask.count_ones() > 4 {
                continue;
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            let lh = LeeHayesStatus::compute(&cfg);
            let wf = WuFernandezStatus::compute(&cfg);
            let sl = SafetyMap::compute(&cfg);
            for a in cube.nodes() {
                if lh.is_safe(a) {
                    assert!(wf.is_safe(a), "mask {mask:#x}: LH ⊄ WF at {a}");
                }
                if wf.is_safe(a) {
                    assert!(sl.is_safe(a), "mask {mask:#x}: WF ⊄ SL at {a}");
                }
            }
        }
    }

    #[test]
    fn two_faulty_neighbors_demote_immediately() {
        let cfg = cfg4(&["0001", "0010"]);
        let st = WuFernandezStatus::compute(&cfg);
        assert!(!st.is_safe(NodeId::new(0b0000)));
        assert!(!st.is_safe(NodeId::new(0b0011)));
    }

    #[test]
    fn wf_strictly_larger_than_lh_on_section23_instance() {
        // Nodes with two unsafe (but nonfaulty) neighbors survive under
        // Definition 3 while Definition 2 demotes them: on the §2.3
        // instance LH collapses to ∅ while WF keeps 9 nodes.
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let lh = LeeHayesStatus::compute(&cfg);
        let wf = WuFernandezStatus::compute(&cfg);
        assert!(lh.fully_unsafe());
        assert_eq!(wf.safe_nodes().len(), 9);
    }

    #[test]
    fn fault_free_zero_rounds() {
        let cfg = cfg4(&[]);
        let st = WuFernandezStatus::compute(&cfg);
        assert_eq!(st.rounds(), 0);
        assert!(!st.fully_unsafe());
    }
}
