//! Chen–Shin depth-first-search routing (paper's reference [3]).
//!
//! The message carries a history of visited nodes; at each node it
//! tries unvisited nonfaulty preferred neighbors first, then unvisited
//! nonfaulty spare neighbors, and *backtracks* along its own trail when
//! everything forward is blocked. Because the search is a DFS of the
//! nonfaulty subgraph, delivery is guaranteed whenever source and
//! destination are connected — at the price of carrying the history in
//! the message and of unbounded path length (the paper's critique:
//! "the length of a routing path is unpredictable in general").

use hypersafe_topology::{FaultConfig, NodeId};

/// Outcome of a DFS routing attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfsRoute {
    /// Every hop the message physically made, including backtracks.
    pub walk: Vec<NodeId>,
    /// Whether `d` was reached.
    pub delivered: bool,
}

impl DfsRoute {
    /// Total hops traversed (counting backtracking moves).
    pub fn hops(&self) -> u32 {
        (self.walk.len() - 1) as u32
    }
}

/// Routes `s → d` by depth-first search with backtracking.
///
/// `None` is returned only for faulty endpoints; otherwise the DFS
/// always terminates with `delivered` reflecting connectivity.
pub fn dfs_route(cfg: &FaultConfig, s: NodeId, d: NodeId) -> Option<DfsRoute> {
    if cfg.node_faulty(s) || cfg.node_faulty(d) {
        return None;
    }
    let cube = cfg.cube();
    let mut visited = vec![false; cube.num_nodes() as usize];
    visited[s.raw() as usize] = true;
    let mut walk = vec![s];
    // DFS stack of the *current* path (for backtracking).
    let mut stack = vec![s];

    while let Some(&at) = stack.last() {
        if at == d {
            return Some(DfsRoute {
                walk,
                delivered: true,
            });
        }
        // Preferred dimensions first (sorted toward the destination),
        // then spare dimensions — both filtered to usable, unvisited.
        let next = cube
            .preferred_dims(at, d)
            .chain(cube.spare_dims(at, d))
            .map(|i| at.neighbor(i))
            .find(|&b| !cfg.node_faulty(b) && !visited[b.raw() as usize] && cfg.link_usable(at, b));
        match next {
            Some(b) => {
                visited[b.raw() as usize] = true;
                walk.push(b);
                stack.push(b);
            }
            None => {
                // Dead end: physically backtrack one hop.
                stack.pop();
                if let Some(&prev) = stack.last() {
                    walk.push(prev);
                }
            }
        }
    }
    Some(DfsRoute {
        walk,
        delivered: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::connectivity;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn fault_free_routing_is_optimal() {
        // With no faults the DFS takes preferred dimensions straight in.
        let cfg = cfg4(&[]);
        for s in cfg.cube().nodes() {
            for d in cfg.cube().nodes() {
                let r = dfs_route(&cfg, s, d).unwrap();
                assert!(r.delivered);
                assert_eq!(r.hops(), s.distance(d));
            }
        }
    }

    #[test]
    fn delivery_iff_connected_exhaustive() {
        // DFS delivers exactly when the endpoints are connected — for
        // every fault pattern of Q_3.
        let cube = Hypercube::new(3);
        for mask in 0u64..256 {
            let mut f = FaultSet::new(cube);
            for i in 0..8 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            for s in cfg.healthy_nodes() {
                for d in cfg.healthy_nodes() {
                    let r = dfs_route(&cfg, s, d).unwrap();
                    assert_eq!(
                        r.delivered,
                        connectivity::connected(&cfg, s, d),
                        "mask {mask:#b} {s} → {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn backtracking_shows_in_walk() {
        // Cul-de-sac: 0000 → …; block the straight routes from 0000 to
        // 1111 partially so DFS must back out of a dead end.
        let cfg = cfg4(&["0011", "0101", "1001", "0110", "1010"]);
        let s = NodeId::new(0b0001);
        let d = NodeId::new(0b1111);
        if connectivity::connected(&cfg, s, d) {
            let r = dfs_route(&cfg, s, d).unwrap();
            assert!(r.delivered);
            assert!(r.hops() >= s.distance(d));
        }
    }

    #[test]
    fn works_in_disconnected_cube_within_component() {
        // Fig. 3 faults: DFS can still route inside the big component…
        let cfg = cfg4(&["0110", "1010", "1100", "1111"]);
        let r = dfs_route(&cfg, NodeId::new(0b0101), NodeId::new(0b0000)).unwrap();
        assert!(r.delivered);
        // …but honestly reports failure across the partition (after an
        // exhaustive crawl, unlike safety levels which abort at the
        // source for free).
        let r2 = dfs_route(&cfg, NodeId::new(0b0111), NodeId::new(0b1110)).unwrap();
        assert!(!r2.delivered);
        assert!(
            r2.hops() > 4,
            "crawled the whole component before giving up"
        );
    }

    #[test]
    fn faulty_endpoints_rejected() {
        let cfg = cfg4(&["0011"]);
        assert!(dfs_route(&cfg, NodeId::new(0b0011), NodeId::new(0)).is_none());
    }
}
