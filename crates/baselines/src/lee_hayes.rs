//! Lee–Hayes safe nodes (paper's Definition 2, from [7]) and a routing
//! baseline built on them.
//!
//! > A nonfaulty node is *unsafe* if and only if there are at least two
//! > unsafe or faulty neighbors.
//!
//! The safe set is the **greatest** fixed point of that rule: start
//! from "every nonfaulty node is safe" and demote until stable. The
//! paper notes this takes `O(n²)` rounds of neighbor exchange in the
//! worst case (vs. `n − 1` for safety levels) and yields the smallest
//! safe set of the three definitions — both facts are measured by the
//! E3/E11 experiments.

use hypersafe_topology::{FaultConfig, NodeId, Path};

/// Boolean safe/unsafe status for every node, Lee–Hayes style.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeeHayesStatus {
    safe: Vec<bool>,
    rounds: u32,
}

impl LeeHayesStatus {
    /// Computes the greatest fixed point of Definition 2 by synchronous
    /// demotion rounds (each round every node re-evaluates against the
    /// previous round's statuses, mirroring a real exchange protocol).
    ///
    /// # Examples
    ///
    /// ```
    /// use hypersafe_topology::{Hypercube, FaultSet, FaultConfig};
    /// use hypersafe_baselines::LeeHayesStatus;
    ///
    /// // §2.3: three faults already empty the Lee–Hayes safe set.
    /// let cube = Hypercube::new(4);
    /// let faults = FaultSet::from_binary_strs(cube, &["0000", "0110", "1111"]);
    /// let cfg = FaultConfig::with_node_faults(cube, faults);
    /// assert!(LeeHayesStatus::compute(&cfg).fully_unsafe());
    /// ```
    pub fn compute(cfg: &FaultConfig) -> Self {
        assert!(
            cfg.link_faults().is_empty(),
            "Definition 2 covers node faults only"
        );
        let cube = cfg.cube();
        let mut safe: Vec<bool> = cube.nodes().map(|a| !cfg.node_faulty(a)).collect();
        let mut rounds = 0u32;
        loop {
            let prev = safe.clone();
            let mut changed = false;
            for a in cube.nodes() {
                let idx = a.raw() as usize;
                if cfg.node_faulty(a) || !prev[idx] {
                    continue;
                }
                let bad = cube
                    .neighbors(a)
                    .filter(|&b| cfg.node_faulty(b) || !prev[b.raw() as usize])
                    .count();
                if bad >= 2 {
                    safe[idx] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            rounds += 1;
        }
        LeeHayesStatus { safe, rounds }
    }

    /// Whether `a` is safe.
    #[inline]
    pub fn is_safe(&self, a: NodeId) -> bool {
        self.safe[a.raw() as usize]
    }

    /// Demotion rounds until stability.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The safe nodes, ascending.
    pub fn safe_nodes(&self) -> Vec<NodeId> {
        self.safe
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| NodeId::new(i as u64))
            .collect()
    }

    /// Whether the cube is *fully unsafe* (empty safe set) — the
    /// condition under which Lee–Hayes routing is inapplicable.
    pub fn fully_unsafe(&self) -> bool {
        !self.safe.iter().any(|&s| s)
    }
}

/// Routes `s → d` with a Lee–Hayes-style strategy: prefer safe
/// preferred neighbors, fall back to any nonfaulty preferred neighbor,
/// detour via a safe spare neighbor when blocked. The hop budget is
/// `H + 2` (the bound claimed in [7]); exceeding it is a failure.
///
/// This is a faithful-to-claims reconstruction, not a line-by-line port
/// of [7] (see DESIGN.md §5): it requires a non-fully-unsafe cube and
/// achieves `≤ H + 2` when safe nodes steer the detour.
pub fn lh_route(cfg: &FaultConfig, status: &LeeHayesStatus, s: NodeId, d: NodeId) -> Option<Path> {
    if status.fully_unsafe() || cfg.node_faulty(s) || cfg.node_faulty(d) {
        return None;
    }
    let cube = cfg.cube();
    let budget = s.distance(d) + 2;
    let mut at = s;
    let mut path = Path::starting_at(s);
    let mut last_dim: Option<u8> = None;
    while at != d {
        if path.len() >= budget {
            return None;
        }
        // Deliver directly when adjacent.
        if at.distance(d) == 1 {
            path.push(d);
            break;
        }
        // Safe preferred neighbor > nonfaulty preferred > safe spare.
        let pick = cube
            .preferred_dims(at, d)
            .map(|i| (i, at.neighbor(i)))
            .filter(|&(_, b)| !cfg.node_faulty(b))
            .max_by_key(|&(i, b)| (status.is_safe(b), std::cmp::Reverse(i)))
            .filter(|&(_, b)| status.is_safe(b))
            .or_else(|| {
                cube.preferred_dims(at, d)
                    .map(|i| (i, at.neighbor(i)))
                    .find(|&(_, b)| !cfg.node_faulty(b))
            })
            .or_else(|| {
                cube.spare_dims(at, d)
                    .filter(|&i| Some(i) != last_dim)
                    .map(|i| (i, at.neighbor(i)))
                    .find(|&(_, b)| !cfg.node_faulty(b) && status.is_safe(b))
            });
        match pick {
            Some((i, b)) => {
                last_dim = Some(i);
                path.push(b);
                at = b;
            }
            None => return None,
        }
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn section23_example_lh_safe_set_is_empty() {
        // §2.3: faults {0000, 0110, 1111} → "The safe node set is empty
        // using Definition 2."
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let st = LeeHayesStatus::compute(&cfg);
        assert!(st.fully_unsafe());
        assert_eq!(st.safe_nodes(), vec![]);
    }

    #[test]
    fn fault_free_cube_all_safe() {
        let cfg = cfg4(&[]);
        let st = LeeHayesStatus::compute(&cfg);
        assert_eq!(st.safe_nodes().len(), 16);
        assert_eq!(st.rounds(), 0);
    }

    #[test]
    fn single_fault_keeps_rest_safe() {
        let cfg = cfg4(&["0101"]);
        let st = LeeHayesStatus::compute(&cfg);
        assert_eq!(st.safe_nodes().len(), 15);
    }

    #[test]
    fn unsafe_cascade() {
        // Two faults adjacent to a common node make it unsafe, which can
        // cascade.
        let cfg = cfg4(&["0001", "0010"]);
        let st = LeeHayesStatus::compute(&cfg);
        assert!(!st.is_safe(NodeId::new(0b0000)), "two faulty neighbors");
        assert!(!st.is_safe(NodeId::new(0b0011)), "two faulty neighbors");
    }

    #[test]
    fn routing_in_lightly_faulty_cube() {
        let cfg = cfg4(&["0100"]);
        let st = LeeHayesStatus::compute(&cfg);
        for s in cfg.healthy_nodes() {
            for dnode in cfg.healthy_nodes() {
                if s == dnode {
                    continue;
                }
                let p = lh_route(&cfg, &st, s, dnode);
                let p = p.expect("one fault must be routable");
                assert!(p.traversable(&cfg, false));
                assert!(p.len() <= s.distance(dnode) + 2, "{s} → {dnode}");
            }
        }
    }

    #[test]
    fn routing_refuses_fully_unsafe_cube() {
        let cfg = cfg4(&["0000", "0110", "1111"]);
        let st = LeeHayesStatus::compute(&cfg);
        assert_eq!(lh_route(&cfg, &st, NodeId::new(1), NodeId::new(2)), None);
    }
}
