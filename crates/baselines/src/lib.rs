//! # hypersafe-baselines
//!
//! The fault-tolerant routing schemes the paper positions safety levels
//! against, implemented as runnable baselines:
//!
//! * [`lee_hayes`] — safe nodes per Definition 2 ([7]) + routing.
//! * [`wu_fernandez`] — enhanced safe nodes per Definition 3 ([10]).
//! * [`chiu_wu`] — routing over WF status with the `H + 4` bound ([4],
//!   faithful-to-claims reconstruction; see DESIGN.md §5).
//! * [`chen_shin_dfs`] — DFS routing with backtracking and message
//!   history ([3]).
//! * [`chen_shin_progressive`] — backtrack-free adaptive routing ([2]).
//! * [`sidetrack`] — Gordon–Stout random sidetracking ([5]).
//! * [`free_dimensions`] — Raghavendra et al. free dimensions ([8]).
//!
//! The crate-level tests pin the paper's §2.3 comparison: for every
//! fault distribution, LH-safe ⊆ WF-safe ⊆ {level-n nodes}, and both
//! boolean safe sets are empty in every disconnected cube (Theorem 4).
#![warn(missing_docs)]

pub mod chen_shin_dfs;
pub mod chen_shin_progressive;
pub mod chiu_wu;
pub mod free_dimensions;
pub mod lee_hayes;
pub mod sidetrack;
pub mod wu_fernandez;

pub use chen_shin_dfs::{dfs_route, DfsRoute};
pub use chen_shin_progressive::{default_ttl, progressive_route};
pub use chiu_wu::cw_route;
pub use free_dimensions::{fd_route, free_dimensions, has_free_dimension};
pub use lee_hayes::{lh_route, LeeHayesStatus};
pub use sidetrack::sidetrack_route;
pub use wu_fernandez::WuFernandezStatus;

#[cfg(test)]
mod theorem4_tests {
    use super::*;
    use hypersafe_topology::{connectivity, FaultConfig, FaultSet, Hypercube, NodeId};

    /// Theorem 4 exhaustively on Q_4 with ≤ 6 faults: every disconnected
    /// instance has empty LH and WF safe sets.
    #[test]
    fn theorem4_exhaustive_q4() {
        let cube = Hypercube::new(4);
        let mut disconnected_seen = 0u32;
        for mask in 0u64..(1 << 16) {
            let ones = mask.count_ones();
            if !(4..=6).contains(&ones) {
                continue; // fewer than 4 faults cannot disconnect Q_4
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            if !connectivity::is_disconnected(&cfg) {
                continue;
            }
            disconnected_seen += 1;
            let lh = LeeHayesStatus::compute(&cfg);
            let wf = WuFernandezStatus::compute(&cfg);
            assert!(lh.fully_unsafe(), "mask {mask:#x}: LH safe set nonempty");
            assert!(wf.fully_unsafe(), "mask {mask:#x}: WF safe set nonempty");
        }
        assert!(disconnected_seen > 0, "test exercised real disconnections");
    }

    /// The flip side that makes safety levels strictly stronger: in the
    /// Fig. 3 disconnected cube, safety levels still enable optimal
    /// routing inside the large component while LH/WF are inapplicable.
    #[test]
    fn safety_levels_survive_where_safe_sets_die() {
        use hypersafe_core::{route, Decision, SafetyMap};
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
        );
        assert!(connectivity::is_disconnected(&cfg));
        let lh = LeeHayesStatus::compute(&cfg);
        let wf = WuFernandezStatus::compute(&cfg);
        assert!(lh.fully_unsafe());
        assert!(wf.fully_unsafe());

        let map = SafetyMap::compute(&cfg);
        let s = NodeId::from_binary("0101").unwrap();
        let d = NodeId::from_binary("0000").unwrap();
        let res = route(&cfg, &map, s, d);
        assert!(matches!(res.decision, Decision::Optimal { .. }));
        assert!(res.delivered);
    }
}
