//! Progressive (backtrack-free) adaptive routing — the simplified
//! Chen–Shin scheme the paper cites as [2].
//!
//! "A simplified version of this approach that tolerates fewer faults
//! was presented in [2], where routing is progressive without
//! backtracking. Still routing paths are not optimal in general."
//!
//! At each node the message moves to a nonfaulty preferred neighbor if
//! one exists; otherwise it sidesteps along a nonfaulty spare dimension
//! it did not just cross. Without history or backtracking, the scheme
//! can live-lock around fault clusters, so a hop budget (TTL) bounds
//! the attempt.

use hypersafe_topology::{FaultConfig, NodeId, Path};

/// Routes `s → d` progressively with hop budget `ttl`.
///
/// Returns the realized path with its delivery status; `None` for
/// faulty endpoints.
pub fn progressive_route(
    cfg: &FaultConfig,
    s: NodeId,
    d: NodeId,
    ttl: u32,
) -> Option<(Path, bool)> {
    if cfg.node_faulty(s) || cfg.node_faulty(d) {
        return None;
    }
    let cube = cfg.cube();
    let mut at = s;
    let mut path = Path::starting_at(s);
    let mut last_dim: Option<u8> = None;
    while at != d {
        if path.len() >= ttl {
            return Some((path, false));
        }
        let pick = cube
            .preferred_dims(at, d)
            .map(|i| (i, at.neighbor(i)))
            .find(|&(_, b)| !cfg.node_faulty(b) && cfg.link_usable(at, b))
            .or_else(|| {
                cube.spare_dims(at, d)
                    .filter(|&i| Some(i) != last_dim)
                    .map(|i| (i, at.neighbor(i)))
                    .find(|&(_, b)| !cfg.node_faulty(b) && cfg.link_usable(at, b))
            });
        match pick {
            Some((i, b)) => {
                last_dim = Some(i);
                path.push(b);
                at = b;
            }
            None => return Some((path, false)),
        }
    }
    Some((path, true))
}

/// A sensible default TTL: `H + 2 · (faults + 1)` — each fault can cost
/// at most one two-hop detour in the progressive scheme's best case.
pub fn default_ttl(cfg: &FaultConfig, s: NodeId, d: NodeId) -> u32 {
    s.distance(d) + 2 * (cfg.node_faults().len() as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn fault_free_is_optimal() {
        let cfg = cfg4(&[]);
        for s in cfg.cube().nodes() {
            for d in cfg.cube().nodes() {
                let (p, ok) = progressive_route(&cfg, s, d, 64).unwrap();
                assert!(ok);
                assert!(p.is_optimal());
            }
        }
    }

    #[test]
    fn detours_around_single_fault() {
        let cfg = cfg4(&["0001"]);
        let (p, ok) =
            progressive_route(&cfg, NodeId::new(0b0000), NodeId::new(0b0011), 16).unwrap();
        assert!(ok);
        assert!(p.traversable(&cfg, false));
        assert!(p.len() <= 2 + 2, "one detour at most here");
    }

    #[test]
    fn ttl_exhaustion_reports_failure() {
        let cfg = cfg4(&["0001", "0010", "0100", "1000"]);
        // 0000's every neighbor is faulty: no first hop exists at all.
        let (p, ok) = progressive_route(&cfg, NodeId::new(0), NodeId::new(0b1111), 8).unwrap();
        assert!(!ok);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn no_backtracking_means_it_can_fail_where_dfs_succeeds() {
        // Chosen so the progressive walker starves while the graph stays
        // connected — the structural weakness [3] fixes with history.
        use crate::chen_shin_dfs::dfs_route;
        use hypersafe_topology::connectivity;
        let cube = Hypercube::new(4);
        let mut found = false;
        // Search a few fault patterns for a witness.
        'outer: for mask in 0u64..(1 << 16) {
            if mask.count_ones() != 5 {
                continue;
            }
            let mut f = FaultSet::new(cube);
            for i in 0..16 {
                if (mask >> i) & 1 == 1 {
                    f.insert(NodeId::new(i));
                }
            }
            let cfg = FaultConfig::with_node_faults(cube, f);
            for s in cfg.healthy_nodes() {
                for d in cfg.healthy_nodes() {
                    if s == d || !connectivity::connected(&cfg, s, d) {
                        continue;
                    }
                    let (_, ok) = progressive_route(&cfg, s, d, 8).unwrap();
                    if !ok {
                        let r = dfs_route(&cfg, s, d).unwrap();
                        assert!(r.delivered, "DFS must succeed when connected");
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "expected a progressive-fails/DFS-succeeds witness");
    }
}
