//! Gordon–Stout random sidetracking (paper's reference [5]).
//!
//! "A message is rerouted to a randomly chosen fault-free neighboring
//! node when there exists no fault-free neighbor along optimal paths to
//! the destination node." Purely local, purely heuristic: no status
//! information at all, so the path length is unpredictable and the walk
//! can live-lock — a TTL bounds it.

use hypersafe_topology::{FaultConfig, NodeId, Path};
use rand::Rng;

/// Routes `s → d` by random sidetracking with hop budget `ttl`,
/// drawing choices from `rng`.
///
/// Returns the realized walk with delivery status; `None` for faulty
/// endpoints.
pub fn sidetrack_route<R: Rng + ?Sized>(
    cfg: &FaultConfig,
    s: NodeId,
    d: NodeId,
    ttl: u32,
    rng: &mut R,
) -> Option<(Path, bool)> {
    if cfg.node_faulty(s) || cfg.node_faulty(d) {
        return None;
    }
    let cube = cfg.cube();
    let mut at = s;
    let mut path = Path::starting_at(s);
    let mut preferred: Vec<NodeId> = Vec::with_capacity(cube.dim() as usize);
    let mut spare: Vec<NodeId> = Vec::with_capacity(cube.dim() as usize);
    while at != d {
        if path.len() >= ttl {
            return Some((path, false));
        }
        preferred.clear();
        spare.clear();
        for i in cube.preferred_dims(at, d) {
            let b = at.neighbor(i);
            if !cfg.node_faulty(b) && cfg.link_usable(at, b) {
                preferred.push(b);
            }
        }
        if preferred.is_empty() {
            for i in cube.spare_dims(at, d) {
                let b = at.neighbor(i);
                if !cfg.node_faulty(b) && cfg.link_usable(at, b) {
                    spare.push(b);
                }
            }
        }
        let pool = if preferred.is_empty() {
            &spare
        } else {
            &preferred
        };
        if pool.is_empty() {
            return Some((path, false));
        }
        let next = pool[rng.gen_range(0..pool.len())];
        path.push(next);
        at = next;
    }
    Some((path, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn fault_free_is_optimal() {
        // With no faults there is always a fault-free preferred
        // neighbor, so every hop makes progress.
        let cfg = cfg4(&[]);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for s in cfg.cube().nodes() {
            for d in cfg.cube().nodes() {
                let (p, ok) = sidetrack_route(&cfg, s, d, 64, &mut rng).unwrap();
                assert!(ok);
                assert!(p.is_optimal());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = cfg4(&["0011", "0101"]);
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            sidetrack_route(&cfg, NodeId::new(0), NodeId::new(0b1111), 32, &mut rng)
                .map(|(p, ok)| (p.nodes().to_vec(), ok))
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn ttl_bounds_the_walk() {
        let cfg = cfg4(&["0011", "0101", "0110", "1001", "1010", "1100"]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // 0000 → 1111 with the entire middle layer faulty: impossible.
        let (p, ok) =
            sidetrack_route(&cfg, NodeId::new(0), NodeId::new(0b1111), 20, &mut rng).unwrap();
        assert!(!ok);
        assert!(p.len() <= 20);
    }

    #[test]
    fn usually_delivers_with_few_faults() {
        let cfg = cfg4(&["0011", "0100"]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut delivered = 0;
        let trials = 100;
        for _ in 0..trials {
            let (_, ok) =
                sidetrack_route(&cfg, NodeId::new(0b0001), NodeId::new(0b1110), 32, &mut rng)
                    .unwrap();
            delivered += ok as u32;
        }
        assert!(
            delivered > 90,
            "random sidetracking should mostly succeed: {delivered}/100"
        );
    }
}
