//! Property tests for the baseline routing schemes: every returned
//! path must be physically valid, respect its advertised bound, and
//! DFS must match the connectivity oracle.

use hypersafe_baselines::{
    cw_route, default_ttl, dfs_route, fd_route, free_dimensions, lh_route, progressive_route,
    sidetrack_route, LeeHayesStatus, WuFernandezStatus,
};
use hypersafe_topology::{connectivity, FaultConfig, FaultSet, Hypercube, NodeId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn instance() -> impl Strategy<Value = (FaultConfig, Vec<NodeId>)> {
    (3u8..=6).prop_flat_map(|n| {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        proptest::collection::btree_set(0..total, 0..(total / 3) as usize).prop_map(move |set| {
            let faults = FaultSet::from_nodes(cube, set.into_iter().map(NodeId::new));
            let cfg = FaultConfig::with_node_faults(cube, faults);
            let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
            (cfg, healthy)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lee–Hayes routing: any returned path is traversable and within
    /// H + 2.
    #[test]
    fn lh_paths_valid((cfg, healthy) in instance()) {
        prop_assume!(healthy.len() >= 2);
        let st = LeeHayesStatus::compute(&cfg);
        for &s in healthy.iter().take(6) {
            for &d in healthy.iter().rev().take(6) {
                if s == d { continue; }
                if let Some(p) = lh_route(&cfg, &st, s, d) {
                    prop_assert!(p.traversable(&cfg, false));
                    prop_assert_eq!(p.start(), s);
                    prop_assert_eq!(p.end(), d);
                    prop_assert!(p.len() <= s.distance(d) + 2);
                }
            }
        }
    }

    /// Chiu–Wu routing: any returned path is traversable and within
    /// H + 4; never returned on a fully-unsafe cube.
    #[test]
    fn cw_paths_valid((cfg, healthy) in instance()) {
        prop_assume!(healthy.len() >= 2);
        let st = WuFernandezStatus::compute(&cfg);
        for &s in healthy.iter().take(6) {
            for &d in healthy.iter().rev().take(6) {
                if s == d { continue; }
                let r = cw_route(&cfg, &st, s, d);
                if st.fully_unsafe() {
                    prop_assert_eq!(r, None);
                } else if let Some(p) = r {
                    prop_assert!(p.traversable(&cfg, false));
                    prop_assert!(p.len() <= s.distance(d) + 4);
                }
            }
        }
    }

    /// DFS delivers exactly when the endpoints are connected, and its
    /// walk only crosses healthy nodes.
    #[test]
    fn dfs_matches_connectivity_oracle((cfg, healthy) in instance()) {
        prop_assume!(healthy.len() >= 2);
        for &s in healthy.iter().take(5) {
            for &d in healthy.iter().rev().take(5) {
                let r = dfs_route(&cfg, s, d).expect("healthy endpoints");
                prop_assert_eq!(r.delivered, connectivity::connected(&cfg, s, d));
                for node in &r.walk {
                    prop_assert!(!cfg.node_faulty(*node));
                }
                if r.delivered {
                    prop_assert_eq!(*r.walk.last().unwrap(), d);
                }
            }
        }
    }

    /// Progressive and free-dimension routing: returned paths are
    /// traversable; success implies ending at the destination.
    #[test]
    fn progressive_and_fd_paths_valid((cfg, healthy) in instance()) {
        prop_assume!(healthy.len() >= 2);
        for &s in healthy.iter().take(5) {
            for &d in healthy.iter().rev().take(5) {
                if s == d { continue; }
                let ttl = default_ttl(&cfg, s, d);
                let (p, ok) = progressive_route(&cfg, s, d, ttl).expect("healthy");
                prop_assert!(p.traversable(&cfg, false));
                if ok { prop_assert_eq!(p.end(), d); }
                let (p, ok) = fd_route(&cfg, s, d, ttl).expect("healthy");
                prop_assert!(p.traversable(&cfg, false));
                if ok { prop_assert_eq!(p.end(), d); }
            }
        }
    }

    /// Sidetracking with a fixed seed: valid walks; determinism.
    #[test]
    fn sidetrack_paths_valid((cfg, healthy) in instance(), seed in any::<u64>()) {
        prop_assume!(healthy.len() >= 2);
        let s = healthy[0];
        let d = *healthy.last().unwrap();
        prop_assume!(s != d);
        let ttl = 8 * cfg.cube().dim() as u32;
        let mut rng1 = ChaCha8Rng::seed_from_u64(seed);
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let (p1, ok1) = sidetrack_route(&cfg, s, d, ttl, &mut rng1).expect("healthy");
        let (p2, ok2) = sidetrack_route(&cfg, s, d, ttl, &mut rng2).expect("healthy");
        prop_assert_eq!(p1.nodes(), p2.nodes());
        prop_assert_eq!(ok1, ok2);
        prop_assert!(p1.traversable(&cfg, false));
    }

    /// Free dimensions: a dimension is reported free iff no fault pair
    /// straddles it (checked against a brute-force oracle).
    #[test]
    fn free_dimensions_oracle((cfg, _healthy) in instance()) {
        let cube = cfg.cube();
        let free = free_dimensions(&cfg);
        for i in 0..cube.dim() {
            let straddled = cfg.node_faults().iter().any(|f| cfg.node_faults().contains(f.neighbor(i)));
            prop_assert_eq!(free.contains(&i), !straddled, "dim {}", i);
        }
    }

    /// Safe-set sizes are antitone in the fault set: adding a fault
    /// never grows the LH or WF safe set.
    #[test]
    fn safe_sets_antitone((cfg, healthy) in instance()) {
        prop_assume!(!healthy.is_empty());
        let lh_before = LeeHayesStatus::compute(&cfg).safe_nodes().len();
        let wf_before = WuFernandezStatus::compute(&cfg).safe_nodes().len();
        let mut bigger = cfg.clone();
        bigger.node_faults_mut().insert(healthy[0]);
        let lh_after = LeeHayesStatus::compute(&bigger).safe_nodes().len();
        let wf_after = WuFernandezStatus::compute(&bigger).safe_nodes().len();
        prop_assert!(lh_after <= lh_before);
        prop_assert!(wf_after <= wf_before);
    }
}
