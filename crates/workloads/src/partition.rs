//! Generators for *disconnecting* fault sets (paper §3.3).
//!
//! Disconnected hypercubes are the regime where the paper's scheme is
//! the only applicable one (Theorem 4 kills every safe-node approach).
//! The minimum cut of `Q_n` is `n`, achieved by cutting off a single
//! corner; richer patterns isolate a `k`-subcube.

use hypersafe_topology::{connectivity, FaultConfig, FaultSet, Hypercube, NodeId, Subcube};
use rand::Rng;

/// Faults all `n` neighbors of `corner`, isolating it: the canonical
/// minimal disconnection (Fig. 3 is a rotated instance of this shape
/// plus one fault moved outward).
pub fn corner_cut(cube: Hypercube, corner: NodeId) -> FaultSet {
    FaultSet::from_nodes(cube, cube.neighbors(corner))
}

/// Faults the boundary of the `k`-dimensional subcube containing
/// `seed` spanned by dimensions `0..k`: every node at Hamming distance
/// 1 outside the subcube. Costs `(n − k) · 2ᵏ` faults and disconnects
/// the subcube's `2ᵏ` nodes from the rest.
pub fn subcube_cut(cube: Hypercube, seed: NodeId, k: u8) -> FaultSet {
    assert!(k < cube.dim());
    let free: u64 = (1u64 << k) - 1;
    let sc = Subcube {
        fixed_ones: seed.raw() & !free,
        free_mask: free,
    };
    let mut f = FaultSet::new(cube);
    for a in sc.nodes() {
        for (dim, b) in cube.neighbors_with_dims(a) {
            if dim >= k {
                f.insert(b);
            }
        }
    }
    f
}

/// Random disconnecting fault set: isolates a random corner, then
/// sprinkles `extra` additional uniform faults outside the cut.
pub fn random_disconnecting<R: Rng + ?Sized>(
    cube: Hypercube,
    extra: usize,
    rng: &mut R,
) -> FaultSet {
    let corner = NodeId::new(rng.gen_range(0..cube.num_nodes()));
    let mut f = corner_cut(cube, corner);
    let mut guard = 0;
    while f.len() < cube.dim() as usize + extra {
        let v = NodeId::new(rng.gen_range(0..cube.num_nodes()));
        if v != corner {
            f.insert(v);
        }
        guard += 1;
        if guard > 10_000 {
            break;
        }
    }
    f
}

/// Asserts (in tests/experiments) that a generated set really
/// disconnects the cube.
pub fn is_disconnecting(cube: Hypercube, faults: &FaultSet) -> bool {
    let cfg = FaultConfig::with_node_faults(cube, faults.clone());
    connectivity::is_disconnected(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn corner_cut_isolates_the_corner() {
        let cube = Hypercube::new(5);
        let corner = NodeId::new(0b10110);
        let f = corner_cut(cube, corner);
        assert_eq!(f.len(), 5);
        assert!(is_disconnecting(cube, &f));
        let cfg = FaultConfig::with_node_faults(cube, f);
        let comps = connectivity::components(&cfg);
        assert!(comps.contains(&vec![corner]));
    }

    #[test]
    fn subcube_cut_isolates_the_subcube() {
        let cube = Hypercube::new(5);
        let seed = NodeId::new(0b11000);
        let f = subcube_cut(cube, seed, 2);
        assert_eq!(f.len(), 3 * 4, "(n − k) · 2^k faults");
        assert!(is_disconnecting(cube, &f));
        let cfg = FaultConfig::with_node_faults(cube, f);
        let comps = connectivity::components(&cfg);
        assert!(
            comps.iter().any(|c| c.len() == 4),
            "the 2-subcube is one part"
        );
    }

    #[test]
    fn random_disconnecting_disconnects() {
        let cube = Hypercube::new(6);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..20 {
            let f = random_disconnecting(cube, 3, &mut rng);
            assert!(f.len() >= 6);
            assert!(is_disconnecting(cube, &f));
        }
    }
}
