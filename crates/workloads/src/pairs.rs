//! Source/destination pair sampling for unicast experiments.

use hypersafe_topology::{FaultConfig, NodeId};
use rand::Rng;

/// A uniformly random *healthy* node.
///
/// # Panics
/// Panics if every node is faulty.
pub fn random_healthy<R: Rng + ?Sized>(cfg: &FaultConfig, rng: &mut R) -> NodeId {
    assert!(cfg.healthy_count() > 0, "no healthy nodes to sample");
    let total = cfg.cube().num_nodes();
    loop {
        let a = NodeId::new(rng.gen_range(0..total));
        if !cfg.node_faulty(a) {
            return a;
        }
    }
}

/// A uniformly random ordered pair of distinct healthy nodes.
///
/// # Panics
/// Panics if fewer than two healthy nodes exist.
pub fn random_pair<R: Rng + ?Sized>(cfg: &FaultConfig, rng: &mut R) -> (NodeId, NodeId) {
    assert!(cfg.healthy_count() >= 2, "need two healthy nodes");
    let s = random_healthy(cfg, rng);
    loop {
        let d = random_healthy(cfg, rng);
        if d != s {
            return (s, d);
        }
    }
}

/// A random healthy pair at exactly Hamming distance `h`, or `None` if
/// `max_attempts` samplings found none (dense fault regimes can make
/// some distances rare).
pub fn random_pair_at_distance<R: Rng + ?Sized>(
    cfg: &FaultConfig,
    h: u32,
    max_attempts: u32,
    rng: &mut R,
) -> Option<(NodeId, NodeId)> {
    let n = cfg.cube().dim() as u32;
    assert!(h >= 1 && h <= n);
    for _ in 0..max_attempts {
        let s = random_healthy(cfg, rng);
        // Flip a random h-subset of dimensions.
        let mut dims: Vec<u8> = (0..n as u8).collect();
        // Partial Fisher–Yates for the first h entries.
        for i in 0..h as usize {
            let j = rng.gen_range(i..dims.len());
            dims.swap(i, j);
        }
        let mut d = s;
        for &i in &dims[..h as usize] {
            d = d.neighbor(i);
        }
        if !cfg.node_faulty(d) {
            return Some((s, d));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> FaultConfig {
        let cube = Hypercube::new(5);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["00000", "10101"]))
    }

    #[test]
    fn healthy_sampling_avoids_faults() {
        let cfg = cfg();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let a = random_healthy(&cfg, &mut rng);
            assert!(!cfg.node_faulty(a));
        }
    }

    #[test]
    fn pairs_are_distinct_and_healthy() {
        let cfg = cfg();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let (s, d) = random_pair(&cfg, &mut rng);
            assert_ne!(s, d);
            assert!(!cfg.node_faulty(s) && !cfg.node_faulty(d));
        }
    }

    #[test]
    fn distance_pairs_hit_exact_distance() {
        let cfg = cfg();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for h in 1..=5 {
            let (s, d) = random_pair_at_distance(&cfg, h, 1000, &mut rng).unwrap();
            assert_eq!(s.distance(d), h);
        }
    }

    #[test]
    fn impossible_distance_returns_none_gracefully() {
        // 1-cube with node 1 faulty: no healthy pair at distance 1.
        let cube = Hypercube::new(1);
        let mut f = FaultSet::new(cube);
        f.insert(NodeId::new(1));
        let cfg = FaultConfig::with_node_faults(cube, f);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(random_pair_at_distance(&cfg, 1, 50, &mut rng), None);
    }
}
