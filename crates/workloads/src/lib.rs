//! # hypersafe-workloads
//!
//! Workload generation for the experiment harness: fault-injection
//! patterns (uniform, clustered, subcube, link), disconnecting fault
//! sets for the §3.3 experiments, source/destination pair samplers,
//! channel loss profiles for the reliability experiments, and the
//! seeded rayon-parallel Monte-Carlo sweep driver.
#![warn(missing_docs)]

pub mod embedded;
pub mod fault_gen;
pub mod hotspot;
pub mod loss;
pub mod open_loop;
pub mod pairs;
pub mod partition;
pub mod percolation;
pub mod sweep;

pub use embedded::{
    bit_reversal_pairs, exchange_pairs, pattern_names, pattern_pairs, ring_pairs, torus_pairs,
};
pub use fault_gen::{clustered_faults, subcube_faults, uniform_faults, uniform_link_faults};
pub use hotspot::{hotspot_mix, incast_pairs, LinkLoad};
pub use loss::{random_profile, LossProfile, STANDARD_PROFILES};
pub use open_loop::{open_loop_mix, OpenLoop};
pub use pairs::{random_healthy, random_pair, random_pair_at_distance};
pub use partition::{corner_cut, is_disconnecting, random_disconnecting, subcube_cut};
pub use percolation::{
    bernoulli_link_faults, bernoulli_node_faults, giant_component, giant_component_pairs,
    giant_fraction_bp, link_threshold_bp,
};
pub use sweep::{ci95, mean, stddev, Sweep};
