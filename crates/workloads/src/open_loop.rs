//! Open-loop arrival generation for the resilient-service soak (E26).
//!
//! An *open-loop* workload fixes arrival times up front, independent
//! of service progress — the generator never waits for a response, so
//! overload actually overloads (the closed-loop alternative would
//! self-throttle and hide admission-control behavior). The generated
//! mix interleaves:
//!
//! * route-request submits (healthy source/destination pairs at emit
//!   time, uniform deadlines),
//! * fault/recovery churn against a tracked virtual fault set (only
//!   valid transitions are emitted: fault a healthy node, recover a
//!   faulty one, never exceed the live-fault budget),
//! * occasional cancellations of in-flight-aged requests.
//!
//! Everything is a pure function of `(cube, params, rng)`; with a
//! seeded ChaCha stream the same list regenerates byte-identically.

use hypersafe_simkit::event::Time;
use hypersafe_simkit::service::Injection;
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use rand::Rng;

use crate::pairs::random_pair;

/// Shape of the open-loop mix.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoop {
    /// Route requests to emit.
    pub requests: u64,
    /// Inter-arrival gap, uniform in `0..=max_gap` ticks (0 allows
    /// same-tick bursts — the adversarial scheduler reorders those).
    pub max_gap: Time,
    /// Probability of a churn event between consecutive arrivals.
    pub churn_prob: f64,
    /// Given a churn event and a non-empty fault set, probability it
    /// is a recovery rather than a new fault.
    pub recover_prob: f64,
    /// Hard cap on simultaneously-faulty nodes (the paper's regime is
    /// `< n`; the generator refuses to fault past this).
    pub max_live_faults: usize,
    /// Per-request relative deadline, uniform in
    /// `deadline_min..=deadline_max`.
    pub deadline_min: Time,
    /// Upper deadline bound (inclusive).
    pub deadline_max: Time,
    /// Probability a submit is followed by a cancellation of that
    /// request, at a small random delay.
    pub cancel_prob: f64,
}

impl Default for OpenLoop {
    fn default() -> Self {
        OpenLoop {
            requests: 1_000,
            max_gap: 3,
            churn_prob: 0.05,
            recover_prob: 0.4,
            max_live_faults: 3,
            deadline_min: 16,
            deadline_max: 64,
            cancel_prob: 0.01,
        }
    }
}

/// Generates the open-loop mixed workload over `cube`. The returned
/// list is in emission order (arrival times nondecreasing for submits
/// and churn; cancel times may interleave) — the service's event heap
/// orders execution.
///
/// The generator tracks a virtual fault set so every emitted churn
/// event is applicable when processed in time order: faults target
/// healthy nodes, recoveries target faulty ones, and the set never
/// exceeds `max_live_faults` or faults every node.
pub fn open_loop_mix<R: Rng + ?Sized>(
    cube: Hypercube,
    p: &OpenLoop,
    rng: &mut R,
) -> Vec<Injection> {
    assert!(p.deadline_min <= p.deadline_max, "deadline range inverted");
    assert!(
        (p.max_live_faults as u64) < cube.num_nodes().saturating_sub(2),
        "fault budget must leave at least two healthy nodes"
    );
    let mut virt = FaultConfig::fault_free(cube);
    let mut out = Vec::with_capacity(p.requests as usize + p.requests as usize / 8);
    let mut now: Time = 0;
    let mut emitted = 0u64;
    let mut req_id = 0u64;
    while emitted < p.requests {
        // Maybe churn first: the event lands strictly before the next
        // arrival tick advance, sharing `now` with bursty submits.
        if rng.gen_bool(p.churn_prob) {
            let faults = virt.node_faults().len();
            let recover =
                faults > 0 && (faults >= p.max_live_faults || rng.gen_bool(p.recover_prob));
            if recover {
                let k = rng.gen_range(0..faults);
                let node = virt.node_faults().iter().nth(k).expect("k < len");
                virt.node_faults_mut().remove(node);
                out.push(Injection::Churn {
                    at: now,
                    node,
                    fault: false,
                });
            } else if faults < p.max_live_faults {
                // Rejection-sample a healthy victim (fault density ≪ 2ⁿ).
                let node = loop {
                    let a = NodeId::new(rng.gen_range(0..cube.num_nodes()));
                    if !virt.node_faulty(a) {
                        break a;
                    }
                };
                virt.node_faults_mut().insert(node);
                out.push(Injection::Churn {
                    at: now,
                    node,
                    fault: true,
                });
            }
        }
        let (src, dst) = random_pair(&virt, rng);
        let deadline = rng.gen_range(p.deadline_min..=p.deadline_max);
        out.push(Injection::Submit {
            at: now,
            src,
            dst,
            deadline,
        });
        if p.cancel_prob > 0.0 && rng.gen_bool(p.cancel_prob) {
            let delay = rng.gen_range(0..=deadline / 2);
            out.push(Injection::Cancel {
                at: now + delay,
                req: req_id,
            });
        }
        req_id += 1;
        emitted += 1;
        now += rng.gen_range(0..=p.max_gap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn gen(seed: u64, p: &OpenLoop) -> Vec<Injection> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        open_loop_mix(Hypercube::new(8), p, &mut rng)
    }

    #[test]
    fn same_seed_same_workload() {
        let p = OpenLoop::default();
        assert_eq!(gen(7, &p), gen(7, &p));
        assert_ne!(gen(7, &p), gen(8, &p));
    }

    #[test]
    fn emits_exactly_the_requested_submits() {
        let p = OpenLoop {
            requests: 500,
            ..Default::default()
        };
        let list = gen(1, &p);
        let submits = list
            .iter()
            .filter(|i| matches!(i, Injection::Submit { .. }))
            .count();
        assert_eq!(submits, 500);
    }

    #[test]
    fn churn_replays_validly_within_budget() {
        let p = OpenLoop {
            requests: 2_000,
            churn_prob: 0.3,
            max_live_faults: 5,
            ..Default::default()
        };
        let cube = Hypercube::new(8);
        let mut virt = FaultConfig::fault_free(cube);
        let mut churns = 0;
        for inj in gen(3, &p) {
            if let Injection::Churn { node, fault, .. } = inj {
                assert_ne!(
                    virt.node_faulty(node),
                    fault,
                    "churn must flip the node's state"
                );
                if fault {
                    virt.node_faults_mut().insert(node);
                } else {
                    virt.node_faults_mut().remove(node);
                }
                assert!(virt.node_faults().len() <= 5, "budget respected");
                churns += 1;
            }
        }
        assert!(
            churns > 100,
            "churn_prob 0.3 over 2000 arrivals: got {churns}"
        );
    }

    #[test]
    fn endpoints_are_healthy_at_emission_and_times_nondecrease() {
        let p = OpenLoop {
            requests: 1_000,
            churn_prob: 0.2,
            ..Default::default()
        };
        let cube = Hypercube::new(8);
        let mut virt = FaultConfig::fault_free(cube);
        let mut last_arrival = 0;
        for inj in gen(11, &p) {
            match inj {
                Injection::Churn { node, fault, at } => {
                    assert!(at >= last_arrival);
                    if fault {
                        virt.node_faults_mut().insert(node);
                    } else {
                        virt.node_faults_mut().remove(node);
                    }
                }
                Injection::Submit { src, dst, at, .. } => {
                    assert!(at >= last_arrival, "arrivals nondecreasing");
                    last_arrival = at;
                    assert!(!virt.node_faulty(src), "source healthy at emit");
                    assert!(!virt.node_faulty(dst), "destination healthy at emit");
                    assert_ne!(src, dst);
                }
                Injection::Cancel { .. } => {}
            }
        }
    }

    #[test]
    fn cancels_reference_prior_submits() {
        let p = OpenLoop {
            requests: 2_000,
            cancel_prob: 0.2,
            ..Default::default()
        };
        let list = gen(5, &p);
        let mut submits_seen = 0u64;
        let mut cancels = 0;
        for inj in &list {
            match inj {
                Injection::Submit { .. } => submits_seen += 1,
                Injection::Cancel { req, .. } => {
                    assert!(*req < submits_seen, "cancel targets an already-emitted id");
                    cancels += 1;
                }
                _ => {}
            }
        }
        assert!(cancels > 200, "cancel_prob 0.2: got {cancels}");
    }
}
