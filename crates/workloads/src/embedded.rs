//! Application-shaped traffic patterns.
//!
//! Uniform random pairs stress routing uniformly, but real hypercube
//! applications communicated along *embedded* structures: a ring
//! embedded by Gray code (each node talks to its ring successor), a
//! 2-D torus embedded by per-axis Gray codes, dimension-wise exchange
//! (the classic hypercube all-to-all step), and transpose-style
//! bit-reversal pairs. These generators give the traffic and multicast
//! experiments workloads with realistic locality.

use hypersafe_topology::{gray, FaultConfig, NodeId};

/// `(source, destination)` pairs of the Gray-code ring embedding:
/// every healthy node to its nearest healthy ring successor.
pub fn ring_pairs(cfg: &FaultConfig) -> Vec<(NodeId, NodeId)> {
    let cube = cfg.cube();
    let total = cube.num_nodes();
    let mut pairs = Vec::new();
    for r in 0..total {
        let s = gray::gray(r);
        if cfg.node_faulty(s) {
            continue;
        }
        // Next healthy node along the ring.
        for step in 1..total {
            let d = gray::gray((r + step) % total);
            if !cfg.node_faulty(d) {
                if d != s {
                    pairs.push((s, d));
                }
                break;
            }
        }
    }
    pairs
}

/// Pairs of the dimension-`i` exchange step: every healthy node to its
/// dimension-`i` partner (the communication of one butterfly stage).
pub fn exchange_pairs(cfg: &FaultConfig, dim: u8) -> Vec<(NodeId, NodeId)> {
    let cube = cfg.cube();
    assert!(dim < cube.dim());
    cfg.healthy_nodes()
        .filter_map(|s| {
            let d = s.neighbor(dim);
            (!cfg.node_faulty(d)).then_some((s, d))
        })
        .collect()
}

/// Bit-reversal (transpose-style) pairs: node `a` to the node with
/// `a`'s low `n` bits reversed — the classic adversarial permutation
/// for dimension-ordered routing.
pub fn bit_reversal_pairs(cfg: &FaultConfig) -> Vec<(NodeId, NodeId)> {
    let cube = cfg.cube();
    let n = cube.dim();
    cfg.healthy_nodes()
        .filter_map(|s| {
            let mut rev = 0u64;
            for i in 0..n {
                if s.bit(i) {
                    rev |= 1 << (n - 1 - i);
                }
            }
            let d = NodeId::new(rev);
            (d != s && !cfg.node_faulty(d)).then_some((s, d))
        })
        .collect()
}

/// 2-D torus embedding pairs: the address is split into two halves,
/// each Gray-coded into one torus axis; every healthy node talks to
/// its +1 neighbor along each axis (nearest healthy skipped-over).
///
/// # Panics
/// Panics for odd `n` — the split needs two equal halves.
pub fn torus_pairs(cfg: &FaultConfig) -> Vec<(NodeId, NodeId)> {
    let cube = cfg.cube();
    let n = cube.dim();
    assert!(n.is_multiple_of(2), "torus embedding needs even dimension");
    let half = n / 2;
    let side = 1u64 << half;
    let mut pairs = Vec::new();
    let compose = |x: u64, y: u64| -> NodeId {
        NodeId::new(gray::gray(x % side).raw() | (gray::gray(y % side).raw() << half))
    };
    for y in 0..side {
        for x in 0..side {
            let s = compose(x, y);
            if cfg.node_faulty(s) {
                continue;
            }
            for (dx, dy) in [(1u64, 0u64), (0, 1)] {
                // Nearest healthy node in that direction.
                for step in 1..side {
                    let d = compose(x + dx * step, y + dy * step);
                    if !cfg.node_faulty(d) {
                        if d != s {
                            pairs.push((s, d));
                        }
                        break;
                    }
                }
            }
        }
    }
    pairs
}

/// The named pattern set, for sweeping experiments.
pub fn pattern_names() -> &'static [&'static str] {
    &["ring", "exchange", "bit-reversal", "torus"]
}

/// Dispatches a pattern by name (`dim` used by `exchange`).
pub fn pattern_pairs(cfg: &FaultConfig, name: &str, dim: u8) -> Vec<(NodeId, NodeId)> {
    match name {
        "ring" => ring_pairs(cfg),
        "exchange" => exchange_pairs(cfg, dim),
        "bit-reversal" => bit_reversal_pairs(cfg),
        "torus" => torus_pairs(cfg),
        other => panic!("unknown pattern {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};

    fn cfg(n: u8, faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(n);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn ring_pairs_are_adjacent_when_fault_free() {
        let cfg = cfg(5, &[]);
        let pairs = ring_pairs(&cfg);
        assert_eq!(pairs.len(), 32);
        for (s, d) in pairs {
            assert_eq!(s.distance(d), 1, "Gray successors are neighbors");
        }
    }

    #[test]
    fn ring_skips_faulty_successors() {
        let cfg = cfg(4, &["0001"]);
        let pairs = ring_pairs(&cfg);
        assert_eq!(pairs.len(), 15);
        for (s, d) in pairs {
            assert!(!cfg.node_faulty(s) && !cfg.node_faulty(d));
        }
    }

    #[test]
    fn exchange_pairs_flip_one_dimension() {
        let cfg = cfg(4, &["0101"]);
        let pairs = exchange_pairs(&cfg, 2);
        for (s, d) in &pairs {
            assert_eq!(s.neighbor(2), *d);
        }
        // 0101 and its partner 0001 drop out of the pattern.
        assert_eq!(pairs.len(), 16 - 2);
    }

    #[test]
    fn bit_reversal_is_involutive() {
        let cfg = cfg(6, &[]);
        let pairs = bit_reversal_pairs(&cfg);
        for (s, d) in &pairs {
            assert!(pairs.contains(&(*d, *s)), "{s} ↔ {d}");
        }
        // Palindromic addresses pair with themselves and are skipped.
        assert!(pairs.len() < 64);
    }

    #[test]
    fn torus_pairs_cover_healthy_nodes() {
        let cfg = cfg(6, &["000000"]);
        let pairs = torus_pairs(&cfg);
        assert!(!pairs.is_empty());
        for (s, d) in pairs {
            assert!(!cfg.node_faulty(s) && !cfg.node_faulty(d));
            assert_ne!(s, d);
        }
    }

    #[test]
    #[should_panic]
    fn torus_needs_even_dimension() {
        let cfg = cfg(5, &[]);
        torus_pairs(&cfg);
    }

    #[test]
    fn dispatcher_knows_all_patterns() {
        let cfg = cfg(4, &[]);
        for name in pattern_names() {
            assert!(!pattern_pairs(&cfg, name, 0).is_empty(), "{name}");
        }
    }
}
