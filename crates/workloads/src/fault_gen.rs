//! Fault-injection generators.
//!
//! Three spatial patterns drive the experiments: **uniform** random
//! faults (the Fig. 2 methodology), **clustered** faults (contiguous in
//! Gray order — stress for safety levels, which encode fault
//! *distribution*, not just count), and **subcube** faults (a whole
//! `k`-dimensional subcube dies, e.g. a failed board). Link-fault
//! injection supports the §4.1 experiments.

use hypersafe_topology::{gray, FaultSet, Hypercube, LinkFaultSet, NodeId, Subcube};
use rand::seq::SliceRandom;
use rand::Rng;

/// `m` distinct faulty nodes chosen uniformly at random.
///
/// # Panics
/// Panics if `m` exceeds the node count.
pub fn uniform_faults<R: Rng + ?Sized>(cube: Hypercube, m: usize, rng: &mut R) -> FaultSet {
    let total = cube.num_nodes();
    assert!(m as u64 <= total, "cannot fault {m} of {total} nodes");
    let mut f = FaultSet::new(cube);
    // Rejection sampling is fine for the fault densities the paper
    // studies (m ≪ 2ⁿ); fall back to a shuffle when dense. On big
    // cubes the shuffle would materialize every node id (8 MiB at
    // n = 20), so past 2¹⁶ nodes dense draws use Floyd's sampling
    // instead: O(m) work, no O(2ⁿ) scratch. Cubes up to n = 16 keep
    // the shuffle so every pre-existing golden's RNG stream is
    // byte-identical.
    if (m as u64) * 4 <= total {
        while f.len() < m {
            f.insert(NodeId::new(rng.gen_range(0..total)));
        }
    } else if total > 65536 {
        for j in (total - m as u64)..total {
            let t = rng.gen_range(0..=j);
            if !f.insert(NodeId::new(t)) {
                f.insert(NodeId::new(j));
            }
        }
    } else {
        let mut all: Vec<u64> = (0..total).collect();
        all.shuffle(rng);
        for &v in all.iter().take(m) {
            f.insert(NodeId::new(v));
        }
    }
    f
}

/// `m` faulty nodes forming a contiguous run of the Gray-order
/// Hamiltonian cycle starting at a random offset — a maximally
/// clustered fault region.
pub fn clustered_faults<R: Rng + ?Sized>(cube: Hypercube, m: usize, rng: &mut R) -> FaultSet {
    let total = cube.num_nodes();
    assert!(m as u64 <= total);
    let start = rng.gen_range(0..total);
    let mut f = FaultSet::new(cube);
    for k in 0..m as u64 {
        f.insert(gray::gray((start + k) % total));
    }
    f
}

/// Faults an entire random `k`-dimensional subcube (`2ᵏ` nodes).
pub fn subcube_faults<R: Rng + ?Sized>(cube: Hypercube, k: u8, rng: &mut R) -> FaultSet {
    assert!(k <= cube.dim());
    let n = cube.dim();
    // Choose k free dimensions and fix the rest randomly.
    let mut dims: Vec<u8> = (0..n).collect();
    dims.shuffle(rng);
    let free: u64 = dims[..k as usize].iter().map(|&i| 1u64 << i).sum();
    let fixed_ones = rng.gen_range(0..cube.num_nodes()) & !free;
    let sc = Subcube {
        fixed_ones,
        free_mask: free,
    };
    let mut f = FaultSet::new(cube);
    for a in sc.nodes() {
        f.insert(a);
    }
    f
}

/// `k` distinct faulty links chosen uniformly at random.
pub fn uniform_link_faults<R: Rng + ?Sized>(
    cube: Hypercube,
    k: usize,
    rng: &mut R,
) -> LinkFaultSet {
    assert!(k as u64 <= cube.num_links());
    let mut lf = LinkFaultSet::new();
    while lf.len() < k {
        let a = NodeId::new(rng.gen_range(0..cube.num_nodes()));
        let dim = rng.gen_range(0..cube.dim());
        lf.insert(a, a.neighbor(dim));
    }
    lf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_counts_and_determinism() {
        let cube = Hypercube::new(7);
        for m in [0, 1, 6, 40, 100] {
            let f = uniform_faults(cube, m, &mut rng(9));
            assert_eq!(f.len(), m);
        }
        let a = uniform_faults(cube, 12, &mut rng(1));
        let b = uniform_faults(cube, 12, &mut rng(1));
        assert_eq!(a, b, "same seed, same faults");
    }

    #[test]
    fn uniform_dense_path() {
        let cube = Hypercube::new(4);
        let f = uniform_faults(cube, 12, &mut rng(2));
        assert_eq!(f.len(), 12);
    }

    #[test]
    fn uniform_dense_path_on_a_big_cube_uses_floyd_sampling() {
        // n = 17 crosses the 2¹⁶ threshold: a dense request must come
        // back exact and deterministic without the O(2ⁿ) shuffle.
        let cube = Hypercube::new(17);
        let m = 40_000; // 4·m > 2¹⁷ → dense branch
        let a = uniform_faults(cube, m, &mut rng(6));
        assert_eq!(a.len(), m);
        let b = uniform_faults(cube, m, &mut rng(6));
        assert_eq!(a, b, "same seed, same faults");
    }

    #[test]
    fn clustered_faults_are_connected_in_gray_order() {
        let cube = Hypercube::new(6);
        let f = clustered_faults(cube, 7, &mut rng(3));
        assert_eq!(f.len(), 7);
        // The faulty nodes form a path in the cube (consecutive Gray
        // codewords are adjacent), so the faulty subgraph is connected.
        let mut nodes: Vec<NodeId> = f.iter().collect();
        nodes.sort_by_key(|&a| gray::gray_rank(a));
        // Ranks are contiguous mod 2^n.
        let ranks: Vec<u64> = nodes.iter().map(|&a| gray::gray_rank(a)).collect();
        let total = cube.num_nodes();
        let is_contig =
            (0..total).any(|start| (0..7u64).all(|k| ranks.contains(&((start + k) % total))));
        assert!(is_contig);
    }

    #[test]
    fn subcube_faults_form_a_subcube() {
        let cube = Hypercube::new(6);
        let f = subcube_faults(cube, 3, &mut rng(4));
        assert_eq!(f.len(), 8);
        // XOR-closure check: members differ only within a fixed 3-dim mask.
        let nodes: Vec<u64> = f.iter().map(NodeId::raw).collect();
        let base = nodes[0];
        let mask = nodes.iter().fold(0u64, |m, &v| m | (v ^ base));
        assert_eq!(mask.count_ones(), 3);
        for &v in &nodes {
            assert_eq!(v & !mask, base & !mask);
        }
    }

    #[test]
    fn link_faults_counts() {
        let cube = Hypercube::new(5);
        let lf = uniform_link_faults(cube, 9, &mut rng(5));
        assert_eq!(lf.len(), 9);
        for (a, b) in lf.iter() {
            assert_eq!(a.distance(b), 1);
        }
    }

    #[test]
    fn zero_faults_everywhere() {
        let cube = Hypercube::new(3);
        assert!(uniform_faults(cube, 0, &mut rng(0)).is_empty());
        assert!(clustered_faults(cube, 0, &mut rng(0)).is_empty());
        assert!(uniform_link_faults(cube, 0, &mut rng(0)).is_empty());
    }
}
