//! Hotspot / incast traffic with per-link queue accounting.
//!
//! Uniform random pairs spread load evenly — the regime where the
//! paper's single-path router is already enough. Real workloads
//! concentrate: an incast (everyone talks to one server) funnels every
//! message into the hotspot's `n` incoming links, and queueing — not
//! path length — dominates latency. [`LinkLoad`] keeps a per-directed-
//! link queue model (one message per service interval per link,
//! head-of-line blocking), which plays two roles in E29:
//!
//! * **measurement** — [`LinkLoad::traverse`] walks a path through the
//!   queues and returns its departure time, so tail latency under
//!   incast is observable;
//! * **control** — [`LinkLoad::cost`] has exactly the signature of
//!   `route_disjoint_ranked`'s spare-cost hook, so the multi-path
//!   router can prefer the least-loaded healthy spare dimension when
//!   picking detours.

use hypersafe_topology::{FaultConfig, Hypercube, NodeId, Path};
use rand::Rng;

use crate::pairs::random_healthy;

/// `m` incast pairs: distinct-from-destination healthy sources, all
/// aimed at the single healthy `hotspot` node.
///
/// # Panics
/// Panics if `hotspot` is faulty or fewer than two healthy nodes
/// exist.
pub fn incast_pairs<R: Rng + ?Sized>(
    cfg: &FaultConfig,
    hotspot: NodeId,
    m: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    assert!(!cfg.node_faulty(hotspot), "hotspot must be healthy");
    assert!(
        cfg.healthy_count() >= 2,
        "need a source besides the hotspot"
    );
    (0..m)
        .map(|_| loop {
            let s = random_healthy(cfg, rng);
            if s != hotspot {
                return (s, hotspot);
            }
        })
        .collect()
}

/// `m` pairs of which (approximately) `hot_pct`% are incast onto
/// `hotspot` and the rest are uniform healthy pairs — the standard
/// hotspot-traffic mix.
///
/// # Panics
/// Panics if `hotspot` is faulty, fewer than two healthy nodes exist,
/// or `hot_pct > 100`.
pub fn hotspot_mix<R: Rng + ?Sized>(
    cfg: &FaultConfig,
    hotspot: NodeId,
    hot_pct: u32,
    m: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    assert!(hot_pct <= 100, "hot_pct is a percentage");
    assert!(!cfg.node_faulty(hotspot), "hotspot must be healthy");
    assert!(cfg.healthy_count() >= 2, "need two healthy nodes");
    (0..m)
        .map(|_| {
            if rng.gen_range(0..100) < hot_pct {
                loop {
                    let s = random_healthy(cfg, rng);
                    if s != hotspot {
                        return (s, hotspot);
                    }
                }
            } else {
                crate::pairs::random_pair(cfg, rng)
            }
        })
        .collect()
}

/// Per-directed-link queue accounting for a hypercube.
///
/// Each directed link `a → a ⊕ eᵢ` is a FIFO server that forwards one
/// message per [`LinkLoad::service`] interval; a message arriving at a
/// busy link waits behind the queue (head-of-line blocking). Two
/// counters per link: `depth` (messages ever enqueued — the congestion
/// signal fed back into routing) and `busy_until` (the queue-clearing
/// time — the latency model).
#[derive(Clone, Debug)]
pub struct LinkLoad {
    n: u8,
    service: u64,
    depth: Vec<u32>,
    busy_until: Vec<u64>,
}

impl LinkLoad {
    /// An empty load model over `cube` with the given service interval
    /// (ticks per message per link; must be ≥ 1).
    pub fn new(cube: Hypercube, service: u64) -> Self {
        assert!(service >= 1, "a link forwards at most one message per tick");
        let links = (cube.num_nodes() as usize) * cube.dim() as usize;
        LinkLoad {
            n: cube.dim(),
            service,
            depth: vec![0; links],
            busy_until: vec![0; links],
        }
    }

    /// Service interval (ticks per message per link).
    pub fn service(&self) -> u64 {
        self.service
    }

    fn idx(&self, a: NodeId, dim: u8) -> usize {
        debug_assert!(dim < self.n);
        (a.raw() as usize) * self.n as usize + dim as usize
    }

    /// Messages ever enqueued on the directed link `a → a ⊕ e_dim`.
    pub fn depth(&self, a: NodeId, dim: u8) -> u32 {
        self.depth[self.idx(a, dim)]
    }

    /// The spare-cost signal for `route_disjoint_ranked`: the current
    /// queue depth of the first-hop link through spare dimension `dim`.
    /// Lower is better, so the router prefers the least-loaded healthy
    /// spare.
    pub fn cost(&self, s: NodeId, dim: u8) -> u64 {
        u64::from(self.depth(s, dim))
    }

    /// Walks `path` through the queues starting at `start`: every hop
    /// waits for its link to free up, then occupies it for one service
    /// interval. Returns the delivery (departure-from-last-link) time
    /// and updates both counters — callers replay a whole batch in
    /// submission order to get a deterministic queueing trace.
    pub fn traverse(&mut self, path: &Path, start: u64) -> u64 {
        let mut now = start;
        let nodes = path.nodes();
        for w in nodes.windows(2) {
            let dim = w[0].differing_dims(w[1]).next().expect("adjacent hop");
            let i = self.idx(w[0], dim);
            self.depth[i] += 1;
            let depart = self.busy_until[i].max(now) + self.service;
            self.busy_until[i] = depart;
            now = depart;
        }
        now
    }

    /// Largest queue depth across all directed links (the congestion
    /// hot spot's magnitude).
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Total messages enqueued across all links (= total hops routed
    /// through the model).
    pub fn total_enqueued(&self) -> u64 {
        self.depth.iter().map(|&d| u64::from(d)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::{FaultSet, Hypercube};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn incast_aims_everything_at_the_hotspot() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["00001", "10000"]),
        );
        let hot = NodeId::new(0b00111);
        let pairs = incast_pairs(&cfg, hot, 64, &mut rng(1));
        assert_eq!(pairs.len(), 64);
        for (s, d) in pairs {
            assert_eq!(d, hot);
            assert_ne!(s, hot);
            assert!(!cfg.node_faulty(s));
        }
    }

    #[test]
    fn hotspot_mix_respects_the_percentage_roughly() {
        let cube = Hypercube::new(6);
        let cfg = FaultConfig::fault_free(cube);
        let hot = NodeId::new(0);
        let pairs = hotspot_mix(&cfg, hot, 50, 400, &mut rng(2));
        let hits = pairs.iter().filter(|&&(_, d)| d == hot).count();
        // 50% of 400 with generous slack; uniform pairs can also hit
        // the hotspot by chance, so only gross deviation fails.
        assert!((120..=280).contains(&hits), "hot hits {hits} of 400");
        assert_eq!(
            hotspot_mix(&cfg, hot, 50, 40, &mut rng(3)),
            hotspot_mix(&cfg, hot, 50, 40, &mut rng(3)),
            "same seed, same mix"
        );
    }

    #[test]
    fn queueing_is_head_of_line_per_link() {
        let cube = Hypercube::new(3);
        let mut load = LinkLoad::new(cube, 1);
        let p = Path::from_nodes(vec![NodeId::new(0), NodeId::new(1), NodeId::new(0b11)]);
        // Two messages on the same 2-hop path: the second waits one
        // tick behind the first at the first link, then pipelines.
        assert_eq!(load.traverse(&p, 0), 2);
        assert_eq!(load.traverse(&p, 0), 3);
        assert_eq!(load.depth(NodeId::new(0), 0), 2);
        assert_eq!(load.max_depth(), 2);
        assert_eq!(load.total_enqueued(), 4);
        // A disjoint link is unaffected.
        let q = Path::from_nodes(vec![NodeId::new(0), NodeId::new(0b100)]);
        assert_eq!(load.traverse(&q, 0), 1);
    }

    #[test]
    fn cost_reflects_depth_for_the_router_hook() {
        let cube = Hypercube::new(4);
        let mut load = LinkLoad::new(cube, 2);
        let s = NodeId::new(0);
        assert_eq!(load.cost(s, 2), 0);
        let p = Path::from_nodes(vec![s, s.neighbor(2)]);
        load.traverse(&p, 0);
        load.traverse(&p, 0);
        assert_eq!(load.cost(s, 2), 2);
        assert_eq!(load.cost(s, 1), 0, "other spares stay cheap");
    }
}
