//! Percolation-regime fault densities and giant-component routing.
//!
//! The paper's experiments stay below `n` faults, where the cube is
//! (almost) always connected. "Routing Complexity of Faulty Networks"
//! studies the other regime: *independent* random failures with
//! per-node / per-link probability `p`. For `Q_n`, deleting each edge
//! independently with probability `q` keeps a giant connected
//! component asymptotically almost surely while `1 − q > 1/n` (the
//! percolation threshold for hypercubes); past it the cube shatters.
//! In that regime routing *within the giant component* is the
//! scenario, not the exception — a router scored on all-pairs delivery
//! would be graded on pairs no algorithm could connect.
//!
//! Generators here are Bernoulli (each element fails independently),
//! unlike the exact-count samplers in [`crate::fault_gen`]; densities
//! are expressed in basis points (1 bp = 0.01%) so experiment params
//! stay integer and CSV-stable.

use hypersafe_topology::{connectivity, FaultConfig, FaultSet, Hypercube, LinkFaultSet, NodeId};
use rand::Rng;

/// The (asymptotic) link-percolation threshold of `Q_n`: failing each
/// link with probability above `1 − 1/n` disconnects the cube a.a.s.;
/// below it a giant component survives. Returned in basis points of
/// failure probability (e.g. `n = 8` → 8750 bp = 87.5%).
pub fn link_threshold_bp(n: u8) -> u32 {
    assert!(n >= 1);
    10_000 - 10_000 / u32::from(n)
}

/// Bernoulli node faults: every node fails independently with
/// probability `p_bp` basis points (`p_bp / 10_000`).
pub fn bernoulli_node_faults<R: Rng + ?Sized>(cube: Hypercube, p_bp: u32, rng: &mut R) -> FaultSet {
    assert!(p_bp <= 10_000, "probability above 1");
    let mut f = FaultSet::new(cube);
    for a in cube.nodes() {
        if rng.gen_range(0..10_000) < p_bp {
            f.insert(a);
        }
    }
    f
}

/// Bernoulli link faults: every (undirected) link fails independently
/// with probability `p_bp` basis points.
pub fn bernoulli_link_faults<R: Rng + ?Sized>(
    cube: Hypercube,
    p_bp: u32,
    rng: &mut R,
) -> LinkFaultSet {
    assert!(p_bp <= 10_000, "probability above 1");
    let mut lf = LinkFaultSet::new();
    for a in cube.nodes() {
        for dim in 0..cube.dim() {
            let b = a.neighbor(dim);
            // Visit each undirected link once, from its lower end.
            if a.raw() < b.raw() && rng.gen_range(0..10_000) < p_bp {
                lf.insert(a, b);
            }
        }
    }
    lf
}

/// The giant (largest) connected component of the faulty cube, sorted
/// ascending; empty when every node is faulty. Ties break toward the
/// component with the smallest member, keeping the choice
/// deterministic.
pub fn giant_component(cfg: &FaultConfig) -> Vec<NodeId> {
    connectivity::components(cfg)
        .into_iter()
        .max_by(|a, b| a.len().cmp(&b.len()).then_with(|| b[0].cmp(&a[0])))
        .unwrap_or_default()
}

/// Fraction of *healthy* nodes inside the giant component, in basis
/// points (10 000 = all of them). The order parameter of the
/// percolation transition; 0 when no node is healthy.
pub fn giant_fraction_bp(cfg: &FaultConfig) -> u32 {
    let healthy = cfg.healthy_count();
    if healthy == 0 {
        return 0;
    }
    let giant = giant_component(cfg).len() as u64;
    (giant * 10_000 / healthy) as u32
}

/// `m` distinct-endpoint pairs sampled uniformly from the giant
/// component — the percolation-regime routing workload. Returns an
/// empty vector when the giant component has fewer than two nodes
/// (nothing is routable).
pub fn giant_component_pairs<R: Rng + ?Sized>(
    cfg: &FaultConfig,
    m: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let giant = giant_component(cfg);
    if giant.len() < 2 {
        return Vec::new();
    }
    (0..m)
        .map(|_| {
            let s = giant[rng.gen_range(0..giant.len())];
            loop {
                let d = giant[rng.gen_range(0..giant.len())];
                if d != s {
                    return (s, d);
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn threshold_is_one_minus_one_over_n() {
        assert_eq!(link_threshold_bp(1), 0);
        assert_eq!(link_threshold_bp(2), 5_000);
        assert_eq!(link_threshold_bp(8), 8_750);
        assert_eq!(link_threshold_bp(10), 9_000);
    }

    #[test]
    fn bernoulli_extremes_and_determinism() {
        let cube = Hypercube::new(6);
        assert!(bernoulli_node_faults(cube, 0, &mut rng(1)).is_empty());
        assert_eq!(
            bernoulli_node_faults(cube, 10_000, &mut rng(1)).len() as u64,
            cube.num_nodes()
        );
        assert!(bernoulli_link_faults(cube, 0, &mut rng(1)).is_empty());
        assert_eq!(
            bernoulli_link_faults(cube, 10_000, &mut rng(1)).len() as u64,
            cube.num_links()
        );
        let a = bernoulli_node_faults(cube, 2_000, &mut rng(7));
        let b = bernoulli_node_faults(cube, 2_000, &mut rng(7));
        assert_eq!(a, b, "same seed, same faults");
        // ~20% of 64 nodes with wide slack.
        assert!((2..=30).contains(&a.len()), "got {}", a.len());
    }

    #[test]
    fn giant_component_is_the_largest_and_sorted() {
        // Fig. 3 disconnection: 1110 isolated from an 11-node bulk.
        let cube = Hypercube::new(4);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
        );
        let g = giant_component(&cfg);
        assert_eq!(g.len(), 11);
        assert!(!g.contains(&NodeId::new(0b1110)));
        assert!(g.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
        assert_eq!(giant_fraction_bp(&cfg), 11 * 10_000 / 12);
    }

    #[test]
    fn fault_free_giant_is_everything() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::fault_free(cube);
        assert_eq!(giant_component(&cfg).len() as u64, cube.num_nodes());
        assert_eq!(giant_fraction_bp(&cfg), 10_000);
    }

    #[test]
    fn pairs_stay_inside_the_giant_component() {
        let cube = Hypercube::new(6);
        let mut r = rng(11);
        // Past-threshold link density: the cube shatters, but pairs
        // must still come from one (the giant) component.
        let lf = bernoulli_link_faults(cube, 8_000, &mut r);
        let mut cfg = FaultConfig::fault_free(cube);
        *cfg.link_faults_mut() = lf;
        let giant = giant_component(&cfg);
        let pairs = giant_component_pairs(&cfg, 50, &mut r);
        if giant.len() < 2 {
            assert!(pairs.is_empty());
        } else {
            assert_eq!(pairs.len(), 50);
            for (s, d) in pairs {
                assert_ne!(s, d);
                assert!(giant.contains(&s) && giant.contains(&d));
                assert!(connectivity::connected(&cfg, s, d));
            }
        }
    }

    #[test]
    fn all_faulty_degenerates_gracefully() {
        let cube = Hypercube::new(3);
        let cfg =
            FaultConfig::with_node_faults(cube, bernoulli_node_faults(cube, 10_000, &mut rng(0)));
        assert!(giant_component(&cfg).is_empty());
        assert_eq!(giant_fraction_bp(&cfg), 0);
        assert!(giant_component_pairs(&cfg, 10, &mut rng(0)).is_empty());
    }
}
