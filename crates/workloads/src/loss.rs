//! Channel loss profiles for the reliability experiments.
//!
//! The paper assumes reliable links; the loss-robustness experiments
//! (E22) relax that. A [`LossProfile`] names a point in the
//! (loss, jitter, duplication) space and builds the matching seeded
//! [`ChannelModel`], so experiments, benches, and tests sweep the same
//! ladder instead of hand-rolling channel parameters.

use hypersafe_simkit::ChannelModel;
use rand::Rng;

/// A named noisy-link profile: per-link loss probability, maximum
/// latency jitter (in engine ticks), and duplication probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossProfile {
    /// Short label used in report rows.
    pub name: &'static str,
    /// Per-message loss probability in `[0, 1)`.
    pub loss: f64,
    /// Maximum extra delivery latency (uniform in `0..=jitter`).
    pub jitter: u64,
    /// Per-message duplication probability in `[0, 1)`.
    pub duplicate: f64,
}

impl LossProfile {
    /// A seeded channel with this profile's parameters.
    pub fn channel(&self, seed: u64) -> ChannelModel {
        ChannelModel::new(seed)
            .with_loss(self.loss)
            .with_jitter(self.jitter)
            .with_duplication(self.duplicate)
    }
}

/// The standard ladder the E22 loss experiment sweeps: from the paper's
/// lossless assumption up to links dropping a fifth of all traffic.
pub const STANDARD_PROFILES: [LossProfile; 4] = [
    LossProfile {
        name: "clean",
        loss: 0.0,
        jitter: 0,
        duplicate: 0.0,
    },
    LossProfile {
        name: "light",
        loss: 0.01,
        jitter: 1,
        duplicate: 0.0,
    },
    LossProfile {
        name: "moderate",
        loss: 0.05,
        jitter: 2,
        duplicate: 0.01,
    },
    LossProfile {
        name: "heavy",
        loss: 0.20,
        jitter: 4,
        duplicate: 0.05,
    },
];

/// A random profile with loss in `[0, max_loss)`, jitter in `0..=4`,
/// and duplication at a quarter of the loss rate — for randomized
/// sweeps and property tests.
pub fn random_profile<R: Rng + ?Sized>(rng: &mut R, max_loss: f64) -> LossProfile {
    // 53-bit uniform in [0, 1); the vendored rand has no f64 ranges.
    let unit = (rng.gen::<u64>() >> 11) as f64 / (1u64 << 53) as f64;
    let loss = unit * max_loss.min(1.0 - f64::EPSILON);
    LossProfile {
        name: "random",
        loss,
        jitter: rng.gen_range(0..=4),
        duplicate: loss / 4.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ladder_is_ordered_and_buildable() {
        let mut prev = -1.0;
        for p in STANDARD_PROFILES {
            assert!(p.loss > prev, "{} out of order", p.name);
            prev = p.loss;
            let ch = p.channel(7);
            assert_eq!(ch.loss(), p.loss);
            assert_eq!(ch.jitter(), p.jitter);
            assert_eq!(ch.duplication(), p.duplicate);
        }
    }

    #[test]
    fn clean_profile_never_mutates_traffic() {
        let mut ch = STANDARD_PROFILES[0].channel(3);
        for i in 0..200 {
            let fate = ch.fate(i, i + 1);
            assert!(!fate.lost);
            assert_eq!(fate.jitter, 0);
            assert_eq!(fate.duplicate, None);
        }
    }

    #[test]
    fn random_profiles_respect_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            let p = random_profile(&mut rng, 0.3);
            assert!((0.0..0.3).contains(&p.loss));
            assert!(p.jitter <= 4);
            assert!(p.duplicate < 0.3);
            p.channel(1); // must not panic the builder asserts
        }
    }
}
