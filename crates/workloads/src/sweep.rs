//! Seeded Monte-Carlo sweep driver.
//!
//! Every experiment is a map over independent trials: trial `i` derives
//! its own `ChaCha8` stream from `(sweep seed, i)`, so results are
//! bit-reproducible regardless of thread scheduling, and the trials run
//! in parallel under rayon (justified in DESIGN.md §6: sweeps are
//! embarrassingly parallel).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Sweep configuration: trial count and master seed.
///
/// # Examples
///
/// ```
/// use hypersafe_workloads::Sweep;
/// use rand::Rng;
///
/// let sweep = Sweep::new(16, 42);
/// let par: Vec<u32> = sweep.run(|_, rng| rng.gen());
/// let seq: Vec<u32> = sweep.run_seq(|_, rng| rng.gen());
/// assert_eq!(par, seq); // deterministic regardless of scheduling
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sweep {
    /// Number of independent trials.
    pub trials: u32,
    /// Master seed; each trial's RNG is derived from it.
    pub seed: u64,
}

impl Sweep {
    /// A sweep of `trials` trials under `seed`.
    pub fn new(trials: u32, seed: u64) -> Self {
        Sweep { trials, seed }
    }

    /// The RNG for trial `i` — a dedicated ChaCha stream, independent
    /// of all other trials.
    pub fn trial_rng(&self, i: u32) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        rng.set_stream(i as u64 + 1);
        rng
    }

    /// Runs `f` once per trial in parallel, collecting results in trial
    /// order.
    pub fn run<T: Send>(&self, f: impl Fn(u32, &mut ChaCha8Rng) -> T + Sync) -> Vec<T> {
        (0..self.trials)
            .into_par_iter()
            .map(|i| {
                let mut rng = self.trial_rng(i);
                f(i, &mut rng)
            })
            .collect()
    }

    /// Sequential variant (used by tests asserting determinism and by
    /// callers already inside a rayon pool).
    pub fn run_seq<T>(&self, mut f: impl FnMut(u32, &mut ChaCha8Rng) -> T) -> Vec<T> {
        (0..self.trials)
            .map(|i| {
                let mut rng = self.trial_rng(i);
                f(i, &mut rng)
            })
            .collect()
    }
}

/// Mean of a sample (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for < 2 points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Half-width of a ~95% normal-approximation confidence interval.
pub fn ci95(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * stddev(xs) / (xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn parallel_equals_sequential() {
        let sweep = Sweep::new(64, 0xFEED);
        let par: Vec<u64> = sweep.run(|_, rng| rng.gen());
        let seq: Vec<u64> = sweep.run_seq(|_, rng| rng.gen());
        assert_eq!(par, seq, "determinism across scheduling");
    }

    #[test]
    fn trials_are_independent_streams() {
        let sweep = Sweep::new(8, 1);
        let vals: Vec<u64> = sweep.run_seq(|_, rng| rng.gen());
        let mut sorted = vals.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "no stream collisions");
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = Sweep::new(4, 1).run_seq(|_, rng| rng.gen());
        let b: Vec<u64> = Sweep::new(4, 2).run_seq(|_, rng| rng.gen());
        assert_ne!(a, b);
    }

    #[test]
    fn stats_helpers() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((stddev(&xs) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(ci95(&xs) > 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(ci95(&[]), 0.0);
    }
}
