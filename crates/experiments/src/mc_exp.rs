//! E28 — explicit-state model checking (`repro mc`): exhaustively
//! verify the GS / delta-GS / ARQ protocol kernel on small cubes.
//!
//! Unlike the sampled adversaries of E23 (`dst`), this gate enumerates
//! *every* delivery order the untimed asynchronous model admits
//! ([`hypersafe_simkit::mc`]) and checks the path-free reformulations
//! of the paper's theorems ([`hypersafe_core::mc`]) at every reachable
//! state:
//!
//! * **GS leg** — monotone descent plus the fixed-point corridor at
//!   every state and exact Theorem-1 convergence at every quiescent
//!   one, over all fault sets of size ≤ 2 on `Q_3` and one
//!   representative per automorphism orbit on `Q_4`.
//! * **Delta-GS leg** — the directed corridor between the pre- and
//!   post-event fixed points, landing exactly on the centralized
//!   recompute, for fault and recovery events on `Q_3` and `Q_4`.
//! * **ARQ leg** — exactly-once delivery through the reliable layer
//!   under adversarial loss/duplication budgets, plus the Theorem 2–4
//!   outcome taxonomy at every terminal state, on `Q_3` pairs.
//!
//! Every row reports the exploration size (states, transitions,
//! sleep-set reduction, frontier peak, terminals, depth) and a
//! verdict; any violation or truncated search fails the gate. The
//! scope is scenario-enumerated rather than seed-sampled, so the run
//! is fully deterministic — no `--seed` knob.

use crate::table::Report;
use hypersafe_core::{
    mc_delta_gs, mc_gs, mc_unicast_arq, run_gs_reliable_observed, ChurnEvent, SafetyMap,
};
use hypersafe_simkit::{McConfig, McReport, Metrics, ReliableConfig};
use hypersafe_topology::{FaultConfig, FaultSet, Hypercube, NodeId};
use hypersafe_workloads::STANDARD_PROFILES;
use std::path::PathBuf;

/// Parameters for the model-checking gate.
#[derive(Clone, Debug)]
pub struct McParams {
    /// CI-sized scope: `Q_3` only, single-fault GS sets, one delta
    /// event, and a lossless ARQ pair.
    pub quick: bool,
    /// Hard cap on distinct states per exploration; exceeding it marks
    /// the scenario `TRUNCATED` and fails the gate (never silent).
    pub max_states: u64,
    /// Adversarial loss budget for the lossy ARQ scenarios.
    pub arq_loss_budget: u32,
    /// Adversarial duplication budget for the lossy ARQ scenarios.
    pub arq_dup_budget: u32,
    /// Where `mc.csv` and the metrics snapshot land.
    pub out_dir: PathBuf,
}

impl Default for McParams {
    fn default() -> Self {
        McParams {
            quick: false,
            max_states: 20_000_000,
            arq_loss_budget: 1,
            arq_dup_budget: 1,
            out_dir: PathBuf::from("results"),
        }
    }
}

fn cube_cfg(n: u8, faults: &[u64]) -> FaultConfig {
    let cube = Hypercube::new(n);
    let mut set = FaultSet::new(cube);
    for &f in faults {
        set.insert(NodeId::new(f));
    }
    FaultConfig::with_node_faults(cube, set)
}

fn fault_label(faults: &[u64]) -> String {
    let inner: Vec<String> = faults.iter().map(|f| f.to_string()).collect();
    format!("{{{}}}", inner.join(","))
}

/// All fault sets of `Q_3` up to the given size (1 empty + 8 singles
/// + 28 pairs = 37 at size 2).
fn q3_fault_sets(max_size: usize) -> Vec<Vec<u64>> {
    let mut sets = vec![vec![]];
    for a in 0..8u64 {
        sets.push(vec![a]);
    }
    if max_size >= 2 {
        for a in 0..8u64 {
            for b in (a + 1)..8 {
                sets.push(vec![a, b]);
            }
        }
    }
    sets
}

/// One representative per automorphism orbit of `Q_4` fault sets of
/// size ≤ 2: the hypercube's symmetry group (translations × dimension
/// permutations) acts transitively on nodes, and classifies pairs by
/// the Hamming weight of their XOR — so `{0}`, and `{0, 2^w - 1}` for
/// `w = 1..4`, cover every ≤ 2-fault configuration up to isomorphism.
fn q4_orbit_reps() -> Vec<Vec<u64>> {
    vec![
        vec![],
        vec![0],
        vec![0, 1],
        vec![0, 3],
        vec![0, 7],
        vec![0, 15],
    ]
}

/// The gate's outcome: the report plus the counts the `repro` binary
/// turns into its exit code.
pub struct McExpRun {
    /// Renderable summary table (one row per scenario).
    pub report: Report,
    /// Property violations across all scenarios.
    pub violations: u64,
    /// Scenarios whose search hit the state cap — their verdicts are
    /// not exhaustive, so the gate fails on them too.
    pub truncated: u64,
}

/// Appends one scenario row and folds its verdict into the counters.
#[allow(clippy::too_many_arguments)]
fn record(
    rep: &mut Report,
    leg: &str,
    n: u8,
    scenario: &str,
    r: &McReport,
    violations: &mut u64,
    truncated: &mut u64,
) {
    let verdict = if let Some(v) = &r.violation {
        *violations += 1;
        format!("VIOLATION: {} ({})", v.property, v.detail)
    } else if r.truncated {
        *truncated += 1;
        "TRUNCATED".to_string()
    } else {
        "ok".to_string()
    };
    rep.row(vec![
        leg.to_string(),
        n.to_string(),
        scenario.to_string(),
        r.states.to_string(),
        r.transitions.to_string(),
        r.pruned.to_string(),
        format!("{:.1}%", 100.0 * r.reduction_ratio()),
        r.closed.to_string(),
        r.frontier_peak.to_string(),
        r.terminals.to_string(),
        r.max_depth.to_string(),
        verdict,
    ]);
}

/// Runs the gate; writes `mc.csv` plus `mc_obs.json` / `mc_obs.csv`
/// into `p.out_dir`.
pub fn run(p: &McParams) -> McExpRun {
    let mut rep = Report::new(
        "mc",
        format!(
            "explicit-state model checking of GS / delta-GS / ARQ ({} scope)",
            if p.quick { "quick" } else { "full" }
        ),
        &[
            "leg",
            "n",
            "scenario",
            "states",
            "transitions",
            "pruned",
            "reduction",
            "closed",
            "frontier",
            "terminals",
            "depth",
            "verdict",
        ],
    );
    let mut violations = 0u64;
    let mut truncated = 0u64;
    let base = McConfig {
        max_states: p.max_states,
        ..McConfig::default()
    };

    // -- GS leg ----------------------------------------------------
    let gs_scenarios: Vec<(u8, Vec<u64>)> = if p.quick {
        q3_fault_sets(1).into_iter().map(|f| (3, f)).collect()
    } else {
        q3_fault_sets(2)
            .into_iter()
            .map(|f| (3, f))
            .chain(q4_orbit_reps().into_iter().map(|f| (4, f)))
            .collect()
    };
    for (n, faults) in &gs_scenarios {
        let cfg = cube_cfg(*n, faults);
        let r = mc_gs(&cfg, &base);
        let label = format!("faults={}", fault_label(faults));
        record(
            &mut rep,
            "gs",
            *n,
            &label,
            &r,
            &mut violations,
            &mut truncated,
        );
    }

    // -- Delta-GS leg ----------------------------------------------
    // (n, pre-event faults, event); the post-event configuration is
    // derived by applying the event.
    let delta_scenarios: Vec<(u8, Vec<u64>, ChurnEvent)> = if p.quick {
        vec![(3, vec![], ChurnEvent::Fault(NodeId::new(5)))]
    } else {
        vec![
            (3, vec![], ChurnEvent::Fault(NodeId::new(5))),
            (3, vec![0], ChurnEvent::Fault(NodeId::new(5))),
            (3, vec![5], ChurnEvent::Recover(NodeId::new(5))),
            (3, vec![0, 5], ChurnEvent::Recover(NodeId::new(5))),
            (4, vec![0], ChurnEvent::Fault(NodeId::new(3))),
            (4, vec![0, 3], ChurnEvent::Recover(NodeId::new(3))),
        ]
    };
    for (n, pre, event) in &delta_scenarios {
        let prev = SafetyMap::compute(&cube_cfg(*n, pre));
        let mut post = pre.clone();
        match event {
            ChurnEvent::Fault(a) => post.push(a.raw()),
            ChurnEvent::Recover(a) => post.retain(|&v| v != a.raw()),
        }
        post.sort_unstable();
        let cfg = cube_cfg(*n, &post);
        let r = mc_delta_gs(&cfg, &prev, *event, &base);
        let label = match event {
            ChurnEvent::Fault(a) => format!("fault({}) from {}", a.raw(), fault_label(pre)),
            ChurnEvent::Recover(a) => format!("recover({}) from {}", a.raw(), fault_label(pre)),
        };
        record(
            &mut rep,
            "delta-gs",
            *n,
            &label,
            &r,
            &mut violations,
            &mut truncated,
        );
    }

    // -- ARQ leg ---------------------------------------------------
    // (faults, s, d, loss budget, dup budget) on Q_3; the infeasible
    // scenario (every neighbor of the source faulty) needs no budgets
    // because the sound Failure verdict sends nothing.
    let arq_scenarios: Vec<(Vec<u64>, u64, u64, u32, u32)> = if p.quick {
        vec![(vec![3], 0, 6, 0, 0)]
    } else {
        vec![
            (vec![], 0, 7, p.arq_loss_budget, p.arq_dup_budget),
            (vec![3], 0, 7, p.arq_loss_budget, p.arq_dup_budget),
            (vec![3, 5], 0, 7, p.arq_loss_budget, p.arq_dup_budget),
            (vec![1, 2, 4], 0, 7, 0, 0),
        ]
    };
    let rcfg = ReliableConfig {
        max_retries: 2,
        ..ReliableConfig::default()
    };
    for (faults, s, d, loss, dup) in &arq_scenarios {
        let cfg = cube_cfg(3, faults);
        let map = SafetyMap::compute(&cfg);
        let mcfg = McConfig {
            loss_budget: *loss,
            dup_budget: *dup,
            ..base.clone()
        };
        let r = mc_unicast_arq(&cfg, &map, NodeId::new(*s), NodeId::new(*d), rcfg, &mcfg);
        let label = format!(
            "{s}->{d} faults={} loss={loss} dup={dup}",
            fault_label(faults)
        );
        record(
            &mut rep,
            "arq",
            3,
            &label,
            &r,
            &mut violations,
            &mut truncated,
        );
    }

    rep.note(
        "gs leg: every delivery interleaving of asynchronous GLOBAL_STATUS — levels must \
         descend monotonically, never undershoot the Theorem 1 fixed point, and equal it \
         at every quiescent state; no-op closure is sound here (monotone min-merge)"
            .to_string(),
    );
    rep.note(
        "delta-gs leg: one churn event per scenario — every interleaving keeps levels in \
         the directed corridor between the pre-event start and the post-event fixed point \
         and lands exactly on the centralized recompute"
            .to_string(),
    );
    rep.note(
        "arq leg: closure off (the reorder buffer makes redelivery ack-effectful); \
         exactly-once at every state, Theorem 2/3 hop bounds on delivery, Theorem 4 \
         soundness on Failure; in the untimed model a retransmit timer may fire while its \
         segment is in flight, so link give-up legally explains non-delivery"
            .to_string(),
    );
    rep.note(
        "coverage bounds (explicit, not silent): Q_3 is exhaustive to 2 faults; Q_4 GS \
         covers one representative per automorphism orbit (sufficient by symmetry); Q_4 \
         ARQ and 3-fault sets exceed the state budget of this gate and are covered by the \
         seeded DST sweep (E23) instead"
            .to_string(),
    );
    if p.quick {
        rep.note(
            "quick scope: Q_3 single-fault GS, one delta event, lossless ARQ — run \
             without --quick for the exhaustive gate"
                .to_string(),
        );
    }
    match rep.write_csv(&p.out_dir) {
        Ok(path) => {
            rep.note(format!("csv: {}", path.display()));
        }
        Err(e) => {
            rep.note(format!("csv write failed: {e}"));
        }
    }

    // Observed FIFO replays of the checked GS configurations feed the
    // schema-gated metrics snapshot (one per cube dimension covered).
    let mut obs = Metrics::new(0, 0);
    let obs_dims: &[u8] = if p.quick { &[3] } else { &[3, 4] };
    for &n in obs_dims {
        let cfg = cube_cfg(n, &[0, 3]);
        let (_, m) = run_gs_reliable_observed(
            &cfg,
            STANDARD_PROFILES[0].channel(0xE28),
            ReliableConfig::default(),
            1,
            500_000,
        );
        obs.merge(&m);
    }
    let snap = obs.snapshot();
    let json_path = p.out_dir.join("mc_obs.json");
    let csv_path = p.out_dir.join("mc_obs.csv");
    match std::fs::create_dir_all(&p.out_dir)
        .and_then(|()| std::fs::write(&json_path, snap.to_json()))
        .and_then(|()| std::fs::write(&csv_path, snap.to_csv()))
    {
        Ok(()) => {
            rep.note(format!(
                "metrics snapshot (observed FIFO replays of checked configs): {} and {}",
                json_path.display(),
                csv_path.display()
            ));
        }
        Err(e) => {
            rep.note(format!("metrics snapshot write failed: {e}"));
        }
    }

    McExpRun {
        report: rep,
        violations,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scope_is_clean_and_exhaustive() {
        let p = McParams {
            quick: true,
            out_dir: std::env::temp_dir().join("hypersafe_mc_test"),
            ..McParams::default()
        };
        let run = run(&p);
        assert_eq!(run.violations, 0, "{}", run.report.render());
        assert_eq!(run.truncated, 0, "{}", run.report.render());
        // 9 GS rows (Q_3, <= 1 fault) + 1 delta + 1 ARQ.
        assert_eq!(run.report.rows.len(), 11);
        assert!(p.out_dir.join("mc.csv").exists());
        assert!(p.out_dir.join("mc_obs.json").exists());
        let _ = std::fs::remove_dir_all(&p.out_dir);
    }

    #[test]
    fn scenario_enumerations_are_stable() {
        assert_eq!(q3_fault_sets(1).len(), 9);
        assert_eq!(q3_fault_sets(2).len(), 37);
        assert_eq!(q4_orbit_reps().len(), 6);
    }
}
