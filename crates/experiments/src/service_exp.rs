//! E26 — resilient-service churn soak (`repro service`): drive an
//! open-loop mixed workload (route requests interleaved with
//! fault/recovery churn) through the epoch-snapshot routing service
//! ([`hypersafe_core::SafetyService`] under
//! [`hypersafe_simkit::service::RoutingService`]), checking the
//! published fixed point at every quiescent point and verifying that
//! every request lands in exactly one terminal state no later than one
//! tick past its deadline.
//!
//! Exports per-rung ladder counts + latency p50/p95/p99 to
//! `service.csv`, a deterministic quantile summary to
//! `BENCH_service.json`, and a `hypersafe.obs.v1` metrics snapshot to
//! `service_obs.json` / `.csv`. Every number is a count or a virtual
//! tick — never wall-clock — so the whole export is byte-identical
//! across `RAYON_NUM_THREADS` settings and across reruns of the same
//! seed (CI's replay gate).

use crate::table::Report;
use hypersafe_core::SafetyService;
use hypersafe_simkit::service::{DegradeReason, ReqState, RoutingService, ServiceConfig, Terminal};
use hypersafe_simkit::{Metrics, QuantileHist};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{open_loop_mix, OpenLoop};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

/// Parameters for the service soak.
#[derive(Clone, Debug)]
pub struct ServiceParams {
    /// Cube dimensions to soak.
    pub dims: Vec<u8>,
    /// Route requests per dimension.
    pub requests: u64,
    /// Probability of a churn event between consecutive arrivals.
    pub churn_prob: f64,
    /// Master seed.
    pub seed: u64,
    /// Lifecycle knobs (admission window, retries, backoff, lag).
    pub service: ServiceConfig,
    /// Where the exports land.
    pub out_dir: PathBuf,
}

impl Default for ServiceParams {
    fn default() -> Self {
        ServiceParams {
            dims: vec![8, 10, 12],
            requests: 100_000,
            churn_prob: 0.05,
            seed: 0x05E5_71CE,
            service: ServiceConfig {
                max_in_flight: 48,
                ..ServiceConfig::default()
            },
            out_dir: PathBuf::from("results"),
        }
    }
}

/// The soak's outcome: the report plus the failure count the `repro`
/// binary turns into its exit code.
pub struct ServiceRun {
    /// Renderable summary (one row per dimension × ladder rung).
    pub report: Report,
    /// Invariant violations + unterminated requests + deadline
    /// overruns, summed — zero on a healthy run.
    pub failures: u64,
}

fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

fn terminal_word(t: Terminal) -> u64 {
    match t {
        Terminal::Delivered { hops } => 0x01 << 32 | hops as u64,
        Terminal::Degraded { reason, hops } => {
            let r = match reason {
                DegradeReason::Suboptimal => 0x02u64,
                DegradeReason::Detour => 0x03,
                DegradeReason::StaleRetry { attempts } => 0x04 | (attempts as u64) << 8,
            };
            r << 32 | hops as u64
        }
        Terminal::Rejected { reason } => {
            use hypersafe_simkit::service::RejectReason::*;
            let r = match reason {
                Overloaded => 1u64,
                Cancelled => 2,
                SourceFaulty => 3,
                DestinationFaulty => 4,
                Unreachable { attempts } => 5 | (attempts as u64) << 8,
            };
            0x05 << 32 | r
        }
        Terminal::TimedOut => 0x06 << 32,
    }
}

struct DimOutcome {
    stats: hypersafe_simkit::service::ServiceStats,
    checksum: u64,
    unterminated: u64,
    deadline_overruns: u64,
    detours: u64,
    cells_changed: u64,
    end_time: u64,
    violations: Vec<String>,
    /// Per-request terminal data for the obs snapshot.
    hops: QuantileHist,
    attempts_hist: QuantileHist,
}

fn soak_dim(p: &ServiceParams, n: u8) -> DimOutcome {
    let cube = Hypercube::new(n);
    let wl = OpenLoop {
        requests: p.requests,
        churn_prob: p.churn_prob,
        max_live_faults: (n as usize).saturating_sub(1).max(1),
        ..OpenLoop::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(p.seed ^ ((n as u64) << 40));
    let injections = open_loop_mix(cube, &wl, &mut rng);

    let provider = SafetyService::new(FaultConfig::fault_free(cube));
    let mut svc = RoutingService::new(provider, p.service);
    svc.load(&injections);
    svc.run();

    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let mut unterminated = 0u64;
    let mut deadline_overruns = 0u64;
    let mut hops = QuantileHist::new();
    let mut attempts_hist = QuantileHist::new();
    for (state, _submit, deadline, done_at, epoch) in svc.request_records() {
        match state {
            ReqState::Done(t) => {
                if done_at > deadline + 1 {
                    deadline_overruns += 1;
                }
                checksum = fnv1a(checksum, terminal_word(t));
                checksum = fnv1a(checksum, done_at ^ epoch.rotate_left(32));
                match t {
                    Terminal::Delivered { hops: h } | Terminal::Degraded { hops: h, .. } => {
                        hops.record(h as u64);
                        if let Terminal::Degraded {
                            reason: DegradeReason::StaleRetry { attempts },
                            ..
                        } = t
                        {
                            attempts_hist.record(attempts as u64 + 1);
                        } else {
                            attempts_hist.record(1);
                        }
                    }
                    _ => {}
                }
            }
            _ => unterminated += 1,
        }
    }
    DimOutcome {
        stats: svc.stats().clone(),
        checksum,
        unterminated,
        deadline_overruns,
        detours: svc.provider().detours(),
        cells_changed: svc.provider().cells_changed(),
        end_time: svc.now(),
        violations: svc.violations().to_vec(),
        hops,
        attempts_hist,
    }
}

fn q_cells(h: &QuantileHist) -> [String; 4] {
    let q = h.quantiles();
    [
        q.p50.to_string(),
        q.p95.to_string(),
        q.p99.to_string(),
        q.max.to_string(),
    ]
}

/// Runs the soak; writes `service.csv`, `BENCH_service.json`, and the
/// obs snapshot pair into `p.out_dir`.
pub fn run(p: &ServiceParams) -> ServiceRun {
    let mut rep = Report::new(
        "service",
        format!(
            "resilient-service churn soak: {} open-loop requests per dimension, \
             churn_prob {}, publish_lag {}",
            p.requests, p.churn_prob, p.service.publish_lag
        ),
        &["n", "rung", "count", "p50", "p95", "p99", "max", "detail"],
    );
    let mut failures = 0u64;
    let mut bench = String::from("{\n  \"results\": [\n");
    let mut bench_rows: Vec<String> = Vec::new();
    let mut obs = Metrics::new(0, 0);

    for &n in &p.dims {
        let o = soak_dim(p, n);
        let s = &o.stats;
        failures += s.invariant_violations + o.unterminated + o.deadline_overruns;

        let rungs: [(&str, u64, &QuantileHist, String); 6] = [
            (
                "optimal",
                s.delivered_optimal,
                &s.lat_optimal,
                String::new(),
            ),
            (
                "suboptimal",
                s.degraded_suboptimal,
                &s.lat_suboptimal,
                String::new(),
            ),
            ("detour", s.degraded_detour, &s.lat_detour, String::new()),
            (
                "retry",
                s.degraded_retry,
                &s.lat_retry,
                format!("retries={}", s.retries),
            ),
            (
                "rejected",
                s.rejected_overloaded
                    + s.rejected_cancelled
                    + s.rejected_source_faulty
                    + s.rejected_destination_faulty
                    + s.rejected_unreachable,
                &s.lat_rejected,
                format!(
                    "shed={} cancelled={} src={} dst={} unreachable={}",
                    s.rejected_overloaded,
                    s.rejected_cancelled,
                    s.rejected_source_faulty,
                    s.rejected_destination_faulty,
                    s.rejected_unreachable
                ),
            ),
            ("timed_out", s.timed_out, &s.lat_timed_out, String::new()),
        ];
        for (rung, count, hist, detail) in &rungs {
            let [p50, p95, p99, max] = q_cells(hist);
            rep.row(vec![
                n.to_string(),
                (*rung).to_string(),
                count.to_string(),
                p50.clone(),
                p95.clone(),
                p99.clone(),
                max,
                detail.clone(),
            ]);
            bench_rows.push(format!(
                "    {{\"id\": \"service/n{n}/{rung}/count\", \"value\": {count}}}"
            ));
            bench_rows.push(format!(
                "    {{\"id\": \"service/n{n}/{rung}/p50_ticks\", \"value\": {p50}}}"
            ));
            bench_rows.push(format!(
                "    {{\"id\": \"service/n{n}/{rung}/p95_ticks\", \"value\": {p95}}}"
            ));
            bench_rows.push(format!(
                "    {{\"id\": \"service/n{n}/{rung}/p99_ticks\", \"value\": {p99}}}"
            ));
        }
        rep.row(vec![
            n.to_string(),
            "all".to_string(),
            s.terminals().to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!(
                "epochs={} churn={} skipped={} detour_routes={} cells_changed={} \
                 max_in_flight={} unterminated={} overruns={} violations={} end_t={} \
                 checksum={:016x}",
                s.epochs_published,
                s.churn_applied,
                s.churn_skipped,
                o.detours,
                o.cells_changed,
                s.max_in_flight_seen,
                o.unterminated,
                o.deadline_overruns,
                s.invariant_violations,
                o.end_time,
                o.checksum
            ),
        ]);
        for v in &o.violations {
            rep.note(format!("n={n} violation: {v}"));
        }

        obs.latency.merge(&s.lat_optimal);
        obs.latency.merge(&s.lat_suboptimal);
        obs.latency.merge(&s.lat_detour);
        obs.latency.merge(&s.lat_retry);
        obs.hops.merge(&o.hops);
        obs.rounds.merge(&o.attempts_hist);
    }

    bench.push_str(&bench_rows.join(",\n"));
    bench.push_str("\n  ]\n}\n");

    rep.note(
        "rungs are the graceful-degradation ladder: optimal -> suboptimal -> detour \
         (live-state reroute) -> retry (stale snapshot, fresher epoch) -> typed \
         rejection; latencies are virtual ticks submit -> terminal"
            .to_string(),
    );
    rep.note(
        "the fixed-point invariant is checked at every epoch publication and at end \
         of run; unterminated / overruns / violations must all be zero — the repro \
         gate exits nonzero otherwise"
            .to_string(),
    );
    rep.note(
        "all columns are counts and virtual ticks; rerun with a different \
         RAYON_NUM_THREADS and the csv must be byte-identical (the run is a pure \
         function of the seed)"
            .to_string(),
    );
    match rep.write_csv(&p.out_dir) {
        Ok(path) => {
            rep.note(format!("csv: {}", path.display()));
        }
        Err(e) => {
            rep.note(format!("csv write failed: {e}"));
        }
    }
    let bench_path = p.out_dir.join("BENCH_service.json");
    match std::fs::create_dir_all(&p.out_dir).and_then(|()| std::fs::write(&bench_path, &bench)) {
        Ok(()) => {
            rep.note(format!("bench summary: {}", bench_path.display()));
        }
        Err(e) => {
            rep.note(format!("bench summary write failed: {e}"));
        }
    }
    let snap = obs.snapshot();
    let json_path = p.out_dir.join("service_obs.json");
    let csv_path = p.out_dir.join("service_obs.csv");
    match std::fs::write(&json_path, snap.to_json())
        .and_then(|()| std::fs::write(&csv_path, snap.to_csv()))
    {
        Ok(()) => {
            rep.note(format!(
                "metrics snapshot (delivered latency / hops / attempts histograms): {} and {}",
                json_path.display(),
                csv_path.display()
            ));
        }
        Err(e) => {
            rep.note(format!("metrics snapshot write failed: {e}"));
        }
    }
    ServiceRun {
        report: rep,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServiceParams {
        ServiceParams {
            dims: vec![4, 6],
            requests: 400,
            churn_prob: 0.1,
            seed: 77,
            out_dir: std::env::temp_dir().join("hypersafe_service_test"),
            ..Default::default()
        }
    }

    #[test]
    fn tiny_soak_is_clean_and_deterministic() {
        let a = run(&tiny());
        let b = run(&tiny());
        assert_eq!(a.failures, 0, "{}", a.report.render());
        assert_eq!(a.report.rows, b.report.rows, "same seed, same bytes");
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }

    #[test]
    fn every_request_reaches_exactly_one_terminal_state() {
        let p = tiny();
        for &n in &p.dims {
            let o = soak_dim(&p, n);
            assert_eq!(o.unterminated, 0);
            assert_eq!(o.deadline_overruns, 0);
            assert_eq!(
                o.stats.terminal_transitions, p.requests,
                "one terminal transition per request at n={n}"
            );
            assert_eq!(o.stats.terminals(), p.requests);
        }
    }

    #[test]
    fn the_ladder_actually_degrades_under_churn() {
        let p = ServiceParams {
            dims: vec![6],
            requests: 3_000,
            churn_prob: 0.3,
            seed: 5,
            out_dir: std::env::temp_dir().join("hypersafe_service_ladder_test"),
            ..Default::default()
        };
        let o = soak_dim(&p, 6);
        let s = &o.stats;
        assert!(s.delivered_optimal > 0, "optimal rung populated");
        assert!(
            s.degraded_suboptimal + s.degraded_detour + s.degraded_retry > 0,
            "heavy churn exercises the lower rungs: {}",
            s.render()
        );
        assert_eq!(s.invariant_violations, 0);
        let _ = std::fs::remove_dir_all(p.out_dir);
    }
}
