//! E17 — traffic concentration. The paper's introduction notes that
//! local-information schemes cannot do "global optimization, such as
//! time and traffic in routing"; safety levels are *limited global*
//! information, so how evenly do they spread load? This experiment
//! routes an all-to-all-ish workload over one faulty instance, counts
//! per-link usage, and compares algorithms and tie-break policies by
//! their maximum and dispersion of link load.

use crate::table::{f2, Report};
use hypersafe_baselines::{dfs_route, sidetrack_route};
use hypersafe_core::{route_tb, SafetyMap, TieBreak};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};
use std::collections::HashMap;

/// Parameters for the traffic sweep.
#[derive(Clone, Copy, Debug)]
pub struct TrafficParams {
    /// Cube dimension.
    pub n: u8,
    /// Fault count per instance.
    pub faults: usize,
    /// Unicast pairs routed per instance.
    pub pairs: u32,
    /// Instances averaged.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            n: 7,
            faults: 5,
            pairs: 2000,
            trials: 20,
            seed: 0x7AFF,
        }
    }
}

/// Link-load statistics for one routed workload.
#[derive(Clone, Copy, Debug, Default)]
struct Load {
    max: u64,
    mean: f64,
    /// Coefficient of variation (stddev / mean) over used links.
    cv: f64,
    delivered: u64,
}

fn load_stats(counts: &HashMap<(NodeId, NodeId), u64>, delivered: u64) -> Load {
    if counts.is_empty() {
        return Load::default();
    }
    let values: Vec<f64> = counts.values().map(|&v| v as f64).collect();
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    Load {
        max: counts.values().copied().max().unwrap_or(0),
        mean,
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        delivered,
    }
}

fn record(counts: &mut HashMap<(NodeId, NodeId), u64>, nodes: &[NodeId]) {
    for w in nodes.windows(2) {
        let key = if w[0] <= w[1] {
            (w[0], w[1])
        } else {
            (w[1], w[0])
        };
        *counts.entry(key).or_insert(0) += 1;
    }
}

/// Runs the sweep.
pub fn run(p: &TrafficParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "traffic",
        format!(
            "link-load balance, {}-cube, {} faults, {} pairs × {} instances",
            p.n, p.faults, p.pairs, p.trials
        ),
        &[
            "router",
            "max_link_load",
            "mean_link_load",
            "load_cv",
            "delivered",
        ],
    );

    let routers: Vec<(&str, TieBreak)> = vec![
        ("sl/lowest-dim", TieBreak::LowestDim),
        ("sl/highest-dim", TieBreak::HighestDim),
        ("sl/hashed", TieBreak::Hashed { salt: 0 }),
    ];

    for (name, tb) in routers {
        let sweep = Sweep::new(p.trials, p.seed);
        let loads: Vec<Load> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, p.faults, rng));
            let map = SafetyMap::compute(&cfg);
            let mut counts = HashMap::new();
            let mut delivered = 0u64;
            for k in 0..p.pairs {
                let (s, d) = random_pair(&cfg, rng);
                let tb = match tb {
                    TieBreak::Hashed { .. } => TieBreak::Hashed { salt: k as u64 },
                    other => other,
                };
                let res = route_tb(&cfg, &map, s, d, tb);
                if res.delivered {
                    delivered += 1;
                    record(&mut counts, res.path.as_ref().expect("delivered").nodes());
                }
            }
            load_stats(&counts, delivered)
        });
        push_row(&mut rep, name, &loads);
    }

    // Baselines for context.
    for name in ["dfs", "sidetrack"] {
        let sweep = Sweep::new(p.trials, p.seed);
        let loads: Vec<Load> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, p.faults, rng));
            let mut counts = HashMap::new();
            let mut delivered = 0u64;
            for _ in 0..p.pairs {
                let (s, d) = random_pair(&cfg, rng);
                match name {
                    "dfs" => {
                        let r = dfs_route(&cfg, s, d).expect("healthy");
                        if r.delivered {
                            delivered += 1;
                            record(&mut counts, &r.walk);
                        }
                    }
                    _ => {
                        let ttl = 8 * cube.dim() as u32;
                        let (path, ok) = sidetrack_route(&cfg, s, d, ttl, rng).expect("healthy");
                        if ok {
                            delivered += 1;
                            record(&mut counts, path.nodes());
                        }
                    }
                }
            }
            load_stats(&counts, delivered)
        });
        push_row(&mut rep, name, &loads);
    }

    rep.note(
        "load_cv: coefficient of variation of per-link message counts (lower = more even)"
            .to_string(),
    );
    rep.note(
        "hashed tie-breaking spreads equally-guaranteed routes without any extra state".to_string(),
    );
    rep
}

fn push_row(rep: &mut Report, name: &str, loads: &[Load]) {
    let t = loads.len() as f64;
    let max = loads.iter().map(|l| l.max as f64).sum::<f64>() / t;
    let mean = loads.iter().map(|l| l.mean).sum::<f64>() / t;
    let cv = loads.iter().map(|l| l.cv).sum::<f64>() / t;
    let delivered = loads.iter().map(|l| l.delivered).sum::<u64>();
    rep.row(vec![
        name.to_string(),
        f2(max),
        f2(mean),
        f2(cv),
        delivered.to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_tiebreak_spreads_load() {
        let p = TrafficParams {
            n: 6,
            faults: 3,
            pairs: 600,
            trials: 12,
            seed: 12,
        };
        let rep = run(&p);
        let get = |name: &str, col: usize| -> f64 {
            rep.rows.iter().find(|r| r[0] == name).unwrap()[col]
                .parse()
                .unwrap()
        };
        // Deterministic lowest-dim concentrates more than hashed.
        assert!(
            get("sl/hashed", 1) <= get("sl/lowest-dim", 1) + 1.0,
            "hashed max load should not exceed deterministic by much"
        );
        assert!(
            get("sl/hashed", 3) <= get("sl/lowest-dim", 3),
            "cv strictly improves"
        );
    }

    #[test]
    fn all_rows_present() {
        let p = TrafficParams {
            n: 5,
            faults: 2,
            pairs: 200,
            trials: 4,
            seed: 13,
        };
        let rep = run(&p);
        assert_eq!(rep.rows.len(), 5);
    }
}
