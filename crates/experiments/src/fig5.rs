//! E8 — the paper's Fig. 5: routing in a 2 × 3 × 2 generalized
//! hypercube with four faulty nodes (§4.2).
//!
//! Reconstruction by exhaustive search over all C(12, 4) fault sets
//! (DESIGN.md §5 item 2) for instances consistent with the narration:
//!
//! * exactly four nodes are 3-safe;
//! * 011 (the source's dimension-0 neighbor) is faulty;
//! * 110 (its dimension-2 neighbor) has level 1 — "less than
//!   3 − 1 = 2 and again is not eligible";
//! * the unicast 010 → 101 routes optimally in three hops.
//!
//! Two narration details are *not* satisfiable simultaneously with the
//! above under Definition 4 as stated (recorded in EXPERIMENTS.md):
//! the text gives node 001 safety level 1 (the fixed point forces 3 in
//! every otherwise-consistent instance), and the "alternative optimal
//! path" 010 → 020 → 021 → 121 → 101 has length 4 for a distance-3
//! pair. The search is rerun live here so the discrepancy is
//! machine-checked, not hand-waved.

use crate::table::Report;
use hypersafe_core::gh_safety::GhSafetyMap;
use hypersafe_core::gh_unicast::{gh_route, GhDecision};
use hypersafe_topology::{FaultSet, GeneralizedHypercube, GhNode, NodeId};

/// The Fig. 5 topology.
pub fn gh232() -> GeneralizedHypercube {
    GeneralizedHypercube::from_product(&[2, 3, 2])
}

/// Whether a fault set satisfies the machine-checkable Fig. 5 facts.
pub fn consistent(gh: &GeneralizedHypercube, f: &FaultSet) -> bool {
    let is_faulty = |name: &str| f.contains(NodeId::new(gh.parse(name).unwrap().raw()));
    if !is_faulty("011") || is_faulty("010") || is_faulty("101") {
        return false;
    }
    let map = GhSafetyMap::compute(gh, f);
    if map.safe_nodes().len() != 4 {
        return false;
    }
    let lv = |name: &str| map.level(gh.parse(name).unwrap());
    if lv("110") != 1 || lv("000") < 2 {
        return false;
    }
    let s = gh.parse("010").unwrap();
    let d = gh.parse("101").unwrap();
    let res = gh_route(gh, &map, f, s, d);
    res.decision == GhDecision::Optimal && res.delivered && res.hops() == Some(3)
}

/// Exhaustively enumerates consistent 4-fault sets.
pub fn search() -> Vec<Vec<GhNode>> {
    let gh = gh232();
    let total = gh.num_nodes() as usize;
    let mut found = Vec::new();
    for mask in 0u64..(1 << total) {
        if mask.count_ones() != 4 {
            continue;
        }
        let mut f = gh.fault_set();
        for i in 0..total {
            if (mask >> i) & 1 == 1 {
                f.insert(NodeId::new(i as u64));
            }
        }
        if consistent(&gh, &f) {
            found.push(
                (0..total as u64)
                    .filter(|i| (mask >> i) & 1 == 1)
                    .map(GhNode)
                    .collect(),
            );
        }
    }
    found
}

/// Regenerates Fig. 5.
pub fn run() -> Report {
    let gh = gh232();
    let found = search();
    assert!(!found.is_empty());
    // Pin the instance whose walk matches the paper's narrated route
    // exactly (the hypersafe-core unit tests use the same one).
    let pinned: Vec<GhNode> = found
        .iter()
        .find(|faults| {
            let mut f = gh.fault_set();
            for a in faults.iter() {
                f.insert(NodeId::new(a.raw()));
            }
            let map = GhSafetyMap::compute(&gh, &f);
            let res = gh_route(
                &gh,
                &map,
                &f,
                gh.parse("010").unwrap(),
                gh.parse("101").unwrap(),
            );
            res.nodes.is_some_and(|walk| {
                walk.iter().map(|&a| gh.format(a)).collect::<Vec<_>>()
                    == ["010", "000", "001", "101"]
            })
        })
        .expect("an instance reproducing the narrated walk exists")
        .clone();

    let mut f = gh.fault_set();
    for a in &pinned {
        f.insert(NodeId::new(a.raw()));
    }
    let map = GhSafetyMap::compute(&gh, &f);
    let mut rep = Report::new(
        "fig5",
        "Fig. 5 — GH(2,3,2) with four faulty nodes, safety levels (Definition 4)",
        &["node", "level", "status"],
    );
    for a in gh.nodes() {
        let status = if f.contains(NodeId::new(a.raw())) {
            "faulty"
        } else if map.is_safe(a) {
            "safe"
        } else {
            "unsafe"
        };
        rep.row(vec![gh.format(a), map.level(a).to_string(), status.into()]);
    }
    rep.note(format!(
        "{} consistent reconstructions; pinned {:?}",
        found.len(),
        pinned.iter().map(|&a| gh.format(a)).collect::<Vec<_>>()
    ));
    let res = gh_route(
        &gh,
        &map,
        &f,
        gh.parse("010").unwrap(),
        gh.parse("101").unwrap(),
    );
    rep.note(format!(
        "unicast 010 → 101 (3 coordinates differ): optimal walk {:?}",
        res.nodes
            .unwrap()
            .iter()
            .map(|&a| gh.format(a))
            .collect::<Vec<_>>()
    ));
    rep.note(
        "paper discrepancies (machine-checked): level(001) = 3 under Definition 4 (text says 1); \
         the text's 'alternative optimal path' has length 4 for H = 3"
            .to_string(),
    );
    // Every unsafe nonfaulty node has a safe neighbor (paper's claim).
    for a in gh.nodes() {
        if f.contains(NodeId::new(a.raw())) || map.is_safe(a) {
            continue;
        }
        assert!(gh.neighbors(a).any(|b| map.is_safe(b)), "{}", gh.format(a));
    }
    rep.note(
        "every unsafe nonfaulty node has a safe neighbor — suboptimality guaranteed".to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_is_small_and_contains_pinned() {
        let found = search();
        assert!(!found.is_empty());
        assert!(
            found.len() < 20,
            "narration pins the instance tightly: {}",
            found.len()
        );
    }

    #[test]
    fn report_has_12_nodes_and_4_faulty() {
        let rep = run();
        assert_eq!(rep.rows.len(), 12);
        assert_eq!(rep.rows.iter().filter(|r| r[2] == "faulty").count(), 4);
        assert_eq!(rep.rows.iter().filter(|r| r[2] == "safe").count(), 4);
    }
}
