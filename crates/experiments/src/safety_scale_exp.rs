//! E27 — packed safety storage at scale (`repro safety-scale`): run
//! the bit-plane safety kernels on million-node cubes and hold them to
//! the paper's semantics byte-for-byte.
//!
//! For each dimension the experiment times a full `n − 1`-round
//! [`SafetyMap::compute`] (plane Jacobi) and
//! [`SafetyMap::compute_constructive`], cross-checks the two stores
//! against each other, and — up to `reference_max_dim` — against the
//! scalar [`SafetyMap::compute_reference_levels`] oracle. It then
//! drives a fault/recover churn tail through the incremental worklist
//! ([`SafetyMap::apply_fault`] / [`SafetyMap::apply_recover`]), timing
//! each single-event update and periodically recomputing from scratch
//! to confirm the packed store landed on the identical fixed point.
//! Finally it replays a batched routing workload sequentially and
//! through [`route_many`]'s chunked fan-out, as the before/after for
//! the `for_each_chunk_pair` rewrite.
//!
//! The CSV contains only deterministic columns (counts, rounds,
//! bytes/node, checksums) so reruns diff clean at any thread count;
//! wall-clock numbers go to `results/BENCH_safety_compute.json`,
//! `BENCH_churn.json`, and `BENCH_routing.json` via an id-preserving
//! merge, and to the report notes.

use crate::table::Report;
use hypersafe_core::{route_many, route_many_seq, BatchOutcome, Decision, SafetyMap};
use hypersafe_simkit::Metrics;
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};
use rand::Rng;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Parameters for the scale run.
#[derive(Clone, Debug)]
pub struct SafetyScaleParams {
    /// Cube dimensions to sweep (2²⁰ = 1,048,576 nodes at the top).
    pub dims: Vec<u8>,
    /// Faulty nodes per instance, as a multiple of `n`.
    pub fault_factor: usize,
    /// Churn events in the incremental tail per dimension.
    pub events: u32,
    /// Largest dimension the scalar reference oracle cross-checks
    /// (it walks every (node, neighbor) pair per round, so letting it
    /// loose at n = 20 would dominate the run).
    pub reference_max_dim: u8,
    /// Dimension for the batched-routing before/after.
    pub route_dim: u8,
    /// Pairs in the batched-routing workload.
    pub route_pairs: usize,
    /// Master seed.
    pub seed: u64,
    /// Where the CSV, obs snapshot, and BENCH merges land.
    pub out_dir: PathBuf,
}

impl Default for SafetyScaleParams {
    fn default() -> Self {
        SafetyScaleParams {
            dims: vec![14, 16, 18, 20],
            fault_factor: 2,
            events: 16,
            reference_max_dim: 16,
            route_dim: 14,
            route_pairs: 1_000_000,
            seed: 0x5CA1E,
            out_dir: PathBuf::from("results"),
        }
    }
}

fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

fn outcome_word(o: &BatchOutcome) -> u64 {
    let tag = match o.decision {
        Decision::Optimal { first_dim, .. } => 0x10 | first_dim as u64,
        Decision::Suboptimal { first_dim } => 0x40 | first_dim as u64,
        Decision::Failure => 0x80,
        Decision::AlreadyThere => 0x81,
    };
    tag << 40 | (o.hops as u64) << 8 | o.delivered as u64
}

/// Mean nanoseconds per call of `f`, over `reps` calls.
fn time_ns<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

/// One dimension's outcome.
struct DimOutcome {
    faults: usize,
    rounds: u32,
    bytes_per_node: f64,
    level_checksum: u64,
    /// Equivalence failures: constructive vs Jacobi, packed vs scalar
    /// reference, incremental vs scratch.
    mismatches: u64,
    /// Whether the scalar oracle ran at this dimension.
    referenced: bool,
    jacobi_ns: f64,
    constructive_ns: f64,
    reference_ns: Option<f64>,
    incr_fault_ns: f64,
    incr_recover_ns: f64,
}

fn run_dim<R: Rng + ?Sized>(p: &SafetyScaleParams, n: u8, reps: u32, rng: &mut R) -> DimOutcome {
    let cube = Hypercube::new(n);
    let faults = uniform_faults(cube, p.fault_factor * n as usize, rng);
    let m = faults.len();
    let cfg = FaultConfig::with_node_faults(cube, faults);

    let jacobi_ns = time_ns(reps, || SafetyMap::compute(&cfg));
    let constructive_ns = time_ns(reps, || SafetyMap::compute_constructive(&cfg));

    let mut map = SafetyMap::compute(&cfg);
    let cons = SafetyMap::compute_constructive(&cfg);
    let mut mismatches = (map.store() != cons.store()) as u64;

    let referenced = n <= p.reference_max_dim;
    let reference_ns = if referenced {
        let ns = time_ns(1, || SafetyMap::compute_reference_levels(&cfg));
        if map.to_vec() != SafetyMap::compute_reference_levels(&cfg) {
            mismatches += 1;
        }
        Some(ns)
    } else {
        None
    };

    let bytes_per_node = map.store().memory_bytes() as f64 / cube.num_nodes() as f64;
    let level_checksum = map
        .store()
        .to_vec()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, &l| fnv1a(h, l as u64));
    let rounds = map.rounds();

    // Incremental tail: single-event updates on the packed store,
    // periodically pinned against a from-scratch plane recompute.
    let mut cfg = cfg;
    let mut fault_total = 0f64;
    let mut fault_events = 0u32;
    let mut recover_total = 0f64;
    let mut recover_events = 0u32;
    for ev in 0..p.events {
        let live = cfg.node_faults().len();
        let recover = live > 0 && (live >= (n as usize * p.fault_factor + 4) || ev % 3 == 2);
        if recover {
            let victims: Vec<NodeId> = cfg.node_faults().iter().collect();
            let v = victims[rng.gen_range(0..victims.len())];
            cfg.node_faults_mut().remove(v);
            let t = Instant::now();
            black_box(map.apply_recover(&cfg, v));
            recover_total += t.elapsed().as_nanos() as f64;
            recover_events += 1;
        } else {
            let v = loop {
                let v = NodeId::new(rng.gen_range(0..cube.num_nodes()));
                if !cfg.node_faulty(v) {
                    break v;
                }
            };
            cfg.node_faults_mut().insert(v);
            let t = Instant::now();
            black_box(map.apply_fault(&cfg, v));
            fault_total += t.elapsed().as_nanos() as f64;
            fault_events += 1;
        }
        if ev % 8 == 7 && map.store() != SafetyMap::compute(&cfg).store() {
            mismatches += 1;
        }
    }
    if map.store() != SafetyMap::compute(&cfg).store() {
        mismatches += 1;
    }

    DimOutcome {
        faults: m,
        rounds,
        bytes_per_node,
        level_checksum,
        mismatches,
        referenced,
        jacobi_ns,
        constructive_ns,
        reference_ns,
        incr_fault_ns: fault_total / fault_events.max(1) as f64,
        incr_recover_ns: recover_total / recover_events.max(1) as f64,
    }
}

/// Batched-routing before/after at `route_dim`: sequential loop vs the
/// chunked fan-out, equivalence-checked element-for-element.
struct RouteOutcome {
    seq_ns_per_route: f64,
    chunked_ns_per_route: f64,
    delivered: u64,
    checksum: u64,
    mismatches: u64,
}

fn run_route<R: Rng + ?Sized>(p: &SafetyScaleParams, rng: &mut R) -> RouteOutcome {
    let cube = Hypercube::new(p.route_dim);
    let faults = uniform_faults(cube, p.fault_factor * p.route_dim as usize, rng);
    let cfg = FaultConfig::with_node_faults(cube, faults);
    let map = SafetyMap::compute(&cfg);
    let pairs: Vec<(NodeId, NodeId)> = (0..p.route_pairs).map(|_| random_pair(&cfg, rng)).collect();

    let seq_ns = time_ns(1, || route_many_seq(&cfg, &map, &pairs));
    let chunked_ns = time_ns(1, || route_many(&cfg, &map, &pairs));
    let seq = route_many_seq(&cfg, &map, &pairs);
    let par = route_many(&cfg, &map, &pairs);

    let mut out = RouteOutcome {
        seq_ns_per_route: seq_ns / pairs.len() as f64,
        chunked_ns_per_route: chunked_ns / pairs.len() as f64,
        delivered: 0,
        checksum: 0xcbf2_9ce4_8422_2325,
        mismatches: (par != seq) as u64,
    };
    for o in &par {
        out.delivered += o.delivered as u64;
        out.checksum = fnv1a(out.checksum, outcome_word(o));
    }
    out
}

/// Replace-by-id merge into a `BENCH_*.json` file: existing ids keep
/// their position with the new number; new ids append in order. The
/// format is the two-line-per-entry shape every `results/BENCH_*.json`
/// in this repo uses, so a hand-rolled parser beats a serde
/// dependency (DESIGN.md §6).
pub fn merge_bench_json(path: &Path, entries: &[(String, f64)]) -> std::io::Result<()> {
    let mut rows: Vec<(String, f64)> = Vec::new();
    if let Ok(doc) = std::fs::read_to_string(path) {
        for line in doc.lines() {
            let Some(rest) = line.trim().strip_prefix("{\"id\": \"") else {
                continue;
            };
            let Some((id, rest)) = rest.split_once("\", \"ns_per_iter\": ") else {
                continue;
            };
            let num = rest.trim_end_matches(['}', ',', ' ']);
            if let Ok(v) = num.parse::<f64>() {
                rows.push((id.to_string(), v));
            }
        }
    }
    for (id, v) in entries {
        match rows.iter_mut().find(|(i, _)| i == id) {
            Some(row) => row.1 = *v,
            None => rows.push((id.clone(), *v)),
        }
    }
    let mut doc = String::from("{\n  \"results\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|(id, v)| format!("    {{\"id\": \"{id}\", \"ns_per_iter\": {v:.1}}}"))
        .collect();
    doc.push_str(&body.join(",\n"));
    doc.push_str("\n  ]\n}\n");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, doc)
}

/// The run's outcome: the report plus the mismatch count the `repro`
/// binary turns into its exit code.
pub struct SafetyScaleRun {
    /// Renderable summary (one row per dimension, one routing row).
    pub report: Report,
    /// Equivalence failures across all gates (must be 0).
    pub mismatches: u64,
    /// Worst bytes/node across the sweep (gated at ≤ 1.0).
    pub max_bytes_per_node: f64,
}

/// Runs the scale experiment; writes `safety_scale.csv`, the obs
/// snapshot, and the BENCH merges into `p.out_dir`.
pub fn run(p: &SafetyScaleParams) -> SafetyScaleRun {
    let mut rep = Report::new(
        "safety_scale",
        format!(
            "packed bit-plane safety storage at scale: full compute + {}-event \
             incremental tail per dimension",
            p.events
        ),
        &[
            "n",
            "nodes",
            "faults",
            "rounds",
            "bytes/node",
            "level_checksum",
            "ref_checked",
            "mismatches",
        ],
    );
    let mut mismatches = 0u64;
    let mut max_bpn = 0f64;
    let mut obs = Metrics::new(0, 0);
    let mut bench_compute: Vec<(String, f64)> = Vec::new();
    let mut bench_churn: Vec<(String, f64)> = Vec::new();

    for &n in &p.dims {
        // Enough reps to steady the small dims without letting the
        // million-node computes repeat eight times.
        let reps = match n {
            0..=14 => 8,
            15..=16 => 4,
            17..=18 => 2,
            _ => 1,
        };
        let sweep = Sweep::new(1, p.seed ^ ((n as u64) << 32));
        let mut rng = sweep.trial_rng(0);
        let o = run_dim(p, n, reps, &mut rng);
        let nodes = 1u64 << n;
        mismatches += o.mismatches;
        max_bpn = max_bpn.max(o.bytes_per_node);
        obs.record_rounds(o.rounds as u64);
        rep.row(vec![
            n.to_string(),
            nodes.to_string(),
            o.faults.to_string(),
            o.rounds.to_string(),
            format!("{:.4}", o.bytes_per_node),
            format!("{:016x}", o.level_checksum),
            o.referenced.to_string(),
            o.mismatches.to_string(),
        ]);
        rep.note(format!(
            "n={n}: jacobi {:.2} ms ({:.1} ns/node), constructive {:.2} ms, \
             incremental fault {:.1} us, recover {:.1} us{}",
            o.jacobi_ns / 1e6,
            o.jacobi_ns / nodes as f64,
            o.constructive_ns / 1e6,
            o.incr_fault_ns / 1e3,
            o.incr_recover_ns / 1e3,
            match o.reference_ns {
                Some(r) => format!(", scalar reference {:.2} ms", r / 1e6),
                None => String::new(),
            },
        ));
        bench_compute.push((format!("safety_scale_full/jacobi_plane/{n}"), o.jacobi_ns));
        bench_compute.push((
            format!("safety_scale_full/constructive_plane/{n}"),
            o.constructive_ns,
        ));
        if let Some(r) = o.reference_ns {
            bench_compute.push((format!("safety_scale_full/reference_scalar/{n}"), r));
        }
        bench_compute.push((
            format!("safety_scale_per_node/jacobi_plane/{n}"),
            o.jacobi_ns / nodes as f64,
        ));
        if n >= 16 {
            bench_churn.push((
                format!("churn_single_fault/incremental/{n}"),
                o.incr_fault_ns,
            ));
            bench_churn.push((format!("churn_single_fault/scratch_plane/{n}"), o.jacobi_ns));
        }
    }

    let sweep = Sweep::new(1, p.seed ^ 0xB007);
    let mut rng = sweep.trial_rng(0);
    let r = run_route(p, &mut rng);
    mismatches += r.mismatches;
    rep.note(format!(
        "route_many n={} x {} pairs: seq {:.1} ns/route, chunked {:.1} ns/route \
         (threads={}), delivered {}, checksum {:016x}",
        p.route_dim,
        p.route_pairs,
        r.seq_ns_per_route,
        r.chunked_ns_per_route,
        rayon::num_threads(),
        r.delivered,
        r.checksum,
    ));
    let route_bench = vec![
        (
            format!("route_many_n{}/seq", p.route_dim),
            r.seq_ns_per_route,
        ),
        (
            format!(
                "route_many_n{}/chunked_t{}",
                p.route_dim,
                rayon::num_threads()
            ),
            r.chunked_ns_per_route,
        ),
    ];

    rep.note(
        "every dimension cross-checks constructive vs Jacobi plane stores, the \
         packed map vs the scalar reference (up to ref_checked), and the \
         incremental tail vs from-scratch recomputes — mismatches must be 0"
            .to_string(),
    );
    rep.note(format!(
        "bytes/node ceiling across the sweep: {max_bpn:.4} (gate: <= 1.0; the \
         packed store is 4 bits/node up to n = 15 plus a fifth plane above)"
    ));
    rep.note(
        "csv columns are counts and checksums only; timings live in the notes and \
         in results/BENCH_safety_compute.json / BENCH_churn.json / BENCH_routing.json"
            .to_string(),
    );
    match rep.write_csv(&p.out_dir) {
        Ok(path) => {
            rep.note(format!("csv: {}", path.display()));
        }
        Err(e) => {
            rep.note(format!("csv write failed: {e}"));
        }
    }
    for (file, entries) in [
        ("BENCH_safety_compute.json", &bench_compute),
        ("BENCH_churn.json", &bench_churn),
        ("BENCH_routing.json", &route_bench),
    ] {
        if entries.is_empty() {
            continue;
        }
        let path = p.out_dir.join(file);
        match merge_bench_json(&path, entries) {
            Ok(()) => {
                rep.note(format!("bench merge: {}", path.display()));
            }
            Err(e) => {
                rep.note(format!("bench merge into {file} failed: {e}"));
            }
        }
    }
    let snap = obs.snapshot();
    let json_path = p.out_dir.join("safety_scale_obs.json");
    let csv_path = p.out_dir.join("safety_scale_obs.csv");
    match std::fs::create_dir_all(&p.out_dir)
        .and_then(|()| std::fs::write(&json_path, snap.to_json()))
        .and_then(|()| std::fs::write(&csv_path, snap.to_csv()))
    {
        Ok(()) => {
            rep.note(format!(
                "metrics snapshot (compute-round histogram): {} and {}",
                json_path.display(),
                csv_path.display()
            ));
        }
        Err(e) => {
            rep.note(format!("metrics snapshot write failed: {e}"));
        }
    }
    SafetyScaleRun {
        report: rep,
        mismatches,
        max_bytes_per_node: max_bpn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SafetyScaleParams {
        SafetyScaleParams {
            dims: vec![6, 8],
            fault_factor: 2,
            events: 6,
            reference_max_dim: 8,
            route_dim: 6,
            route_pairs: 500,
            seed: 11,
            out_dir: std::env::temp_dir().join("hypersafe_safety_scale_test"),
        }
    }

    #[test]
    fn tiny_run_is_clean() {
        let run = run(&tiny());
        assert_eq!(run.mismatches, 0, "{}", run.report.render());
        assert!(run.max_bytes_per_node <= 1.0);
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }

    #[test]
    fn csv_rows_are_deterministic() {
        let a = run(&tiny());
        let b = run(&tiny());
        assert_eq!(a.report.rows, b.report.rows);
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }

    #[test]
    fn bench_merge_replaces_by_id_and_appends() {
        let dir = std::env::temp_dir().join("hypersafe_bench_merge_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_x.json");
        std::fs::write(
            &path,
            "{\n  \"results\": [\n    {\"id\": \"a/1\", \"ns_per_iter\": 10.0},\n    \
             {\"id\": \"b/2\", \"ns_per_iter\": 20.0}\n  ]\n}\n",
        )
        .unwrap();
        merge_bench_json(
            &path,
            &[("b/2".to_string(), 25.0), ("c/3".to_string(), 30.0)],
        )
        .unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let ids: Vec<&str> = doc
            .lines()
            .filter_map(|l| l.trim().strip_prefix("{\"id\": \""))
            .filter_map(|r| r.split_once('"').map(|(id, _)| id))
            .collect();
        assert_eq!(ids, ["a/1", "b/2", "c/3"], "{doc}");
        assert!(
            doc.contains("\"id\": \"b/2\", \"ns_per_iter\": 25.0"),
            "{doc}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
