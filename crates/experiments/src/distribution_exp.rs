//! E14 — fault *distribution* sensitivity. The paper's pitch for
//! safety levels is that they approximate "the number **and
//! distribution** of faulty nodes", not just the count. This sweep
//! holds the fault count fixed and varies the spatial pattern —
//! uniform, Gray-clustered, whole subcube — measuring how the safety
//! landscape and unicast feasibility respond.

use crate::table::{f2, pct, Report};
use hypersafe_core::{route, Decision, SafetyMap};
use hypersafe_topology::{FaultConfig, FaultSet, Hypercube};
use hypersafe_workloads::{clustered_faults, random_pair, subcube_faults, uniform_faults, Sweep};
use rand_chacha::ChaCha8Rng;

/// Parameters for the distribution sweep.
#[derive(Clone, Copy, Debug)]
pub struct DistributionParams {
    /// Cube dimension.
    pub n: u8,
    /// Subcube dimension to fault (fault count = 2^k for all patterns).
    pub subcube_dim: u8,
    /// Instances per pattern.
    pub trials: u32,
    /// Unicast pairs per instance.
    pub pairs_per_instance: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for DistributionParams {
    fn default() -> Self {
        DistributionParams {
            n: 8,
            subcube_dim: 3,
            trials: 300,
            pairs_per_instance: 8,
            seed: 0xD157,
        }
    }
}

/// One pattern's aggregate measurements.
#[derive(Clone, Copy, Debug, Default)]
struct Agg {
    mean_level_sum: f64,
    safe_frac_sum: f64,
    optimal: u64,
    suboptimal: u64,
    failed: u64,
}

/// Runs the sweep.
pub fn run(p: &DistributionParams) -> Report {
    let cube = Hypercube::new(p.n);
    let m = 1usize << p.subcube_dim;
    let mut rep = Report::new(
        "distribution",
        format!(
            "fault-pattern sensitivity, {}-cube, {} faults per instance, {} instances",
            p.n, m, p.trials
        ),
        &[
            "pattern",
            "mean_level",
            "safe_frac",
            "optimal",
            "suboptimal",
            "failed",
        ],
    );

    type Gen = fn(Hypercube, usize, u8, &mut ChaCha8Rng) -> FaultSet;
    let uniform: Gen = |c, m, _, rng| uniform_faults(c, m, rng);
    let clustered: Gen = |c, m, _, rng| clustered_faults(c, m, rng);
    let subcube: Gen = |c, _, k, rng| subcube_faults(c, k, rng);
    let patterns: [(&str, Gen); 3] = [
        ("uniform", uniform),
        ("clustered", clustered),
        ("subcube", subcube),
    ];

    for (name, gen) in patterns {
        let sweep = Sweep::new(p.trials, p.seed);
        let aggs: Vec<Agg> = sweep.run(|_, rng| {
            let faults = gen(cube, m, p.subcube_dim, rng);
            let cfg = FaultConfig::with_node_faults(cube, faults);
            let map = SafetyMap::compute(&cfg);
            let healthy = cfg.healthy_count() as f64;
            let level_sum: f64 = cfg
                .healthy_nodes()
                .map(|a| map.level(a) as f64)
                .sum::<f64>()
                / healthy;
            let safe_frac =
                cfg.healthy_nodes().filter(|&a| map.is_safe(a)).count() as f64 / healthy;
            let mut agg = Agg {
                mean_level_sum: level_sum,
                safe_frac_sum: safe_frac,
                ..Agg::default()
            };
            for _ in 0..p.pairs_per_instance {
                let (s, d) = random_pair(&cfg, rng);
                let res = route(&cfg, &map, s, d);
                match res.decision {
                    Decision::Optimal { .. } => agg.optimal += 1,
                    Decision::Suboptimal { .. } => agg.suboptimal += 1,
                    Decision::Failure => agg.failed += 1,
                    Decision::AlreadyThere => {}
                }
            }
            agg
        });
        let t = p.trials as f64;
        let mean_level = aggs.iter().map(|a| a.mean_level_sum).sum::<f64>() / t;
        let safe_frac = aggs.iter().map(|a| a.safe_frac_sum).sum::<f64>() / t;
        let optimal: u64 = aggs.iter().map(|a| a.optimal).sum();
        let suboptimal: u64 = aggs.iter().map(|a| a.suboptimal).sum();
        let failed: u64 = aggs.iter().map(|a| a.failed).sum();
        let total = optimal + suboptimal + failed;
        rep.row(vec![
            name.to_string(),
            f2(mean_level),
            f2(safe_frac),
            pct(optimal, total),
            pct(suboptimal, total),
            pct(failed, total),
        ]);
    }
    rep.note(format!(
        "all patterns inject exactly {m} faults; only their placement differs"
    ));
    rep.note(
        "clustered/subcube faults depress far fewer safety levels than uniform ones — \
              the distribution-awareness the paper claims"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcube_pattern_is_gentler_than_uniform() {
        let p = DistributionParams {
            n: 7,
            subcube_dim: 3,
            trials: 60,
            pairs_per_instance: 6,
            seed: 44,
        };
        let rep = run(&p);
        let level = |name: &str| -> f64 {
            rep.rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        // A compact fault region leaves the rest of the cube safer than
        // the same number of scattered faults.
        assert!(level("subcube") > level("uniform"), "{rep:?}");
    }

    #[test]
    fn rows_and_columns_complete() {
        let p = DistributionParams {
            n: 6,
            subcube_dim: 2,
            trials: 30,
            pairs_per_instance: 4,
            seed: 45,
        };
        let rep = run(&p);
        assert_eq!(rep.rows.len(), 3);
        for row in &rep.rows {
            assert_eq!(row.len(), 6);
        }
    }
}
