//! E29 — k-disjoint multi-path unicast (`repro multipath`): path
//! diversity against the Menger bound, message/hop overhead against
//! the single-path router, and tail latency under hotspot load.
//!
//! Three regimes, all gated:
//!
//! * **fault sweep** — `f = 0 .. n−1` uniform node faults on `Q_n`.
//!   Every pair is routed by [`route_disjoint_many`] and cross-checked
//!   against the scalar [`route_disjoint`]; every result must pass
//!   [`check_disjoint_delivery`] (pairwise disjoint, fault-free,
//!   correct endpoints). Gates: on the fault-free cube the fan is
//!   exactly `n` paths (`h` optimal + `n − h` detours); under `f < n`
//!   faults the delivered count reaches the Menger bound
//!   `min(k, n − f)` (unit vertex cuts: `f` faults kill at most `f` of
//!   the `n` disjoint paths), and multi-path delivers on ≥ 1 path
//!   whenever the single-path router does.
//! * **hotspot / incast** — every message aims at one hot node, the
//!   per-link queues of [`LinkLoad`] model head-of-line blocking, and
//!   the multi-path router picks spare dimensions by live queue depth
//!   ([`hypersafe_core::route_disjoint_ranked`]). The CSV reports
//!   first-copy tail latency (p50/p99/max) next to the single-path
//!   router's — queue replay is sequential and seeded, so the
//!   quantiles are exact counts, not wall-clock.
//! * **percolation** — Bernoulli node *and* link failures swept up to
//!   and past the `1 − 1/n` connectivity threshold; pairs are sampled
//!   inside the giant component only. Gate: a giant-component pair is
//!   connected by construction, so `route_disjoint` (a max-flow) must
//!   deliver on ≥ 1 path — a zero there is a routing bug, not a
//!   disconnection.
//!
//! Every CSV column is a count or a checksum; the whole run is a pure
//! function of the seed and is byte-identical at any
//! `RAYON_NUM_THREADS` (CI diffs 1 vs 4).

use crate::table::Report;
use hypersafe_core::{
    check_disjoint_delivery, outcome_of, route, route_disjoint, route_disjoint_many,
    route_disjoint_ranked, route_light, MultiOutcome, SafetyMap, TieBreak,
};
use hypersafe_simkit::Metrics;
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{
    bernoulli_link_faults, bernoulli_node_faults, giant_component_pairs, giant_fraction_bp,
    incast_pairs, link_threshold_bp, uniform_faults, LinkLoad, Sweep,
};
use std::path::PathBuf;

/// Parameters for the multi-path experiment.
#[derive(Clone, Debug)]
pub struct MultipathParams {
    /// Cube dimension for the fault sweep and the hotspot regime.
    pub n: u8,
    /// Requested redundancy (`k`; clamped to `n` by the router).
    pub k: u8,
    /// Random pairs per fault-sweep point.
    pub pairs: usize,
    /// Messages in the incast batch.
    pub hotspot_messages: usize,
    /// Node/link Bernoulli fault densities for the percolation sweep,
    /// in basis points of the cube's link threshold `1 − 1/n` (10 000
    /// = exactly at threshold, values above cross it).
    pub percolation_of_threshold_bp: Vec<u32>,
    /// Pairs per percolation point.
    pub percolation_pairs: usize,
    /// Master seed.
    pub seed: u64,
    /// Where the CSV and the obs snapshot land.
    pub out_dir: PathBuf,
}

impl Default for MultipathParams {
    fn default() -> Self {
        MultipathParams {
            n: 8,
            k: 8,
            pairs: 2_000,
            hotspot_messages: 4_000,
            percolation_of_threshold_bp: vec![2_500, 5_000, 7_500, 10_000, 11_000],
            percolation_pairs: 600,
            seed: 0x000D_1570 ^ 0x2929,
            out_dir: PathBuf::from("results"),
        }
    }
}

fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

fn outcome_word(o: &MultiOutcome) -> u64 {
    (u64::from(o.delivered) << 56)
        | (u64::from(o.optimal) << 48)
        | (u64::from(o.detour) << 40)
        | (u64::from(o.reroute) << 32)
        | (u64::from(o.best_hops) << 16)
        | u64::from(o.total_hops & 0xFFFF)
}

/// Aggregates of one fault-sweep point.
#[derive(Default)]
struct SweepPoint {
    delivered_pairs: u64,
    paths_total: u64,
    optimal: u64,
    detour: u64,
    reroute: u64,
    multi_hops: u64,
    single_hops: u64,
    single_delivered: u64,
    checksum: u64,
    mismatches: u64,
}

fn run_sweep_point(
    p: &MultipathParams,
    f: usize,
    obs: &mut Metrics,
    rng: &mut impl rand::Rng,
) -> SweepPoint {
    let cube = Hypercube::new(p.n);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, f, rng));
    let map = SafetyMap::compute(&cfg);
    let pairs: Vec<(NodeId, NodeId)> = (0..p.pairs)
        .map(|_| hypersafe_workloads::random_pair(&cfg, rng))
        .collect();

    let batch = route_disjoint_many(&cfg, &map, &pairs, p.k);
    let mut out = SweepPoint {
        checksum: 0xcbf2_9ce4_8422_2325,
        ..SweepPoint::default()
    };
    let bound = u64::from(p.k.min(p.n)).min(p.n as u64 - f as u64);
    for (o, &(s, d)) in batch.iter().zip(&pairs) {
        // Batch vs scalar: byte-identical outcomes, and the scalar
        // result passes the structural delivery check.
        let scalar = route_disjoint(&cfg, &map, s, d, p.k);
        if *o != outcome_of(&scalar) {
            out.mismatches += 1;
        }
        if let Err(e) = check_disjoint_delivery(&cfg, s, d, &scalar) {
            out.mismatches += 1;
            eprintln!("multipath: delivery check failed {s} → {d}: {e}");
        }
        // Menger bound: f faults kill at most f of the n disjoint
        // paths between healthy endpoints, so min(k, n − f) always
        // survives. On the fault-free cube this is the exact full fan.
        if u64::from(o.delivered) < bound {
            out.mismatches += 1;
        }
        if f == 0 {
            let h = s.distance(d);
            if u32::from(o.optimal) != h || u32::from(o.detour) != u32::from(p.n) - h {
                out.mismatches += 1;
            }
        }
        // Delivery dominance over the single-path router.
        let single = route_light(&cfg, &map, s, d, TieBreak::LowestDim);
        if single.delivered && o.delivered == 0 {
            out.mismatches += 1;
        }
        out.delivered_pairs += u64::from(o.delivered > 0);
        out.paths_total += u64::from(o.delivered);
        out.optimal += u64::from(o.optimal);
        out.detour += u64::from(o.detour);
        out.reroute += u64::from(o.reroute);
        out.multi_hops += u64::from(o.total_hops);
        out.single_hops += u64::from(single.hops) * u64::from(single.delivered);
        out.single_delivered += u64::from(single.delivered);
        out.checksum = fnv1a(out.checksum, outcome_word(o));
        obs.record_rounds(u64::from(o.delivered));
        if o.delivered > 0 {
            obs.record_hops(u64::from(o.best_hops));
        }
    }
    out
}

/// One hotspot pattern's queueing outcome (all counts are ticks).
struct HotspotPoint {
    delivered: u64,
    p50: u64,
    p99: u64,
    max: u64,
    max_depth: u32,
    hops: u64,
    checksum: u64,
}

/// Replays the incast batch through per-link queues, either on the
/// single-path router or on the congestion-ranked multi-path fan
/// (first-copy latency; every copy consumes queue capacity).
fn run_hotspot(
    p: &MultipathParams,
    multi: bool,
    k: u8,
    obs: &mut Metrics,
    rng: &mut impl rand::Rng,
) -> HotspotPoint {
    let cube = Hypercube::new(p.n);
    let cfg = FaultConfig::fault_free(cube);
    let map = SafetyMap::compute(&cfg);
    let hot = NodeId::new((cube.num_nodes() - 1) / 3);
    let pairs = incast_pairs(&cfg, hot, p.hotspot_messages, rng);

    let mut load = LinkLoad::new(cube, 1);
    let mut hist = hypersafe_simkit::QuantileHist::new();
    let mut delivered = 0u64;
    let mut hops = 0u64;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for &(s, d) in &pairs {
        let arrival = if multi {
            let res = route_disjoint_ranked(&cfg, &map, s, d, k, &|a, j| load.cost(a, j));
            hops += u64::from(res.total_hops());
            res.paths.iter().map(|dp| load.traverse(&dp.path, 0)).min()
        } else {
            let res = route(&cfg, &map, s, d);
            res.path.as_ref().filter(|_| res.delivered).map(|path| {
                hops += u64::from(path.len());
                load.traverse(path, 0)
            })
        };
        if let Some(t) = arrival {
            delivered += 1;
            hist.record(t);
            if multi {
                obs.latency.record(t);
            }
            checksum = fnv1a(checksum, t);
        }
    }
    let q = hist.quantiles();
    HotspotPoint {
        delivered,
        p50: q.p50,
        p99: q.p99,
        max: q.max,
        max_depth: load.max_depth(),
        hops,
        checksum,
    }
}

/// One percolation point's aggregates.
struct PercoPoint {
    fault_bp: u32,
    giant_bp: u32,
    routable: usize,
    delivered_pairs: u64,
    paths_total: u64,
    single_delivered: u64,
    checksum: u64,
    mismatches: u64,
}

fn run_percolation_point(
    p: &MultipathParams,
    of_threshold_bp: u32,
    obs: &mut Metrics,
    rng: &mut impl rand::Rng,
) -> PercoPoint {
    let cube = Hypercube::new(p.n);
    // Scale both failure processes off the link threshold so the sweep
    // brackets the transition: node failures at a tenth of the link
    // rate (nodes are far deadlier — one node kills n links).
    let link_bp = (u64::from(link_threshold_bp(p.n)) * u64::from(of_threshold_bp) / 10_000) as u32;
    let node_bp = link_bp / 10;
    let nodes = bernoulli_node_faults(cube, node_bp, rng);
    let links = bernoulli_link_faults(cube, link_bp, rng);
    // Safety levels are defined over node faults (EGS is the link
    // extension); here the map only orders fan candidates, while the
    // max-flow itself checks the full fault config link by link.
    let map = SafetyMap::compute(&FaultConfig::with_node_faults(cube, nodes.clone()));
    let cfg = FaultConfig::with_faults(cube, nodes, links);
    let pairs = giant_component_pairs(&cfg, p.percolation_pairs, rng);

    let batch = route_disjoint_many(&cfg, &map, &pairs, p.k);
    let mut out = PercoPoint {
        fault_bp: link_bp,
        giant_bp: giant_fraction_bp(&cfg),
        routable: pairs.len(),
        delivered_pairs: 0,
        paths_total: 0,
        single_delivered: 0,
        checksum: 0xcbf2_9ce4_8422_2325,
        mismatches: 0,
    };
    for (o, &(s, d)) in batch.iter().zip(&pairs) {
        // A giant-component pair is connected, and route_disjoint is a
        // max-flow over the faulty graph: zero delivered paths would
        // be a router bug, not a disconnection.
        if o.delivered == 0 {
            out.mismatches += 1;
            eprintln!("multipath: giant-component pair {s} → {d} undelivered");
        }
        let single = route_light(&cfg, &map, s, d, TieBreak::LowestDim);
        out.delivered_pairs += u64::from(o.delivered > 0);
        out.paths_total += u64::from(o.delivered);
        out.single_delivered += u64::from(single.delivered);
        out.checksum = fnv1a(out.checksum, outcome_word(o));
        obs.record_rounds(u64::from(o.delivered));
    }
    out
}

/// The run's outcome: the report plus the violation count the `repro`
/// binary turns into its exit code.
pub struct MultipathRun {
    /// Renderable summary.
    pub report: Report,
    /// Gate violations across all regimes (must be 0).
    pub mismatches: u64,
}

/// Runs E29; writes `multipath.csv` and `multipath_obs.{json,csv}`
/// into `p.out_dir`.
pub fn run(p: &MultipathParams) -> MultipathRun {
    let mut rep = Report::new(
        "multipath",
        format!(
            "k-disjoint multi-path unicast (k = {}, Q_{}): diversity vs the Menger \
             bound, hop overhead vs single-path, hotspot tail latency, percolation",
            p.k, p.n
        ),
        &[
            "regime",
            "point",
            "pairs",
            "delivered",
            "paths",
            "optimal",
            "detour",
            "reroute",
            "multi_hops",
            "single_hops",
            "single_delivered",
            "p50",
            "p99",
            "max",
            "checksum",
            "mismatches",
        ],
    );
    let mut mismatches = 0u64;
    let mut obs = Metrics::new(0, 0);

    // -- fault sweep ------------------------------------------------------
    for f in 0..p.n as usize {
        let sweep = Sweep::new(1, p.seed ^ ((f as u64) << 24));
        let mut rng = sweep.trial_rng(0);
        let o = run_sweep_point(p, f, &mut obs, &mut rng);
        mismatches += o.mismatches;
        rep.row(vec![
            "faults".into(),
            f.to_string(),
            p.pairs.to_string(),
            o.delivered_pairs.to_string(),
            o.paths_total.to_string(),
            o.optimal.to_string(),
            o.detour.to_string(),
            o.reroute.to_string(),
            o.multi_hops.to_string(),
            o.single_hops.to_string(),
            o.single_delivered.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:016x}", o.checksum),
            o.mismatches.to_string(),
        ]);
    }

    // -- hotspot / incast -------------------------------------------------
    // k = 2 for the latency race: one optimal copy plus one
    // queue-depth-ranked spare detour per message.
    for (label, multi, k) in [
        ("single", false, 1u8),
        ("multi_k2", true, 2),
        (&*format!("multi_k{}", p.k), true, p.k),
    ] {
        let sweep = Sweep::new(1, p.seed ^ 0x0007_5F07);
        let mut rng = sweep.trial_rng(0);
        let h = run_hotspot(p, multi, k, &mut obs, &mut rng);
        rep.row(vec![
            "hotspot".into(),
            label.into(),
            p.hotspot_messages.to_string(),
            h.delivered.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            h.hops.to_string(),
            "-".into(),
            "-".into(),
            h.p50.to_string(),
            h.p99.to_string(),
            h.max.to_string(),
            format!("{:016x}", h.checksum),
            0.to_string(),
        ]);
        rep.note(format!(
            "hotspot/{label}: max queue depth {} across {} directed links",
            h.max_depth,
            u64::from(p.n) << p.n,
        ));
    }

    // -- percolation ------------------------------------------------------
    for &bp in &p.percolation_of_threshold_bp {
        let sweep = Sweep::new(1, p.seed ^ (u64::from(bp) << 16) ^ 0x9E37);
        let mut rng = sweep.trial_rng(0);
        let o = run_percolation_point(p, bp, &mut obs, &mut rng);
        mismatches += o.mismatches;
        rep.row(vec![
            "percolation".into(),
            format!("{bp}bp_of_thr"),
            o.routable.to_string(),
            o.delivered_pairs.to_string(),
            o.paths_total.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            o.single_delivered.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:016x}", o.checksum),
            o.mismatches.to_string(),
        ]);
        rep.note(format!(
            "percolation {bp} bp of threshold: link faults {} bp, giant component \
             holds {} bp of healthy nodes",
            o.fault_bp, o.giant_bp
        ));
    }

    rep.note(
        "gates: batch == scalar per pair, structural disjoint-delivery check, \
         delivered >= min(k, n - f) under f < n faults (exact full fan at f = 0), \
         multi delivers whenever single-path does, and every giant-component \
         percolation pair delivers on >= 1 path — mismatches must be 0"
            .to_string(),
    );
    rep.note(
        "all columns are counts/checksums; hotspot latency quantiles are virtual \
         queue ticks from a sequential seeded replay — byte-identical at any \
         RAYON_NUM_THREADS"
            .to_string(),
    );
    match rep.write_csv(&p.out_dir) {
        Ok(path) => {
            rep.note(format!("csv: {}", path.display()));
        }
        Err(e) => {
            rep.note(format!("csv write failed: {e}"));
        }
    }
    let snap = obs.snapshot();
    let json_path = p.out_dir.join("multipath_obs.json");
    let csv_path = p.out_dir.join("multipath_obs.csv");
    match std::fs::create_dir_all(&p.out_dir)
        .and_then(|()| std::fs::write(&json_path, snap.to_json()))
        .and_then(|()| std::fs::write(&csv_path, snap.to_csv()))
    {
        Ok(()) => {
            rep.note(format!(
                "metrics snapshot (diversity in rounds, best-copy hops, hotspot \
                 latency): {} and {}",
                json_path.display(),
                csv_path.display()
            ));
        }
        Err(e) => {
            rep.note(format!("metrics snapshot write failed: {e}"));
        }
    }
    MultipathRun {
        report: rep,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MultipathParams {
        MultipathParams {
            n: 5,
            k: 5,
            pairs: 150,
            hotspot_messages: 200,
            percolation_of_threshold_bp: vec![5_000, 10_000],
            percolation_pairs: 80,
            seed: 23,
            out_dir: std::env::temp_dir().join("hypersafe_multipath_test"),
        }
    }

    #[test]
    fn tiny_run_is_clean() {
        let run = run(&tiny());
        assert_eq!(run.mismatches, 0, "{}", run.report.render());
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }

    #[test]
    fn csv_rows_are_deterministic() {
        let a = run(&tiny());
        let b = run(&tiny());
        assert_eq!(a.report.rows, b.report.rows);
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }
}
