//! E18 — multicast over safety levels: traffic saved by prefix
//! sharing versus independent unicasts, as the destination set grows.

use crate::table::{f2, pct, Report};
use hypersafe_core::{multicast, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{mean, random_healthy, uniform_faults, Sweep};

/// Parameters for the multicast sweep.
#[derive(Clone, Copy, Debug)]
pub struct MulticastParams {
    /// Cube dimension.
    pub n: u8,
    /// Fault count per instance.
    pub faults: usize,
    /// Destination-set sizes to sweep.
    pub group_sizes: [usize; 5],
    /// Instances per size.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for MulticastParams {
    fn default() -> Self {
        MulticastParams {
            n: 7,
            faults: 5,
            group_sizes: [2, 4, 8, 16, 32],
            trials: 300,
            seed: 0x3CA57,
        }
    }
}

/// Runs the sweep.
pub fn run(p: &MulticastParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "multicast",
        format!(
            "multicast prefix sharing, {}-cube, {} faults, {} trials/point",
            p.n, p.faults, p.trials
        ),
        &[
            "group_size",
            "delivered",
            "mean_tree_edges",
            "mean_unicast_hops",
            "savings",
        ],
    );
    for &g in &p.group_sizes {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(g as u64));
        let rows: Vec<(u64, u64, u64, u64)> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, p.faults, rng));
            let map = SafetyMap::compute(&cfg);
            let s = random_healthy(&cfg, rng);
            let mut dests: Vec<NodeId> = Vec::with_capacity(g);
            while dests.len() < g {
                let d = random_healthy(&cfg, rng);
                if d != s && !dests.contains(&d) {
                    dests.push(d);
                }
            }
            let r = multicast(&cfg, &map, s, &dests);
            (r.delivered() as u64, g as u64, r.tree_edges, r.unicast_hops)
        });
        let delivered: u64 = rows.iter().map(|r| r.0).sum();
        let total: u64 = rows.iter().map(|r| r.1).sum();
        let edges = mean(&rows.iter().map(|r| r.2 as f64).collect::<Vec<_>>());
        let hops = mean(&rows.iter().map(|r| r.3 as f64).collect::<Vec<_>>());
        rep.row(vec![
            g.to_string(),
            pct(delivered, total),
            f2(edges),
            f2(hops),
            format!("{:.1}%", 100.0 * (1.0 - edges / hops.max(1e-9))),
        ]);
    }
    rep.note("savings = traffic avoided by sending shared prefix hops once".to_string());
    rep.note(
        "per-destination optimality/suboptimality guarantees are unchanged by sharing".to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_group_size() {
        let p = MulticastParams {
            n: 6,
            faults: 3,
            group_sizes: [2, 4, 8, 16, 24],
            trials: 40,
            seed: 5,
        };
        let rep = run(&p);
        let savings: Vec<f64> = rep
            .rows
            .iter()
            .map(|r| r[4].trim_end_matches('%').parse().unwrap())
            .collect();
        assert!(savings.last().unwrap() > savings.first().unwrap());
        // Everything delivered in the < n faults regime.
        for row in &rep.rows {
            assert_eq!(row[1], "100.0%", "{row:?}");
        }
    }
}
