//! E1 — the paper's Fig. 1: safety levels of a faulty 4-cube and the
//! two worked unicasts of §3.2.

use crate::table::Report;
use hypersafe_core::{route_traced, Condition, Decision, SafetyMap};
use hypersafe_simkit::Trace;
use hypersafe_topology::{FaultConfig, FaultSet, Hypercube, NodeId};

/// The exact Fig. 1 instance: `Q_4` with faults {0011, 0100, 0110, 1001}.
pub fn fig1_instance() -> FaultConfig {
    let cube = Hypercube::new(4);
    FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
    )
}

/// Regenerates Fig. 1: per-node safety levels plus the two §3.2
/// unicast walks, with every paper-stated fact checked.
pub fn run() -> Report {
    let cfg = fig1_instance();
    let map = SafetyMap::compute(&cfg);
    let mut rep = Report::new(
        "fig1",
        "Fig. 1 — safety levels in a 4-cube with faults {0011, 0100, 0110, 1001}",
        &["node", "level", "status"],
    );
    for a in cfg.cube().nodes() {
        let lv = map.level(a);
        let status = if cfg.node_faulty(a) {
            "faulty"
        } else if map.is_safe(a) {
            "safe"
        } else {
            "unsafe"
        };
        rep.row(vec![a.to_binary(4), lv.to_string(), status.into()]);
    }
    rep.note(format!(
        "stabilized after {} rounds (paper: two rounds)",
        map.rounds()
    ));

    // Worked unicast 1: 1110 → 0001 (H = 4, C1, optimal).
    let s1 = NodeId::from_binary("1110").unwrap();
    let d1 = NodeId::from_binary("0001").unwrap();
    let mut t1 = Trace::enabled();
    let r1 = route_traced(&cfg, &map, s1, d1, &mut t1);
    assert!(matches!(
        r1.decision,
        Decision::Optimal {
            condition: Condition::C1,
            ..
        }
    ));
    assert!(r1.delivered);
    let p1 = r1.path.expect("delivered");
    assert!(p1.is_optimal());
    rep.note(format!(
        "unicast 1110 → 0001 (C1, optimal): {}",
        p1.render(4)
    ));

    // Worked unicast 2: 0001 → 1100 (H = 3, C2, optimal).
    let s2 = NodeId::from_binary("0001").unwrap();
    let d2 = NodeId::from_binary("1100").unwrap();
    let mut t2 = Trace::enabled();
    let r2 = route_traced(&cfg, &map, s2, d2, &mut t2);
    assert!(matches!(
        r2.decision,
        Decision::Optimal {
            condition: Condition::C2,
            ..
        }
    ));
    assert!(r2.delivered);
    let p2 = r2.path.expect("delivered");
    assert!(p2.is_optimal());
    rep.note(format!(
        "unicast 0001 → 1100 (C2, optimal): {}",
        p2.render(4)
    ));
    rep.note("both walks match the paper's narration hop for hop".to_string());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_nodes_and_walks() {
        let rep = run();
        assert_eq!(rep.rows.len(), 16);
        // The narrated paths appear verbatim in the notes.
        let notes = rep.notes.join("\n");
        assert!(notes.contains("1110 → 1111 → 1101 → 0101 → 0001"));
        assert!(notes.contains("0001 → 0000 → 1000 → 1100"));
    }

    #[test]
    fn levels_column_matches_paper() {
        let rep = run();
        let find = |name: &str| {
            rep.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[1].clone())
                .unwrap()
        };
        assert_eq!(find("0011"), "0");
        assert_eq!(find("0001"), "1");
        assert_eq!(find("0101"), "2");
        assert_eq!(find("0000"), "2");
        assert_eq!(find("1110"), "4");
    }
}
