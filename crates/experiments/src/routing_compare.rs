//! E9 — end-to-end routing comparison: the paper's unicasting against
//! every implemented baseline, sweeping fault density through and past
//! the `n − 1` guarantee threshold.
//!
//! For each fault count we sample random instances and random healthy
//! pairs and record, per algorithm: delivery rate, mean hops relative
//! to the Hamming distance (detour), and — for the safety-level scheme
//! — how often the source *locally* detected infeasibility versus
//! losing the message in flight (it never loses one).

use crate::table::{f2, pct, Report};
use hypersafe_baselines::{
    cw_route, default_ttl, dfs_route, fd_route, lh_route, progressive_route, sidetrack_route,
    LeeHayesStatus, WuFernandezStatus,
};
use hypersafe_core::{route, Decision, SafetyMap};
use hypersafe_topology::{connectivity, FaultConfig, Hypercube};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};

/// Parameters for the routing comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompareParams {
    /// Cube dimension.
    pub n: u8,
    /// Largest fault count (inclusive).
    pub max_faults: usize,
    /// Fault-count step.
    pub step: usize,
    /// Instances per fault count.
    pub trials: u32,
    /// Unicast pairs per instance.
    pub pairs_per_instance: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for CompareParams {
    fn default() -> Self {
        CompareParams {
            n: 7,
            max_faults: 14,
            step: 2,
            trials: 200,
            pairs_per_instance: 10,
            seed: 0xD15C0,
        }
    }
}

/// Per-algorithm accumulator.
#[derive(Clone, Copy, Debug, Default)]
struct Tally {
    attempts: u64,
    delivered: u64,
    hops: u64,
    hamming: u64,
    /// Routable pairs (connected in the faulty cube) that the algorithm
    /// failed to deliver.
    missed_routable: u64,
    /// Header bits carried across all hops: the paper's message-cost
    /// argument — safety-level routing ships an n-bit navigation
    /// vector, DFS ships its visited history.
    header_bits: u64,
}

impl Tally {
    fn record(&mut self, delivered: bool, hops: u32, h: u32, connected: bool) {
        self.attempts += 1;
        if delivered {
            self.delivered += 1;
            self.hops += hops as u64;
            self.hamming += h as u64;
        } else if connected {
            self.missed_routable += 1;
        }
    }

    fn detour(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            (self.hops - self.hamming) as f64 / self.delivered as f64
        }
    }

    fn bits_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.header_bits as f64 / self.delivered as f64
        }
    }
}

const ALGOS: [&str; 7] = [
    "safety-level",
    "lee-hayes",
    "chiu-wu",
    "dfs",
    "progressive",
    "sidetrack",
    "free-dim",
];

/// Runs the comparison sweep.
pub fn run(p: &CompareParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "routing_compare",
        format!(
            "routing comparison, {}-cube, {} instances × {} pairs per point",
            p.n, p.trials, p.pairs_per_instance
        ),
        &[
            "faults",
            "algorithm",
            "delivery",
            "mean_detour",
            "missed_routable",
            "hdr_bits/msg",
        ],
    );

    let mut m = 0usize;
    while m <= p.max_faults {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(m as u64));
        let tallies: Vec<[Tally; 7]> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let map = SafetyMap::compute(&cfg);
            let lh = LeeHayesStatus::compute(&cfg);
            let wf = WuFernandezStatus::compute(&cfg);
            let mut t = [Tally::default(); 7];
            for _ in 0..p.pairs_per_instance {
                let (s, d) = random_pair(&cfg, rng);
                let h = s.distance(d);
                let conn = connectivity::connected(&cfg, s, d);

                // Safety levels (the paper's algorithm): each hop
                // carries the n-bit navigation vector.
                let r = route(&cfg, &map, s, d);
                let delivered = r.delivered && !matches!(r.decision, Decision::Failure);
                let hops_taken = r.path.as_ref().map_or(0, |p| p.len());
                if delivered {
                    t[0].header_bits += hops_taken as u64 * p.n as u64;
                }
                t[0].record(delivered, hops_taken, h, conn);

                // Lee–Hayes.
                let r = lh_route(&cfg, &lh, s, d);
                t[1].record(r.is_some(), r.as_ref().map_or(0, |p| p.len()), h, conn);

                // Chiu–Wu.
                let r = cw_route(&cfg, &wf, s, d);
                t[2].record(r.is_some(), r.as_ref().map_or(0, |p| p.len()), h, conn);

                // Chen–Shin DFS: the message carries the visited-node
                // history — at hop k the header holds k addresses of n
                // bits each.
                let r = dfs_route(&cfg, s, d).expect("healthy endpoints");
                if r.delivered {
                    let hops = r.hops() as u64;
                    t[3].header_bits += hops * (hops + 1) / 2 * p.n as u64;
                }
                t[3].record(r.delivered, r.hops(), h, conn);

                // Progressive.
                let ttl = default_ttl(&cfg, s, d);
                let (path, ok) = progressive_route(&cfg, s, d, ttl).expect("healthy endpoints");
                t[4].record(ok, path.len(), h, conn);

                // Random sidetracking.
                let (path, ok) =
                    sidetrack_route(&cfg, s, d, ttl.max(4 * h), rng).expect("healthy endpoints");
                t[5].record(ok, path.len(), h, conn);

                // Free dimensions.
                let (path, ok) = fd_route(&cfg, s, d, ttl).expect("healthy endpoints");
                t[6].record(ok, path.len(), h, conn);
            }
            t
        });

        // Fold instances.
        let mut total = [Tally::default(); 7];
        for t in &tallies {
            for (acc, x) in total.iter_mut().zip(t.iter()) {
                acc.attempts += x.attempts;
                acc.delivered += x.delivered;
                acc.hops += x.hops;
                acc.hamming += x.hamming;
                acc.missed_routable += x.missed_routable;
                acc.header_bits += x.header_bits;
            }
        }
        for (name, t) in ALGOS.iter().zip(total.iter()) {
            let bits = match *name {
                "safety-level" | "dfs" => f2(t.bits_per_delivery()),
                // The remaining schemes carry the destination address
                // (n bits) per hop; not separately instrumented.
                _ => "-".to_string(),
            };
            rep.row(vec![
                m.to_string(),
                name.to_string(),
                pct(t.delivered, t.attempts),
                f2(t.detour()),
                t.missed_routable.to_string(),
                bits,
            ]);
        }
        if m == p.max_faults {
            break;
        }
        m = (m + p.step).min(p.max_faults);
    }
    rep.note(
        "safety-level routing delivers every message it accepts; its misses are local aborts"
            .to_string(),
    );
    rep.note("DFS delivers whenever endpoints are connected, at unbounded path length".to_string());
    rep.note("missed_routable counts connected pairs an algorithm failed to serve".to_string());
    rep.note("hdr_bits/msg: header payload per delivered unicast — DFS's history grows quadratically with walk length".to_string());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CompareParams {
        CompareParams {
            n: 5,
            max_faults: 4,
            step: 2,
            trials: 20,
            pairs_per_instance: 4,
            seed: 99,
        }
    }

    #[test]
    fn fault_free_everyone_delivers_optimally() {
        let mut p = small();
        p.max_faults = 0;
        let rep = run(&p);
        for row in &rep.rows {
            assert_eq!(row[2], "100.0%", "{row:?}");
            assert_eq!(row[3], "0.00", "{row:?}");
        }
    }

    #[test]
    fn under_n_faults_safety_levels_never_miss_routable() {
        let rep = run(&small());
        for row in &rep.rows {
            if row[1] == "safety-level" {
                let m: usize = row[0].parse().unwrap();
                if m < 5 {
                    assert_eq!(row[4], "0", "Property 2 regime: {row:?}");
                }
            }
            if row[1] == "dfs" {
                assert_eq!(row[4], "0", "DFS misses nothing routable: {row:?}");
            }
        }
    }

    #[test]
    fn report_has_one_row_per_algo_per_point() {
        let rep = run(&small());
        assert_eq!(rep.rows.len(), 3 * ALGOS.len(), "faults 0,2,4 × algorithms");
    }
}
