//! `repro` — regenerate every figure and claim of the paper.
//!
//! ```text
//! repro <experiment> [options]
//!
//! experiments:
//!   fig1 fig2 fig3 fig4 fig5 safesets property2 thm4
//!   compare rounds maintenance broadcast dynamic distribution
//!   linkfaults tightness traffic multicast patterns vectors
//!   congestion loss obs dst churn all
//!
//! `obs` (E25) runs the reliable GS + unicast stack with the simkit
//! metrics registry installed and writes the merged snapshot as
//! `<dir>/obs_metrics.json` + `<dir>/obs_metrics.csv` (`--csv` names
//! the directory, default `results`); CI validates the JSON against
//! `tests/goldens/obs_schema.json`.
//!
//! `dst` (deterministic simulation testing) is not part of `all`: it
//! sweeps seeded adversarial schedules against the invariant suite,
//! writes `results/dst.csv` plus a shrunk replay artifact per
//! violating point, and exits nonzero on any violation.
//!
//! `churn` is likewise a gate, not a figure: it cross-checks the
//! incremental safety-level engine against from-scratch recomputes and
//! the batched router against its sequential path, writes the
//! thread-count-independent `results/churn.csv`, and exits nonzero on
//! any mismatch.
//!
//! `service` (E26) is a gate too: it soaks the epoch-snapshot routing
//! service with an open-loop request + churn mix, writes the
//! thread-count-independent `results/service.csv`,
//! `results/BENCH_service.json`, and `results/service_obs.json`, and
//! exits nonzero on any invariant violation, unterminated request, or
//! deadline overrun.
//!
//! `safety-scale` (E27) is a gate: it runs the packed bit-plane safety
//! kernels on large cubes (up to 2²⁰ nodes; `--quick` stops at 2¹⁶),
//! cross-checks them against the scalar reference and from-scratch
//! recomputes, enforces the ≤ 1 byte/node store ceiling, writes the
//! deterministic `results/safety_scale.csv` + `safety_scale_obs.json`,
//! and merges wall-clock numbers into `results/BENCH_safety_compute.json`,
//! `BENCH_churn.json`, and `BENCH_routing.json`.
//!
//! `mc` (E28) is a gate: it runs the explicit-state model checker
//! over every delivery interleaving of GS / delta-GS / ARQ on small
//! cubes (`--quick` limits to `Q_3` single-fault GS plus a lossless
//! ARQ pair), writes the fully deterministic `results/mc.csv` +
//! `mc_obs.json`, and exits nonzero on any property violation or any
//! truncated (non-exhaustive) search.
//!
//! `multipath` (E29) is a gate: it routes k-disjoint multi-path
//! unicasts over fault sweeps, a hotspot/incast queueing replay, and
//! percolation-regime Bernoulli failures; every point cross-checks the
//! batched router against the scalar one, the structural disjoint-
//! delivery check, the Menger bound `min(k, n − f)`, delivery
//! dominance over the single-path router, and giant-component
//! deliverability. Writes the thread-count-independent
//! `results/multipath.csv` + `multipath_obs.json` and exits nonzero on
//! any violation.
//!
//! `validate-obs` is the export gate: it checks every metrics snapshot
//! in the `--csv` directory (`obs_metrics.json`, `loss_obs.json`,
//! `dst_obs.json`, `churn_obs.json`, `service_obs.json`,
//! `safety_scale_obs.json`, `mc_obs.json`, `multipath_obs.json`)
//! against the compiled-in copy of `tests/goldens/obs_schema.json` and
//! exits nonzero on any shape drift — or if no snapshot is found at
//! all.
//!
//! options:
//!   --n <dim>        cube dimension (where applicable)
//!   --trials <k>     Monte-Carlo trials per point
//!   --seeds <k>      DST scenarios per sweep point (dst only)
//!   --max-faults <m> largest fault count in sweeps
//!   --seed <s>       master RNG seed
//!   --csv <dir>      also write <dir>/<name>.csv per report
//!   --md             print GitHub-flavored Markdown instead of text
//!   --quick          small trial counts (CI-sized run)
//! ```

use hypersafe_experiments::table::Report;
use hypersafe_experiments::{
    broadcast_exp, churn_exp, congestion_exp, distribution_exp, dst, dynamic_exp, fig1, fig2, fig3,
    fig4, fig5, linkfaults_exp, loss_exp, maintenance_exp, mc_exp, multicast_exp, multipath_exp,
    obs_exp, patterns_exp, property2, rounds_compare, routing_compare, safesets, safety_scale_exp,
    service_exp, thm4, tightness_exp, traffic_exp, vectors_exp,
};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Opts {
    experiment: String,
    n: Option<u8>,
    trials: Option<u32>,
    seeds: Option<u32>,
    max_faults: Option<usize>,
    seed: Option<u64>,
    csv: Option<PathBuf>,
    markdown: bool,
    quick: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig1|fig2|fig3|fig4|fig5|safesets|property2|thm4|compare|rounds|maintenance|broadcast|dynamic|distribution|linkfaults|tightness|traffic|multicast|patterns|vectors|congestion|loss|obs|dst|churn|service|safety-scale|mc|multipath|validate-obs|all> \
         [--n N] [--trials K] [--seeds K] [--max-faults M] [--seed S] [--csv DIR] [--md] [--quick]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let Some(experiment) = args.next() else {
        usage()
    };
    let mut opts = Opts {
        experiment,
        n: None,
        trials: None,
        seeds: None,
        max_faults: None,
        seed: None,
        csv: None,
        markdown: false,
        quick: false,
    };
    while let Some(flag) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--n" => {
                let n: u8 = val("--n").parse().unwrap_or_else(|_| usage());
                if !(2..=16).contains(&n) {
                    eprintln!("--n must be in 2..=16 (full-cube sweeps get huge beyond that)");
                    std::process::exit(2);
                }
                opts.n = Some(n);
            }
            "--trials" => opts.trials = Some(val("--trials").parse().unwrap_or_else(|_| usage())),
            "--seeds" => opts.seeds = Some(val("--seeds").parse().unwrap_or_else(|_| usage())),
            "--max-faults" => {
                opts.max_faults = Some(val("--max-faults").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => opts.seed = Some(val("--seed").parse().unwrap_or_else(|_| usage())),
            "--csv" => opts.csv = Some(PathBuf::from(val("--csv"))),
            "--md" => opts.markdown = true,
            "--quick" => opts.quick = true,
            _ => usage(),
        }
    }
    opts
}

fn emit(rep: &Report, csv: &Option<PathBuf>, markdown: bool) {
    if markdown {
        println!("{}", rep.to_markdown());
    } else {
        println!("{}", rep.render());
    }
    if let Some(dir) = csv {
        match rep.write_csv(dir) {
            Ok(path) => println!("csv: {}", path.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}

fn run_one(name: &str, o: &Opts) -> Vec<Report> {
    let quick_div = if o.quick { 10 } else { 1 };
    match name {
        "fig1" => vec![fig1::run()],
        "fig2" => {
            let mut p = fig2::Fig2Params::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(20);
            }
            if let Some(m) = o.max_faults {
                p.max_faults = m;
            } else if o.quick {
                p.max_faults = 14;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![fig2::run(&p)]
        }
        "fig3" => vec![fig3::run()],
        "fig4" => vec![fig4::run()],
        "fig5" => vec![fig5::run()],
        "safesets" => {
            let mut p = safesets::SafeSetParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(20);
            }
            if let Some(m) = o.max_faults {
                p.max_faults = m;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![safesets::run_example(), safesets::run_sweep(&p)]
        }
        "property2" => {
            let mut p = property2::Property2Params::default();
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(10);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            if o.quick {
                p.dims = [3, 4, 5, 6];
            }
            vec![property2::run(&p)]
        }
        "thm4" => {
            let mut p = thm4::Thm4Params::default();
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(10);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![thm4::run(&p)]
        }
        "compare" => {
            let mut p = routing_compare::CompareParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(10);
            }
            if let Some(m) = o.max_faults {
                p.max_faults = m;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![routing_compare::run(&p)]
        }
        "rounds" => {
            let mut p = rounds_compare::RoundsParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(10);
            }
            if let Some(m) = o.max_faults {
                p.max_faults = m;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![rounds_compare::run(&p)]
        }
        "broadcast" => {
            let mut p = broadcast_exp::BroadcastParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(10);
            }
            if let Some(m) = o.max_faults {
                p.max_faults = m;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![broadcast_exp::run(&p)]
        }
        "dynamic" => {
            let mut p = dynamic_exp::DynamicParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(20);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![dynamic_exp::run(&p)]
        }
        "distribution" => {
            let mut p = distribution_exp::DistributionParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(20);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![distribution_exp::run(&p)]
        }
        "linkfaults" => {
            let mut p = linkfaults_exp::LinkFaultParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(20);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![linkfaults_exp::run(&p)]
        }
        "tightness" => {
            let mut p = tightness_exp::TightnessParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(5);
            }
            if let Some(m) = o.max_faults {
                p.max_faults = m;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![tightness_exp::run(&p)]
        }
        "traffic" => {
            let mut p = traffic_exp::TrafficParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(3);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![traffic_exp::run(&p)]
        }
        "multicast" => {
            let mut p = multicast_exp::MulticastParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(20);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![multicast_exp::run(&p)]
        }
        "patterns" => {
            let mut p = patterns_exp::PatternsParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(10);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![patterns_exp::run(&p)]
        }
        "vectors" => {
            let mut p = vectors_exp::VectorsParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(5);
            }
            if let Some(m) = o.max_faults {
                p.max_faults = m;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![vectors_exp::run(&p)]
        }
        "congestion" => {
            let mut p = congestion_exp::CongestionParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(2);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![congestion_exp::run(&p)]
        }
        "loss" => {
            let mut p = loss_exp::LossParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(4);
            }
            if let Some(m) = o.max_faults {
                p.max_faults = m;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            if o.quick {
                // The reliable-layer runs simulate every retransmission
                // timer; shrink the cube too, not just the trials.
                p.n = p.n.min(5);
            }
            // Metrics snapshot lands next to loss.csv.
            p.out_dir = o.csv.clone();
            vec![loss_exp::run(&p)]
        }
        "obs" => {
            let mut p = obs_exp::ObsParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(3);
            }
            if let Some(m) = o.max_faults {
                p.faults = m;
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            if o.quick {
                // Like `loss`: the reliable layer simulates every
                // retransmission timer, so shrink the cube too.
                p.n = p.n.min(5);
                p.faults = p.faults.min(3);
            }
            // The snapshot lands next to the report CSVs.
            if let Some(dir) = &o.csv {
                p.out_dir = dir.clone();
            }
            vec![obs_exp::run(&p).report]
        }
        "maintenance" => {
            let mut p = maintenance_exp::MaintenanceParams::default();
            if let Some(n) = o.n {
                p.n = n;
            }
            if let Some(t) = o.trials {
                p.trials = t;
            } else {
                p.trials = (p.trials / quick_div).max(5);
            }
            if let Some(s) = o.seed {
                p.seed = s;
            }
            vec![maintenance_exp::run(&p)]
        }
        _ => usage(),
    }
}

/// DST is special-cased: its parameters differ (`--seeds`, a fixed
/// dimension sweep) and a violation must fail the process so CI can
/// gate on it.
fn run_dst(o: &Opts) -> ExitCode {
    let mut p = dst::DstParams::default();
    if let Some(k) = o.seeds {
        p.seeds = k;
    } else if o.quick {
        p.seeds = 32;
    }
    if let Some(n) = o.n {
        p.dims = vec![n];
    } else if o.quick {
        // CI-sized: drop the two largest cubes, keep the spread.
        p.dims = vec![3, 4, 5, 6];
    }
    if let Some(s) = o.seed {
        p.seed = s;
    }
    if let Some(dir) = &o.csv {
        p.out_dir = dir.clone();
    }
    let run = dst::run(&p);
    if o.markdown {
        println!("{}", run.report.to_markdown());
    } else {
        println!("{}", run.report.render());
    }
    if run.violations > 0 {
        eprintln!(
            "dst: {} invariant violation(s) — see artifacts above",
            run.violations
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Churn is special-cased like DST: an incremental-vs-scratch or
/// parallel-vs-sequential mismatch must fail the process so CI can
/// gate on it.
fn run_churn(o: &Opts) -> ExitCode {
    let mut p = churn_exp::ChurnParams::default();
    if let Some(n) = o.n {
        p.dims = vec![n];
    } else if o.quick {
        // CI-sized: the small/large ends of the sweep only.
        p.dims = vec![8, 10];
        p.rates = vec![8, 32];
        p.pairs = 4_000;
    }
    if let Some(t) = o.trials {
        p.trials = t;
    }
    if let Some(s) = o.seed {
        p.seed = s;
    }
    if let Some(dir) = &o.csv {
        p.out_dir = dir.clone();
    }
    let run = churn_exp::run(&p);
    if o.markdown {
        println!("{}", run.report.to_markdown());
    } else {
        println!("{}", run.report.render());
    }
    if run.mismatches > 0 {
        eprintln!(
            "churn: {} incremental/batched mismatch(es) — see the mismatches column",
            run.mismatches
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The service soak is a gate like DST and churn: any invariant
/// violation, unterminated request, or deadline overrun must fail the
/// process so CI can gate on it.
fn run_service(o: &Opts) -> ExitCode {
    let mut p = service_exp::ServiceParams::default();
    if let Some(n) = o.n {
        p.dims = vec![n];
    } else if o.quick {
        // CI-sized: small cubes, a few thousand requests.
        p.dims = vec![6, 8];
        p.requests = 3_000;
    }
    if let Some(t) = o.trials {
        // Reuse --trials as a request multiplier knob (requests = t × 1000).
        p.requests = u64::from(t) * 1_000;
    }
    if let Some(s) = o.seed {
        p.seed = s;
    }
    if let Some(dir) = &o.csv {
        p.out_dir = dir.clone();
    }
    let run = service_exp::run(&p);
    if o.markdown {
        println!("{}", run.report.to_markdown());
    } else {
        println!("{}", run.report.render());
    }
    if run.failures > 0 {
        eprintln!(
            "service: {} failure(s) (invariant violations / unterminated requests / \
             deadline overruns) — see the `all` rows",
            run.failures
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The schema the exported snapshots are pinned to, compiled in from
/// the checked-in golden so the binary always gates against the exact
/// bytes under review.
const OBS_SCHEMA: &str = include_str!("../../../../tests/goldens/obs_schema.json");

/// Validates every metrics snapshot present in the `--csv` directory
/// (default `results`) against [`OBS_SCHEMA`]. Missing files are
/// skipped — each experiment only writes its own snapshot — but
/// finding none at all is a failure (the gate would be vacuous).
fn run_validate_obs(o: &Opts) -> ExitCode {
    let dir = o.csv.clone().unwrap_or_else(|| PathBuf::from("results"));
    let candidates = [
        "obs_metrics.json",
        "loss_obs.json",
        "dst_obs.json",
        "churn_obs.json",
        "service_obs.json",
        "safety_scale_obs.json",
        "mc_obs.json",
        "multipath_obs.json",
    ];
    let mut checked = 0u32;
    let mut bad = 0u32;
    for name in candidates {
        let path = dir.join(name);
        let Ok(doc) = std::fs::read_to_string(&path) else {
            continue;
        };
        checked += 1;
        match hypersafe_simkit::validate_json(&doc, OBS_SCHEMA) {
            Ok(()) => println!("validate-obs: {} ok", path.display()),
            Err(e) => {
                eprintln!("validate-obs: {} FAILED: {e}", path.display());
                bad += 1;
            }
        }
    }
    if checked == 0 {
        eprintln!(
            "validate-obs: no snapshot found in {} (expected one of {:?})",
            dir.display(),
            candidates
        );
        return ExitCode::FAILURE;
    }
    if bad > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `safety-scale` (E27) is a gate: packed-vs-scalar equivalence and
/// the bytes/node ceiling fail the run; timings land in the BENCH
/// JSONs. `--quick` keeps CI at n <= 16.
fn run_safety_scale(o: &Opts) -> ExitCode {
    let mut p = safety_scale_exp::SafetyScaleParams::default();
    if o.quick {
        p.dims = vec![14, 16];
        p.events = 8;
        p.route_pairs = 100_000;
    }
    if let Some(t) = o.trials {
        p.events = t;
    }
    if let Some(s) = o.seed {
        p.seed = s;
    }
    if let Some(dir) = &o.csv {
        p.out_dir = dir.clone();
    }
    let run = safety_scale_exp::run(&p);
    if o.markdown {
        println!("{}", run.report.to_markdown());
    } else {
        println!("{}", run.report.render());
    }
    if run.mismatches > 0 {
        eprintln!(
            "safety-scale: {} packed-vs-reference mismatch(es)",
            run.mismatches
        );
        return ExitCode::FAILURE;
    }
    if run.max_bytes_per_node > 1.0 {
        eprintln!(
            "safety-scale: store exceeds 1 byte/node ({:.4})",
            run.max_bytes_per_node
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `mc` (E28) is a gate: the explicit-state checker must visit every
/// reachable state of each scenario without a property violation and
/// without hitting the state cap — a truncated search is not a proof,
/// so it fails the process too.
fn run_mc(o: &Opts) -> ExitCode {
    let mut p = mc_exp::McParams {
        quick: o.quick,
        ..mc_exp::McParams::default()
    };
    if let Some(t) = o.trials {
        // Reuse --trials as the state-cap knob (max_states = t × 1M).
        p.max_states = u64::from(t) * 1_000_000;
    }
    if let Some(dir) = &o.csv {
        p.out_dir = dir.clone();
    }
    let run = mc_exp::run(&p);
    if o.markdown {
        println!("{}", run.report.to_markdown());
    } else {
        println!("{}", run.report.render());
    }
    if run.violations > 0 {
        eprintln!(
            "mc: {} property violation(s) — see the verdict column",
            run.violations
        );
        return ExitCode::FAILURE;
    }
    if run.truncated > 0 {
        eprintln!(
            "mc: {} truncated search(es) — raise the state cap (--trials, in millions)",
            run.truncated
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `multipath` (E29) is a gate: every violation of the disjointness /
/// Menger-bound / dominance / giant-component contracts counts as a
/// mismatch and fails the process so CI can gate on it.
fn run_multipath(o: &Opts) -> ExitCode {
    let mut p = multipath_exp::MultipathParams::default();
    if o.quick {
        // CI-sized: smaller cube, fewer pairs, three percolation points.
        p.n = 6;
        p.k = 6;
        p.pairs = 400;
        p.hotspot_messages = 800;
        p.percolation_of_threshold_bp = vec![5_000, 10_000, 11_000];
        p.percolation_pairs = 200;
    }
    if let Some(n) = o.n {
        p.n = n;
        p.k = n;
    }
    if let Some(t) = o.trials {
        // Reuse --trials as the pairs-per-point knob (pairs = t × 100).
        p.pairs = t as usize * 100;
    }
    if let Some(s) = o.seed {
        p.seed = s;
    }
    if let Some(dir) = &o.csv {
        p.out_dir = dir.clone();
    }
    let run = multipath_exp::run(&p);
    if o.markdown {
        println!("{}", run.report.to_markdown());
    } else {
        println!("{}", run.report.render());
    }
    if run.mismatches > 0 {
        eprintln!(
            "multipath: {} contract violation(s) — see the mismatches column",
            run.mismatches
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse_args();
    if opts.experiment == "validate-obs" {
        return run_validate_obs(&opts);
    }
    if opts.experiment == "multipath" {
        return run_multipath(&opts);
    }
    if opts.experiment == "mc" {
        return run_mc(&opts);
    }
    if opts.experiment == "dst" {
        return run_dst(&opts);
    }
    if opts.experiment == "churn" {
        return run_churn(&opts);
    }
    if opts.experiment == "service" {
        return run_service(&opts);
    }
    if opts.experiment == "safety-scale" {
        return run_safety_scale(&opts);
    }
    let names: Vec<&str> = if opts.experiment == "all" {
        vec![
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "safesets",
            "property2",
            "thm4",
            "compare",
            "rounds",
            "maintenance",
            "broadcast",
            "dynamic",
            "distribution",
            "linkfaults",
            "tightness",
            "traffic",
            "multicast",
            "patterns",
            "vectors",
            "congestion",
            "loss",
            "obs",
        ]
    } else {
        vec![opts.experiment.as_str()]
    };
    for name in names {
        for rep in run_one(name, &opts) {
            emit(&rep, &opts.csv, opts.markdown);
        }
    }
    ExitCode::SUCCESS
}
