//! `cubeview` — interactive inspector for arbitrary faulty-hypercube
//! instances: computes safety levels, classifies nodes, and optionally
//! routes a unicast, printing the paper-style narration.
//!
//! ```text
//! cubeview --n 4 --faults 0011,0100,0110,1001 [--link 1000-1001] [--route 1110:0001]
//! cubeview --n 7 --random-faults 6 --seed 42 --route-random 3
//! ```

use hypersafe_core::{route_egs_traced, run_egs, Condition, Decision, ExtendedSafetyMap};
use hypersafe_experiments::table::Report;
use hypersafe_simkit::Trace;
use hypersafe_topology::{connectivity, FaultConfig, FaultSet, Hypercube, LinkFaultSet, NodeId};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};

struct Opts {
    n: u8,
    faults: Vec<String>,
    links: Vec<(String, String)>,
    random_faults: Option<usize>,
    seed: u64,
    routes: Vec<(String, String)>,
    route_random: usize,
    draw: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cubeview --n N [--faults a,b,c] [--random-faults K] [--seed S] \
         [--link a-b]... [--route s:d]... [--route-random K] [--draw]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut o = Opts {
        n: 4,
        faults: Vec::new(),
        links: Vec::new(),
        random_faults: None,
        seed: 7,
        routes: Vec::new(),
        route_random: 0,
        draw: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--n" => {
                o.n = val().parse().unwrap_or_else(|_| usage());
                if !(2..=16).contains(&o.n) {
                    eprintln!("--n must be in 2..=16");
                    std::process::exit(2);
                }
            }
            "--faults" => o.faults = val().split(',').map(str::to_string).collect(),
            "--random-faults" => o.random_faults = Some(val().parse().unwrap_or_else(|_| usage())),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            "--link" => {
                let v = val();
                let (a, b) = v.split_once('-').unwrap_or_else(|| usage());
                o.links.push((a.to_string(), b.to_string()));
            }
            "--route" => {
                let v = val();
                let (s, d) = v.split_once(':').unwrap_or_else(|| usage());
                o.routes.push((s.to_string(), d.to_string()));
            }
            "--route-random" => o.route_random = val().parse().unwrap_or_else(|_| usage()),
            "--draw" => o.draw = true,
            _ => usage(),
        }
    }
    o
}

fn parse_node(n: u8, s: &str) -> NodeId {
    NodeId::from_binary(s)
        .filter(|a| a.raw() < (1 << n))
        .unwrap_or_else(|| {
            eprintln!("bad {n}-bit address {s:?}");
            std::process::exit(2);
        })
}

fn main() {
    let o = parse_args();
    let cube = Hypercube::new(o.n);
    let mut rng = Sweep::new(1, o.seed).trial_rng(0);

    let faults = if let Some(k) = o.random_faults {
        uniform_faults(cube, k, &mut rng)
    } else {
        FaultSet::from_nodes(cube, o.faults.iter().map(|s| parse_node(o.n, s)))
    };
    let mut links = LinkFaultSet::new();
    for (a, b) in &o.links {
        let (a, b) = (parse_node(o.n, a), parse_node(o.n, b));
        if a.distance(b) != 1 {
            eprintln!(
                "--link {}-{} is not a hypercube link (addresses must differ in exactly one bit)",
                a.to_binary(o.n),
                b.to_binary(o.n)
            );
            std::process::exit(2);
        }
        links.insert(a, b);
    }
    let cfg = FaultConfig::with_faults(cube, faults, links);

    // Safety state: EGS handles the link-free case identically to GS.
    let (emap, stats) = run_egs(&cfg);
    let mut rep = Report::new(
        "cubeview",
        format!(
            "Q_{} · {} faulty nodes · {} faulty links · {} exchange messages",
            o.n,
            cfg.node_faults().len(),
            cfg.link_faults().len(),
            stats.messages
        ),
        &["node", "advertised", "own", "class"],
    );
    for a in cube.nodes() {
        let class = if cfg.node_faulty(a) {
            "faulty"
        } else if emap.is_n2(a) {
            "N2"
        } else if emap.advertised_level(a) == o.n {
            "safe"
        } else {
            "unsafe"
        };
        rep.row(vec![
            a.to_binary(o.n),
            emap.advertised_level(a).to_string(),
            emap.own_level(a).to_string(),
            class.to_string(),
        ]);
    }
    let comps = connectivity::components(&cfg);
    rep.note(format!(
        "{} component(s){}",
        comps.len(),
        if comps.len() > 1 {
            " — DISCONNECTED"
        } else {
            ""
        }
    ));
    println!("{}", rep.render());

    if o.draw && (o.n == 3 || o.n == 4) {
        let mut label = |a: hypersafe_topology::NodeId| {
            if cfg.node_faulty(a) {
                format!("{}=X", a.to_binary(o.n))
            } else {
                format!("{}={}", a.to_binary(o.n), emap.advertised_level(a))
            }
        };
        let art = if o.n == 3 {
            hypersafe_experiments::render::render_q3(0, &mut label)
        } else {
            hypersafe_experiments::render::render_q4(&mut label)
        };
        println!("{art}");
    } else if o.draw {
        eprintln!("--draw supports n = 3 or 4 only");
    }

    let mut routes: Vec<(NodeId, NodeId)> = o
        .routes
        .iter()
        .map(|(s, d)| (parse_node(o.n, s), parse_node(o.n, d)))
        .collect();
    for _ in 0..o.route_random {
        routes.push(random_pair(&cfg, &mut rng));
    }
    for (s, d) in routes {
        narrate(&cfg, &emap, s, d);
    }
}

fn narrate(cfg: &FaultConfig, emap: &ExtendedSafetyMap, s: NodeId, d: NodeId) {
    let n = cfg.cube().dim();
    let h = s.distance(d);
    println!(
        "unicast {} → {}: H = {h}, S(s) = {}",
        s.to_binary(n),
        d.to_binary(n),
        emap.own_level(s)
    );
    let mut trace = Trace::enabled();
    let res = route_egs_traced(cfg, emap, s, d, &mut trace);
    match res.decision {
        Decision::Optimal { condition, .. } => {
            let cond = match condition {
                Condition::C1 => "C1: S(s) ≥ H",
                Condition::C2 => "C2: a preferred neighbor has level ≥ H − 1",
                Condition::C3 => unreachable!("C3 is suboptimal"),
            };
            println!("  optimal unicasting ({cond})");
        }
        Decision::Suboptimal { .. } => {
            println!("  suboptimal unicasting (C3: a spare neighbor has level ≥ H + 1)");
        }
        Decision::Failure => {
            println!("  FAILURE detected at the source (C1, C2 and C3 all fail)");
            return;
        }
        Decision::AlreadyThere => {
            println!("  source is the destination");
            return;
        }
    }
    if let Some(p) = &res.path {
        println!(
            "  path {} (length {} = H{}{})",
            p.render(n),
            p.len(),
            if p.is_optimal() { "" } else { " + 2" },
            if res.delivered { "" } else { "; MESSAGE LOST" }
        );
    }
}
