//! E3 — safe-node set comparison across the three definitions
//! (paper §2.3): Lee–Hayes (Def. 2) ⊆ Wu–Fernandez (Def. 3) ⊆
//! safety-level-`n` nodes (Def. 1).
//!
//! Two parts: the paper's exact 4-cube example, and a randomized sweep
//! measuring average safe-set sizes as fault count grows — the
//! quantitative version of "the safety level defined here provides
//! more accurate information than the previous ones".

use crate::table::{f2, Report};
use hypersafe_baselines::{LeeHayesStatus, WuFernandezStatus};
use hypersafe_core::SafetyMap;
use hypersafe_topology::{FaultConfig, FaultSet, Hypercube};
use hypersafe_workloads::{mean, uniform_faults, Sweep};

/// Parameters for the safe-set sweep.
#[derive(Clone, Copy, Debug)]
pub struct SafeSetParams {
    /// Cube dimension.
    pub n: u8,
    /// Largest fault count (inclusive).
    pub max_faults: usize,
    /// Trials per fault count.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for SafeSetParams {
    fn default() -> Self {
        SafeSetParams {
            n: 7,
            max_faults: 21,
            trials: 300,
            seed: 0xB0B,
        }
    }
}

/// The paper's exact §2.3 example, as a report.
pub fn run_example() -> Report {
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0000", "0110", "1111"]),
    );
    let lh = LeeHayesStatus::compute(&cfg);
    let wf = WuFernandezStatus::compute(&cfg);
    let sl = SafetyMap::compute(&cfg);
    let mut rep = Report::new(
        "safesets_example",
        "§2.3 example — safe sets under the three definitions, faults {0000, 0110, 1111}",
        &["definition", "safe_set", "size"],
    );
    let fmt = |v: &[hypersafe_topology::NodeId]| {
        v.iter()
            .map(|a| a.to_binary(4))
            .collect::<Vec<_>>()
            .join(" ")
    };
    rep.row(vec![
        "Lee-Hayes (Def. 2)".into(),
        fmt(&lh.safe_nodes()),
        lh.safe_nodes().len().to_string(),
    ]);
    rep.row(vec![
        "Wu-Fernandez (Def. 3)".into(),
        fmt(&wf.safe_nodes()),
        wf.safe_nodes().len().to_string(),
    ]);
    rep.row(vec![
        "Safety level = n (Def. 1)".into(),
        fmt(&sl.safe_nodes()),
        sl.safe_count().to_string(),
    ]);
    assert!(lh.fully_unsafe(), "paper: LH set is empty");
    assert_eq!(sl.safe_count(), 9, "paper: SL set has 9 members");
    rep.note("paper lists the WF set without node 1100; Definition 3 as stated keeps it (see EXPERIMENTS.md E3)".to_string());
    rep
}

/// The randomized size sweep.
pub fn run_sweep(p: &SafeSetParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "safesets_sweep",
        format!(
            "safe-set sizes vs faults, {}-cube, {} trials/point",
            p.n, p.trials
        ),
        &[
            "faults",
            "lh_mean",
            "wf_mean",
            "sl_mean",
            "containment_violations",
        ],
    );
    for m in 0..=p.max_faults {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(m as u64));
        let results: Vec<(f64, f64, f64, u64)> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let lh = LeeHayesStatus::compute(&cfg);
            let wf = WuFernandezStatus::compute(&cfg);
            let sl = SafetyMap::compute(&cfg);
            let mut violations = 0u64;
            for a in cfg.cube().nodes() {
                if lh.is_safe(a) && !wf.is_safe(a) {
                    violations += 1;
                }
                if wf.is_safe(a) && !sl.is_safe(a) {
                    violations += 1;
                }
            }
            (
                lh.safe_nodes().len() as f64,
                wf.safe_nodes().len() as f64,
                sl.safe_count() as f64,
                violations,
            )
        });
        let lh_m = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let wf_m = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let sl_m = mean(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        let viol: u64 = results.iter().map(|r| r.3).sum();
        assert_eq!(viol, 0, "containment LH ⊆ WF ⊆ SL must never break");
        rep.row(vec![
            m.to_string(),
            f2(lh_m),
            f2(wf_m),
            f2(sl_m),
            viol.to_string(),
        ]);
    }
    rep.note("containment chain verified on every sampled instance".to_string());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_report_matches_paper_sizes() {
        let rep = run_example();
        assert_eq!(rep.rows[0][2], "0");
        assert_eq!(rep.rows[2][2], "9");
    }

    #[test]
    fn sweep_sizes_are_ordered() {
        let p = SafeSetParams {
            n: 6,
            max_faults: 6,
            trials: 40,
            seed: 5,
        };
        let rep = run_sweep(&p);
        for row in &rep.rows {
            let lh: f64 = row[1].parse().unwrap();
            let wf: f64 = row[2].parse().unwrap();
            let sl: f64 = row[3].parse().unwrap();
            assert!(lh <= wf + 1e-9);
            assert!(wf <= sl + 1e-9);
            assert_eq!(row[4], "0");
        }
    }

    #[test]
    fn zero_faults_all_safe_everywhere() {
        let p = SafeSetParams {
            n: 5,
            max_faults: 0,
            trials: 5,
            seed: 1,
        };
        let rep = run_sweep(&p);
        assert_eq!(rep.rows[0][1], "32.00");
        assert_eq!(rep.rows[0][3], "32.00");
    }
}
