//! E6 — Theorem 4: in any disconnected hypercube the Lee–Hayes and
//! Wu–Fernandez safe sets are empty, so their routing schemes are
//! inapplicable — while safety levels keep serving the surviving
//! components.

use crate::table::{pct, Report};
use hypersafe_baselines::{LeeHayesStatus, WuFernandezStatus};
use hypersafe_core::{route, Decision, SafetyMap};
use hypersafe_topology::{connectivity, FaultConfig, Hypercube};
use hypersafe_workloads::{random_disconnecting, random_pair, Sweep};

/// Parameters for the Theorem 4 sweep.
#[derive(Clone, Copy, Debug)]
pub struct Thm4Params {
    /// Cube dimensions to test.
    pub dims: [u8; 4],
    /// Extra faults beyond the corner cut.
    pub extra_faults: usize,
    /// Instances per dimension.
    pub trials: u32,
    /// Unicast pairs per instance.
    pub pairs_per_instance: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for Thm4Params {
    fn default() -> Self {
        Thm4Params {
            dims: [4, 5, 6, 7],
            extra_faults: 2,
            trials: 150,
            pairs_per_instance: 8,
            seed: 0x7444,
        }
    }
}

/// Runs the sweep.
pub fn run(p: &Thm4Params) -> Report {
    let mut rep = Report::new(
        "thm4",
        "Theorem 4 — disconnected cubes: safe sets vs safety levels",
        &[
            "n",
            "instances",
            "lh_nonempty",
            "wf_nonempty",
            "sl_delivery_same_component",
            "cross_partition_aborts",
        ],
    );
    for &n in &p.dims {
        let cube = Hypercube::new(n);
        let sweep = Sweep::new(p.trials, p.seed ^ ((n as u64) << 24));
        let results: Vec<(u32, u32, u64, u64, u64, u64)> = sweep.run(|_, rng| {
            let faults = random_disconnecting(cube, p.extra_faults, rng);
            let cfg = FaultConfig::with_node_faults(cube, faults);
            debug_assert!(connectivity::is_disconnected(&cfg));
            let lh = LeeHayesStatus::compute(&cfg);
            let wf = WuFernandezStatus::compute(&cfg);
            let map = SafetyMap::compute(&cfg);
            let lh_bad = !lh.fully_unsafe() as u32;
            let wf_bad = !wf.fully_unsafe() as u32;

            // Sample pairs; split into same-component and cross-partition.
            let mut same_total = 0u64;
            let mut same_ok = 0u64;
            let mut cross_total = 0u64;
            let mut cross_aborted = 0u64;
            for _ in 0..p.pairs_per_instance {
                let (s, d) = random_pair(&cfg, rng);
                let res = route(&cfg, &map, s, d);
                if connectivity::connected(&cfg, s, d) {
                    same_total += 1;
                    if res.delivered {
                        same_ok += 1;
                    }
                } else {
                    cross_total += 1;
                    // The paper's point: the impossibility is *detected
                    // at the source* (Decision::Failure), not discovered
                    // by a lost message.
                    if matches!(res.decision, Decision::Failure) {
                        cross_aborted += 1;
                    }
                }
            }
            (
                lh_bad,
                wf_bad,
                same_ok,
                same_total,
                cross_aborted,
                cross_total,
            )
        });
        let lh_bad: u32 = results.iter().map(|r| r.0).sum();
        let wf_bad: u32 = results.iter().map(|r| r.1).sum();
        let same_ok: u64 = results.iter().map(|r| r.2).sum();
        let same_total: u64 = results.iter().map(|r| r.3).sum();
        let cross_ab: u64 = results.iter().map(|r| r.4).sum();
        let cross_total: u64 = results.iter().map(|r| r.5).sum();
        assert_eq!(lh_bad, 0, "Theorem 4 (LH) violated at n={n}");
        assert_eq!(wf_bad, 0, "Theorem 4 (WF) violated at n={n}");
        assert_eq!(
            cross_ab, cross_total,
            "cross-partition unicasts must abort at source"
        );
        rep.row(vec![
            n.to_string(),
            p.trials.to_string(),
            lh_bad.to_string(),
            wf_bad.to_string(),
            pct(same_ok, same_total),
            pct(cross_ab, cross_total),
        ]);
    }
    rep.note(
        "LH and WF safe sets were empty in every disconnected instance (Theorem 4)".to_string(),
    );
    rep.note("every cross-partition unicast was aborted locally at the source".to_string());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_confirms_theorem4() {
        let p = Thm4Params {
            dims: [4, 4, 5, 5],
            extra_faults: 1,
            trials: 20,
            pairs_per_instance: 6,
            seed: 9,
        };
        let rep = run(&p);
        for row in &rep.rows {
            assert_eq!(row[2], "0");
            assert_eq!(row[3], "0");
            assert_eq!(row[5], "100.0%");
        }
    }
}
